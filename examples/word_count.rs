//! Distributed word count: the canonical irregular-aggregation workload the
//! paper's introduction motivates (indexing/data-sharing services).
//!
//! Each rank processes a shard of documents and merges counts into one
//! distributed `UnorderedMap` using a server-side merger — the whole
//! read-modify-write is a single invocation executed at the owner, so no
//! client-side CAS loops and no lost updates (§III-D: "all DDS operations
//! are inherently atomic due to HCL's functional paradigm").
//!
//! Run with: `cargo run --release --example word_count`

use std::collections::HashMap;
use std::sync::Arc;

use hcl::{UnorderedMap, UnorderedMapConfig};
use hcl_runtime::{World, WorldConfig};

const DOCUMENTS: &[&str] = &[
    "the quick brown fox jumps over the lazy dog",
    "a distributed hash map counts words across ranks",
    "the fox and the dog share the map without locks",
    "remote procedure calls bundle the work at the data",
    "the lazy dog sleeps while the quick fox works",
    "one invocation per operation keeps the network quiet",
    "partitions live on every node of the cluster",
    "the map grows dynamically as the words arrive",
];

fn main() {
    let cfg = WorldConfig { nodes: 2, ranks_per_node: 2, ..WorldConfig::small() };
    let counts = World::run(cfg, |rank| {
        let map: UnorderedMap<String, u64> = UnorderedMap::with_merger(
            rank,
            "wordcount",
            UnorderedMapConfig::default(),
            Arc::new(|old: Option<&u64>, add: &u64| old.copied().unwrap_or(0) + add),
        );
        rank.barrier();

        // Shard the documents round-robin over ranks.
        for (i, doc) in DOCUMENTS.iter().enumerate() {
            if i as u32 % rank.world_size() != rank.id() {
                continue;
            }
            for word in doc.split_whitespace() {
                map.put_merge(word.to_string(), 1).unwrap();
            }
        }
        rank.barrier();

        // Everyone can read the final histogram.
        let snapshot: HashMap<String, u64> =
            map.snapshot_all().unwrap().into_iter().collect();
        rank.barrier();
        snapshot
    });

    // Verify against a sequential reference.
    let mut reference: HashMap<String, u64> = HashMap::new();
    for doc in DOCUMENTS {
        for w in doc.split_whitespace() {
            *reference.entry(w.to_string()).or_default() += 1;
        }
    }
    assert_eq!(counts[0], reference, "distributed count diverged");

    let mut top: Vec<(&String, &u64)> = counts[0].iter().collect();
    top.sort_by(|a, b| b.1.cmp(a.1).then(a.0.cmp(b.0)));
    println!("top words across {} documents:", DOCUMENTS.len());
    for (w, c) in top.iter().take(8) {
        println!("  {c:>3}  {w}");
    }
    println!("word_count verified against sequential reference");
}
