//! A fault-tolerant distributed key-value store: the paper's durability
//! story (§III-A4, §III-C6) end-to-end — per-partition operation logs with
//! replay recovery, plus asynchronous server-side replication with read
//! failover when a partition owner is marked down.
//!
//! Run with: `cargo run --release --example fault_tolerant_store`

use hcl::{PersistConfig, UnorderedMap, UnorderedMapConfig};
use hcl_runtime::{World, WorldConfig};

fn main() {
    let cfg = WorldConfig { nodes: 2, ranks_per_node: 2, ..WorldConfig::small() };
    let dir = std::env::temp_dir().join(format!("hcl-ft-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let pcfg = PersistConfig::strict(&dir);

    // Session 1: write with durability + replication, then lose an owner.
    {
        let pcfg = pcfg.clone();
        World::run(cfg, move |rank| {
            let store: UnorderedMap<String, String> = UnorderedMap::with_config(
                rank,
                "sessions",
                UnorderedMapConfig {
                    persist: Some(pcfg.clone()),
                    replicas: 1,
                    ..Default::default()
                },
            );
            // Each rank stores some user sessions.
            for i in 0..25 {
                store
                    .put(
                        format!("user-{}-{}", rank.id(), i),
                        format!("session-token-{}", rank.id() as usize * 1000 + i),
                    )
                    .unwrap();
            }
            store.flush_replication().unwrap();
            rank.barrier();

            // Disaster drill: every rank marks partition 0's owner as down;
            // reads fail over to the replica on the next partition.
            store.mark_down(store.server_of(0));
            let mut served = 0;
            for r in 0..rank.world_size() {
                for i in 0..25 {
                    if store.get(&format!("user-{r}-{i}")).unwrap().is_some() {
                        served += 1;
                    }
                }
            }
            assert_eq!(served, 100, "failover reads incomplete");
            if rank.id() == 0 {
                println!("session 1: 100 sessions written, all readable with owner 0 down");
            }
            rank.barrier();
        });
    }

    // Session 2 (fresh "process"): recover everything from the op logs.
    {
        let pcfg = pcfg.clone();
        World::run(cfg, move |rank| {
            let store: UnorderedMap<String, String> = UnorderedMap::with_config(
                rank,
                "sessions",
                UnorderedMapConfig { persist: Some(pcfg.clone()), ..Default::default() },
            );
            rank.barrier();
            let mut recovered = 0;
            for r in 0..rank.world_size() {
                for i in 0..25 {
                    let got = store.get(&format!("user-{r}-{i}")).unwrap();
                    assert_eq!(
                        got,
                        Some(format!("session-token-{}", r as usize * 1000 + i)),
                        "lost session after restart"
                    );
                    recovered += 1;
                }
            }
            if rank.id() == 0 {
                println!("session 2: {recovered} sessions recovered from the op logs");
                // Compact the logs to snapshots for the next restart.
                store.compact_local_logs().unwrap();
                println!("logs compacted");
            }
            rank.barrier();
        });
    }

    std::fs::remove_dir_all(&dir).unwrap();
    println!("fault_tolerant_store verified: durability + replication + failover");
}
