//! Fault injection end-to-end: a distributed hashmap + queue workload over
//! a [`ChaosFabric`] that drops, duplicates, and delays request sends, with
//! the RPC retry/dedup machinery keeping the results exact; then a full
//! network partition demonstrating typed, bounded-time failure.
//!
//! Run with: `cargo run --release --example chaos_demo`

use std::sync::Arc;
use std::time::{Duration, Instant};

use hcl::queue::QueueConfig;
use hcl::{HclError, Queue, UnorderedMap};
use hcl_fabric::chaos::{ChaosFabric, ChaosSnapshot, FaultPlan, FaultRule, OpClass};
use hcl_fabric::memory::MemoryFabric;
use hcl_fabric::Fabric;
use hcl_rpc::{RetryPolicy, RpcError};
use hcl_runtime::{World, WorldConfig};

const N: u64 = 64;

fn lossy_run(seed: u64) -> ChaosSnapshot {
    let cfg = WorldConfig {
        nodes: 2,
        ranks_per_node: 2,
        retry: RetryPolicy::resilient(6, seed).with_attempt_timeout(Duration::from_millis(250)),
        ..WorldConfig::small()
    };
    let plan = FaultPlan::new(seed).for_class(
        OpClass::Send,
        FaultRule::NONE
            .drop(0.10)
            .dup(0.05)
            .error(0.02)
            .delay(Duration::from_micros(200))
            .jitter(Duration::from_micros(400)),
    );
    let chaos = Arc::new(ChaosFabric::wrap(Arc::new(MemoryFabric::new()), plan));
    let shared = World::shared_with_fabric(cfg, Arc::clone(&chaos) as Arc<dyn Fabric>);
    let shared2 = Arc::clone(&shared);
    World::run_on(shared, move |rank| {
        let m: UnorderedMap<u64, u64> = UnorderedMap::new(rank, "chaos.m");
        let q: Queue<u64> = Queue::with_config(
            rank,
            "chaos.q",
            QueueConfig { owner: 0, hybrid: false, ..Default::default() },
        );
        rank.barrier();
        let me = rank.id() as u64;
        for i in 0..N {
            m.put(me * N + i, me * N + i + 1).unwrap();
            q.push(me * N + i).unwrap();
        }
        rank.barrier();
        let ws = rank.world_size() as u64;
        let mut lost = 0;
        for k in 0..ws * N {
            if m.get(&k).unwrap() != Some(k + 1) {
                lost += 1;
            }
        }
        let mut popped = 0u64;
        while q.pop().unwrap().is_some() {
            popped += 1;
        }
        let total_popped = rank.allreduce(popped, |a, b| a + b);
        if rank.id() == 0 {
            assert_eq!(lost, 0, "acknowledged writes were lost");
            assert_eq!(total_popped, ws * N, "queue lost or duplicated elements");
            println!(
                "  rank 0: {} keys verified, {} queue elements accounted for",
                ws * N,
                total_popped
            );
        }
        rank.barrier();
    });
    let snap = chaos.chaos_stats();
    let stats = shared2.server_stats();
    println!(
        "  faults: {} drops, {} dups, {} injected errors, {} delayed sends; servers deduped {} retransmits",
        snap.drops, snap.duplicates, snap.injected_errors, snap.delayed_ops, stats.deduped
    );
    snap
}

fn main() {
    println!("== workload over a lossy fabric (10% drop, 5% dup, retries on) ==");
    let a = lossy_run(42);

    println!("== same seed again: the fault schedule must repeat exactly ==");
    let b = lossy_run(42);
    assert_eq!(a, b, "fault counters diverged for the same seed");
    println!("  deterministic: both runs observed the identical fault counters");

    println!("== full partition: 100% request drop toward the queue owner ==");
    let cfg = WorldConfig {
        nodes: 2,
        ranks_per_node: 1,
        retry: RetryPolicy {
            max_attempts: 3,
            ..RetryPolicy::resilient(3, 7)
        }
        .with_attempt_timeout(Duration::from_millis(150)),
        ..WorldConfig::small()
    };
    let plan = FaultPlan::new(7).for_pair_class(
        cfg.ep_of(1),
        cfg.ep_of(0),
        OpClass::Send,
        FaultRule::NONE.drop(1.0),
    );
    let chaos = Arc::new(ChaosFabric::wrap(Arc::new(MemoryFabric::new()), plan));
    let shared = World::shared_with_fabric(cfg, Arc::clone(&chaos) as Arc<dyn Fabric>);
    World::run_on(shared, move |rank| {
        let q: Queue<u64> = Queue::with_config(
            rank,
            "part.q",
            QueueConfig { owner: 0, hybrid: false, ..Default::default() },
        );
        rank.barrier();
        if rank.id() == 1 {
            let start = Instant::now();
            match q.push(42) {
                Err(HclError::Rpc(RpcError::RetriesExhausted { attempts, last })) => {
                    println!(
                        "  rank 1: push failed after {} attempts in {:?}: {}",
                        attempts,
                        start.elapsed(),
                        last
                    );
                    assert!(last.is_timeout());
                }
                other => panic!("expected RetriesExhausted, got {other:?}"),
            }
        }
        rank.barrier();
    });
    println!("ok: chaos demo completed");
}
