//! A genomics pipeline on the public API: synthesize a genome, sample
//! reads, count k-mers into a distributed histogram, build the de Bruijn
//! graph, and assemble contigs — the Meraculous workload of §IV-D2
//! end-to-end on the real library.
//!
//! Run with: `cargo run --release --example kmer_census`

use hcl_apps::genome::{kmers_of, sample_reads, synth_genome, Read};
use hcl_apps::meraculous::{build_graph, count_kmers_hcl, generate_contigs};
use hcl_runtime::{World, WorldConfig};

fn main() {
    let cfg = WorldConfig { nodes: 2, ranks_per_node: 2, ..WorldConfig::small() };
    let k = 15;
    let genome = synth_genome(3_000, 2026);
    println!("genome: {} bases, k = {k}", genome.len());

    // Phase 1: k-mer census over error-free reads.
    let g = genome.clone();
    let histograms = World::run(cfg, move |rank| {
        let reads = sample_reads(&g, 60, 50, 0.0, 7_000 + rank.id() as u64);
        count_kmers_hcl(rank, "census", &reads, k)
    });
    let hist = &histograms[0];
    let total: u64 = hist.values().sum();
    let max = hist.values().max().copied().unwrap_or(0);
    println!(
        "census: {} distinct k-mers, {total} total occurrences, hottest seen {max}x",
        hist.len()
    );

    // Phase 2: assembly from full-coverage chunks.
    let g = genome.clone();
    let contigs = World::run(cfg, move |rank| {
        let chunk = g.len() / rank.world_size() as usize;
        let start = rank.id() as usize * chunk;
        let end = (start + chunk + k).min(g.len());
        let reads = vec![Read { bases: g[start..end].to_vec() }];
        let graph = build_graph(rank, "census.graph", &reads, k);
        let seeds = kmers_of(&g, k);
        let c = generate_contigs(rank, &graph, &seeds, k);
        rank.barrier();
        c
    });
    let all: Vec<Vec<u8>> = contigs.into_iter().flatten().collect();
    println!("assembly: {} contig(s)", all.len());
    for (i, c) in all.iter().enumerate() {
        println!("  contig {i}: {} bases", c.len());
        assert!(
            genome.windows(c.len()).any(|w| w == &c[..]),
            "contig {i} is not a genome substring"
        );
    }
    let assembled: usize = all.iter().map(|c| c.len()).sum();
    println!(
        "coverage: {assembled}/{} bases ({:.0}%) — every contig verified as a genome substring",
        genome.len(),
        100.0 * assembled as f64 / genome.len() as f64
    );
}
