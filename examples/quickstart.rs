//! Quickstart: a distributed hash map across a 2-node × 2-rank world.
//!
//! Mirrors the paper's Fig. 3 usage: every rank calls the constructor, then
//! uses the container as if it were a local STL map — the library routes
//! each op to the owning partition, locally (shared memory) or remotely
//! (one RPC).
//!
//! Run with: `cargo run --release --example quickstart`

use hcl::UnorderedMap;
use hcl_runtime::{World, WorldConfig};

fn main() {
    let cfg = WorldConfig { nodes: 2, ranks_per_node: 2, ..WorldConfig::small() };
    println!("spawning a {}-node world, {} ranks total", cfg.nodes, cfg.world_size());

    World::run(cfg, |rank| {
        // Collective constructor — same name on every rank (paper Fig. 3).
        let map: UnorderedMap<String, u64> = UnorderedMap::new(rank, "quickstart");

        // Every rank inserts its own entry.
        map.put(format!("rank-{}", rank.id()), rank.id() as u64 * 100).unwrap();
        rank.barrier();

        // Every rank reads every entry — some local, some via RPC.
        for r in 0..rank.world_size() {
            let v = map.get(&format!("rank-{r}")).unwrap();
            assert_eq!(v, Some(r as u64 * 100));
        }

        // Async ops return futures (§III-C4).
        let fut = map.put_async(format!("async-{}", rank.id()), 7).unwrap();
        fut.wait().unwrap();
        rank.barrier();

        if rank.id() == 0 {
            println!("entries: {}", map.len().unwrap());
            let costs = map.costs();
            println!(
                "rank 0 cost profile: {costs}  (each remote op = exactly one invocation)"
            );
        }
        rank.barrier();
    });
    println!("quickstart done");
}
