//! Distributed task scheduling with FIFO and priority queues — the
//! "scheduling, data sharing, and process-to-process lock-free
//! synchronizations" use case from the paper's §I.
//!
//! Producer ranks submit jobs; consumer ranks race to claim them with
//! lock-free pops (MWMR, §III-D3). Urgent jobs go through an
//! `HCL::priority_queue`, bulk work through the `HCL::queue`, and results
//! return via a second FIFO.
//!
//! Run with: `cargo run --release --example task_queue`

use hcl::{PriorityQueue, Queue};
use hcl_databox::databox_struct;
use hcl_runtime::{World, WorldConfig};

#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct Job {
    id: u64,
    payload: String,
}
databox_struct!(Job { id: u64, payload: String });

fn main() {
    let cfg = WorldConfig { nodes: 2, ranks_per_node: 3, ..WorldConfig::small() };
    let jobs_per_producer = 40u64;

    let results = World::run(cfg, move |rank| {
        // Work queue hosted on node 0, results on node 1 (cross-node flow).
        let work: Queue<Job> = Queue::new(rank, "jobs");
        let urgent: PriorityQueue<(u32, Job)> = PriorityQueue::with_config(
            rank,
            "urgent",
            hcl::queue::QueueConfig { owner: 3, hybrid: true, ..Default::default() },
        );
        let done: Queue<u64> = Queue::with_config(
            rank,
            "done",
            hcl::queue::QueueConfig { owner: 3, hybrid: true, ..Default::default() },
        );
        rank.barrier();

        let producers = 2u32; // ranks 0..2 produce, the rest consume
        if rank.id() < producers {
            for i in 0..jobs_per_producer {
                let job = Job {
                    id: rank.id() as u64 * 1_000 + i,
                    payload: format!("work-item-{i} from rank {}", rank.id()),
                };
                if i % 10 == 0 {
                    // Every tenth job is urgent, priority 0 = highest.
                    urgent.push((0, job)).unwrap();
                } else {
                    work.push(job).unwrap();
                }
            }
        }
        rank.barrier();

        let mut processed = 0u64;
        if rank.id() >= producers {
            // Consumers: drain urgent first, then the FIFO backlog.
            while let Some((_prio, job)) = urgent.pop().unwrap() {
                done.push(job.id).unwrap();
                processed += 1;
            }
            while let Some(job) = work.pop().unwrap() {
                done.push(job.id).unwrap();
                processed += 1;
            }
        }
        rank.barrier();
        processed
    });

    let total: u64 = results.iter().sum();
    assert_eq!(total, 2 * 40, "every job must be processed exactly once");
    println!("processed {total} jobs across consumer ranks: {results:?}");
    println!("task_queue verified: no job lost or duplicated");
}
