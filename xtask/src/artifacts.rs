//! FIG artifact provenance check (`cargo run -p xtask -- artifacts`).
//!
//! Every committed `FIG_*.json` at the workspace root must carry enough
//! provenance to regenerate itself: a top-level RNG **seed**, the measured
//! **rank counts**, and — for every scenario cell it contains — the
//! **workload mix**, the cell's own seed, and the rank series it measured.
//! An artifact someone cannot re-run is a plot, not a benchmark result.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

pub fn run() -> ExitCode {
    let root = match workspace_root() {
        Some(r) => r,
        None => {
            eprintln!("artifacts: cannot locate workspace root");
            return ExitCode::FAILURE;
        }
    };
    let files = fig_artifacts(&root);
    if files.is_empty() {
        println!("artifacts: no FIG_*.json committed at {}", root.display());
        return ExitCode::SUCCESS;
    }
    let mut failures = 0usize;
    for path in &files {
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        let body = match std::fs::read_to_string(path) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("artifacts: FAIL {name}: unreadable: {e}");
                failures += 1;
                continue;
            }
        };
        match check_artifact(&name, &body) {
            Ok(cells) => println!("artifacts: ok   {name} ({cells} cell(s))"),
            Err(msg) => {
                eprintln!("artifacts: FAIL {name}: {msg}");
                failures += 1;
            }
        }
    }
    if failures == 0 {
        println!("artifacts: {} artifact(s) carry full provenance", files.len());
        ExitCode::SUCCESS
    } else {
        eprintln!("artifacts: {failures} artifact(s) missing provenance");
        ExitCode::FAILURE
    }
}

/// The workspace root: walk up from this file's manifest dir.
fn workspace_root() -> Option<PathBuf> {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest.parent().map(Path::to_path_buf)
}

/// All `FIG_*.json` files at the workspace root, sorted for stable output.
fn fig_artifacts(root: &Path) -> Vec<PathBuf> {
    let mut out: Vec<PathBuf> = std::fs::read_dir(root)
        .into_iter()
        .flatten()
        .flatten()
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .map(|n| n.starts_with("FIG_") && n.ends_with(".json"))
                .unwrap_or(false)
        })
        .collect();
    out.sort();
    out
}

/// Validate one artifact body. Returns the cell count on success.
///
/// Rules (hand-rolled string checks — the artifacts are written by our own
/// binaries with a fixed field order, no JSON parser in the dev tree):
/// 1. a top-level `"seed":` field;
/// 2. a rank-count record: `"measured_ranks":` (scenario matrices) or a
///    `"ranks":` field (single-series artifacts);
/// 3. every `{"cell": ...}` object carries its own `"seed":`, a
///    `"mix":` label, and a `"ranks":` series.
pub(crate) fn check_artifact(name: &str, body: &str) -> Result<usize, String> {
    if !body.contains("\"seed\":") {
        return Err(format!("{name} records no \"seed\""));
    }
    if !body.contains("\"measured_ranks\":") && !body.contains("\"ranks\":") {
        return Err(format!("{name} records no rank counts"));
    }
    let cells: Vec<&str> = body.split("{\"cell\":").skip(1).collect();
    for (i, cell) in cells.iter().enumerate() {
        // A cell's fields end where the next cell begins; `split` already
        // scoped `cell` to exactly that span.
        for field in ["\"seed\":", "\"mix\":", "\"ranks\":"] {
            if !cell.contains(field) {
                let label = cell
                    .split('"')
                    .nth(1)
                    .unwrap_or("?");
                return Err(format!("{name} cell {i} ({label}) records no {field}"));
            }
        }
    }
    Ok(cells.len())
}

#[cfg(test)]
mod tests {
    use super::check_artifact;

    const GOOD: &str = r#"{"bench": "fig_x", "config": {"seed": 42, "measured_ranks": [1, 2, 4, 8]},
        "cells": [
        {"cell": "umap/a/zipf", "seed": 42, "mix": "ycsb_a_update_heavy",
         "measured": [{"ranks": 1, "ops_per_sec": 10.0}]},
        {"cell": "q/b/unif", "seed": 43, "mix": "queue_push_pop",
         "measured": [{"ranks": 2, "ops_per_sec": 11.0}]}
    ]}"#;

    #[test]
    fn full_provenance_passes() {
        assert_eq!(check_artifact("FIG_good.json", GOOD), Ok(2));
    }

    #[test]
    fn missing_top_level_seed_fails() {
        let body = GOOD.replace("\"seed\": 42", "\"sd\": 42");
        // Cell 1 still has its own seed (43), so the top-level check is the
        // one that must fire ... except cell 0's seed was also renamed; use
        // the error text to pin which rule tripped.
        let err = check_artifact("FIG_bad.json", &body).unwrap_err();
        assert!(err.contains("seed"), "wrong failure: {err}");
    }

    #[test]
    fn missing_rank_counts_fails() {
        let body = GOOD.replace("measured_ranks", "mr").replace("\"ranks\":", "\"r\":");
        let err = check_artifact("FIG_bad.json", &body).unwrap_err();
        assert!(err.contains("rank counts"), "wrong failure: {err}");
    }

    #[test]
    fn cell_without_mix_fails() {
        let body = GOOD.replace("\"mix\": \"queue_push_pop\"", "\"m\": \"x\"");
        let err = check_artifact("FIG_bad.json", &body).unwrap_err();
        assert!(err.contains("\"mix\"") && err.contains("cell 1"), "wrong failure: {err}");
    }

    #[test]
    fn cell_without_seed_fails() {
        let body = GOOD.replace("\"seed\": 43", "\"sd\": 43");
        let err = check_artifact("FIG_bad.json", &body).unwrap_err();
        assert!(err.contains("cell 1"), "wrong failure: {err}");
    }

    #[test]
    fn artifact_without_cells_passes_on_top_level_fields_alone() {
        let body = r#"{"bench": "fig_y", "seed": 7, "ranks": [1, 2, 4], "series": []}"#;
        assert_eq!(check_artifact("FIG_flat.json", body), Ok(0));
    }
}
