//! Concurrency-hygiene lint pass (`cargo run -p xtask -- lint`).
//!
//! Five rules, tuned to the invariants the containers and shims rely on:
//!
//! 1. **SAFETY** — every `unsafe { .. }` block and `unsafe impl` must carry a
//!    `// SAFETY:` comment in the contiguous comment run directly above it
//!    (or on the same line), and every `pub unsafe fn` must document its
//!    contract with a `# Safety` doc section.
//! 2. **ORDERING** — in `crates/containers`, `crates/mem` and `crates/rpc`,
//!    every *mutating* atomic access (`store`, `swap`, `fetch_*`,
//!    `compare_exchange*`) that uses `Ordering::Relaxed` must carry an
//!    `// ORDERING:` comment above the statement explaining why relaxed is
//!    enough. Plain loads are exempt; `#[cfg(test)]` modules are exempt.
//! 3. **EPOCH** — a raw `Shared::deref()` call in epoch-using code must sit
//!    in a function that visibly holds a guard (`epoch::pin()`, a `Guard`
//!    parameter/binding, or `epoch::unprotected()`), so the pointee cannot
//!    be reclaimed out from under the reference. The shim defining the API
//!    (`shims/crossbeam`) is exempt.
//! 4. **DISPATCH** — container modules (`crates/core/src/`) must route every
//!    RPC issue through the procedural-access engine: direct
//!    `RpcClient`/`invoke*`/coalescer calls are only allowed in
//!    `crates/core/src/dispatch.rs`. This keeps locality, degradation, retry
//!    and cost accounting on the one shared path.
//! 5. **METRIC** — every metric name registered through a telemetry registry
//!    handle (`.counter("..")`, `.gauge("..")`, `.histogram("..")`) must
//!    follow the `hcl_<crate>_<name>` convention: `hcl_` prefix, a non-empty
//!    crate segment, a non-empty metric segment, characters `[a-z0-9_]`.
//!    Format-string placeholders (`{}`) count as a valid segment filler.
//!    Test modules and integration-test trees are exempt (negative-control
//!    tests register malformed names on purpose).
//!
//! The pass is line-based on purpose: it runs in milliseconds, has no
//! dependencies, and the few syntactic shapes it must understand are fixed
//! by this workspace's style (rustfmt-formatted, comment-above-statement).

use std::fmt;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Directories scanned relative to the workspace root. `xtask` itself is
/// excluded: this file's rule strings and test fixtures would self-match
/// (the scanner is line-based, not string-literal-aware).
const SCAN_ROOTS: &[&str] = &["crates", "shims", "src", "tests", "examples", "benches"];

/// Path fragments where the ORDERING rule applies.
const ORDERING_PATHS: &[&str] = &["crates/containers/", "crates/mem/", "crates/rpc/"];

/// Path fragments exempt from the EPOCH rule (the shim defines the API).
const EPOCH_EXEMPT_PATHS: &[&str] = &["shims/crossbeam/"];

/// Atomic-mutation tokens for the ORDERING rule.
const MUTATION_TOKENS: &[&str] = &[
    "store(",
    "swap(",
    "compare_exchange",
    "fetch_add(",
    "fetch_sub(",
    "fetch_and(",
    "fetch_or(",
    "fetch_xor(",
    "fetch_max(",
    "fetch_min(",
    "fetch_update(",
];

/// The DISPATCH rule's scope: container modules of the core crate.
const DISPATCH_PATH: &str = "crates/core/src/";

/// The one file in scope allowed to talk to the RPC layer directly.
const DISPATCH_ENGINE_FILE: &str = "crates/core/src/dispatch.rs";

/// Tokens that indicate a direct RPC issue path. Deliberately precise
/// (`rank.invoke(`, not `.invoke(`): history recorders expose an `invoke`
/// method too, and those calls are fine anywhere.
const DISPATCH_TOKENS: &[&str] = &[
    "rank.invoke(",
    ".invoke_async(",
    ".invoke_coalesced(",
    ".invoke_batch",
    ".invoke_raw(",
    ".invoke_chain(",
    "RpcClient",
    ".coalescer(",
    ".client()",
];

/// Registry-handle calls whose first argument is a metric name. The METRIC
/// rule validates the string literal that follows each of these.
const METRIC_TOKENS: &[&str] = &[".counter(", ".gauge(", ".histogram("];

/// One lint violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    pub rule: Rule,
    pub message: String,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rule {
    Safety,
    Ordering,
    Epoch,
    Dispatch,
    Metric,
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Rule::Safety => write!(f, "SAFETY"),
            Rule::Ordering => write!(f, "ORDERING"),
            Rule::Epoch => write!(f, "EPOCH"),
            Rule::Dispatch => write!(f, "DISPATCH"),
            Rule::Metric => write!(f, "METRIC"),
        }
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.file, self.line, self.rule, self.message)
    }
}

/// Entry point for `xtask lint`.
pub fn run() -> ExitCode {
    let root = workspace_root();
    let mut files = Vec::new();
    for dir in SCAN_ROOTS {
        collect_rs_files(&root.join(dir), &mut files);
    }
    files.sort();
    let mut findings = Vec::new();
    let mut scanned = 0usize;
    for path in &files {
        let Ok(content) = std::fs::read_to_string(path) else {
            continue;
        };
        scanned += 1;
        let rel = path.strip_prefix(&root).unwrap_or(path).display().to_string();
        findings.extend(check_file(&rel, &content));
    }
    for f in &findings {
        eprintln!("{f}");
    }
    if findings.is_empty() {
        println!("xtask lint: {scanned} files clean");
        ExitCode::SUCCESS
    } else {
        eprintln!("xtask lint: {} finding(s) in {scanned} files", findings.len());
        ExitCode::FAILURE
    }
}

/// The workspace root is the parent of this crate's manifest dir.
fn workspace_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest.parent().map(Path::to_path_buf).unwrap_or(manifest)
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            if path.file_name().is_some_and(|n| n == "target") {
                continue;
            }
            collect_rs_files(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// Run all three rules over one file. `rel` is the workspace-relative path
/// (forward slashes), used for the per-rule path filters.
pub fn check_file(rel: &str, content: &str) -> Vec<Finding> {
    let lines: Vec<&str> = content.lines().collect();
    let mut findings = Vec::new();
    check_safety(rel, &lines, &mut findings);
    // Integration-test trees (`<crate>/tests/`) are exempt from ORDERING the
    // same way `#[cfg(test)]` modules are: test counters need no rationale.
    if ORDERING_PATHS.iter().any(|p| rel.contains(p)) && !rel.contains("/tests/") {
        check_ordering(rel, &lines, &mut findings);
    }
    if content.contains("epoch") && !EPOCH_EXEMPT_PATHS.iter().any(|p| rel.contains(p)) {
        check_epoch(rel, &lines, &mut findings);
    }
    if rel.contains(DISPATCH_PATH) && !rel.ends_with("dispatch.rs") {
        check_dispatch(rel, &lines, &mut findings);
    }
    // Integration-test trees register malformed names as negative controls.
    if !rel.starts_with("tests/") && !rel.contains("/tests/") {
        check_metric(rel, &lines, &mut findings);
    }
    findings
}

/// True when `line` is purely a comment (incl. doc comments) or attribute.
fn is_comment_or_attr(line: &str) -> bool {
    let t = line.trim_start();
    t.starts_with("//") || t.starts_with("#[") || t.starts_with("#!")
}

/// Walk the contiguous comment/attribute run directly above `idx` and report
/// whether any of it (or the line itself) contains `needle`.
fn annotated_above(lines: &[&str], idx: usize, needle: &str) -> bool {
    if lines[idx].contains(needle) {
        return true;
    }
    let mut i = idx;
    while i > 0 {
        i -= 1;
        if !is_comment_or_attr(lines[i]) {
            break;
        }
        if lines[i].contains(needle) {
            return true;
        }
    }
    false
}

/// Rule 1: `unsafe` blocks/impls need `// SAFETY:`, `pub unsafe fn` needs a
/// `# Safety` doc section.
fn check_safety(rel: &str, lines: &[&str], findings: &mut Vec<Finding>) {
    for (idx, raw) in lines.iter().enumerate() {
        let line = strip_line_comment(raw);
        if line.contains("unsafe impl") {
            if !annotated_above(lines, idx, "SAFETY:") {
                findings.push(Finding {
                    file: rel.to_string(),
                    line: idx + 1,
                    rule: Rule::Safety,
                    message: "`unsafe impl` without a `// SAFETY:` comment".into(),
                });
            }
        } else if line.contains("unsafe fn") {
            if line.contains("pub unsafe fn") && !annotated_above(lines, idx, "# Safety") {
                findings.push(Finding {
                    file: rel.to_string(),
                    line: idx + 1,
                    rule: Rule::Safety,
                    message: "`pub unsafe fn` without a `# Safety` doc section".into(),
                });
            }
        } else if line.contains("unsafe {") || line.trim_end().ends_with("unsafe") {
            // `unsafe {` inline, or an `unsafe` keyword ending the line with
            // the block opening on the next (rustfmt wraps long statements).
            if !annotated_above(lines, idx, "SAFETY:") {
                findings.push(Finding {
                    file: rel.to_string(),
                    line: idx + 1,
                    rule: Rule::Safety,
                    message: "`unsafe` block without a `// SAFETY:` comment".into(),
                });
            }
        }
    }
}

/// Drop a trailing `// ..` comment so comment text never triggers keyword
/// matches. (Does not attempt string-literal awareness; the scanned code
/// does not put `unsafe {` or atomic calls inside string literals.)
fn strip_line_comment(line: &str) -> &str {
    match line.find("//") {
        Some(pos) => &line[..pos],
        None => line,
    }
}

/// Rule 2: relaxed atomic mutations need `// ORDERING:` above the statement.
fn check_ordering(rel: &str, lines: &[&str], findings: &mut Vec<Finding>) {
    // Everything from the `#[cfg(test)] mod ..` marker on is test
    // scaffolding — counters in tests do not need ordering rationale. (A
    // lone `#[cfg(test)]` on a field or helper does NOT end the scan.)
    let test_start = lines
        .iter()
        .enumerate()
        .position(|(i, l)| {
            l.contains("#[cfg(test)]")
                && lines.get(i + 1).is_some_and(|n| n.trim_start().starts_with("mod "))
        })
        .unwrap_or(lines.len());
    for idx in 0..test_start.min(lines.len()) {
        if !strip_line_comment(lines[idx]).contains("Ordering::Relaxed") {
            continue;
        }
        let start = statement_start(lines, idx);
        let stmt: String = lines[start..=idx].join("\n");
        let stmt = strip_block_comments(&stmt);
        if !MUTATION_TOKENS.iter().any(|t| stmt.contains(t)) {
            continue; // plain load (or constructor): exempt
        }
        if !annotated_above(lines, start, "ORDERING:") {
            findings.push(Finding {
                file: rel.to_string(),
                line: idx + 1,
                rule: Rule::Ordering,
                message: "relaxed atomic mutation without an `// ORDERING:` comment".into(),
            });
        }
    }
}

/// Remove `// ..` comment tails from a multi-line statement snippet.
fn strip_block_comments(stmt: &str) -> String {
    stmt.lines().map(strip_line_comment).collect::<Vec<_>>().join("\n")
}

/// Walk upward to the first line of the statement containing line `idx`:
/// stop below a blank line, a comment/attribute line, or a line ending in
/// `;`, `{` or `}` (the previous statement).
fn statement_start(lines: &[&str], idx: usize) -> usize {
    let mut start = idx;
    while start > 0 {
        let prev = lines[start - 1].trim();
        if prev.is_empty()
            || is_comment_or_attr(prev)
            || prev.ends_with(';')
            || prev.ends_with('{')
            || prev.ends_with('}')
        {
            break;
        }
        start -= 1;
    }
    start
}

/// Rule 3: `.deref()` in epoch-using code must be inside a function that
/// visibly holds a guard.
fn check_epoch(rel: &str, lines: &[&str], findings: &mut Vec<Finding>) {
    for (idx, raw) in lines.iter().enumerate() {
        let line = strip_line_comment(raw);
        if !line.contains(".deref()") {
            continue;
        }
        // Find the enclosing fn signature.
        let fn_line = (0..=idx).rev().find(|&i| {
            let t = lines[i].trim_start();
            t.starts_with("fn ")
                || t.starts_with("pub fn ")
                || t.starts_with("pub(crate) fn ")
                || t.starts_with("unsafe fn ")
                || t.starts_with("pub unsafe fn ")
                || t.starts_with("pub const fn ")
                || t.starts_with("const fn ")
        });
        let Some(fn_line) = fn_line else { continue };
        let region = lines[fn_line..=idx].join("\n");
        let has_guard = region.contains("Guard")
            || region.contains("guard")
            || region.contains("pin()")
            || region.contains("unprotected");
        if !has_guard {
            findings.push(Finding {
                file: rel.to_string(),
                line: idx + 1,
                rule: Rule::Epoch,
                message: "raw `Shared::deref()` with no guard in scope".into(),
            });
        }
    }
}

/// Rule 4: container modules may not issue RPCs directly — every remote op
/// must go through `dispatch::Dispatcher` (the engine file is the single
/// exemption, by name).
fn check_dispatch(rel: &str, lines: &[&str], findings: &mut Vec<Finding>) {
    debug_assert!(!rel.ends_with(DISPATCH_ENGINE_FILE) || rel.contains("dispatch.rs"));
    for (idx, raw) in lines.iter().enumerate() {
        let line = strip_line_comment(raw);
        if let Some(tok) = DISPATCH_TOKENS.iter().find(|t| line.contains(**t)) {
            findings.push(Finding {
                file: rel.to_string(),
                line: idx + 1,
                rule: Rule::Dispatch,
                message: format!(
                    "direct RPC issue (`{tok}`) in a container module; \
                     route the op through `dispatch::Dispatcher`"
                ),
            });
        }
    }
}

/// Mirror of `hcl_telemetry::valid_metric_name`: `hcl_` prefix, non-empty
/// crate segment, non-empty metric segment, characters `[a-z0-9_]`. Kept in
/// sync by the registry's own runtime assertion — a name that slips past one
/// check trips the other.
fn valid_metric_name(name: &str) -> bool {
    if name.is_empty()
        || !name.bytes().all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'_')
    {
        return false;
    }
    match name.strip_prefix("hcl_").and_then(|rest| rest.split_once('_')) {
        Some((krate, metric)) => !krate.is_empty() && !metric.is_empty(),
        None => false,
    }
}

/// Replace `format!` placeholders (`{..}`) with a legal filler character so
/// the static shape of a dynamic name is still checkable:
/// `"hcl_core_op_{}_ns"` validates as `hcl_core_op_x_ns`.
fn fill_placeholders(lit: &str) -> String {
    let mut out = String::with_capacity(lit.len());
    let mut depth = 0usize;
    for c in lit.chars() {
        match c {
            '{' => {
                if depth == 0 {
                    out.push('x');
                }
                depth += 1;
            }
            '}' => depth = depth.saturating_sub(1),
            _ if depth == 0 => out.push(c),
            _ => {}
        }
    }
    out
}

/// Rule 5: metric names registered through `.counter(` / `.gauge(` /
/// `.histogram(` calls must follow `hcl_<crate>_<name>`. Test modules are
/// exempt the same way ORDERING exempts them.
fn check_metric(rel: &str, lines: &[&str], findings: &mut Vec<Finding>) {
    let test_start = lines
        .iter()
        .enumerate()
        .position(|(i, l)| {
            l.contains("#[cfg(test)]")
                && lines.get(i + 1).is_some_and(|n| n.trim_start().starts_with("mod "))
        })
        .unwrap_or(lines.len());
    for idx in 0..test_start.min(lines.len()) {
        let line = strip_line_comment(lines[idx]);
        for tok in METRIC_TOKENS {
            let Some(pos) = line.find(tok) else { continue };
            // The name must be (or start with) a string literal on the same
            // line; handles taken via variables are the registry's runtime
            // assertion's problem.
            let rest = &line[pos + tok.len()..];
            let Some(open) = rest.find('"') else { continue };
            let lit = &rest[open + 1..];
            let Some(close) = lit.find('"') else { continue };
            let name = fill_placeholders(&lit[..close]);
            if !valid_metric_name(&name) {
                findings.push(Finding {
                    file: rel.to_string(),
                    line: idx + 1,
                    rule: Rule::Metric,
                    message: format!(
                        "metric name {:?} violates the `hcl_<crate>_<name>` convention",
                        &lit[..close]
                    ),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules(rel: &str, src: &str) -> Vec<Rule> {
        check_file(rel, src).into_iter().map(|f| f.rule).collect()
    }

    #[test]
    fn annotated_unsafe_block_passes() {
        let src = "fn f(p: *const u8) -> u8 {\n    // SAFETY: caller guarantees p is valid.\n    unsafe { *p }\n}\n";
        assert!(rules("crates/x/src/lib.rs", src).is_empty());
    }

    #[test]
    fn deleting_the_safety_comment_fails() {
        // The negative control for the acceptance criterion: same code with
        // the SAFETY comment removed must produce a finding.
        let src = "fn f(p: *const u8) -> u8 {\n    unsafe { *p }\n}\n";
        assert_eq!(rules("crates/x/src/lib.rs", src), vec![Rule::Safety]);
    }

    #[test]
    fn multi_line_comment_run_counts() {
        let src = "fn f(p: *const u8) -> u8 {\n    // SAFETY: a long justification that\n    // wraps across several lines before\n    // the block itself.\n    unsafe { *p }\n}\n";
        assert!(rules("crates/x/src/lib.rs", src).is_empty());
    }

    #[test]
    fn unannotated_unsafe_impl_fails() {
        let src = "struct X;\nunsafe impl Send for X {}\n";
        assert_eq!(rules("crates/x/src/lib.rs", src), vec![Rule::Safety]);
        let ok = "struct X;\n// SAFETY: X owns no thread-affine state.\nunsafe impl Send for X {}\n";
        assert!(rules("crates/x/src/lib.rs", ok).is_empty());
    }

    #[test]
    fn pub_unsafe_fn_needs_safety_docs() {
        let bad = "/// Does a thing.\npub unsafe fn f() {}\n";
        assert_eq!(rules("crates/x/src/lib.rs", bad), vec![Rule::Safety]);
        let ok = "/// Does a thing.\n///\n/// # Safety\n/// Caller must hold the lock.\npub unsafe fn f() {}\n";
        assert!(rules("crates/x/src/lib.rs", ok).is_empty());
    }

    #[test]
    fn relaxed_store_needs_ordering_comment_in_covered_paths() {
        let bad = "fn f(a: &AtomicUsize) {\n    a.store(1, Ordering::Relaxed);\n}\n";
        assert_eq!(rules("crates/containers/src/x.rs", bad), vec![Rule::Ordering]);
        // Deleting the comment is the failure mode; with it, clean.
        let ok = "fn f(a: &AtomicUsize) {\n    // ORDERING: statistic only.\n    a.store(1, Ordering::Relaxed);\n}\n";
        assert!(rules("crates/containers/src/x.rs", ok).is_empty());
        // Outside the covered paths the rule does not apply.
        assert!(rules("crates/fabric/src/x.rs", bad).is_empty());
    }

    #[test]
    fn relaxed_load_is_exempt() {
        let src = "fn f(a: &AtomicUsize) -> usize {\n    a.load(Ordering::Relaxed)\n}\n";
        assert!(rules("crates/mem/src/x.rs", src).is_empty());
    }

    #[test]
    fn multiline_compare_exchange_relaxed_failure_flagged() {
        let bad = concat!(
            "fn f(a: &AtomicUsize) {\n",
            "    let _ = a.compare_exchange(\n",
            "        0,\n",
            "        1,\n",
            "        Ordering::AcqRel,\n",
            "        Ordering::Relaxed,\n",
            "    );\n",
            "}\n"
        );
        assert_eq!(rules("crates/rpc/src/x.rs", bad), vec![Rule::Ordering]);
        let ok = concat!(
            "fn f(a: &AtomicUsize) {\n",
            "    // ORDERING: failure value is discarded; retry reloads.\n",
            "    let _ = a.compare_exchange(\n",
            "        0,\n",
            "        1,\n",
            "        Ordering::AcqRel,\n",
            "        Ordering::Relaxed,\n",
            "    );\n",
            "}\n"
        );
        assert!(rules("crates/rpc/src/x.rs", ok).is_empty());
    }

    #[test]
    fn test_modules_are_exempt_from_ordering() {
        let src = concat!(
            "#[cfg(test)]\n",
            "mod tests {\n",
            "    fn f(a: &AtomicUsize) {\n",
            "        a.fetch_add(1, Ordering::Relaxed);\n",
            "    }\n",
            "}\n"
        );
        assert!(rules("crates/containers/src/x.rs", src).is_empty());
    }

    #[test]
    fn deref_without_guard_flagged() {
        let bad = concat!(
            "use crossbeam::epoch::Shared;\n",
            "fn f(s: Shared<'_, u8>) -> u8 {\n",
            "    // SAFETY: trust me.\n",
            "    *unsafe { s.deref() }\n",
            "}\n"
        );
        assert_eq!(rules("crates/containers/src/x.rs", bad), vec![Rule::Epoch]);
        let ok = concat!(
            "use crossbeam::epoch::{self, Shared};\n",
            "fn f(s: Shared<'_, u8>) -> u8 {\n",
            "    let guard = epoch::pin();\n",
            "    // SAFETY: pinned above.\n",
            "    *unsafe { s.deref() }\n",
            "}\n"
        );
        assert!(rules("crates/containers/src/x.rs", ok).is_empty());
    }

    #[test]
    fn epoch_rule_skipped_outside_epoch_files() {
        // `.deref()` on ordinary smart pointers in non-epoch code is fine.
        let src = "fn f(b: &Box<u8>) -> u8 {\n    *std::ops::Deref::deref(b)\n}\n";
        assert!(rules("crates/runtime/src/x.rs", src).is_empty());
    }

    #[test]
    fn direct_rpc_issue_in_container_module_flagged() {
        // The negative control for the dispatch-engine acceptance criterion:
        // a container module bypassing the Dispatcher must produce a finding.
        let bad = concat!(
            "fn f(&self) -> HclResult<bool> {\n",
            "    Ok(self.rank.invoke(ep, fn_id, &args)?)\n",
            "}\n"
        );
        assert_eq!(rules("crates/core/src/queue.rs", bad), vec![Rule::Dispatch]);
        let coalesced = "fn f(&self) {\n    let _ = self.rank.invoke_coalesced(ep, id, &v);\n}\n";
        assert_eq!(rules("crates/core/src/unordered.rs", coalesced), vec![Rule::Dispatch]);
        // One finding per offending line, even when several tokens match.
        let batch = "fn f(&self) {\n    let _ = self.rank.client().invoke_batch_slices(ep, it);\n}\n";
        assert_eq!(rules("crates/core/src/ordered.rs", batch), vec![Rule::Dispatch]);
    }

    #[test]
    fn dispatch_engine_file_is_exempt() {
        // The same issue path inside the engine itself is the point.
        let src = concat!(
            "fn f(&self) -> HclResult<bool> {\n",
            "    Ok(self.rank.invoke(ep, fn_id, &args)?)\n",
            "}\n"
        );
        assert!(rules("crates/core/src/dispatch.rs", src).is_empty());
    }

    #[test]
    fn well_formed_metric_names_pass() {
        let src = concat!(
            "fn f(reg: &Registry) {\n",
            "    let c = reg.counter(\"hcl_rpc_slot_waits\");\n",
            "    let g = reg.gauge(\"hcl_fabric_sends\");\n",
            "    let h = reg.histogram(\"hcl_core_op_latency_remote_ns\");\n",
            "    let d = reg.histogram(&format!(\"hcl_core_op_{}_ns\", name));\n",
            "    drop((c, g, h, d));\n",
            "}\n"
        );
        assert!(rules("crates/core/src/telemetry.rs", src).is_empty());
    }

    #[test]
    fn malformed_metric_names_flagged() {
        // The negative controls for the METRIC acceptance criterion: missing
        // prefix, missing metric segment, and illegal characters must each
        // produce a finding.
        let no_prefix = "fn f(r: &Registry) {\n    let _ = r.counter(\"rpc_slot_waits\");\n}\n";
        assert_eq!(rules("crates/rpc/src/client.rs", no_prefix), vec![Rule::Metric]);
        let no_metric = "fn f(r: &Registry) {\n    let _ = r.gauge(\"hcl_rpc\");\n}\n";
        assert_eq!(rules("crates/rpc/src/client.rs", no_metric), vec![Rule::Metric]);
        let bad_chars = "fn f(r: &Registry) {\n    let _ = r.histogram(\"hcl_core_Op-Lat\");\n}\n";
        assert_eq!(rules("crates/core/src/telemetry.rs", bad_chars), vec![Rule::Metric]);
    }

    #[test]
    fn metric_rule_exempts_test_modules_and_test_trees() {
        let in_mod = concat!(
            "#[cfg(test)]\n",
            "mod tests {\n",
            "    fn f(r: &Registry) {\n",
            "        let _ = r.counter(\"bogus_metric\");\n",
            "    }\n",
            "}\n"
        );
        assert!(rules("crates/telemetry/src/lib.rs", in_mod).is_empty());
        let bad = "fn f(r: &Registry) {\n    let _ = r.counter(\"bogus_metric\");\n}\n";
        assert!(rules("crates/telemetry/tests/alloc_counting.rs", bad).is_empty());
        assert!(rules("tests/fault_injection.rs", bad).is_empty());
    }

    #[test]
    fn dispatch_rule_allows_recorder_invoke_and_other_crates() {
        // History recorders also expose `invoke`; the token set must not
        // match `r.invoke(op)`.
        let recorder = "fn f(&self) {\n    let tok = r.invoke(op);\n    drop(tok);\n}\n";
        assert!(rules("crates/core/src/unordered.rs", recorder).is_empty());
        // Outside the container modules the rule does not apply at all.
        let raw = "fn f(rank: &Rank) {\n    let _ = rank.invoke(ep, 0, &());\n}\n";
        assert!(rules("crates/bench/src/bin/pr3.rs", raw).is_empty());
        assert!(rules("tests/end_to_end.rs", raw).is_empty());
    }
}
