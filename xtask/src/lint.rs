//! Concurrency-hygiene lint pass (`cargo run -p xtask -- lint`).
//!
//! The pass parses each file once into a [`FileModel`] — a character-level
//! scan that separates *code* from comment text and string/char-literal
//! contents (line comments, nested block comments, plain/byte/raw strings,
//! and a char-vs-lifetime heuristic). All structural rules then run on the
//! stripped code view, so tokens inside strings or comments can never
//! trigger (or suppress) a finding, and annotations are matched against the
//! comment view only. Statement spans are recovered by bracket-depth
//! tracking, and `#[cfg(test)] mod` scopes are tracked by brace depth so
//! exemptions end where the module ends.
//!
//! Six rules, tuned to the invariants the containers and shims rely on:
//!
//! 1. **SAFETY** — every `unsafe { .. }` block and `unsafe impl` must carry a
//!    `// SAFETY:` comment in the contiguous comment run directly above it
//!    (or on the same line), and every `pub unsafe fn` must document its
//!    contract with a `# Safety` doc section. The inverse direction is also
//!    checked: a `// SAFETY:` comment whose annotated statement contains no
//!    `unsafe` at all is reported as stale (the unsafe code was removed or
//!    moved, the justification stayed behind).
//! 2. **ORDERING** — in `crates/containers`, `crates/mem`, `crates/rpc`,
//!    `crates/telemetry` and `crates/bench`, every *mutating* atomic access
//!    (`store`, `swap`, `fetch_*`, `compare_exchange*`) that uses
//!    `Ordering::Relaxed` must carry an `// ORDERING:` comment above the
//!    statement explaining why relaxed is enough. Plain loads are exempt;
//!    `#[cfg(test)]` modules are exempt. Additionally, every `// ORDERING:`
//!    annotation is cross-checked against the statement it documents: when
//!    the comment names one or more orderings (`Relaxed`, `Acquire`,
//!    `Release`, `AcqRel`, `SeqCst`) and the statement's actual `Ordering::`
//!    arguments share none of them, the comment is reported as stale — it
//!    claims a protocol the code no longer implements. Comments that name
//!    at least one ordering the statement really uses pass (a success/
//!    failure CAS pair legitimately mentions both sides).
//! 3. **EPOCH** — a raw `Shared::deref()` call in epoch-using code must sit
//!    in a function that visibly holds a guard (`epoch::pin()`, a `Guard`
//!    parameter/binding, or `epoch::unprotected()`), so the pointee cannot
//!    be reclaimed out from under the reference. The shim defining the API
//!    (`shims/crossbeam`) is exempt.
//! 4. **DISPATCH** — container modules (`crates/core/src/`) must route every
//!    RPC issue through the procedural-access engine: direct
//!    `RpcClient`/`invoke*`/coalescer calls are only allowed in
//!    `crates/core/src/dispatch.rs`. This keeps locality, degradation, retry
//!    and cost accounting on the one shared path.
//! 5. **METRIC** — every metric name registered through a telemetry registry
//!    handle (`.counter("..")`, `.gauge("..")`, `.histogram("..")`) must
//!    follow the `hcl_<crate>_<name>` convention: `hcl_` prefix, a non-empty
//!    crate segment, a non-empty metric segment, characters `[a-z0-9_]`.
//!    Format-string placeholders (`{}`) count as a valid segment filler.
//!    Test modules and integration-test trees are exempt (negative-control
//!    tests register malformed names on purpose). This rule alone reads the
//!    string-preserving view — the metric *name* lives inside the literal.
//! 6. **MEMBERSHIP** — in `crates/core/src/` and `crates/runtime/src/`,
//!    ownership may only be resolved through the epoch-versioned partition
//!    map (`PartitionMap::owner_of_hash` / `owner_of_vpart`). Hand-rolled
//!    modulo owner math — `% world_size()`, `% servers.len()`,
//!    `% members.len()`, `% nparts`, `% n_ranks`, with any receiver path —
//!    silently disagrees with the live map the moment a rank joins, leaves,
//!    or drains (the exact bug class of the old per-container `owner_of`
//!    copies). The map implementation itself (`membership.rs`) is the single
//!    exemption, by name; `#[cfg(test)]` modules are exempt as usual.

use std::collections::HashSet;
use std::fmt;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Directories scanned relative to the workspace root. `xtask` itself is
/// excluded: its rule-token string constants (e.g. the METRIC registry
/// tokens) would self-match the string-preserving METRIC scan.
const SCAN_ROOTS: &[&str] = &["crates", "shims", "src", "tests", "examples", "benches"];

/// Path fragments where the ORDERING rule applies.
const ORDERING_PATHS: &[&str] = &[
    "crates/containers/",
    "crates/mem/",
    "crates/rpc/",
    "crates/telemetry/",
    "crates/bench/",
];

/// Path fragments exempt from the EPOCH rule (the shim defines the API).
const EPOCH_EXEMPT_PATHS: &[&str] = &["shims/crossbeam/"];

/// Atomic-mutation tokens for the ORDERING rule.
const MUTATION_TOKENS: &[&str] = &[
    "store(",
    "swap(",
    "compare_exchange",
    "fetch_add(",
    "fetch_sub(",
    "fetch_and(",
    "fetch_or(",
    "fetch_xor(",
    "fetch_max(",
    "fetch_min(",
    "fetch_update(",
];

/// The five memory-ordering names, used by the ORDERING cross-check. Index
/// doubles as the bit position in the claimed/actual sets.
const ORDERING_NAMES: [&str; 5] = ["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// The DISPATCH rule's scope: container modules of the core crate.
const DISPATCH_PATH: &str = "crates/core/src/";

/// Tokens that indicate a direct RPC issue path. Deliberately precise
/// (`rank.invoke(`, not `.invoke(`): history recorders expose an `invoke`
/// method too, and those calls are fine anywhere.
const DISPATCH_TOKENS: &[&str] = &[
    "rank.invoke(",
    ".invoke_async(",
    ".invoke_coalesced(",
    ".invoke_batch",
    ".invoke_raw(",
    ".invoke_chain(",
    "RpcClient",
    ".coalescer(",
    ".client()",
];

/// Registry-handle calls whose first argument is a metric name. The METRIC
/// rule validates the string literal that follows each of these.
const METRIC_TOKENS: &[&str] = &[".counter(", ".gauge(", ".histogram("];

/// Path fragments where the MEMBERSHIP rule applies: the ownership stack.
const MEMBERSHIP_PATHS: &[&str] = &["crates/core/src/", "crates/runtime/src/"];

/// Modulo denominators that constitute hand-rolled owner math. Matched as the
/// trailing segment of the identifier path following a `%` operator, so
/// `hash % self.core.servers.len()` and `k % world_size()` both trigger while
/// `h % self.shards.len()` (local cache sharding) does not.
const OWNER_MATH_DENOMS: &[&str] = &[
    "world_size()",
    "servers.len()",
    "members.len()",
    "nparts",
    "n_ranks",
    "num_servers",
];

/// One lint violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    pub rule: Rule,
    pub message: String,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rule {
    Safety,
    Ordering,
    Epoch,
    Dispatch,
    Metric,
    Membership,
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Rule::Safety => write!(f, "SAFETY"),
            Rule::Ordering => write!(f, "ORDERING"),
            Rule::Epoch => write!(f, "EPOCH"),
            Rule::Dispatch => write!(f, "DISPATCH"),
            Rule::Metric => write!(f, "METRIC"),
            Rule::Membership => write!(f, "MEMBERSHIP"),
        }
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.file, self.line, self.rule, self.message)
    }
}

/// Entry point for `xtask lint`.
pub fn run() -> ExitCode {
    let root = workspace_root();
    let mut files = Vec::new();
    for dir in SCAN_ROOTS {
        collect_rs_files(&root.join(dir), &mut files);
    }
    files.sort();
    let mut findings = Vec::new();
    let mut scanned = 0usize;
    for path in &files {
        let Ok(content) = std::fs::read_to_string(path) else {
            continue;
        };
        scanned += 1;
        let rel = path.strip_prefix(&root).unwrap_or(path).display().to_string();
        findings.extend(check_file(&rel, &content));
    }
    for f in &findings {
        eprintln!("{f}");
    }
    if findings.is_empty() {
        println!("xtask lint: {scanned} files clean");
        ExitCode::SUCCESS
    } else {
        eprintln!("xtask lint: {} finding(s) in {scanned} files", findings.len());
        ExitCode::FAILURE
    }
}

/// The workspace root is the parent of this crate's manifest dir.
fn workspace_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest.parent().map(Path::to_path_buf).unwrap_or(manifest)
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            if path.file_name().is_some_and(|n| n == "target") {
                continue;
            }
            collect_rs_files(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

// ---------------------------------------------------------------------------
// FileModel — the token/statement view every rule runs on
// ---------------------------------------------------------------------------

/// Scanner state for [`FileModel::parse`].
#[derive(Clone, Copy, PartialEq)]
enum St {
    Code,
    LineComment,
    /// Nesting depth of `/* .. */`.
    BlockComment(u32),
    Str,
    /// Number of `#`s that close the raw string.
    RawStr(u32),
    CharLit,
}

/// One file, split into per-line views by a single character-level pass.
struct FileModel {
    /// Code with comments removed and string/char contents blanked
    /// (delimiters kept). Structural rules match tokens here.
    code: Vec<String>,
    /// Code with comments removed but string contents preserved. Only the
    /// METRIC rule reads this (the name lives inside the literal).
    text: Vec<String>,
    /// Comment text (line + block, markers stripped). Annotation lookups
    /// match here, so `SAFETY:` in a string cannot satisfy the rule.
    comments: Vec<String>,
    /// True for lines inside a `#[cfg(test)] mod` scope (brace-tracked).
    test_scope: Vec<bool>,
}

/// True when a raw (or raw byte) string literal starts at `i`; returns the
/// prefix length up to and including the opening quote, and the `#` count.
fn raw_prefix(chars: &[char], i: usize) -> Option<(usize, u32)> {
    let mut j = i;
    if chars.get(j) == Some(&'b') {
        j += 1;
    }
    if chars.get(j) != Some(&'r') {
        return None;
    }
    j += 1;
    let mut hashes = 0u32;
    while chars.get(j) == Some(&'#') {
        j += 1;
        hashes += 1;
    }
    (chars.get(j) == Some(&'"')).then_some((j - i + 1, hashes))
}

fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

impl FileModel {
    fn parse(content: &str) -> Self {
        let chars: Vec<char> = content.chars().collect();
        let mut code = vec![String::new()];
        let mut text = vec![String::new()];
        let mut comments = vec![String::new()];
        let mut st = St::Code;
        let mut i = 0;
        while i < chars.len() {
            let c = chars[i];
            if c == '\n' {
                if st == St::LineComment {
                    st = St::Code;
                }
                code.push(String::new());
                text.push(String::new());
                comments.push(String::new());
                i += 1;
                continue;
            }
            let next = chars.get(i + 1).copied();
            match st {
                St::Code => {
                    if c == '/' && next == Some('/') {
                        st = St::LineComment;
                        i += 2;
                    } else if c == '/' && next == Some('*') {
                        st = St::BlockComment(1);
                        i += 2;
                    } else if let Some((plen, hashes)) = (c == 'r' || c == 'b')
                        .then(|| raw_prefix(&chars, i))
                        .flatten()
                        .filter(|_| !(i > 0 && is_ident_char(chars[i - 1])))
                    {
                        for k in 0..plen {
                            code.last_mut().unwrap().push(chars[i + k]);
                            text.last_mut().unwrap().push(chars[i + k]);
                        }
                        st = St::RawStr(hashes);
                        i += plen;
                    } else if c == '"' || (c == 'b' && next == Some('"')) {
                        if c == 'b' {
                            code.last_mut().unwrap().push('b');
                            text.last_mut().unwrap().push('b');
                            i += 1;
                        }
                        code.last_mut().unwrap().push('"');
                        text.last_mut().unwrap().push('"');
                        st = St::Str;
                        i += 1;
                    } else if c == '\'' {
                        // Char literal iff `'\..'` or `'x'`; otherwise a
                        // lifetime tick, which stays plain code.
                        let char_lit =
                            next == Some('\\') || chars.get(i + 2) == Some(&'\'');
                        code.last_mut().unwrap().push('\'');
                        text.last_mut().unwrap().push('\'');
                        if char_lit {
                            st = St::CharLit;
                        }
                        i += 1;
                    } else {
                        code.last_mut().unwrap().push(c);
                        text.last_mut().unwrap().push(c);
                        i += 1;
                    }
                }
                St::LineComment => {
                    comments.last_mut().unwrap().push(c);
                    i += 1;
                }
                St::BlockComment(n) => {
                    if c == '/' && next == Some('*') {
                        st = St::BlockComment(n + 1);
                        i += 2;
                    } else if c == '*' && next == Some('/') {
                        st = if n == 1 { St::Code } else { St::BlockComment(n - 1) };
                        i += 2;
                    } else {
                        comments.last_mut().unwrap().push(c);
                        i += 1;
                    }
                }
                St::Str => {
                    if c == '\\' {
                        text.last_mut().unwrap().push(c);
                        if let Some(n) = next {
                            text.last_mut().unwrap().push(n);
                        }
                        i += 2;
                    } else if c == '"' {
                        code.last_mut().unwrap().push('"');
                        text.last_mut().unwrap().push('"');
                        st = St::Code;
                        i += 1;
                    } else {
                        text.last_mut().unwrap().push(c);
                        i += 1;
                    }
                }
                St::RawStr(hashes) => {
                    let closes = c == '"'
                        && (0..hashes as usize).all(|k| chars.get(i + 1 + k) == Some(&'#'));
                    if closes {
                        code.last_mut().unwrap().push('"');
                        text.last_mut().unwrap().push('"');
                        for _ in 0..hashes {
                            code.last_mut().unwrap().push('#');
                            text.last_mut().unwrap().push('#');
                        }
                        st = St::Code;
                        i += 1 + hashes as usize;
                    } else {
                        text.last_mut().unwrap().push(c);
                        i += 1;
                    }
                }
                St::CharLit => {
                    if c == '\\' {
                        i += 2;
                    } else if c == '\'' {
                        code.last_mut().unwrap().push('\'');
                        text.last_mut().unwrap().push('\'');
                        st = St::Code;
                        i += 1;
                    } else {
                        i += 1;
                    }
                }
            }
        }
        let test_scope = compute_test_scopes(&code);
        FileModel { code, text, comments, test_scope }
    }

    fn len(&self) -> usize {
        self.code.len()
    }

    /// Comment-only line (the code view is blank, the comment view is not).
    fn is_comment_line(&self, i: usize) -> bool {
        self.code[i].trim().is_empty() && !self.comments[i].trim().is_empty()
    }

    /// Attribute line (`#[..]` / `#![..]`).
    fn is_attr_line(&self, i: usize) -> bool {
        let t = self.code[i].trim_start();
        t.starts_with("#[") || t.starts_with("#!")
    }

    fn is_blank(&self, i: usize) -> bool {
        self.code[i].trim().is_empty() && self.comments[i].trim().is_empty()
    }
}

/// Mark every line inside a `#[cfg(test)] mod ..` scope, tracked by brace
/// depth — the exemption ends where the module's `}` closes, unlike the old
/// to-end-of-file heuristic.
fn compute_test_scopes(code: &[String]) -> Vec<bool> {
    let mut flags = vec![false; code.len()];
    let mut depth = 0i32;
    let mut test_depth: Option<i32> = None;
    let mut pending_cfg_test = false;
    for (i, line) in code.iter().enumerate() {
        if test_depth.is_some() {
            flags[i] = true;
        }
        let t = line.trim();
        if t.contains("#[cfg(test)]") {
            pending_cfg_test = true;
        } else if pending_cfg_test && t.starts_with("mod ") {
            if test_depth.is_none() {
                test_depth = Some(depth);
                flags[i] = true;
            }
            pending_cfg_test = false;
        } else if !t.is_empty() && !t.starts_with("#[") && !t.starts_with("#!") {
            pending_cfg_test = false;
        }
        for c in line.chars() {
            match c {
                '{' => depth += 1,
                '}' => {
                    depth -= 1;
                    if test_depth.is_some_and(|d| depth <= d) {
                        test_depth = None;
                    }
                }
                _ => {}
            }
        }
    }
    flags
}

/// Walk the contiguous comment/attribute run directly above `idx` (plus the
/// line's own trailing comment) looking for `needle` in comment text.
fn annotated_above(model: &FileModel, idx: usize, needle: &str) -> bool {
    if model.comments[idx].contains(needle) {
        return true;
    }
    let mut i = idx;
    while i > 0 {
        i -= 1;
        if !(model.is_comment_line(i) || model.is_attr_line(i)) {
            break;
        }
        if model.comments[i].contains(needle) {
            return true;
        }
    }
    false
}

/// First line of the statement containing line `idx`: stop below a blank
/// line, a comment/attribute line, or a line ending the previous statement.
fn statement_start(model: &FileModel, idx: usize) -> usize {
    let mut start = idx;
    while start > 0 {
        let p = start - 1;
        if model.is_blank(p) || model.is_comment_line(p) || model.is_attr_line(p) {
            break;
        }
        let prev = model.code[p].trim_end();
        if prev.ends_with(';') || prev.ends_with('{') || prev.ends_with('}') {
            break;
        }
        start -= 1;
    }
    start
}

/// Last line of the statement starting at `start`: the first line at zero
/// bracket depth ending in `;`, `{` or `}`. Capped at 40 lines.
fn statement_end(model: &FileModel, start: usize) -> usize {
    let mut depth = 0i32;
    let cap = model.len().min(start + 40);
    for i in start..cap {
        for c in model.code[i].chars() {
            match c {
                '(' | '[' => depth += 1,
                ')' | ']' => depth -= 1,
                _ => {}
            }
        }
        let t = model.code[i].trim_end();
        if depth <= 0 && (t.ends_with(';') || t.ends_with('{') || t.ends_with('}')) {
            return i;
        }
    }
    start
}

/// Bit set of [`ORDERING_NAMES`] mentioned as whole words in `text`.
fn named_orderings(text: &str) -> u8 {
    let bytes = text.as_bytes();
    let mut set = 0u8;
    for (bit, name) in ORDERING_NAMES.iter().enumerate() {
        let mut from = 0;
        while let Some(pos) = text[from..].find(name) {
            let at = from + pos;
            let before_ok = at == 0 || !is_ident_char(bytes[at - 1] as char);
            let end = at + name.len();
            let after_ok = end >= bytes.len() || !is_ident_char(bytes[end] as char);
            if before_ok && after_ok {
                set |= 1 << bit;
                break;
            }
            from = end;
        }
    }
    set
}

/// Bit set of orderings used as explicit `Ordering::X` arguments in `code`.
fn used_orderings(code: &str) -> u8 {
    let mut set = 0u8;
    for (bit, name) in ORDERING_NAMES.iter().enumerate() {
        if code.contains(&format!("Ordering::{name}")) {
            set |= 1 << bit;
        }
    }
    set
}

fn ordering_set_names(set: u8) -> String {
    let names: Vec<&str> = ORDERING_NAMES
        .iter()
        .enumerate()
        .filter(|(bit, _)| set & (1 << bit) != 0)
        .map(|(_, n)| *n)
        .collect();
    names.join(", ")
}

// ---------------------------------------------------------------------------
// Rules
// ---------------------------------------------------------------------------

/// Run all rules over one file. `rel` is the workspace-relative path
/// (forward slashes), used for the per-rule path filters.
pub fn check_file(rel: &str, content: &str) -> Vec<Finding> {
    let model = FileModel::parse(content);
    let mut findings = Vec::new();
    check_safety(rel, &model, &mut findings);
    let in_test_tree = rel.starts_with("tests/") || rel.contains("/tests/");
    // Stale-annotation checks run tree-wide (a wrong comment is wrong in any
    // crate) but skip test trees, whose fixtures misannotate on purpose.
    if !in_test_tree {
        check_stale_annotations(rel, &model, &mut findings);
    }
    // Integration-test trees (`<crate>/tests/`) are exempt from ORDERING the
    // same way `#[cfg(test)]` modules are: test counters need no rationale.
    if ORDERING_PATHS.iter().any(|p| rel.contains(p)) && !in_test_tree {
        check_ordering(rel, &model, &mut findings);
    }
    if content.contains("epoch") && !EPOCH_EXEMPT_PATHS.iter().any(|p| rel.contains(p)) {
        check_epoch(rel, &model, &mut findings);
    }
    if rel.contains(DISPATCH_PATH) && !rel.ends_with("dispatch.rs") {
        check_dispatch(rel, &model, &mut findings);
    }
    // Integration-test trees register malformed names as negative controls.
    if !in_test_tree {
        check_metric(rel, &model, &mut findings);
    }
    // The partition map implements the one legal modulo; tests (which pin
    // map-vs-modulo agreement as an invariant) are exempt like ORDERING.
    if MEMBERSHIP_PATHS.iter().any(|p| rel.contains(p))
        && !rel.ends_with("membership.rs")
        && !in_test_tree
    {
        check_membership(rel, &model, &mut findings);
    }
    findings.sort_by_key(|f| f.line);
    findings
}

/// Rule 1 (forward): `unsafe` blocks/impls need `// SAFETY:`, `pub unsafe
/// fn` needs a `# Safety` doc section.
fn check_safety(rel: &str, model: &FileModel, findings: &mut Vec<Finding>) {
    for idx in 0..model.len() {
        let line = &model.code[idx];
        if line.contains("unsafe impl") {
            if !annotated_above(model, idx, "SAFETY:") {
                findings.push(Finding {
                    file: rel.to_string(),
                    line: idx + 1,
                    rule: Rule::Safety,
                    message: "`unsafe impl` without a `// SAFETY:` comment".into(),
                });
            }
        } else if line.contains("unsafe fn") {
            if line.contains("pub unsafe fn") && !annotated_above(model, idx, "# Safety") {
                findings.push(Finding {
                    file: rel.to_string(),
                    line: idx + 1,
                    rule: Rule::Safety,
                    message: "`pub unsafe fn` without a `# Safety` doc section".into(),
                });
            }
        } else if line.contains("unsafe {") || line.trim_end().ends_with("unsafe") {
            // `unsafe {` inline, or an `unsafe` keyword ending the line with
            // the block opening on the next (rustfmt wraps long statements).
            if !annotated_above(model, idx, "SAFETY:") {
                findings.push(Finding {
                    file: rel.to_string(),
                    line: idx + 1,
                    rule: Rule::Safety,
                    message: "`unsafe` block without a `// SAFETY:` comment".into(),
                });
            }
        }
    }
}

/// Rules 1+2 (reverse): a `// SAFETY:` run above a statement with no
/// `unsafe`, or an `// ORDERING:` run whose claimed orderings share nothing
/// with the statement's actual `Ordering::` arguments, is stale.
fn check_stale_annotations(rel: &str, model: &FileModel, findings: &mut Vec<Finding>) {
    let n = model.len();
    let mut idx = 0;
    while idx < n {
        if !model.is_comment_line(idx) || model.test_scope[idx] {
            idx += 1;
            continue;
        }
        let run_start = idx;
        let mut run_end = idx;
        while run_end + 1 < n
            && (model.is_comment_line(run_end + 1) || model.is_attr_line(run_end + 1))
        {
            run_end += 1;
        }
        idx = run_end + 1;
        // The annotated statement must start directly below the run; a
        // blank line or EOF means the run is free-floating prose.
        let stmt = run_end + 1;
        if stmt >= n || model.is_blank(stmt) {
            continue;
        }
        let run_text = model.comments[run_start..=run_end].join("\n");
        let end = statement_end(model, stmt);
        let stmt_code = model.code[stmt..=end].join("\n");
        if run_text.contains("SAFETY:") && !stmt_code.contains("unsafe") {
            findings.push(Finding {
                file: rel.to_string(),
                line: run_start + 1,
                rule: Rule::Safety,
                message: "stale `// SAFETY:` comment — the annotated statement contains \
                          no `unsafe`"
                    .into(),
            });
        }
        if run_text.contains("ORDERING:") {
            let claimed = named_orderings(&run_text);
            let actual = used_orderings(&stmt_code);
            if claimed != 0 && actual != 0 && claimed & actual == 0 {
                findings.push(Finding {
                    file: rel.to_string(),
                    line: run_start + 1,
                    rule: Rule::Ordering,
                    message: format!(
                        "stale `// ORDERING:` comment — claims {} but the statement \
                         uses {}",
                        ordering_set_names(claimed),
                        ordering_set_names(actual)
                    ),
                });
            }
        }
    }
}

/// Rule 2 (forward): relaxed atomic mutations need `// ORDERING:` above the
/// statement.
fn check_ordering(rel: &str, model: &FileModel, findings: &mut Vec<Finding>) {
    let mut seen: HashSet<usize> = HashSet::new();
    for idx in 0..model.len() {
        if model.test_scope[idx] || !model.code[idx].contains("Ordering::Relaxed") {
            continue;
        }
        let start = statement_start(model, idx);
        if !seen.insert(start) {
            continue;
        }
        let end = statement_end(model, start).max(idx);
        let stmt = model.code[start..=end].join("\n");
        if !MUTATION_TOKENS.iter().any(|t| stmt.contains(t)) {
            continue; // plain load (or constructor): exempt
        }
        if !annotated_above(model, start, "ORDERING:") {
            findings.push(Finding {
                file: rel.to_string(),
                line: idx + 1,
                rule: Rule::Ordering,
                message: "relaxed atomic mutation without an `// ORDERING:` comment".into(),
            });
        }
    }
}

/// Rule 3: `.deref()` in epoch-using code must be inside a function that
/// visibly holds a guard.
fn check_epoch(rel: &str, model: &FileModel, findings: &mut Vec<Finding>) {
    for idx in 0..model.len() {
        if !model.code[idx].contains(".deref()") {
            continue;
        }
        // Find the enclosing fn signature.
        let fn_line = (0..=idx).rev().find(|&i| {
            let t = model.code[i].trim_start();
            t.starts_with("fn ")
                || t.starts_with("pub fn ")
                || t.starts_with("pub(crate) fn ")
                || t.starts_with("unsafe fn ")
                || t.starts_with("pub unsafe fn ")
                || t.starts_with("pub const fn ")
                || t.starts_with("const fn ")
        });
        let Some(fn_line) = fn_line else { continue };
        let region = model.code[fn_line..=idx].join("\n");
        let has_guard = region.contains("Guard")
            || region.contains("guard")
            || region.contains("pin()")
            || region.contains("unprotected");
        if !has_guard {
            findings.push(Finding {
                file: rel.to_string(),
                line: idx + 1,
                rule: Rule::Epoch,
                message: "raw `Shared::deref()` with no guard in scope".into(),
            });
        }
    }
}

/// Rule 4: container modules may not issue RPCs directly — every remote op
/// must go through `dispatch::Dispatcher` (the engine file is the single
/// exemption, by name).
fn check_dispatch(rel: &str, model: &FileModel, findings: &mut Vec<Finding>) {
    for idx in 0..model.len() {
        let line = &model.code[idx];
        if let Some(tok) = DISPATCH_TOKENS.iter().find(|t| line.contains(**t)) {
            findings.push(Finding {
                file: rel.to_string(),
                line: idx + 1,
                rule: Rule::Dispatch,
                message: format!(
                    "direct RPC issue (`{tok}`) in a container module; \
                     route the op through `dispatch::Dispatcher`"
                ),
            });
        }
    }
}

/// Mirror of `hcl_telemetry::valid_metric_name`: `hcl_` prefix, non-empty
/// crate segment, non-empty metric segment, characters `[a-z0-9_]`. Kept in
/// sync by the registry's own runtime assertion — a name that slips past one
/// check trips the other.
fn valid_metric_name(name: &str) -> bool {
    if name.is_empty()
        || !name.bytes().all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'_')
    {
        return false;
    }
    match name.strip_prefix("hcl_").and_then(|rest| rest.split_once('_')) {
        Some((krate, metric)) => !krate.is_empty() && !metric.is_empty(),
        None => false,
    }
}

/// Replace `format!` placeholders (`{..}`) with a legal filler character so
/// the static shape of a dynamic name is still checkable:
/// `"hcl_core_op_{}_ns"` validates as `hcl_core_op_x_ns`.
fn fill_placeholders(lit: &str) -> String {
    let mut out = String::with_capacity(lit.len());
    let mut depth = 0usize;
    for c in lit.chars() {
        match c {
            '{' => {
                if depth == 0 {
                    out.push('x');
                }
                depth += 1;
            }
            '}' => depth = depth.saturating_sub(1),
            _ if depth == 0 => out.push(c),
            _ => {}
        }
    }
    out
}

/// Rule 5: metric names registered through `.counter(` / `.gauge(` /
/// `.histogram(` calls must follow `hcl_<crate>_<name>`. Test modules are
/// exempt the same way ORDERING exempts them. Reads the string-preserving
/// view: the name is the literal's contents.
fn check_metric(rel: &str, model: &FileModel, findings: &mut Vec<Finding>) {
    for idx in 0..model.len() {
        if model.test_scope[idx] {
            continue;
        }
        let line = &model.text[idx];
        for tok in METRIC_TOKENS {
            let Some(pos) = line.find(tok) else { continue };
            // The name must be (or start with) a string literal on the same
            // line; handles taken via variables are the registry's runtime
            // assertion's problem.
            let rest = &line[pos + tok.len()..];
            let Some(open) = rest.find('"') else { continue };
            let lit = &rest[open + 1..];
            let Some(close) = lit.find('"') else { continue };
            let name = fill_placeholders(&lit[..close]);
            if !valid_metric_name(&name) {
                findings.push(Finding {
                    file: rel.to_string(),
                    line: idx + 1,
                    rule: Rule::Metric,
                    message: format!(
                        "metric name {:?} violates the `hcl_<crate>_<name>` convention",
                        &lit[..close]
                    ),
                });
            }
        }
    }
}

/// True when `tail` (the code following a `%` operator, already trimmed)
/// starts with an identifier path whose trailing segment is `denom`:
/// `servers.len()`, `self.core.servers.len()` and `cfg.nparts` all match
/// their denominators, `shards.len()` matches none.
fn tail_is_owner_math(tail: &str, denom: &str) -> bool {
    let Some(pos) = tail.find(denom) else {
        return false;
    };
    // Everything before the denominator must be a receiver path (`a.b.`),
    // and the denominator must sit on a path-segment boundary.
    let prefix = &tail[..pos];
    if !prefix.chars().all(|c| is_ident_char(c) || c == '.') {
        return false;
    }
    if !(pos == 0 || prefix.ends_with('.')) {
        return false;
    }
    // The denominator must end the term (`nparts` must not match `npartsx`).
    !tail[pos + denom.len()..].chars().next().is_some_and(is_ident_char)
}

/// Rule 6: no hand-rolled modulo owner math in the ownership stack — every
/// key→rank decision goes through the epoch-versioned `PartitionMap`.
fn check_membership(rel: &str, model: &FileModel, findings: &mut Vec<Finding>) {
    for idx in 0..model.len() {
        if model.test_scope[idx] {
            continue;
        }
        let line = &model.code[idx];
        let mut from = 0;
        while let Some(p) = line[from..].find('%') {
            let at = from + p;
            from = at + 1;
            // Trim the optional `=` of `%=` and any whitespace after the
            // operator before checking the denominator expression.
            let tail = line[at + 1..].trim_start_matches('=').trim_start();
            if let Some(denom) =
                OWNER_MATH_DENOMS.iter().find(|d| tail_is_owner_math(tail, d))
            {
                findings.push(Finding {
                    file: rel.to_string(),
                    line: idx + 1,
                    rule: Rule::Membership,
                    message: format!(
                        "hand-rolled owner math (`% {denom}`) outside the partition \
                         map; resolve owners via `Membership`/`PartitionMap` instead"
                    ),
                });
                break; // one finding per line
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules(rel: &str, src: &str) -> Vec<Rule> {
        check_file(rel, src).into_iter().map(|f| f.rule).collect()
    }

    #[test]
    fn annotated_unsafe_block_passes() {
        let src = "fn f(p: *const u8) -> u8 {\n    // SAFETY: caller guarantees p is valid.\n    unsafe { *p }\n}\n";
        assert!(rules("crates/x/src/lib.rs", src).is_empty());
    }

    #[test]
    fn deleting_the_safety_comment_fails() {
        // The negative control for the acceptance criterion: same code with
        // the SAFETY comment removed must produce a finding.
        let src = "fn f(p: *const u8) -> u8 {\n    unsafe { *p }\n}\n";
        assert_eq!(rules("crates/x/src/lib.rs", src), vec![Rule::Safety]);
    }

    #[test]
    fn multi_line_comment_run_counts() {
        let src = "fn f(p: *const u8) -> u8 {\n    // SAFETY: a long justification that\n    // wraps across several lines before\n    // the block itself.\n    unsafe { *p }\n}\n";
        assert!(rules("crates/x/src/lib.rs", src).is_empty());
    }

    #[test]
    fn unannotated_unsafe_impl_fails() {
        let src = "struct X;\nunsafe impl Send for X {}\n";
        assert_eq!(rules("crates/x/src/lib.rs", src), vec![Rule::Safety]);
        let ok = "struct X;\n// SAFETY: X owns no thread-affine state.\nunsafe impl Send for X {}\n";
        assert!(rules("crates/x/src/lib.rs", ok).is_empty());
    }

    #[test]
    fn pub_unsafe_fn_needs_safety_docs() {
        let bad = "/// Does a thing.\npub unsafe fn f() {}\n";
        assert_eq!(rules("crates/x/src/lib.rs", bad), vec![Rule::Safety]);
        let ok = "/// Does a thing.\n///\n/// # Safety\n/// Caller must hold the lock.\npub unsafe fn f() {}\n";
        assert!(rules("crates/x/src/lib.rs", ok).is_empty());
    }

    #[test]
    fn relaxed_store_needs_ordering_comment_in_covered_paths() {
        let bad = "fn f(a: &AtomicUsize) {\n    a.store(1, Ordering::Relaxed);\n}\n";
        assert_eq!(rules("crates/containers/src/x.rs", bad), vec![Rule::Ordering]);
        // Deleting the comment is the failure mode; with it, clean.
        let ok = "fn f(a: &AtomicUsize) {\n    // ORDERING: statistic only.\n    a.store(1, Ordering::Relaxed);\n}\n";
        assert!(rules("crates/containers/src/x.rs", ok).is_empty());
        // Outside the covered paths the rule does not apply.
        assert!(rules("crates/fabric/src/x.rs", bad).is_empty());
    }

    #[test]
    fn relaxed_load_is_exempt() {
        let src = "fn f(a: &AtomicUsize) -> usize {\n    a.load(Ordering::Relaxed)\n}\n";
        assert!(rules("crates/mem/src/x.rs", src).is_empty());
    }

    #[test]
    fn telemetry_and_bench_are_covered_paths() {
        let bad = "fn f(a: &AtomicUsize) {\n    a.fetch_add(1, Ordering::Relaxed);\n}\n";
        assert_eq!(rules("crates/telemetry/src/x.rs", bad), vec![Rule::Ordering]);
        assert_eq!(rules("crates/bench/src/x.rs", bad), vec![Rule::Ordering]);
    }

    #[test]
    fn multiline_compare_exchange_relaxed_failure_flagged() {
        let bad = concat!(
            "fn f(a: &AtomicUsize) {\n",
            "    let _ = a.compare_exchange(\n",
            "        0,\n",
            "        1,\n",
            "        Ordering::AcqRel,\n",
            "        Ordering::Relaxed,\n",
            "    );\n",
            "}\n"
        );
        assert_eq!(rules("crates/rpc/src/x.rs", bad), vec![Rule::Ordering]);
        let ok = concat!(
            "fn f(a: &AtomicUsize) {\n",
            "    // ORDERING: failure value is discarded; retry reloads.\n",
            "    let _ = a.compare_exchange(\n",
            "        0,\n",
            "        1,\n",
            "        Ordering::AcqRel,\n",
            "        Ordering::Relaxed,\n",
            "    );\n",
            "}\n"
        );
        assert!(rules("crates/rpc/src/x.rs", ok).is_empty());
    }

    #[test]
    fn test_modules_are_exempt_from_ordering() {
        let src = concat!(
            "#[cfg(test)]\n",
            "mod tests {\n",
            "    fn f(a: &AtomicUsize) {\n",
            "        a.fetch_add(1, Ordering::Relaxed);\n",
            "    }\n",
            "}\n"
        );
        assert!(rules("crates/containers/src/x.rs", src).is_empty());
    }

    #[test]
    fn test_module_exemption_ends_at_closing_brace() {
        // The old line-based pass exempted everything from `#[cfg(test)]
        // mod` to end-of-file; the brace-tracked scope does not.
        let src = concat!(
            "#[cfg(test)]\n",
            "mod tests {\n",
            "    fn g(a: &AtomicUsize) {\n",
            "        a.store(1, Ordering::Relaxed);\n",
            "    }\n",
            "}\n",
            "fn f(a: &AtomicUsize) {\n",
            "    a.store(1, Ordering::Relaxed);\n",
            "}\n"
        );
        let found = check_file("crates/containers/src/x.rs", src);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].rule, Rule::Ordering);
        assert_eq!(found[0].line, 8);
    }

    #[test]
    fn ordering_comment_claiming_acquire_over_relaxed_op_is_stale() {
        // The acceptance fixture: the comment claims an Acquire protocol the
        // statement does not implement.
        let bad = concat!(
            "fn f(a: &AtomicUsize) {\n",
            "    // ORDERING: Acquire pairs with the writer's publication.\n",
            "    a.store(1, Ordering::Relaxed);\n",
            "}\n"
        );
        let found = check_file("crates/containers/src/x.rs", bad);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].rule, Rule::Ordering);
        assert!(found[0].message.contains("stale"), "{}", found[0].message);
        assert!(found[0].message.contains("Acquire"), "{}", found[0].message);
        assert!(found[0].message.contains("Relaxed"), "{}", found[0].message);
    }

    #[test]
    fn ordering_comment_matching_the_op_passes() {
        let ok = concat!(
            "fn f(a: &AtomicUsize) {\n",
            "    // ORDERING: Relaxed — the counter is a statistic only.\n",
            "    a.fetch_add(1, Ordering::Relaxed);\n",
            "}\n"
        );
        assert!(rules("crates/containers/src/x.rs", ok).is_empty());
    }

    #[test]
    fn ordering_comment_with_partial_overlap_passes() {
        // A success/failure CAS comment naming both sides shares at least
        // one ordering with the statement: not stale.
        let ok = concat!(
            "fn f(a: &AtomicUsize) {\n",
            "    // ORDERING: AcqRel on success publishes the node; Relaxed\n",
            "    // on failure is fine because the retry reloads.\n",
            "    let _ = a.compare_exchange(0, 1, Ordering::AcqRel, Ordering::Relaxed);\n",
            "}\n"
        );
        assert!(rules("crates/containers/src/x.rs", ok).is_empty());
    }

    #[test]
    fn ordering_prose_without_ordering_names_is_never_stale() {
        let ok = concat!(
            "fn f(a: &AtomicUsize) {\n",
            "    // ORDERING: the counter feeds a debug display only.\n",
            "    a.fetch_add(1, Ordering::Relaxed);\n",
            "}\n"
        );
        assert!(rules("crates/containers/src/x.rs", ok).is_empty());
    }

    #[test]
    fn stale_safety_comment_is_flagged() {
        let bad = "fn f(x: u8) -> u8 {\n    // SAFETY: bounds checked above.\n    x + 1\n}\n";
        let found = check_file("crates/x/src/lib.rs", bad);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].rule, Rule::Safety);
        assert!(found[0].message.contains("stale"), "{}", found[0].message);
        assert_eq!(found[0].line, 2);
    }

    #[test]
    fn free_floating_safety_prose_is_not_stale() {
        // A blank line separates the comment from the next statement: prose,
        // not an annotation.
        let ok = "fn f(x: u8) -> u8 {\n    // SAFETY: discussed in DESIGN.md.\n\n    x + 1\n}\n";
        assert!(rules("crates/x/src/lib.rs", ok).is_empty());
    }

    #[test]
    fn tokens_inside_string_literals_do_not_trigger() {
        // The scanner blanks string contents before any rule runs: `unsafe`
        // and atomic-mutation tokens inside literals are invisible.
        let src = concat!(
            "fn f() -> (&'static str, &'static str) {\n",
            "    let a = \"unsafe { *p }\";\n",
            "    let b = \"a.store(1, Ordering::Relaxed);\";\n",
            "    (a, b)\n",
            "}\n"
        );
        assert!(rules("crates/containers/src/x.rs", src).is_empty());
    }

    #[test]
    fn tokens_inside_comments_do_not_trigger() {
        let src = concat!(
            "fn f() {\n",
            "    // Explanatory prose: unsafe { *p } would be wrong here, as\n",
            "    // would a.store(1, Ordering::Relaxed) without a reason.\n",
            "    /* block prose: unsafe impl Send for X {} */\n",
            "    let _ = 1;\n",
            "}\n"
        );
        assert!(rules("crates/containers/src/x.rs", src).is_empty());
    }

    #[test]
    fn safety_annotation_inside_a_string_does_not_satisfy_the_rule() {
        let src = concat!(
            "fn f(p: *const u8) -> u8 {\n",
            "    let _msg = \"SAFETY: not a real annotation\";\n",
            "    unsafe { *p }\n",
            "}\n"
        );
        assert_eq!(rules("crates/x/src/lib.rs", src), vec![Rule::Safety]);
    }

    #[test]
    fn lifetimes_are_not_mistaken_for_char_literals() {
        // If the scanner treated `'a` as an unterminated char literal it
        // would swallow the rest of the file, including the unsafe block.
        let src = concat!(
            "fn f<'a>(x: &'a [u8], p: *const u8) -> u8 {\n",
            "    let _ = x;\n",
            "    let _c = 'q';\n",
            "    let _e = '\\n';\n",
            "    unsafe { *p }\n",
            "}\n"
        );
        assert_eq!(rules("crates/x/src/lib.rs", src), vec![Rule::Safety]);
    }

    #[test]
    fn raw_strings_are_blanked() {
        let src = concat!(
            "fn f() -> &'static str {\n",
            "    r#\"unsafe { nothing } a.store(1, Ordering::Relaxed)\"#\n",
            "}\n"
        );
        assert!(rules("crates/containers/src/x.rs", src).is_empty());
    }

    #[test]
    fn deref_without_guard_flagged() {
        let bad = concat!(
            "use crossbeam::epoch::Shared;\n",
            "fn f(s: Shared<'_, u8>) -> u8 {\n",
            "    // SAFETY: trust me.\n",
            "    *unsafe { s.deref() }\n",
            "}\n"
        );
        assert_eq!(rules("crates/containers/src/x.rs", bad), vec![Rule::Epoch]);
        let ok = concat!(
            "use crossbeam::epoch::{self, Shared};\n",
            "fn f(s: Shared<'_, u8>) -> u8 {\n",
            "    let guard = epoch::pin();\n",
            "    // SAFETY: pinned above.\n",
            "    *unsafe { s.deref() }\n",
            "}\n"
        );
        assert!(rules("crates/containers/src/x.rs", ok).is_empty());
    }

    #[test]
    fn epoch_rule_skipped_outside_epoch_files() {
        // `.deref()` on ordinary smart pointers in non-epoch code is fine.
        let src = "fn f(b: &Box<u8>) -> u8 {\n    *std::ops::Deref::deref(b)\n}\n";
        assert!(rules("crates/runtime/src/x.rs", src).is_empty());
    }

    #[test]
    fn direct_rpc_issue_in_container_module_flagged() {
        // The negative control for the dispatch-engine acceptance criterion:
        // a container module bypassing the Dispatcher must produce a finding.
        let bad = concat!(
            "fn f(&self) -> HclResult<bool> {\n",
            "    Ok(self.rank.invoke(ep, fn_id, &args)?)\n",
            "}\n"
        );
        assert_eq!(rules("crates/core/src/queue.rs", bad), vec![Rule::Dispatch]);
        let coalesced = "fn f(&self) {\n    let _ = self.rank.invoke_coalesced(ep, id, &v);\n}\n";
        assert_eq!(rules("crates/core/src/unordered.rs", coalesced), vec![Rule::Dispatch]);
        // One finding per offending line, even when several tokens match.
        let batch = "fn f(&self) {\n    let _ = self.rank.client().invoke_batch_slices(ep, it);\n}\n";
        assert_eq!(rules("crates/core/src/ordered.rs", batch), vec![Rule::Dispatch]);
    }

    #[test]
    fn dispatch_engine_file_is_exempt() {
        // The same issue path inside the engine itself is the point.
        let src = concat!(
            "fn f(&self) -> HclResult<bool> {\n",
            "    Ok(self.rank.invoke(ep, fn_id, &args)?)\n",
            "}\n"
        );
        assert!(rules("crates/core/src/dispatch.rs", src).is_empty());
    }

    #[test]
    fn dispatch_token_inside_string_is_ignored() {
        let src = concat!(
            "fn f(&self) {\n",
            "    let _doc = \"call self.rank.invoke(ep, id, &args) via RpcClient\";\n",
            "}\n"
        );
        assert!(rules("crates/core/src/queue.rs", src).is_empty());
    }

    #[test]
    fn well_formed_metric_names_pass() {
        let src = concat!(
            "fn f(reg: &Registry) {\n",
            "    let c = reg.counter(\"hcl_rpc_slot_waits\");\n",
            "    let g = reg.gauge(\"hcl_fabric_sends\");\n",
            "    let h = reg.histogram(\"hcl_core_op_latency_remote_ns\");\n",
            "    let d = reg.histogram(&format!(\"hcl_core_op_{}_ns\", name));\n",
            "    drop((c, g, h, d));\n",
            "}\n"
        );
        assert!(rules("crates/core/src/telemetry.rs", src).is_empty());
    }

    #[test]
    fn malformed_metric_names_flagged() {
        // The negative controls for the METRIC acceptance criterion: missing
        // prefix, missing metric segment, and illegal characters must each
        // produce a finding.
        let no_prefix = "fn f(r: &Registry) {\n    let _ = r.counter(\"rpc_slot_waits\");\n}\n";
        assert_eq!(rules("crates/rpc/src/client.rs", no_prefix), vec![Rule::Metric]);
        let no_metric = "fn f(r: &Registry) {\n    let _ = r.gauge(\"hcl_rpc\");\n}\n";
        assert_eq!(rules("crates/rpc/src/client.rs", no_metric), vec![Rule::Metric]);
        let bad_chars = "fn f(r: &Registry) {\n    let _ = r.histogram(\"hcl_core_Op-Lat\");\n}\n";
        assert_eq!(rules("crates/core/src/telemetry.rs", bad_chars), vec![Rule::Metric]);
    }

    #[test]
    fn cache_metric_names_pass_the_convention() {
        // The lease-cache counter family registered by `CacheMetrics`
        // (crates/telemetry): every name the read path emits must satisfy
        // the `hcl_<crate>_<name>` shape the registry asserts at runtime.
        let src = concat!(
            "fn f(reg: &Registry) {\n",
            "    let a = reg.counter(\"hcl_core_cache_hits\");\n",
            "    let b = reg.counter(\"hcl_core_cache_misses\");\n",
            "    let c = reg.counter(\"hcl_core_cache_lease_grants\");\n",
            "    let d = reg.counter(\"hcl_core_cache_stale_expired\");\n",
            "    let e = reg.counter(\"hcl_core_cache_stale_version\");\n",
            "    let g = reg.counter(\"hcl_core_cache_stale_epoch\");\n",
            "    let h = reg.counter(\"hcl_core_cache_evictions\");\n",
            "    let i = reg.counter(\"hcl_core_cache_steered_reads\");\n",
            "    let j = reg.histogram(\"hcl_core_cache_local_get_ns\");\n",
            "    drop((a, b, c, d, e, g, h, i, j));\n",
            "}\n"
        );
        assert!(rules("crates/telemetry/src/cache.rs", src).is_empty());
    }

    #[test]
    fn malformed_cache_metric_names_flagged() {
        // Negative controls for the cache family: dropped `hcl_` prefix,
        // a bare `hcl_cache` with no metric segment, and uppercase/hyphen
        // characters must each produce a METRIC finding.
        let no_prefix = "fn f(r: &Registry) {\n    let _ = r.counter(\"core_cache_hits\");\n}\n";
        assert_eq!(rules("crates/telemetry/src/cache.rs", no_prefix), vec![Rule::Metric]);
        let no_metric = "fn f(r: &Registry) {\n    let _ = r.counter(\"hcl_cache\");\n}\n";
        assert_eq!(rules("crates/telemetry/src/cache.rs", no_metric), vec![Rule::Metric]);
        let bad_chars =
            "fn f(r: &Registry) {\n    let _ = r.histogram(\"hcl_core_Cache-Hits\");\n}\n";
        assert_eq!(rules("crates/telemetry/src/cache.rs", bad_chars), vec![Rule::Metric]);
    }

    #[test]
    fn persist_metric_names_pass_the_convention() {
        // The durability counter family registered by `PersistMetrics`
        // (crates/telemetry) for the WAL subsystem: every name the persist
        // path emits must satisfy the `hcl_<crate>_<name>` shape.
        let src = concat!(
            "fn f(reg: &Registry) {\n",
            "    let a = reg.counter(\"hcl_persist_appended\");\n",
            "    let b = reg.counter(\"hcl_persist_fsyncs\");\n",
            "    let c = reg.counter(\"hcl_persist_replayed\");\n",
            "    let d = reg.counter(\"hcl_persist_truncated_tail\");\n",
            "    let e = reg.counter(\"hcl_persist_recovered_ops\");\n",
            "    let g = reg.gauge(\"hcl_persist_snapshot_bytes\");\n",
            "    drop((a, b, c, d, e, g));\n",
            "}\n"
        );
        assert!(rules("crates/telemetry/src/persist.rs", src).is_empty());
    }

    #[test]
    fn malformed_persist_metric_names_flagged() {
        // Negative controls for the persist family: dropped `hcl_` prefix,
        // a bare `hcl_persist` with no metric segment, and uppercase/hyphen
        // characters must each produce a METRIC finding.
        let no_prefix = "fn f(r: &Registry) {\n    let _ = r.counter(\"persist_fsyncs\");\n}\n";
        assert_eq!(rules("crates/telemetry/src/persist.rs", no_prefix), vec![Rule::Metric]);
        let no_metric = "fn f(r: &Registry) {\n    let _ = r.counter(\"hcl_persist\");\n}\n";
        assert_eq!(rules("crates/telemetry/src/persist.rs", no_metric), vec![Rule::Metric]);
        let bad_chars =
            "fn f(r: &Registry) {\n    let _ = r.gauge(\"hcl_persist_Snapshot-Bytes\");\n}\n";
        assert_eq!(rules("crates/telemetry/src/persist.rs", bad_chars), vec![Rule::Metric]);
    }

    #[test]
    fn metric_rule_exempts_test_modules_and_test_trees() {
        let in_mod = concat!(
            "#[cfg(test)]\n",
            "mod tests {\n",
            "    fn f(r: &Registry) {\n",
            "        let _ = r.counter(\"bogus_metric\");\n",
            "    }\n",
            "}\n"
        );
        assert!(rules("crates/telemetry/src/lib.rs", in_mod).is_empty());
        let bad = "fn f(r: &Registry) {\n    let _ = r.counter(\"bogus_metric\");\n}\n";
        assert!(rules("crates/telemetry/tests/alloc_counting.rs", bad).is_empty());
        assert!(rules("tests/fault_injection.rs", bad).is_empty());
    }

    #[test]
    fn metric_name_in_comment_is_ignored() {
        let src = "fn f() {\n    // e.g. reg.counter(\"bogus name\") would be rejected\n}\n";
        assert!(rules("crates/core/src/telemetry.rs", src).is_empty());
    }

    #[test]
    fn dispatch_rule_allows_recorder_invoke_and_other_crates() {
        // History recorders also expose `invoke`; the token set must not
        // match `r.invoke(op)`.
        let recorder = "fn f(&self) {\n    let tok = r.invoke(op);\n    drop(tok);\n}\n";
        assert!(rules("crates/core/src/unordered.rs", recorder).is_empty());
        // Outside the container modules the rule does not apply at all.
        let raw = "fn f(rank: &Rank) {\n    let _ = rank.invoke(ep, 0, &());\n}\n";
        assert!(rules("crates/bench/src/bin/pr3.rs", raw).is_empty());
        assert!(rules("tests/end_to_end.rs", raw).is_empty());
    }

    #[test]
    fn modulo_owner_math_in_ownership_stack_flagged() {
        // The negative controls for the MEMBERSHIP acceptance criterion:
        // each hand-rolled `hash % N` owner computation in the scoped crates
        // must produce a finding. `% self.core.servers.len()` is the exact
        // shape of the old unordered.rs partitioning bug.
        let by_servers = concat!(
            "fn owner(&self, hash: u64) -> usize {\n",
            "    (hash as usize) % self.core.servers.len()\n",
            "}\n"
        );
        assert_eq!(rules("crates/core/src/unordered.rs", by_servers), vec![Rule::Membership]);
        let by_world = "fn owner(r: &Rank, h: u64) -> u32 {\n    (h % r.world_size()) as u32\n}\n";
        assert_eq!(rules("crates/runtime/src/lib.rs", by_world), vec![Rule::Membership]);
        let by_nparts = "fn vp(&self, h: u64) -> u32 {\n    (h % self.nparts) as u32\n}\n";
        assert_eq!(rules("crates/core/src/ordered.rs", by_nparts), vec![Rule::Membership]);
        let by_members = "fn f(h: usize, members: &[u32]) -> u32 {\n    members[h % members.len()]\n}\n";
        assert_eq!(rules("crates/runtime/src/coalesce.rs", by_members), vec![Rule::Membership]);
    }

    #[test]
    fn partition_map_file_is_exempt_from_membership() {
        // The map implementation is the one place the modulo is the point.
        let src = concat!(
            "fn seed(vparts: u32, members: &[u32]) -> Vec<u32> {\n",
            "    (0..vparts as usize).map(|i| members[i % members.len()]).collect()\n",
            "}\n"
        );
        assert!(rules("crates/runtime/src/membership.rs", src).is_empty());
    }

    #[test]
    fn non_owner_modulo_passes_membership() {
        // Local cache sharding, arithmetic modulo, and format-string `%`
        // lookalikes are all out of scope for the rule.
        let shards = "fn s(&self, h: u64) -> usize {\n    (h as usize) % self.shards.len()\n}\n";
        assert!(rules("crates/core/src/cache.rs", shards).is_empty());
        let arith = "fn f(i: usize) -> usize {\n    i % 4\n}\n";
        assert!(rules("crates/core/src/queue.rs", arith).is_empty());
        let in_str = "fn f() -> &'static str {\n    \"hash % servers.len() is banned\"\n}\n";
        assert!(rules("crates/core/src/queue.rs", in_str).is_empty());
        let in_comment = "fn f() {\n    // the old code did `hash % world_size()` here\n    let _ = 1;\n}\n";
        assert!(rules("crates/runtime/src/lib.rs", in_comment).is_empty());
        let suffix = "fn f(npartsx: u64, h: u64) -> u64 {\n    h % npartsx\n}\n";
        assert!(rules("crates/core/src/ordered.rs", suffix).is_empty());
    }

    #[test]
    fn membership_rule_scoped_to_ownership_stack() {
        // The same owner math outside core/runtime (and in test trees or
        // `#[cfg(test)]` modules, which pin map-vs-modulo agreement) is not
        // the rule's business.
        let bad = "fn owner(h: u64, n: usize) -> usize {\n    (h as usize) % servers.len()\n}\n";
        assert!(rules("crates/rpc/src/client.rs", bad).is_empty());
        assert!(rules("tests/membership.rs", bad).is_empty());
        assert!(rules("crates/runtime/tests/elastic.rs", bad).is_empty());
        let in_mod = concat!(
            "#[cfg(test)]\n",
            "mod tests {\n",
            "    fn owner(h: u64, members: &[u32]) -> u32 {\n",
            "        members[h as usize % members.len()]\n",
            "    }\n",
            "}\n"
        );
        assert!(rules("crates/runtime/src/lib.rs", in_mod).is_empty());
    }

    #[test]
    fn nested_block_comments_resolve() {
        let src = concat!(
            "fn f(p: *const u8) -> u8 {\n",
            "    /* outer /* inner */ still comment: unsafe { *p } */\n",
            "    // SAFETY: p is valid by contract.\n",
            "    unsafe { *p }\n",
            "}\n"
        );
        assert!(rules("crates/x/src/lib.rs", src).is_empty());
    }
}
