//! Workspace automation. Currently one command:
//!
//! ```text
//! cargo run -p xtask -- lint
//! ```
//!
//! runs the concurrency-hygiene lint pass (see [`lint`]).

use std::process::ExitCode;

mod lint;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("lint") => lint::run(),
        Some(other) => {
            eprintln!("xtask: unknown command `{other}` (try `xtask lint`)");
            ExitCode::FAILURE
        }
        None => {
            eprintln!("xtask: no command given (try `xtask lint`)");
            ExitCode::FAILURE
        }
    }
}
