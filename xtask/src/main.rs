//! Workspace automation. Two commands:
//!
//! ```text
//! cargo run -p xtask -- lint       # concurrency-hygiene lint pass
//! cargo run -p xtask -- artifacts  # FIG_*.json provenance check
//! ```
//!
//! See [`lint`] and [`artifacts`] for the rules each pass enforces.

use std::process::ExitCode;

mod artifacts;
mod lint;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("lint") => lint::run(),
        Some("artifacts") => artifacts::run(),
        Some(other) => {
            eprintln!("xtask: unknown command `{other}` (try `xtask lint` or `xtask artifacts`)");
            ExitCode::FAILURE
        }
        None => {
            eprintln!("xtask: no command given (try `xtask lint` or `xtask artifacts`)");
            ExitCode::FAILURE
        }
    }
}
