//! Workspace-level crate: hosts the cross-crate integration tests in
//! `tests/` and the runnable examples in `examples/`. See README.md.

