//! Property-based tests (proptest) on the core invariants:
//! serialization roundtrips, log replay equivalence, container-vs-model
//! equivalence, and ISx validation.

use std::collections::{BTreeMap, HashMap};

use hcl_containers::{CuckooMap, SkipListMap, SkipListPq};
use hcl_databox::codec::{AnyCodec, Codec};
use hcl_databox::DataBox;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every codec roundtrips arbitrary nested values.
    #[test]
    fn databox_roundtrip_nested(
        a in any::<u64>(),
        s in ".{0,40}",
        v in proptest::collection::vec(any::<u32>(), 0..50),
        opt in proptest::option::of(any::<i64>()),
        pairs in proptest::collection::vec((any::<u16>(), ".{0,10}"), 0..20),
    ) {
        let value = (a, s.clone(), v.clone(), opt, pairs.clone());
        for codec in [AnyCodec::Fixed, AnyCodec::Pack, AnyCodec::SelfDescribing] {
            let enc = codec.encode(&value);
            let dec: (u64, String, Vec<u32>, Option<i64>, Vec<(u16, String)>) =
                codec.decode(&enc).unwrap();
            prop_assert_eq!(&dec, &value);
        }
    }

    /// Decoding never panics on arbitrary garbage (errors only).
    #[test]
    fn databox_decode_garbage_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..200)) {
        let _ = <(u64, String, Vec<u32>)>::from_bytes(&bytes);
        let _ = AnyCodec::Pack.decode::<Vec<String>>(&bytes);
        let _ = AnyCodec::SelfDescribing.decode::<u64>(&bytes);
        let _ = String::from_bytes(&bytes);
        let _ = <HashMap<u64, String>>::from_bytes(&bytes);
    }

    /// CuckooMap behaves exactly like HashMap under any op sequence.
    #[test]
    fn cuckoo_matches_hashmap_model(
        ops in proptest::collection::vec((0u8..3, 0u64..64, any::<u64>()), 0..400)
    ) {
        let m = CuckooMap::with_buckets(2);
        let mut model = HashMap::new();
        for (op, k, v) in ops {
            match op {
                0 => prop_assert_eq!(m.insert(k, v), model.insert(k, v)),
                1 => prop_assert_eq!(m.get(&k), model.get(&k).copied()),
                _ => prop_assert_eq!(m.remove(&k), model.remove(&k)),
            }
            prop_assert_eq!(m.len(), model.len());
        }
    }

    /// SkipListMap behaves exactly like BTreeMap, including order.
    #[test]
    fn skiplist_matches_btreemap_model(
        ops in proptest::collection::vec((0u8..3, 0u64..64, any::<u64>()), 0..400)
    ) {
        let m = SkipListMap::new();
        let mut model = BTreeMap::new();
        for (op, k, v) in ops {
            match op {
                0 => prop_assert_eq!(m.insert(k, v), model.insert(k, v)),
                1 => prop_assert_eq!(m.get(&k), model.get(&k).copied()),
                _ => prop_assert_eq!(m.remove(&k), model.remove(&k)),
            }
        }
        let snap: Vec<(u64, u64)> = m.iter_snapshot();
        let want: Vec<(u64, u64)> = model.into_iter().collect();
        prop_assert_eq!(snap, want);
    }

    /// The priority queue drains any multiset in sorted order.
    #[test]
    fn pq_drains_sorted(values in proptest::collection::vec(any::<u32>(), 0..300)) {
        let pq = SkipListPq::new();
        for &v in &values {
            pq.push(v);
        }
        let drained = pq.drain_sorted();
        let mut want = values.clone();
        want.sort_unstable();
        prop_assert_eq!(drained, want);
    }

    /// Op-log replay reconstructs exactly the map state that produced it.
    #[test]
    fn oplog_replay_reconstructs_state(
        ops in proptest::collection::vec((0u8..2, 0u64..32, any::<u64>()), 0..200)
    ) {
        // Deterministic scratch dir: named by the case seed so a failing
        // case replays against the same path under HCL_PROPTEST_SEED.
        let dir = std::env::temp_dir().join(format!(
            "hcl-prop-oplog-{}-{:016x}",
            std::process::id(),
            proptest::current_case_seed().expect("inside a proptest case")
        ));
        let _ = std::fs::remove_dir_all(&dir); // stale dir from an aborted earlier run
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("p.log");
        let mut model: HashMap<u64, u64> = HashMap::new();
        {
            let log: hcl::OpLog<(u8, u64, Option<u64>)> =
                hcl::OpLog::open(&path, hcl::SyncPolicy::Strict, |_| {}).unwrap();
            for (op, k, v) in ops {
                if op == 0 {
                    log.append(&(0, k, Some(v))).unwrap();
                    model.insert(k, v);
                } else {
                    log.append(&(1, k, None)).unwrap();
                    model.remove(&k);
                }
            }
        }
        let mut replayed: HashMap<u64, u64> = HashMap::new();
        let _: hcl::OpLog<(u8, u64, Option<u64>)> =
            hcl::OpLog::open(&path, hcl::SyncPolicy::Strict, |(op, k, v): (u8, u64, Option<u64>)| {
                if op == 0 {
                    replayed.insert(k, v.unwrap());
                } else {
                    replayed.remove(&k);
                }
            })
            .unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
        prop_assert_eq!(replayed, model);
    }

    /// ISx bucket assignment is total and order-preserving across buckets.
    #[test]
    fn isx_bucketing_is_monotone(keys in proptest::collection::vec(0u64..1_000_000, 1..200)) {
        use hcl_apps::isx::bucket_of;
        let buckets = 8u64;
        let space = 1_000_000u64;
        for &k in &keys {
            let b = bucket_of(k, space, buckets);
            prop_assert!(b < buckets);
        }
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        let bs: Vec<u64> = sorted.iter().map(|&k| bucket_of(k, space, buckets)).collect();
        prop_assert!(bs.windows(2).all(|w| w[0] <= w[1]), "bucket ids must be monotone in key");
    }

    /// k-mer pack/unpack roundtrips arbitrary base strings.
    #[test]
    fn kmer_roundtrip(idx in proptest::collection::vec(0usize..4, 1..32)) {
        use hcl_apps::genome::{pack_kmer, unpack_kmer, BASES};
        let seq: Vec<u8> = idx.iter().map(|&i| BASES[i]).collect();
        let k = seq.len();
        prop_assert_eq!(unpack_kmer(pack_kmer(&seq, k), k), seq);
    }

    /// The segment allocator never hands out overlapping live ranges.
    #[test]
    fn allocator_no_overlap(sizes in proptest::collection::vec(1usize..256, 1..60)) {
        use hcl_mem::{Segment, SegmentAllocator};
        let a = SegmentAllocator::new(Segment::new(128), 0);
        let mut live: Vec<(usize, usize)> = Vec::new();
        for (i, &len) in sizes.iter().enumerate() {
            let off = a.alloc(len).unwrap();
            let rounded = hcl_mem::align8(len);
            for &(o, l) in &live {
                prop_assert!(off + rounded <= o || o + l <= off, "overlap");
            }
            live.push((off, rounded));
            if i % 3 == 2 {
                let (o, _) = live.swap_remove(i % live.len());
                a.free(o).unwrap();
            }
        }
    }
}

// --- fault-injection invariants (ChaosFabric + RetryPolicy) ---

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Retry backoff is monotone non-decreasing, bounded by the cap, and a
    /// pure function of (policy, seed, retry index).
    #[test]
    fn retry_backoff_monotone_bounded_deterministic(
        seed in any::<u64>(),
        attempts in 2u32..12,
        base_ms in 1u64..20,
        cap_ms in 20u64..500,
        jitter in 0u32..100,
    ) {
        use hcl_rpc::RetryPolicy;
        use std::time::Duration;
        let policy = RetryPolicy {
            max_attempts: attempts,
            base_delay: Duration::from_millis(base_ms),
            max_delay: Duration::from_millis(cap_ms),
            multiplier: 2.0,
            jitter_frac: jitter as f64 / 100.0,
            seed,
            attempt_timeout: None,
        };
        let mut prev = Duration::ZERO;
        for k in 0..attempts {
            let d = policy.backoff(k);
            prop_assert!(d >= prev, "backoff regressed at retry {}", k);
            prop_assert!(d <= Duration::from_millis(cap_ms), "backoff exceeded cap");
            // Pure: recomputing the same index yields the same duration.
            prop_assert_eq!(d, policy.backoff(k));
            prev = d;
        }
    }

    /// The chaos fault schedule is a pure function of the plan seed: two
    /// fabrics fed the identical send sequence deliver the identical
    /// message subsequence and count the identical faults.
    #[test]
    fn chaos_fault_sequence_is_seed_deterministic(
        seed in any::<u64>(),
        n in 10usize..60,
    ) {
        use bytes::Bytes;
        use hcl_fabric::chaos::{ChaosFabric, FaultPlan, FaultRule, OpClass};
        use hcl_fabric::{EpId, Fabric};
        use std::time::Duration;

        let run = |seed: u64| {
            let plan = FaultPlan::new(seed).for_class(
                OpClass::Send,
                FaultRule::NONE.drop(0.3).dup(0.2).error(0.1),
            );
            let fab = ChaosFabric::over_memory(plan);
            let a = EpId::new(0, 0);
            let b = EpId::new(1, 1);
            fab.register_endpoint(a).unwrap();
            fab.register_endpoint(b).unwrap();
            let mut errors = 0u32;
            for i in 0..n {
                if fab.send(a, b, Bytes::from(vec![i as u8])).is_err() {
                    errors += 1;
                }
            }
            let mut delivered = Vec::new();
            while let Some((_, msg)) =
                fab.recv(b, Some(Duration::from_millis(5))).unwrap()
            {
                delivered.push(msg.to_vec());
            }
            (delivered, errors, fab.chaos_stats())
        };
        let (d1, e1, s1) = run(seed);
        let (d2, e2, s2) = run(seed);
        prop_assert_eq!(d1, d2, "delivered sequences diverged for the same seed");
        prop_assert_eq!(e1, e2);
        prop_assert_eq!(s1, s2, "fault counters diverged for the same seed");
    }
}
