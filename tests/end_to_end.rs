//! Cross-crate integration tests: the whole stack (databox → fabric → rpc →
//! runtime → containers) exercised end-to-end, plus HCL-vs-BCL semantic
//! equivalence on identical workloads.

use std::collections::HashMap;

use hcl::{UnorderedMap, UnorderedMapConfig};
use hcl_runtime::{FabricKind, World, WorldConfig};

fn mem_world(nodes: u32, rpn: u32) -> WorldConfig {
    WorldConfig { nodes, ranks_per_node: rpn, ..WorldConfig::small() }
}

#[test]
fn hcl_and_bcl_agree_on_identical_workload() {
    // The same key/value stream applied to both libraries must produce the
    // same final mapping — the semantics half of the paper's comparison.
    let results = World::run(mem_world(2, 2), |rank| {
        let h: UnorderedMap<u64, u64> = UnorderedMap::new(rank, "agree.h");
        let b: bcl::BclHashMap<u64, u64> = bcl::BclHashMap::with_config(
            rank,
            "agree.b",
            bcl::BclMapConfig { buckets_per_partition: 4096, ..Default::default() },
        );
        let n = 200u64;
        for i in 0..n {
            let k = rank.id() as u64 * n + i;
            h.put(k, k * 3).unwrap();
            b.insert(&k, &(k * 3)).unwrap();
        }
        rank.barrier();
        let mut mismatches = 0;
        for r in 0..rank.world_size() as u64 {
            for i in 0..n {
                let k = r * n + i;
                if h.get(&k).unwrap() != b.find(&k).unwrap() {
                    mismatches += 1;
                }
            }
        }
        rank.barrier();
        mismatches
    });
    assert!(results.iter().all(|&m| m == 0));
}

#[test]
fn full_stack_over_tcp_with_complex_types() {
    // TCP provider end-to-end with nested DataBox values and async ops.
    let cfg = WorldConfig {
        nodes: 2,
        ranks_per_node: 2,
        fabric: FabricKind::Tcp,
        ..WorldConfig::small()
    };
    World::run(cfg, |rank| {
        type V = (String, Vec<(u32, String)>, Option<Vec<u8>>);
        let m: UnorderedMap<String, V> = UnorderedMap::new(rank, "tcp.complex");
        let v: V = (
            format!("rank {}", rank.id()),
            (0..5).map(|i| (i, format!("item-{i}"))).collect(),
            Some(vec![rank.id() as u8; 32]),
        );
        let fut = m.put_async(format!("k{}", rank.id()), v).unwrap();
        fut.wait().unwrap();
        rank.barrier();
        for r in 0..rank.world_size() {
            let got = m.get(&format!("k{r}")).unwrap().unwrap();
            assert_eq!(got.0, format!("rank {r}"));
            assert_eq!(got.1.len(), 5);
            assert_eq!(got.2.as_deref(), Some(&vec![r as u8; 32][..]));
        }
        rank.barrier();
    });
}

#[test]
fn merger_histogram_is_exact_under_full_concurrency() {
    // All ranks hammer overlapping hot keys through put_merge; totals must
    // be exact (server-side atomicity, unlike client-side RMW).
    let per_rank = 2_000u64;
    let hot_keys = 7u64;
    let results = World::run(mem_world(2, 4), move |rank| {
        let m: UnorderedMap<u64, u64> = UnorderedMap::with_merger(
            rank,
            "hist",
            UnorderedMapConfig::default(),
            std::sync::Arc::new(|old: Option<&u64>, d: &u64| old.copied().unwrap_or(0) + d),
        );
        rank.barrier();
        for i in 0..per_rank {
            m.put_merge(i % hot_keys, 1).unwrap();
        }
        rank.barrier();
        let total: u64 = (0..hot_keys).map(|k| m.get(&k).unwrap().unwrap()).sum();
        rank.barrier();
        total
    });
    for t in results {
        assert_eq!(t, 8 * per_rank, "increments lost under concurrency");
    }
}

#[test]
fn world_traffic_reflects_hybrid_savings() {
    // Run the same op mix with and without the hybrid model; the fabric's
    // send counter must show the difference (fewer RPCs with hybrid on).
    let run = |hybrid: bool| -> u64 {
        let shared = World::shared(mem_world(2, 2));
        let s2 = std::sync::Arc::clone(&shared);
        World::run_on(s2, move |rank| {
            let m: UnorderedMap<u64, u64> = UnorderedMap::with_config(
                rank,
                "traffic",
                UnorderedMapConfig { hybrid, ..Default::default() },
            );
            for i in 0..200u64 {
                m.put(rank.id() as u64 * 1000 + i, i).unwrap();
            }
            rank.barrier();
        });
        shared.traffic().sends
    };
    let with_hybrid = run(true);
    let without = run(false);
    assert!(
        with_hybrid < without,
        "hybrid {with_hybrid} sends must be < rpc-only {without}"
    );
}

#[test]
fn async_ops_coalesce_and_bulk_paths_report_batch_hit_rate() {
    // Request aggregation end-to-end: a burst of async puts from each rank
    // rides batched messages (observable in the rank's coalescer stats and
    // in the container's fb/fu cost split), bulk ops count as batched, and
    // the barrier's flush-before-sync makes everything visible afterwards.
    World::run(mem_world(2, 1), |rank| {
        let map: UnorderedMap<u64, u64> = UnorderedMap::with_config(
            rank,
            "coal.map",
            UnorderedMapConfig { hybrid: false, ..UnorderedMapConfig::default() },
        );
        let q: hcl::Queue<u64> = hcl::Queue::with_config(
            rank,
            "coal.q",
            hcl::queue::QueueConfig { owner: 0, hybrid: false, ..Default::default() },
        );
        rank.barrier();
        let me = rank.id() as u64;
        let n = 64u64;
        // Async burst — never awaited individually; the barrier flushes.
        let futs: Vec<_> = (0..n).map(|i| map.put_async(me * n + i, i).unwrap()).collect();
        rank.barrier();
        for f in futs {
            f.wait().unwrap();
        }
        // Everything staged before the barrier is visible after it.
        for r in 0..rank.world_size() as u64 {
            for i in 0..n {
                assert_eq!(map.get(&(r * n + i)).unwrap(), Some(i));
            }
        }
        // Bulk path: one aggregated message, counted as batched.
        let pushed = q.push_bulk((0..n).map(|i| me * n + i).collect()).unwrap();
        assert_eq!(pushed, n);
        rank.barrier();

        let mc = map.costs();
        assert!(mc.fb > 0, "async puts never classified as batched: {mc}");
        assert!(mc.batch_hit_rate() > 0.0, "map batch hit rate is zero: {mc}");
        let qc = q.costs();
        assert!(qc.batch_hit_rate() > 0.0, "bulk push hit rate is zero: {qc}");
        let cs = rank.coalesce_stats();
        assert!(cs.batches > 0, "no batched messages were sent: {cs:?}");
        assert!(
            cs.avg_batch_size() > 1.0,
            "coalescer never merged concurrent ops: {cs:?}"
        );
        rank.barrier();
    });
}

#[test]
fn many_containers_coexist_in_one_world() {
    // fn-id allocation and the object store must isolate containers.
    World::run(mem_world(2, 2), |rank| {
        let maps: Vec<UnorderedMap<u64, u64>> =
            (0..8).map(|i| UnorderedMap::new(rank, &format!("multi{i}"))).collect();
        let qs: Vec<hcl::Queue<u64>> =
            (0..4).map(|i| hcl::Queue::new(rank, &format!("mq{i}"))).collect();
        rank.barrier();
        for (i, m) in maps.iter().enumerate() {
            m.put(rank.id() as u64, i as u64 * 1_000 + rank.id() as u64).unwrap();
        }
        for (i, q) in qs.iter().enumerate() {
            q.push(i as u64 * 10 + rank.id() as u64).unwrap();
        }
        rank.barrier();
        for (i, m) in maps.iter().enumerate() {
            for r in 0..rank.world_size() as u64 {
                assert_eq!(
                    m.get(&r).unwrap(),
                    Some(i as u64 * 1_000 + r),
                    "cross-container contamination in map {i}"
                );
            }
        }
        rank.barrier();
        if rank.id() == 0 {
            for (i, q) in qs.iter().enumerate() {
                let mut got = Vec::new();
                while let Some(v) = q.pop().unwrap() {
                    got.push(v);
                }
                assert_eq!(got.len(), 4);
                assert!(got.iter().all(|v| v / 10 == i as u64));
            }
        }
        rank.barrier();
    });
}

#[test]
fn isx_pipeline_end_to_end_both_libraries() {
    use hcl_apps::isx::{run_bcl, run_hcl, validate, IsxConfig};
    let cfg = IsxConfig { keys_per_rank: 400, key_space: 1 << 20, seed: 99 };
    let h = World::run(mem_world(2, 2), move |rank| run_hcl(rank, &cfg));
    assert!(validate(&h, &cfg, 4, 2));
    let b = World::run(mem_world(2, 2), move |rank| run_bcl(rank, &cfg));
    assert!(validate(&b, &cfg, 4, 2));
    // Identical sorted output.
    let hk: Vec<u64> = h.into_iter().flat_map(|r| r.sorted).collect();
    let bk: Vec<u64> = b.into_iter().flat_map(|r| r.sorted).collect();
    let mut hs = hk.clone();
    hs.sort_unstable();
    let mut bs = bk.clone();
    bs.sort_unstable();
    assert_eq!(hs, bs);
}

#[test]
fn kmer_counting_matches_reference_over_tcp() {
    use hcl_apps::genome::{kmers_of, sample_reads, synth_genome};
    use hcl_apps::meraculous::count_kmers_hcl;
    let genome = synth_genome(600, 4242);
    let cfg = WorldConfig {
        nodes: 2,
        ranks_per_node: 2,
        fabric: FabricKind::Tcp,
        ..WorldConfig::small()
    };
    let g2 = genome.clone();
    let results = World::run(cfg, move |rank| {
        let reads = sample_reads(&g2, 40, 10, 0.0, 9_000 + rank.id() as u64);
        count_kmers_hcl(rank, "tcp.kmer", &reads, 13)
    });
    let mut reference: HashMap<u64, u64> = HashMap::new();
    for r in 0..4u64 {
        for read in sample_reads(&genome, 40, 10, 0.0, 9_000 + r) {
            for km in kmers_of(&read.bases, 13) {
                *reference.entry(km).or_default() += 1;
            }
        }
    }
    assert_eq!(results[0], reference);
}
