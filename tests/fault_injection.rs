//! Container-level fault-injection suite: every HCL container runs its
//! workload over a [`ChaosFabric`] that drops, duplicates, delays, and
//! errors request sends, while the RPC layer's retry/timeout/dedup
//! machinery keeps the semantics exact.
//!
//! Invariants checked here:
//! * no acknowledged write is ever lost (a `put`/`push` that returned `Ok`
//!   is visible to every later reader);
//! * no queue element is popped twice, even when retransmission delivers a
//!   request more than once;
//! * the fault plan is deterministic — two runs with the same seed observe
//!   the identical fault counters;
//! * a fully partitioned endpoint surfaces a typed, timeout-derived error
//!   after the retry budget is exhausted, instead of hanging.

use std::collections::BTreeSet;
use std::sync::Arc;
use std::time::{Duration, Instant};

use hcl::ordered::OrderedConfig;
use hcl::queue::QueueConfig;
use hcl::unordered::UnorderedMapConfig;
use hcl::{HclError, OrderedMap, OrderedSet, PriorityQueue, Queue, UnorderedMap};
use hcl_fabric::chaos::{ChaosFabric, ChaosSnapshot, FaultPlan, FaultRule, OpClass};
use hcl_fabric::memory::MemoryFabric;
use hcl_fabric::Fabric;
use hcl_rpc::coalesce::CoalesceConfig;
use hcl_rpc::{RetryPolicy, RpcError};
use hcl_runtime::{World, WorldConfig, WorldShared};

/// Ops per container per rank. Kept modest: every dropped send costs one
/// `attempt_timeout` before the client retransmits.
const N: u64 = 16;

fn retrying(cfg: WorldConfig, seed: u64) -> WorldConfig {
    WorldConfig {
        retry: RetryPolicy::resilient(6, seed).with_attempt_timeout(Duration::from_millis(300)),
        ..cfg
    }
}

/// 5% drop plus sub-millisecond jittered delay (and a sprinkle of
/// duplication and transient errors) on every request send.
fn lossy_plan(seed: u64) -> FaultPlan {
    FaultPlan::new(seed).for_class(
        OpClass::Send,
        FaultRule::NONE
            .drop(0.05)
            .dup(0.02)
            .error(0.02)
            .delay(Duration::from_micros(300))
            .jitter(Duration::from_micros(300)),
    )
}

fn chaos_shared(cfg: WorldConfig, plan: FaultPlan) -> (Arc<ChaosFabric>, Arc<WorldShared>) {
    let chaos = Arc::new(ChaosFabric::wrap(Arc::new(MemoryFabric::new()), plan));
    let shared = World::shared_with_fabric(cfg, Arc::clone(&chaos) as Arc<dyn Fabric>);
    (chaos, shared)
}

/// Run the full five-container workload on a 2x2 world over a lossy fabric
/// and return the fault counters the run observed.
fn run_lossy_workload(seed: u64) -> ChaosSnapshot {
    let cfg = retrying(
        WorldConfig { nodes: 2, ranks_per_node: 2, ..WorldConfig::small() },
        seed,
    );
    let (chaos, shared) = chaos_shared(cfg, lossy_plan(seed));
    World::run_on(shared, move |rank| {
        let me = rank.id() as u64;
        let ws = rank.world_size() as u64;
        let no_hybrid = QueueConfig { owner: 0, hybrid: false, ..Default::default() };

        let umap: UnorderedMap<u64, u64> = UnorderedMap::new(rank, "faults.umap");
        let uset = hcl::UnorderedSet::<u64>::new(rank, "faults.uset");
        let omap: OrderedMap<u64, u64> = OrderedMap::new(rank, "faults.omap");
        let oset: OrderedSet<u64> = OrderedSet::new(rank, "faults.oset");
        let q: Queue<u64> = Queue::with_config(rank, "faults.q", no_hybrid.clone());
        let pq: PriorityQueue<u64> = PriorityQueue::with_config(rank, "faults.pq", no_hybrid);
        rank.barrier();

        for i in 0..N {
            let k = me * N + i;
            umap.put(k, k * 3 + 1).unwrap();
            uset.insert(k).unwrap();
            omap.put(k, k * 7 + 2).unwrap();
            oset.insert(k).unwrap();
            assert!(q.push(k).unwrap());
            assert!(pq.push(k).unwrap());
        }
        rank.barrier();

        // No lost acknowledged writes: every key every rank put is visible.
        for r in 0..ws {
            for i in 0..N {
                let k = r * N + i;
                assert_eq!(umap.get(&k).unwrap(), Some(k * 3 + 1), "umap lost write {k}");
                assert!(uset.contains(&k).unwrap(), "uset lost insert {k}");
                assert_eq!(omap.get(&k).unwrap(), Some(k * 7 + 2), "omap lost write {k}");
                assert!(oset.contains(&k).unwrap(), "oset lost insert {k}");
            }
        }

        // Each rank pops exactly N entries; globally the pops must be the
        // pushed set — nothing lost, nothing popped twice.
        let mut mine = Vec::with_capacity(N as usize);
        for _ in 0..N {
            mine.push(q.pop().unwrap().expect("queue lost an acknowledged push"));
        }
        let flat: Vec<u64> = rank.allgather(mine).into_iter().flatten().collect();
        let uniq: BTreeSet<u64> = flat.iter().copied().collect();
        assert_eq!(flat.len() as u64, ws * N, "queue pop count mismatch");
        assert_eq!(uniq.len(), flat.len(), "duplicate queue pop detected");
        assert_eq!(uniq, (0..ws * N).collect::<BTreeSet<u64>>());
        assert_eq!(q.pop().unwrap(), None);

        // Priority queue: concurrent min-pops. With removals only, the
        // global minimum is nondecreasing, so each rank's own pop sequence
        // must be sorted; the union must be exactly the pushed set.
        let mut mine = Vec::with_capacity(N as usize);
        for _ in 0..N {
            let v = pq.pop().unwrap().expect("pqueue lost an acknowledged push");
            if let Some(&prev) = mine.last() {
                assert!(v >= prev, "pqueue pops went backwards: {prev} then {v}");
            }
            mine.push(v);
        }
        let flat: Vec<u64> = rank.allgather(mine).into_iter().flatten().collect();
        let uniq: BTreeSet<u64> = flat.iter().copied().collect();
        assert_eq!(uniq.len(), flat.len(), "duplicate pqueue pop detected");
        assert_eq!(uniq, (0..ws * N).collect::<BTreeSet<u64>>());
        assert_eq!(pq.pop().unwrap(), None);
        rank.barrier();
    });
    chaos.chaos_stats()
}

/// Tentpole acceptance: all five containers complete correct workloads
/// under 5% drop + delay, and the fault sequence is a pure function of the
/// plan seed — two runs, identical counters.
#[test]
fn containers_survive_lossy_fabric_deterministically() {
    let a = run_lossy_workload(0xC1A05);
    let b = run_lossy_workload(0xC1A05);
    assert_eq!(a, b, "same seed must observe the same fault sequence");
    assert!(a.drops > 0, "plan was expected to drop some sends: {a:?}");
    assert!(a.delayed_ops > 0, "plan was expected to delay sends: {a:?}");
    let c = run_lossy_workload(0x0DDBA11);
    assert!(c.total_faults() > 0);
    assert_ne!(a, c, "different seeds should see different fault sequences");
}

/// Duplicated deliveries must not re-execute handlers: server-side merge
/// counters stay exact under an aggressive duplication plan because the
/// dedup window answers repeats from the response cache.
#[test]
fn duplicate_deliveries_execute_handlers_once() {
    let seed = 0xD0D0;
    let cfg = retrying(
        WorldConfig { nodes: 2, ranks_per_node: 1, ..WorldConfig::small() },
        seed,
    );
    let plan = FaultPlan::new(seed).for_class(OpClass::Send, FaultRule::NONE.dup(0.25));
    let (chaos, shared) = chaos_shared(cfg, plan);
    let shared2 = Arc::clone(&shared);
    World::run_on(shared, move |rank| {
        let m: UnorderedMap<u64, u64> = UnorderedMap::with_merger(
            rank,
            "dup.hist",
            UnorderedMapConfig { hybrid: false, ..UnorderedMapConfig::default() },
            Arc::new(|old: Option<&u64>, d: &u64| old.copied().unwrap_or(0) + d),
        );
        rank.barrier();
        for _ in 0..N {
            for k in 0..4u64 {
                m.put_merge(k, 1).unwrap();
            }
        }
        rank.barrier();
        // Every rank contributed exactly N increments per key; a re-executed
        // duplicate would overshoot.
        for k in 0..4u64 {
            assert_eq!(m.get(&k).unwrap(), Some(N * rank.world_size() as u64));
        }
        rank.barrier();
    });
    assert!(chaos.chaos_stats().duplicates > 0, "plan was expected to duplicate sends");
    assert!(
        shared2.server_stats().deduped > 0,
        "servers should have answered duplicates from the dedup window"
    );
}

/// A fully partitioned endpoint (100% request drop) must fail with a typed,
/// timeout-derived error once the retry budget is exhausted — bounded
/// latency, no hang — while the healthy direction keeps working.
#[test]
fn full_partition_exhausts_retries_without_hanging() {
    let seed = 0xBAD;
    let cfg = retrying(
        WorldConfig { nodes: 2, ranks_per_node: 1, ..WorldConfig::small() },
        seed,
    );
    let cfg = WorldConfig {
        retry: RetryPolicy { max_attempts: 3, ..cfg.retry }
            .with_attempt_timeout(Duration::from_millis(150)),
        ..cfg
    };
    let plan = FaultPlan::new(seed).for_pair_class(
        cfg.ep_of(1),
        cfg.ep_of(0),
        OpClass::Send,
        FaultRule::NONE.drop(1.0),
    );
    let (chaos, shared) = chaos_shared(cfg, plan);
    World::run_on(shared, move |rank| {
        let q: Queue<u64> = Queue::with_config(
            rank,
            "part.q",
            QueueConfig { owner: 0, hybrid: false, ..Default::default() },
        );
        rank.barrier();
        if rank.id() == 1 {
            let start = Instant::now();
            let err = q.push(42).expect_err("push across a full partition must fail, not hang");
            let elapsed = start.elapsed();
            match err {
                HclError::Rpc(RpcError::RetriesExhausted { attempts, last }) => {
                    assert_eq!(attempts, 3);
                    assert!(last.is_timeout(), "expected a timeout-derived error, got: {last}");
                }
                other => panic!("expected RetriesExhausted, got: {other}"),
            }
            assert!(
                elapsed < Duration::from_secs(5),
                "retry budget must bound latency, took {elapsed:?}"
            );
        } else {
            // The 0 -> 0 self path is healthy; the owner is unaffected.
            assert!(q.push(7).unwrap());
            assert_eq!(q.pop().unwrap(), Some(7));
        }
        rank.barrier();
        // After rank 1 gave up, the queue holds only what rank 0 acked.
        if rank.id() == 0 {
            assert_eq!(q.pop().unwrap(), None);
        }
        rank.barrier();
    });
    // 3 attempts, every one dropped.
    assert!(chaos.chaos_stats().drops >= 3);
}

/// Coalesced async ops under a lossy fabric: a flushed batch travels (and
/// retries) as ONE idempotent unit — drops retransmit the whole batch, the
/// server dedups on its request id, and every op lands exactly once and in
/// submission order relative to the flush-before-sync barrier.
#[test]
fn coalesced_batches_retry_as_one_idempotent_unit() {
    let seed = 0xBA7C;
    let cfg = retrying(
        WorldConfig { nodes: 2, ranks_per_node: 1, ..WorldConfig::small() },
        seed,
    );
    let (chaos, shared) = chaos_shared(cfg, lossy_plan(seed));
    World::run_on(shared, move |rank| {
        let me = rank.id() as u64;
        let ws = rank.world_size() as u64;
        let q: Queue<u64> =
            Queue::with_config(rank, "chaos.coal.q", QueueConfig { owner: 0, hybrid: false, ..Default::default() });
        let umap: UnorderedMap<u64, u64> = UnorderedMap::with_config(
            rank,
            "chaos.coal.umap",
            UnorderedMapConfig { hybrid: false, ..UnorderedMapConfig::default() },
        );
        rank.barrier();

        // Stage async ops; nothing is awaited until after the loop, so
        // consecutive ops to one destination coalesce into batches.
        let qfuts: Vec<_> = (0..N).map(|i| q.push_async(me * N + i).unwrap()).collect();
        let mfuts: Vec<_> = (0..N)
            .map(|i| {
                let k = me * N + i;
                umap.put_async(k, k * 5 + 3).unwrap()
            })
            .collect();
        for f in &qfuts {
            assert!(f.wait().unwrap(), "acknowledged coalesced push reported false");
        }
        for f in &mfuts {
            f.wait().unwrap();
        }
        // The coalescing path was actually exercised and observable.
        assert!(q.costs().batch_hit_rate() > 0.0, "queue ops never rode a batch");
        assert!(umap.costs().batch_hit_rate() > 0.0, "map ops never rode a batch");
        assert!(rank.coalesce_stats().batches > 0, "coalescer sent no batches");
        rank.barrier();

        // Exactly-once: every coalesced op landed once, none lost, none
        // duplicated by batch retransmission.
        for r in 0..ws {
            for i in 0..N {
                let k = r * N + i;
                assert_eq!(umap.get(&k).unwrap(), Some(k * 5 + 3), "coalesced put lost: {k}");
            }
        }
        let mut mine = Vec::with_capacity(N as usize);
        for _ in 0..N {
            mine.push(q.pop().unwrap().expect("coalesced push lost"));
        }
        let flat: Vec<u64> = rank.allgather(mine).into_iter().flatten().collect();
        let uniq: BTreeSet<u64> = flat.iter().copied().collect();
        assert_eq!(uniq.len(), flat.len(), "batch retransmission duplicated a push");
        assert_eq!(uniq, (0..ws * N).collect::<BTreeSet<u64>>());
        assert_eq!(q.pop().unwrap(), None);
        rank.barrier();
    });
    let snap = chaos.chaos_stats();
    assert!(snap.total_faults() > 0, "plan injected no faults: {snap:?}");
}

/// Flush-before-sync under faults: async ops staged for a destination are
/// observed by a subsequent synchronous op to the same destination even
/// when the fabric drops and delays sends (per-destination FIFO survives
/// retransmission because the batch is one request).
#[test]
fn flush_before_sync_order_survives_lossy_fabric() {
    let seed = 0xF1055;
    let cfg = retrying(
        WorldConfig { nodes: 2, ranks_per_node: 1, ..WorldConfig::small() },
        seed,
    );
    // Pin the coalescer so neither the size trigger nor the age flusher can
    // send the staged ops: only the sync op's flush-before-sync may.
    let cfg = WorldConfig {
        coalesce: CoalesceConfig {
            max_ops: 64,
            adaptive: false,
            max_delay: Duration::from_secs(30),
            ..CoalesceConfig::default()
        },
        ..cfg
    };
    let (chaos, shared) = chaos_shared(cfg, lossy_plan(seed));
    World::run_on(shared, move |rank| {
        let umap: UnorderedMap<u64, u64> = UnorderedMap::with_config(
            rank,
            "chaos.fbs.umap",
            UnorderedMapConfig { hybrid: false, ..UnorderedMapConfig::default() },
        );
        rank.barrier();
        if rank.id() == 1 {
            // Stage async puts, then read each back with a *sync* get
            // WITHOUT waiting the futures: flush-before-sync must have
            // pushed the staged batch out ahead of the get.
            let futs: Vec<_> =
                (0..N).map(|k| umap.put_async(k, k + 100).unwrap()).collect();
            for k in 0..N {
                assert_eq!(
                    umap.get(&k).unwrap(),
                    Some(k + 100),
                    "sync get overtook staged async put for key {k}"
                );
            }
            for f in futs {
                f.wait().unwrap();
            }
        }
        rank.barrier();
    });
    assert!(chaos.chaos_stats().total_faults() > 0);
}

/// A rank marked down degrades every container op immediately with a typed
/// [`HclError::OwnerDown`] — no RPC is issued and no retry budget is burned.
/// Before the shared dispatcher, only `UnorderedMap` honoured failure marks;
/// `Queue::pop` and `OrderedMap::get` against a downed owner would hang out
/// the full retry schedule. `hybrid: false` forces the remote path so the
/// degradation check is what short-circuits, not the local bypass.
#[test]
fn marked_down_owner_degrades_instead_of_hanging() {
    let cfg = retrying(
        WorldConfig { nodes: 2, ranks_per_node: 1, ..WorldConfig::small() },
        0xD04,
    );
    World::run(cfg, |rank| {
        let q: Queue<u64> = Queue::with_config(
            rank,
            "deg-q",
            QueueConfig { hybrid: false, ..QueueConfig::default() },
        );
        let m: OrderedMap<u64, u64> = OrderedMap::with_config(
            rank,
            "deg-m",
            OrderedConfig { hybrid: false, ..OrderedConfig::default() },
        );
        rank.barrier();
        if rank.id() == 1 {
            q.push(7).unwrap();
            m.put(42, 7).unwrap();

            // Mark every owner down; each handle keeps its own registry.
            q.mark_down(0);
            m.mark_down(0);
            m.mark_down(1);

            let t0 = Instant::now();
            match q.pop() {
                Err(HclError::OwnerDown(0)) => {}
                other => panic!("queue pop against downed owner: {other:?}"),
            }
            match m.get(&42) {
                Err(HclError::OwnerDown(_)) => {}
                other => panic!("map get against downed owner: {other:?}"),
            }
            // Degradation must be immediate: well under one 300ms attempt
            // timeout, let alone the six-attempt resilient schedule.
            assert!(
                t0.elapsed() < Duration::from_millis(250),
                "degraded ops consumed the retry budget: {:?}",
                t0.elapsed()
            );

            // Clearing the mark restores service and the data is intact.
            q.mark_up(0);
            m.mark_up(0);
            m.mark_up(1);
            assert_eq!(q.pop().unwrap(), Some(7));
            assert_eq!(m.get(&42).unwrap(), Some(7));
        }
        rank.barrier();
    });
}

/// The flight recorder must turn a fault-injection run into a legible
/// post-mortem: after a full partition exhausts a push's retry budget, the
/// failing rank's dump names the failed op, shows the retransmission
/// attempts the RPC layer made, and ends in the `RetriesExhausted` outcome;
/// after the owner is marked down, a rejected pop adds the `OwnerDown`
/// trail. (ISSUE 5 acceptance: ChaosFabric drop plan -> flight dump.)
#[test]
fn flight_recorder_captures_partition_failure_and_owner_down() {
    let seed = 0xF11;
    let cfg = retrying(
        WorldConfig { nodes: 2, ranks_per_node: 1, ..WorldConfig::small() },
        seed,
    );
    let cfg = WorldConfig {
        retry: RetryPolicy { max_attempts: 3, ..cfg.retry }
            .with_attempt_timeout(Duration::from_millis(150)),
        ..cfg
    };
    let plan = FaultPlan::new(seed).for_pair_class(
        cfg.ep_of(1),
        cfg.ep_of(0),
        OpClass::Send,
        FaultRule::NONE.drop(1.0),
    );
    let (chaos, shared) = chaos_shared(cfg, plan);
    World::run_on(shared, move |rank| {
        let q: Queue<u64> = Queue::with_config(
            rank,
            "flight.q",
            QueueConfig { owner: 0, hybrid: false, ..Default::default() },
        );
        rank.barrier();
        if rank.id() == 1 {
            q.push(42).expect_err("push across a full partition must fail");
            let dump = rank
                .telemetry()
                .flight()
                .last_dump()
                .expect("retry exhaustion must dump the flight recorder");
            assert!(dump.contains("queue.push"), "dump must name the failed op:\n{dump}");
            assert!(
                dump.contains("retransmit"),
                "dump must show the retry attempts:\n{dump}"
            );
            assert!(
                dump.contains("retries-exhausted"),
                "dump must record the final outcome:\n{dump}"
            );

            // Owner marked down: the rejected op extends the same ring.
            q.mark_down(0);
            match q.pop() {
                Err(HclError::OwnerDown(0)) => {}
                other => panic!("pop against downed owner: {other:?}"),
            }
            let dump = rank.telemetry().flight().last_dump().expect("owner-down must dump");
            assert!(dump.contains("queue.pop"), "dump must name the rejected op:\n{dump}");
            assert!(dump.contains("owner-down"), "dump must record OwnerDown:\n{dump}");
            // The earlier failure trail is still in the ring.
            assert!(dump.contains("queue.push") && dump.contains("retries-exhausted"));

            // And the registry counted both failure modes.
            let snap = rank.telemetry_snapshot();
            let counter = |name: &str| {
                snap.counters.iter().find(|(k, _)| k == name).map(|(_, v)| *v).unwrap_or(0)
            };
            assert!(counter("hcl_rpc_retransmits") >= 2, "2 of 3 attempts are retransmits");
            assert_eq!(counter("hcl_rpc_retries_exhausted"), 1);
            assert_eq!(counter("hcl_core_ops_owner_down"), 1);
        }
        rank.barrier();
    });
    assert!(chaos.chaos_stats().drops >= 3);
}

/// Replica-read failover must work identically for BOTH map containers
/// (PR 8 satellite): with `replicas: 1`, an `OrderedMap` whose owner is
/// marked down serves `get`s from the replica on the next partition — the
/// same degraded-read contract `UnorderedMap` has had since PR 2 — while
/// degradable writes still reject fast with [`HclError::OwnerDown`]. Run
/// over a duplicating, delaying (but lossless) fabric: replication
/// forwards are fire-and-forget with no retransmission, so packet *loss*
/// legitimately loses replicas, but duplication and reordering must not
/// corrupt them and the failover read path itself must stay exact.
#[test]
fn ordered_map_serves_replica_reads_when_owner_down() {
    let seed = 0x0D0;
    let cfg = retrying(
        WorldConfig { nodes: 2, ranks_per_node: 1, ..WorldConfig::small() },
        seed,
    );
    let plan = FaultPlan::new(seed).for_class(
        OpClass::Send,
        FaultRule::NONE
            .dup(0.05)
            .delay(Duration::from_micros(300))
            .jitter(Duration::from_micros(300)),
    );
    let (chaos, shared) = chaos_shared(cfg, plan);
    World::run_on(shared, move |rank| {
        let omap: OrderedMap<u64, u64> = OrderedMap::with_config(
            rank,
            "repl.omap",
            OrderedConfig { replicas: 1, hybrid: false, ..OrderedConfig::default() },
        );
        let umap: UnorderedMap<u64, u64> = UnorderedMap::with_config(
            rank,
            "repl.umap",
            UnorderedMapConfig { replicas: 1, hybrid: false, ..UnorderedMapConfig::default() },
        );
        rank.barrier();
        if rank.id() == 0 {
            for k in 0..N {
                omap.put(k, k * 9 + 1).unwrap();
                umap.put(k, k * 9 + 1).unwrap();
            }
            omap.flush_replication().unwrap();
            umap.flush_replication().unwrap();
        }
        rank.barrier();

        // Every partition owner fails. Degradable writes must reject
        // immediately on both containers...
        for owner in [0u32, 1] {
            omap.mark_down(owner);
            umap.mark_down(owner);
        }
        match omap.put(999, 1) {
            Err(HclError::OwnerDown(_)) => {}
            other => panic!("ordered put against downed owner: {other:?}"),
        }
        match umap.put(999, 1) {
            Err(HclError::OwnerDown(_)) => {}
            other => panic!("unordered put against downed owner: {other:?}"),
        }
        // ...while reads degrade to the replicas — identically.
        for k in 0..N {
            assert_eq!(omap.get(&k).unwrap(), Some(k * 9 + 1), "omap replica read lost {k}");
            assert_eq!(umap.get(&k).unwrap(), Some(k * 9 + 1), "umap replica read lost {k}");
        }
        for owner in [0u32, 1] {
            omap.mark_up(owner);
            umap.mark_up(owner);
        }
        rank.barrier();
    });
    assert!(chaos.chaos_stats().total_faults() > 0);
}

/// Soak entry point for `just test-faults-soak`: seed comes from the
/// environment so CI can sweep many fault schedules.
#[test]
#[ignore = "soak target; run via `just test-faults-soak`"]
fn soak_lossy_workload_env_seed() {
    let seed = std::env::var("HCL_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1u64);
    let snap = run_lossy_workload(seed);
    assert!(snap.total_faults() > 0, "soak run observed no faults: {snap:?}");
}

/// Scenario satellite: a delay-only plan (every send slowed, nothing
/// dropped) must degrade latency smoothly, not trip the retry machinery
/// into livelock. The mixed-op scenario driver runs an async-window
/// zipfian workload; afterwards the op p99 must sit well under one
/// attempt timeout (a retried op costs at least one full timeout, so a
/// bounded p99 proves the retry path stayed cold) and every rank's
/// flight recorder must hold `BatchFlush` flush-cause events from the
/// async update windows.
#[test]
fn delay_plan_scenario_has_bounded_p99_and_flush_events() {
    use hcl_bench::workload::{run_scenario, ContainerKind, KeyDist, Mix, WorkloadSpec};
    use hcl_telemetry::{EventKind, TelemetryConfig};

    let seed = 0xDE1A;
    let cfg = retrying(
        WorldConfig { nodes: 2, ranks_per_node: 2, ..WorldConfig::small() },
        seed,
    );
    // A deep flight ring so the batch flushes from early windows are still
    // resident after the tail of sync reads churns the ring.
    let cfg = WorldConfig {
        telemetry: TelemetryConfig { flight_capacity: 4096, ..TelemetryConfig::default() },
        ..cfg
    };
    let plan = FaultPlan::new(seed).for_class(
        OpClass::Send,
        FaultRule::NONE
            .delay(Duration::from_micros(400))
            .jitter(Duration::from_micros(400)),
    );
    let (chaos, shared) = chaos_shared(cfg, plan);
    let spec = WorkloadSpec {
        seed,
        ops_per_rank: 120,
        key_space: 64,
        value_bytes: 32,
        dist: KeyDist::Zipfian { theta: 0.99 },
        mix: Mix::UPDATE_HEAVY,
        async_window: 8,
        scan_width: 4,
    };
    let per_rank = World::run_on(shared, move |rank| {
        let stats = run_scenario(rank, ContainerKind::UnorderedMap, "chaos.delay.umap", &spec);
        let flushes = rank
            .telemetry()
            .flight()
            .events()
            .iter()
            .filter(|e| e.kind == EventKind::BatchFlush)
            .count();
        (stats, flushes)
    });

    let attempt_timeout_ns = 300_000_000u64; // matches `retrying` above
    for (rank_id, (stats, flushes)) in per_rank.into_iter().enumerate() {
        assert_eq!(stats.errors, 0, "rank {rank_id} surfaced errors under delay-only faults");
        assert_eq!(stats.ops, spec.ops_per_rank, "rank {rank_id} fell short of its op count");
        let p99 = stats.latency.p99();
        assert!(
            p99 < attempt_timeout_ns,
            "rank {rank_id} p99 {p99} ns >= one attempt timeout: retry livelock under delay plan"
        );
        assert!(
            flushes > 0,
            "rank {rank_id} recorded no BatchFlush events despite async windows"
        );
    }
    let snap = chaos.chaos_stats();
    assert!(snap.delayed_ops > 0, "delay plan never fired: {snap:?}");
    assert_eq!(snap.drops, 0, "delay-only plan must not drop: {snap:?}");
}

/// Shared body for the mid-migration kill scenario: the driver (rank 0)
/// cannot reach the drain victim (rank 2) — every request send on that
/// pair is dropped — so the copy phase exhausts its retry budget. The
/// rebalance must abort with the *same* typed [`HclError::Rebalance`] on
/// every rank within the retry budget, leave the membership (and its
/// epoch) untouched, and lose no data.
fn run_partitioned_victim_drain(seed: u64) {
    use hcl::drain_rank;

    let cfg = retrying(
        WorldConfig {
            nodes: 2,
            ranks_per_node: 2,
            vparts_per_member: 2,
            ..WorldConfig::small()
        },
        seed,
    );
    let cfg = WorldConfig {
        retry: RetryPolicy { max_attempts: 3, ..cfg.retry }
            .with_attempt_timeout(Duration::from_millis(150)),
        ..cfg
    };
    // Kill exactly the driver -> victim direction: the shard copy cannot
    // start, but every other path (including the victim serving reads)
    // stays healthy.
    let plan = FaultPlan::new(seed).for_pair_class(
        cfg.ep_of(0),
        cfg.ep_of(2),
        OpClass::Send,
        FaultRule::NONE.drop(1.0),
    );
    let (chaos, shared) = chaos_shared(cfg, plan);
    World::run_on(shared, move |rank| {
        let umap: UnorderedMap<u64, u64> = UnorderedMap::new(rank, "mig.kill.umap");
        rank.barrier();
        // Rank 1 seeds: its path to both owners (0 local-node, 2 remote)
        // is healthy. Rank 0 must stay quiet — its sends to rank 2 vanish.
        if rank.id() == 1 {
            for k in 0..64u64 {
                umap.put(k, k + 5).unwrap();
            }
        }
        rank.barrier();
        let membership = Arc::clone(rank.world().membership());
        let e0 = membership.epoch();
        let members0 = membership.current().members().to_vec();

        let start = Instant::now();
        let err = drain_rank(rank, 2)
            .expect_err("drain across a partitioned driver->victim pair must abort");
        let elapsed = start.elapsed();
        match &err {
            HclError::Rebalance(msg) => {
                assert!(
                    msg.contains("begin failed") || msg.contains("transfer failed"),
                    "abort must name the failed copy step, got: {msg}"
                );
            }
            other => panic!("expected HclError::Rebalance, got: {other}"),
        }
        assert!(
            elapsed < Duration::from_secs(30),
            "retry budget must bound the abort, took {elapsed:?}"
        );
        // Every rank observed the identical typed outcome.
        let msgs = rank.allgather(format!("{err}"));
        assert!(msgs.iter().all(|m| *m == msgs[0]), "ranks disagree on the abort: {msgs:?}");

        // Nothing committed: same members, same epoch, no keys moved.
        assert_eq!(membership.epoch(), e0, "an aborted rebalance must not bump the epoch");
        assert_eq!(membership.current().members(), &members0[..]);
        rank.barrier();
        // Ranks 1 and 3 can reach both owners (the chaos pair is only
        // 0 -> 2); every seeded key must still be there.
        if rank.id() == 1 || rank.id() == 3 {
            for k in 0..64u64 {
                assert_eq!(umap.get(&k).unwrap(), Some(k + 5), "key {k} lost in aborted drain");
            }
        }
        rank.barrier();
    });
    // The copy phase burned its whole budget against the dead pair.
    assert!(chaos.chaos_stats().drops >= 3, "the drop rule never fired");
}

/// A rank "killed" mid-migration (all driver->victim sends dropped) must
/// produce a typed, bounded, collective abort — not a hang, not a partial
/// commit. See `run_partitioned_victim_drain` for the invariants.
#[test]
fn drain_with_unreachable_victim_aborts_typed_and_bounded() {
    run_partitioned_victim_drain(0x9A7E);
}

/// Soak entry point for `just test-membership-soak`: sweep the kill
/// scenario across environment-chosen seeds.
#[test]
#[ignore = "soak target; run via `just test-membership-soak`"]
fn soak_partitioned_victim_drain_env_seed() {
    let seed = std::env::var("HCL_MEMBERSHIP_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(2u64);
    for round in 0..4 {
        run_partitioned_victim_drain(seed.wrapping_add(round * 0x9E37_79B9));
    }
}
