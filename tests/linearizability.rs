//! Linearizability of the public containers, checked on real histories.
//!
//! Requires the `history` feature:
//!
//! ```text
//! cargo test --features history --test linearizability
//! ```
//!
//! Every rank attaches the same shared [`Recorder`] to its container handle,
//! runs a contended workload, and after the world tears down the drained
//! history is replayed against the matching sequential spec with
//! [`hcl::check`] (Wing–Gong with P-compositionality for keyed structures).
#![cfg(feature = "history")]

use std::sync::Arc;

use hcl::{
    check, DsSpec, HistoryRecorder, OrderedMap, PriorityQueue, Queue, Recorder, UnorderedMap,
    UnorderedSet,
};
use hcl_runtime::{World, WorldConfig};

fn mem_world(nodes: u32, rpn: u32) -> WorldConfig {
    WorldConfig { nodes, ranks_per_node: rpn, ..WorldConfig::small() }
}

fn recorder() -> HistoryRecorder {
    Arc::new(Recorder::new())
}

#[test]
fn unordered_map_history_is_linearizable() {
    let rec = recorder();
    let rec2 = Arc::clone(&rec);
    World::run(mem_world(2, 2), move |rank| {
        let mut map: UnorderedMap<u64, u64> = UnorderedMap::new(rank, "lin.umap");
        map.set_recorder(Arc::clone(&rec2));
        rank.barrier();
        let me = rank.id() as u64;
        for i in 0..40u64 {
            let k = i % 8; // eight keys contended by all four ranks
            map.put(k, me * 1000 + i).unwrap();
            map.get(&k).unwrap();
            if i % 4 == 3 {
                map.erase(&k).unwrap();
            }
        }
        rank.barrier();
    });
    let hist = rec.take();
    assert!(hist.len() >= 4 * 90, "expected a dense history, got {} ops", hist.len());
    check(&DsSpec::map(), &hist).expect("unordered_map history must be linearizable");
}

#[test]
fn unordered_set_history_is_linearizable() {
    let rec = recorder();
    let rec2 = Arc::clone(&rec);
    World::run(mem_world(2, 2), move |rank| {
        let mut set: UnorderedSet<u64> = UnorderedSet::with_config(
            rank,
            "lin.uset",
            hcl::UnorderedMapConfig::default(),
        );
        set.set_recorder(Arc::clone(&rec2));
        rank.barrier();
        for i in 0..40u64 {
            let k = i % 6;
            set.insert(k).unwrap();
            set.contains(&k).unwrap();
            if i % 3 == 2 {
                set.remove(&k).unwrap();
            }
        }
        rank.barrier();
    });
    let hist = rec.take();
    assert!(!hist.is_empty());
    check(&DsSpec::set(), &hist).expect("unordered_set history must be linearizable");
}

#[test]
fn ordered_map_history_is_linearizable() {
    let rec = recorder();
    let rec2 = Arc::clone(&rec);
    World::run(mem_world(2, 2), move |rank| {
        let mut map: OrderedMap<u64, u64> = OrderedMap::new(rank, "lin.omap");
        map.set_recorder(Arc::clone(&rec2));
        rank.barrier();
        let me = rank.id() as u64;
        for i in 0..30u64 {
            let k = i % 5;
            map.put(k, me * 1000 + i).unwrap();
            map.get(&k).unwrap();
            if i % 5 == 4 {
                map.erase(&k).unwrap();
            }
        }
        rank.barrier();
    });
    let hist = rec.take();
    assert!(!hist.is_empty());
    check(&DsSpec::map(), &hist).expect("ordered_map history must be linearizable");
}

#[test]
fn queue_history_is_linearizable() {
    // The queue spec is not keyed, so this exercises the single-partition
    // Wing–Gong search over the whole history; the workload is sized to keep
    // that tractable while still racing four ranks on one FIFO.
    let rec = recorder();
    let rec2 = Arc::clone(&rec);
    World::run(mem_world(2, 2), move |rank| {
        let mut q: Queue<u64> = Queue::new(rank, "lin.q");
        q.set_recorder(Arc::clone(&rec2));
        rank.barrier();
        let me = rank.id() as u64;
        for i in 0..12u64 {
            q.push(me * 100 + i).unwrap();
            if i % 2 == 1 {
                q.pop().unwrap();
            }
        }
        rank.barrier();
        if rank.id() == 0 {
            while q.pop().unwrap().is_some() {}
        }
        rank.barrier();
    });
    let hist = rec.take();
    assert!(!hist.is_empty());
    check(&DsSpec::queue(), &hist).expect("queue history must be linearizable");
}

#[test]
fn priority_queue_history_is_linearizable() {
    // The pq spec orders by encoded bytes, so use fixed-width ASCII strings:
    // their DataBox encoding preserves the String `Ord` the real structure
    // pops by.
    let rec = recorder();
    let rec2 = Arc::clone(&rec);
    World::run(mem_world(2, 2), move |rank| {
        let mut pq: PriorityQueue<String> = PriorityQueue::new(rank, "lin.pq");
        pq.set_recorder(Arc::clone(&rec2));
        rank.barrier();
        for i in 0..10u32 {
            pq.push(format!("{:02}-{:02}", i, rank.id())).unwrap();
            if i % 2 == 1 {
                pq.pop().unwrap();
            }
        }
        rank.barrier();
        if rank.id() == 0 {
            while pq.pop().unwrap().is_some() {}
        }
        rank.barrier();
    });
    let hist = rec.take();
    assert!(!hist.is_empty());
    check(&DsSpec::pq(), &hist).expect("priority_queue history must be linearizable");
}
