//! Linearizability of the public containers, checked on real histories.
//!
//! Requires the `history` feature:
//!
//! ```text
//! cargo test --features history --test linearizability
//! ```
//!
//! Every rank attaches the same shared [`Recorder`] to its container handle,
//! runs a contended workload, and after the world tears down the drained
//! history is replayed against the matching sequential spec with
//! [`hcl::check`] (Wing–Gong with P-compositionality for keyed structures).
#![cfg(feature = "history")]

use std::sync::Arc;

use hcl::queue::QueueConfig;
use hcl::{
    check, DsSpec, HistoryRecorder, OrderedMap, PriorityQueue, Queue, Recorder, UnorderedMap,
    UnorderedMapConfig, UnorderedSet,
};
use hcl_bench::workload::{
    run_on_queue, run_on_unordered_map, run_on_unordered_set, KeyDist, Mix, WorkloadSpec,
};
use hcl_runtime::{World, WorldConfig};

fn mem_world(nodes: u32, rpn: u32) -> WorldConfig {
    WorldConfig { nodes, ranks_per_node: rpn, ..WorldConfig::small() }
}

fn recorder() -> HistoryRecorder {
    Arc::new(Recorder::new())
}

#[test]
fn unordered_map_history_is_linearizable() {
    let rec = recorder();
    let rec2 = Arc::clone(&rec);
    World::run(mem_world(2, 2), move |rank| {
        let mut map: UnorderedMap<u64, u64> = UnorderedMap::new(rank, "lin.umap");
        map.set_recorder(Arc::clone(&rec2));
        rank.barrier();
        let me = rank.id() as u64;
        for i in 0..40u64 {
            let k = i % 8; // eight keys contended by all four ranks
            map.put(k, me * 1000 + i).unwrap();
            map.get(&k).unwrap();
            if i % 4 == 3 {
                map.erase(&k).unwrap();
            }
        }
        rank.barrier();
    });
    let hist = rec.take();
    assert!(hist.len() >= 4 * 90, "expected a dense history, got {} ops", hist.len());
    check(&DsSpec::map(), &hist).expect("unordered_map history must be linearizable");
}

#[test]
fn unordered_set_history_is_linearizable() {
    let rec = recorder();
    let rec2 = Arc::clone(&rec);
    World::run(mem_world(2, 2), move |rank| {
        let mut set: UnorderedSet<u64> = UnorderedSet::with_config(
            rank,
            "lin.uset",
            hcl::UnorderedMapConfig::default(),
        );
        set.set_recorder(Arc::clone(&rec2));
        rank.barrier();
        for i in 0..40u64 {
            let k = i % 6;
            set.insert(k).unwrap();
            set.contains(&k).unwrap();
            if i % 3 == 2 {
                set.remove(&k).unwrap();
            }
        }
        rank.barrier();
    });
    let hist = rec.take();
    assert!(!hist.is_empty());
    check(&DsSpec::set(), &hist).expect("unordered_set history must be linearizable");
}

#[test]
fn ordered_map_history_is_linearizable() {
    let rec = recorder();
    let rec2 = Arc::clone(&rec);
    World::run(mem_world(2, 2), move |rank| {
        let mut map: OrderedMap<u64, u64> = OrderedMap::new(rank, "lin.omap");
        map.set_recorder(Arc::clone(&rec2));
        rank.barrier();
        let me = rank.id() as u64;
        for i in 0..30u64 {
            let k = i % 5;
            map.put(k, me * 1000 + i).unwrap();
            map.get(&k).unwrap();
            if i % 5 == 4 {
                map.erase(&k).unwrap();
            }
        }
        rank.barrier();
    });
    let hist = rec.take();
    assert!(!hist.is_empty());
    check(&DsSpec::map(), &hist).expect("ordered_map history must be linearizable");
}

#[test]
fn queue_history_is_linearizable() {
    // The queue spec is not keyed, so this exercises the single-partition
    // Wing–Gong search over the whole history; the workload is sized to keep
    // that tractable while still racing four ranks on one FIFO.
    let rec = recorder();
    let rec2 = Arc::clone(&rec);
    World::run(mem_world(2, 2), move |rank| {
        let mut q: Queue<u64> = Queue::new(rank, "lin.q");
        q.set_recorder(Arc::clone(&rec2));
        rank.barrier();
        let me = rank.id() as u64;
        for i in 0..12u64 {
            q.push(me * 100 + i).unwrap();
            if i % 2 == 1 {
                q.pop().unwrap();
            }
        }
        rank.barrier();
        if rank.id() == 0 {
            while q.pop().unwrap().is_some() {}
        }
        rank.barrier();
    });
    let hist = rec.take();
    assert!(!hist.is_empty());
    check(&DsSpec::queue(), &hist).expect("queue history must be linearizable");
}

#[test]
fn priority_queue_history_is_linearizable() {
    // The pq spec orders by encoded bytes, so use fixed-width ASCII strings:
    // their DataBox encoding preserves the String `Ord` the real structure
    // pops by.
    let rec = recorder();
    let rec2 = Arc::clone(&rec);
    World::run(mem_world(2, 2), move |rank| {
        let mut pq: PriorityQueue<String> = PriorityQueue::new(rank, "lin.pq");
        pq.set_recorder(Arc::clone(&rec2));
        rank.barrier();
        for i in 0..10u32 {
            pq.push(format!("{:02}-{:02}", i, rank.id())).unwrap();
            if i % 2 == 1 {
                pq.pop().unwrap();
            }
        }
        rank.barrier();
        if rank.id() == 0 {
            while pq.pop().unwrap().is_some() {}
        }
        rank.barrier();
    });
    let hist = rec.take();
    assert!(!hist.is_empty());
    check(&DsSpec::pq(), &hist).expect("priority_queue history must be linearizable");
}

// ---------------------------------------------------------------------------
// Scenario-driver histories: the YCSB-style mixed-op workload driver from
// `hcl-bench` runs its zipfian mixes against recorder-instrumented handles,
// so the exact op streams the benchmark suite measures are the streams the
// Wing–Gong checker replays. Only scan-free mixes with `async_window: 0`
// are used: every op the driver issues on those paths is history-recorded
// (scans and async puts are not, and an unrecorded mutation would make the
// history unsatisfiable by construction).

/// A small contended spec: zipfian over a handful of keys so all four
/// ranks keep colliding on the hot head.
fn driver_spec(seed: u64, ops_per_rank: u64, mix: Mix) -> WorkloadSpec {
    WorkloadSpec {
        seed,
        ops_per_rank,
        key_space: 8,
        value_bytes: 8,
        dist: KeyDist::Zipfian { theta: 0.99 },
        mix,
        async_window: 0,
        scan_width: 4,
    }
}

#[test]
fn zipfian_churn_map_history_is_linearizable() {
    let rec = recorder();
    let rec2 = Arc::clone(&rec);
    World::run(mem_world(2, 2), move |rank| {
        let mut map: UnorderedMap<u64, Vec<u8>> = UnorderedMap::with_config(
            rank,
            "lin.drv.umap",
            UnorderedMapConfig { hybrid: false, ..UnorderedMapConfig::default() },
        );
        map.set_recorder(Arc::clone(&rec2));
        rank.barrier();
        let stats = run_on_unordered_map(rank, &map, &driver_spec(11, 60, Mix::CHURN));
        assert_eq!(stats.errors, 0);
        rank.barrier();
    });
    let hist = rec.take();
    // 4 ranks × (prefill share + 60 mixed ops), all of them recorded.
    assert!(hist.len() >= 4 * 60, "sparse history: {} ops", hist.len());
    check(&DsSpec::map(), &hist).expect("zipfian churn map history must be linearizable");
}

#[test]
fn zipfian_update_heavy_set_history_is_linearizable() {
    let rec = recorder();
    let rec2 = Arc::clone(&rec);
    World::run(mem_world(2, 2), move |rank| {
        let mut set: UnorderedSet<u64> = UnorderedSet::with_config(
            rank,
            "lin.drv.uset",
            UnorderedMapConfig { hybrid: false, ..UnorderedMapConfig::default() },
        );
        set.set_recorder(Arc::clone(&rec2));
        rank.barrier();
        let stats = run_on_unordered_set(rank, &set, &driver_spec(13, 60, Mix::UPDATE_HEAVY));
        assert_eq!(stats.errors, 0);
        rank.barrier();
    });
    let hist = rec.take();
    assert!(!hist.is_empty());
    check(&DsSpec::set(), &hist).expect("zipfian set history must be linearizable");
}

#[test]
fn queue_mix_history_is_linearizable() {
    // Unkeyed spec → whole-history search; kept small to stay tractable.
    let rec = recorder();
    let rec2 = Arc::clone(&rec);
    World::run(mem_world(2, 2), move |rank| {
        let mut q: Queue<Vec<u8>> =
            Queue::with_config(rank, "lin.drv.q", QueueConfig { owner: 0, hybrid: false, ..Default::default() });
        q.set_recorder(Arc::clone(&rec2));
        rank.barrier();
        let spec = WorkloadSpec {
            key_space: 4,
            ..driver_spec(17, 10, Mix::QUEUE_MIX)
        };
        let stats = run_on_queue(rank, &q, &spec);
        assert_eq!(stats.errors, 0);
        rank.barrier();
    });
    let hist = rec.take();
    assert!(!hist.is_empty());
    check(&DsSpec::queue(), &hist).expect("queue mix history must be linearizable");
}

// ---------------------------------------------------------------------------
// Lease-bounded staleness (PR 8): with the client-side lease cache on,
// repeat reads of hot keys are served locally and recorded as
// `MapGetCached` carrying their grant stamp. Such histories are *not*
// strictly linearizable in general — a cached read may return a value that
// was overwritten after the lease was granted — but they must satisfy the
// lease contract checked by [`check_lease`]: every cached read's value was
// current at some point inside its own lease window, and all non-cached
// operations keep strict real-time order.

fn lease_driver_world(
    seed: u64,
    ops_per_rank: u64,
    rec: HistoryRecorder,
    hits_out: Arc<std::sync::atomic::AtomicU64>,
) {
    World::run(mem_world(2, 2), move |rank| {
        let mut map: UnorderedMap<u64, Vec<u8>> = UnorderedMap::with_config(
            rank,
            "lin.lease.umap",
            UnorderedMapConfig {
                hybrid: false,
                lease: Some(hcl::LeaseConfig {
                    ttl: std::time::Duration::from_millis(40),
                    // Lease on the second sighting: the zipfian head keys
                    // go hot almost immediately.
                    hot_threshold: 1,
                    ..hcl::LeaseConfig::default()
                }),
                ..UnorderedMapConfig::default()
            },
        );
        map.set_recorder(Arc::clone(&rec));
        rank.barrier();
        let stats = run_on_unordered_map(rank, &map, &driver_spec(seed, ops_per_rank, Mix::READ_HEAVY));
        assert_eq!(stats.errors, 0);
        rank.barrier();
        if let Some(cs) = map.cache_stats() {
            hits_out.fetch_add(cs.hits, std::sync::atomic::Ordering::Relaxed);
        }
        rank.barrier();
    });
}

#[test]
fn cached_zipfian_history_satisfies_lease_bound() {
    let rec = recorder();
    let hits = Arc::new(std::sync::atomic::AtomicU64::new(0));
    lease_driver_world(23, 80, Arc::clone(&rec), Arc::clone(&hits));
    let hist = rec.take();
    assert!(hist.len() >= 4 * 80, "sparse history: {} ops", hist.len());
    assert!(
        hits.load(std::sync::atomic::Ordering::Relaxed) > 0,
        "the zipfian read-heavy run must serve some reads from the lease cache"
    );
    hcl::check_lease(&DsSpec::map(), &hist)
        .expect("cached zipfian history must satisfy lease-bounded staleness");
}

/// Lease-mode seeded soak: many cached-read histories across fresh worlds.
/// Run via `just check-lin-lease-soak`; `HCL_LIN_SEED` pins the base seed
/// and `HCL_LIN_SOAK_ITERS` the round count.
#[test]
#[ignore = "soak: run via `just check-lin-lease-soak`"]
fn lease_soak_many_seeds() {
    let base: u64 = std::env::var("HCL_LIN_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0x1EA5E);
    let iters: u64 = std::env::var("HCL_LIN_SOAK_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(8);
    for round in 0..iters {
        let seed = base.wrapping_add(round.wrapping_mul(0x9E37_79B9));
        let rec = recorder();
        let hits = Arc::new(std::sync::atomic::AtomicU64::new(0));
        lease_driver_world(seed, 100, Arc::clone(&rec), Arc::clone(&hits));
        hcl::check_lease(&DsSpec::map(), &rec.take())
            .unwrap_or_else(|e| panic!("lease soak seed {seed} (round {round}): {e:?}"));
    }
}

/// Seeded soak: many driver histories across fresh worlds. Run via
/// `just check-lin-soak`; `HCL_LIN_SEED` pins the base seed and
/// `HCL_LIN_SOAK_ITERS` the round count, so a failing seed replays exactly.
#[test]
#[ignore = "soak: run via `just check-lin-soak`"]
fn zipfian_soak_many_seeds() {
    let base: u64 = std::env::var("HCL_LIN_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0xD15C0);
    let iters: u64 = std::env::var("HCL_LIN_SOAK_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(8);
    for round in 0..iters {
        let seed = base.wrapping_add(round.wrapping_mul(0x9E37_79B9));
        let rec = recorder();
        let rec2 = Arc::clone(&rec);
        World::run(mem_world(2, 2), move |rank| {
            let mut map: UnorderedMap<u64, Vec<u8>> = UnorderedMap::with_config(
                rank,
                "lin.soak.umap",
                UnorderedMapConfig { hybrid: false, ..UnorderedMapConfig::default() },
            );
            map.set_recorder(Arc::clone(&rec2));
            rank.barrier();
            run_on_unordered_map(rank, &map, &driver_spec(seed, 80, Mix::CHURN));
            rank.barrier();
        });
        check(&DsSpec::map(), &rec.take())
            .unwrap_or_else(|e| panic!("soak seed {seed} (round {round}): {e:?}"));
    }
}
