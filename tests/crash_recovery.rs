//! Subprocess crash harness for the durability subsystem (PR 10).
//!
//! The runtime is threads-as-ranks in one process, so a realistic crash has
//! to kill a *process*: each test re-executes its own test binary as a child
//! (the `#[ignore]`d `crash_child_worker` below), lets the child's ranks
//! stream durable writes while appending every *acknowledged* key to a
//! per-rank ack file, then SIGKILLs the child mid-write and recovers the
//! container in-process from the surviving write-ahead logs.
//!
//! Contracts checked:
//! * **strict** sync epochs: every acknowledged write is on disk before the
//!   ack — zero acknowledged-write loss, bit-exact values;
//! * **relaxed** sync epochs: loss is confined to the un-synced tail — per
//!   (writer rank, owner partition) the missing keys form a *suffix* of
//!   that writer's acknowledged sequence, never a hole;
//! * recovery integrates with membership: after replay the world can
//!   `drain_rank`/`admit_rank` a victim and still serve every surviving
//!   key error-free (the "killed rank rejoins with recovered data" story);
//! * `crash_soak`: the same kill/recover cycle iterated with a seeded RNG,
//!   reusing one log directory so later children replay, compact and
//!   append over earlier generations' state (`just crash-soak`).

use std::collections::HashMap;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use hcl::unordered::UnorderedMapConfig;
use hcl::{admit_rank, drain_rank, stable_hash, PersistConfig, SyncPolicy, UnorderedMap};
use hcl_runtime::{World, WorldConfig};

const RANKS: u32 = 4;
const VALUE_XOR: u64 = 0x5a5a_5a5a;
/// Acks per rank the parent waits for before pulling the trigger.
const KILL_AFTER_ACKS: usize = 300;

fn ww() -> WorldConfig {
    WorldConfig { nodes: 2, ranks_per_node: 2, ..WorldConfig::small() }
}

fn key_of(rank: u32, iter: u64, i: u64) -> u64 {
    (iter << 48) | ((rank as u64) << 32) | i
}

/// The child half: stream durable puts forever (the parent kills us),
/// acking each completed put to a per-rank file. Plain `write` syscalls
/// survive SIGKILL (the page cache outlives the process), so the ack files
/// need no fsync of their own.
#[test]
#[ignore = "subprocess worker spawned by the crash-recovery tests"]
fn crash_child_worker() {
    let Some(dir) = std::env::var_os("HCL_CRASH_DIR") else { return };
    let dir = PathBuf::from(dir);
    let mode = std::env::var("HCL_CRASH_MODE").unwrap_or_else(|_| "strict".into());
    let iter: u64 = std::env::var("HCL_CRASH_ITER").ok().and_then(|s| s.parse().ok()).unwrap_or(0);
    let policy = match mode.as_str() {
        "relaxed" => SyncPolicy::Relaxed { interval: Duration::from_millis(25) },
        _ => SyncPolicy::Strict,
    };
    let pcfg = PersistConfig { policy, ..PersistConfig::strict(dir.join("logs")) };
    World::run(ww(), move |rank| {
        let map: UnorderedMap<u64, u64> = UnorderedMap::with_config(
            rank,
            "crash.map",
            UnorderedMapConfig { persist: Some(pcfg.clone()), ..Default::default() },
        );
        rank.barrier();
        let mut ack = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(dir.join(format!("ack.{}.{}", iter, rank.id())))
            .expect("open ack file");
        for i in 0..1_000_000u64 {
            let k = key_of(rank.id(), iter, i);
            map.put(k, k ^ VALUE_XOR).expect("durable put");
            ack.write_all(format!("{k}\n").as_bytes()).expect("ack append");
        }
        rank.barrier();
    });
}

fn spawn_child(dir: &Path, mode: &str, iter: u64) -> Child {
    Command::new(std::env::current_exe().expect("own test binary"))
        .args(["--ignored", "--exact", "crash_child_worker", "--test-threads=1", "--nocapture"])
        .env("HCL_CRASH_DIR", dir)
        .env("HCL_CRASH_MODE", mode)
        .env("HCL_CRASH_ITER", iter.to_string())
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn crash child")
}

/// Complete (newline-terminated) acked keys of one rank, in ack order. A
/// torn final line — the kill landed mid-`write` — is ignored.
fn acked_keys(dir: &Path, iter: u64, rank: u32) -> Vec<u64> {
    let raw = std::fs::read(dir.join(format!("ack.{iter}.{rank}"))).unwrap_or_default();
    let text = String::from_utf8_lossy(&raw);
    let mut keys: Vec<u64> = Vec::new();
    for line in text.split_inclusive('\n') {
        if let Some(stripped) = line.strip_suffix('\n') {
            keys.push(stripped.parse().expect("ack line is a key"));
        }
    }
    keys
}

/// Wait until every rank acked at least `min` keys, kill -9, reap.
fn run_until_kill(dir: &Path, mode: &str, iter: u64, min: usize) {
    let mut child = spawn_child(dir, mode, iter);
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        std::thread::sleep(Duration::from_millis(10));
        let progressed = (0..RANKS).all(|r| acked_keys(dir, iter, r).len() >= min);
        if progressed {
            break;
        }
        if let Some(status) = child.try_wait().expect("poll crash child") {
            panic!("crash child exited early ({status:?}) before reaching the kill point");
        }
        assert!(Instant::now() < deadline, "crash child made no progress in 120s");
    }
    child.kill().expect("SIGKILL the crash child");
    let _ = child.wait();
}

/// Recover and check one generation's acked keys. `strict` demands every
/// acked key back; relaxed demands per-(writer, owner) suffix-only loss.
/// Returns (present, missing) counts.
fn verify_generation(
    rank: &hcl_runtime::Rank,
    map: &UnorderedMap<u64, u64>,
    dir: &Path,
    iter: u64,
    strict: bool,
) -> (usize, usize) {
    let me = rank.id();
    let acked = acked_keys(dir, iter, me);
    assert!(acked.len() >= KILL_AFTER_ACKS, "rank {me} acked too little to test anything");
    let members = rank.world().membership().current();
    let mut by_owner: HashMap<u32, Vec<u64>> = HashMap::new();
    for &k in &acked {
        by_owner.entry(members.owner_of_hash(stable_hash(&k))).or_default().push(k);
    }
    let (mut present, mut missing) = (0usize, 0usize);
    for (owner, keys) in by_owner {
        let mut lost_started = false;
        for &k in &keys {
            match map.get(&k).expect("recovered get") {
                Some(v) => {
                    assert_eq!(v, k ^ VALUE_XOR, "key {k} recovered with a corrupt value");
                    assert!(
                        !lost_started,
                        "writer {me}, owner {owner}: key {k} survived after an earlier \
                         loss — relaxed loss must be a suffix, not a hole"
                    );
                    present += 1;
                }
                None => {
                    assert!(
                        !strict,
                        "strict mode lost acknowledged key {k} (writer {me}, owner {owner})"
                    );
                    lost_started = true;
                    missing += 1;
                }
            }
        }
    }
    (present, missing)
}

fn fresh_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("hcl-crash-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// One kill/recover cycle plus the membership rejoin: drain a victim rank,
/// re-admit it, and demand every surviving key is still served.
fn crash_recover_once(name: &str, mode: &str) {
    let dir = fresh_dir(name);
    run_until_kill(&dir, mode, 0, KILL_AFTER_ACKS);
    let strict = mode == "strict";
    let policy = match mode {
        "relaxed" => SyncPolicy::Relaxed { interval: Duration::from_millis(25) },
        _ => SyncPolicy::Strict,
    };
    let pcfg = PersistConfig { policy, ..PersistConfig::strict(dir.join("logs")) };
    let dir2 = dir.clone();
    World::run(ww(), move |rank| {
        let map: UnorderedMap<u64, u64> = UnorderedMap::with_config(
            rank,
            "crash.map",
            UnorderedMapConfig { persist: Some(pcfg.clone()), ..Default::default() },
        );
        rank.barrier();
        let (present, _missing) = verify_generation(rank, &map, &dir2, 0, strict);
        assert!(present > 0, "recovery found nothing — the WAL replay is broken");
        rank.barrier();

        // The recovered world takes part in membership like any other: the
        // one-time victim leaves and rejoins, its recovered shards moving
        // with it, and every surviving key stays served.
        let survivors: Vec<u64> = {
            let acked = acked_keys(&dir2, 0, rank.id());
            acked
                .into_iter()
                .filter(|k| map.get(k).expect("pre-drain get").is_some())
                .collect()
        };
        rank.barrier();
        let victim = 2;
        assert!(drain_rank(rank, victim).expect("drain recovered rank").committed);
        assert!(admit_rank(rank, victim).expect("re-admit recovered rank").committed);
        for &k in &survivors {
            assert_eq!(
                map.get(&k).expect("post-rejoin get"),
                Some(k ^ VALUE_XOR),
                "key {k} lost in the drain/admit after recovery"
            );
        }
        rank.barrier();
    });
    let _ = std::fs::remove_dir_all(&dir);
}

/// kill -9 mid-write under strict sync epochs: zero acknowledged-write loss.
#[test]
fn strict_crash_loses_no_acknowledged_write() {
    crash_recover_once("strict", "strict");
}

/// kill -9 mid-write under relaxed sync epochs: loss is a bounded tail —
/// per (writer, owner) a suffix of the acked sequence, never a hole.
#[test]
fn relaxed_crash_loss_is_a_bounded_tail() {
    crash_recover_once("relaxed", "relaxed");
}

/// Seeded multi-generation soak (`just crash-soak`): repeated kill/recover
/// cycles over ONE log directory, so each child replays, compacts and
/// appends over everything its predecessors survived. Iterations and seed
/// come from `HCL_SOAK_ITERS` / `HCL_SOAK_SEED`.
#[test]
#[ignore = "long-running; run via `just crash-soak`"]
fn crash_soak() {
    let iters: u64 =
        std::env::var("HCL_SOAK_ITERS").ok().and_then(|s| s.parse().ok()).unwrap_or(3);
    let seed: u64 =
        std::env::var("HCL_SOAK_SEED").ok().and_then(|s| s.parse().ok()).unwrap_or(0xC0FFEE);
    let dir = fresh_dir("soak");
    let pcfg = PersistConfig::strict(dir.join("logs"));
    let mut state = seed | 1;
    for iter in 0..iters {
        // Vary the kill point generation to generation (xorshift64).
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        let kill_after = KILL_AFTER_ACKS + (state % 400) as usize;
        run_until_kill(&dir, "strict", iter, kill_after);
        let pcfg = pcfg.clone();
        let dir2 = dir.clone();
        World::run(ww(), move |rank| {
            let map: UnorderedMap<u64, u64> = UnorderedMap::with_config(
                rank,
                "crash.map",
                UnorderedMapConfig { persist: Some(pcfg.clone()), ..Default::default() },
            );
            rank.barrier();
            // Every generation so far must be fully intact (strict).
            for g in 0..=iter {
                let (present, missing) = verify_generation(rank, &map, &dir2, g, true);
                assert_eq!(missing, 0);
                assert!(present >= KILL_AFTER_ACKS);
            }
            // Compact so the directory doesn't grow unboundedly across
            // generations (also exercises snapshot+replay interleaving).
            map.compact_local_logs().expect("compact recovered logs");
            rank.barrier();
        });
    }
    let _ = std::fs::remove_dir_all(&dir);
}
