//! Property: live-vs-recovered equivalence, per container (PR 10).
//!
//! For every container a random op sequence is applied to a durable
//! instance in one world; a second world over the same log directory then
//! recovers purely by WAL replay. The recovered contents must be
//! *byte-identical* (compared through each container's canonical snapshot
//! encoding) to the live contents the first world ended with — puts,
//! erases, pushes, pops and compaction included.

use std::time::Duration;

use hcl::queue::QueueConfig;
use hcl::unordered::UnorderedMapConfig;
use hcl::{OrderedConfig, PersistConfig, PriorityQueue, Queue, SyncPolicy, UnorderedMap};
use hcl_databox::DataBox;
use hcl_runtime::{World, WorldConfig};
use proptest::prelude::*;

fn ww() -> WorldConfig {
    WorldConfig { nodes: 2, ranks_per_node: 1, ..WorldConfig::small() }
}

fn scratch(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "hcl-prop-persist-{}-{tag}-{:016x}",
        std::process::id(),
        proptest::current_case_seed().expect("inside a proptest case")
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Alternate policies case to case: replay correctness must not depend on
/// the sync epoch (relaxed logs are made durable by world teardown's final
/// flusher pass + drop sync).
fn policy_for(seed: u64) -> SyncPolicy {
    if seed % 2 == 0 {
        SyncPolicy::Strict
    } else {
        SyncPolicy::Relaxed { interval: Duration::from_millis(5) }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// UnorderedMap: random put/erase/compact stream; recovered contents
    /// encode byte-identically to the live contents.
    #[test]
    fn unordered_map_replay_matches_live(
        ops in proptest::collection::vec((0u8..3, 0u64..48, any::<u64>()), 1..120)
    ) {
        let dir = scratch("umap");
        let pcfg = PersistConfig {
            policy: policy_for(proptest::current_case_seed().unwrap()),
            ..PersistConfig::strict(&dir)
        };
        let ops2 = ops.clone();
        let pcfg1 = pcfg.clone();
        let live = std::sync::Arc::new(parking_lot::Mutex::new(Vec::new()));
        let live2 = std::sync::Arc::clone(&live);
        World::run(ww(), move |rank| {
            let map: UnorderedMap<u64, u64> = UnorderedMap::with_config(
                rank,
                "prop.umap",
                UnorderedMapConfig { persist: Some(pcfg1.clone()), ..Default::default() },
            );
            rank.barrier();
            if rank.id() == 0 {
                for (op, k, v) in &ops2 {
                    match op {
                        0 => { map.put(*k, *v).unwrap(); }
                        1 => { map.erase(k).unwrap(); }
                        _ => { map.compact_local_logs().unwrap(); }
                    }
                }
            }
            rank.barrier();
            // Other ranks compact too: every rank's local parts, some empty.
            map.compact_local_logs().unwrap();
            rank.barrier();
            if rank.id() == 0 {
                let mut snap = map.snapshot_all().unwrap();
                snap.sort();
                *live2.lock() = snap.to_bytes().to_vec();
            }
            rank.barrier();
        });
        let recovered = std::sync::Arc::new(parking_lot::Mutex::new(Vec::new()));
        let recovered2 = std::sync::Arc::clone(&recovered);
        World::run(ww(), move |rank| {
            let map: UnorderedMap<u64, u64> = UnorderedMap::with_config(
                rank,
                "prop.umap",
                UnorderedMapConfig { persist: Some(pcfg.clone()), ..Default::default() },
            );
            rank.barrier();
            if rank.id() == 0 {
                let mut snap = map.snapshot_all().unwrap();
                snap.sort();
                *recovered2.lock() = snap.to_bytes().to_vec();
            }
            rank.barrier();
        });
        let _ = std::fs::remove_dir_all(&dir);
        prop_assert_eq!(&*live.lock(), &*recovered.lock());
    }

    /// OrderedMap: same contract over the skiplist partitions.
    #[test]
    fn ordered_map_replay_matches_live(
        ops in proptest::collection::vec((0u8..2, 0u64..48, any::<u64>()), 1..120)
    ) {
        let dir = scratch("omap");
        let pcfg = PersistConfig {
            policy: policy_for(proptest::current_case_seed().unwrap()),
            ..PersistConfig::strict(&dir)
        };
        let ops2 = ops.clone();
        let pcfg1 = pcfg.clone();
        let live = std::sync::Arc::new(parking_lot::Mutex::new(Vec::new()));
        let live2 = std::sync::Arc::clone(&live);
        World::run(ww(), move |rank| {
            let map: hcl::OrderedMap<u64, u64> = hcl::OrderedMap::with_config(
                rank,
                "prop.omap",
                OrderedConfig { persist: Some(pcfg1.clone()), ..Default::default() },
            );
            rank.barrier();
            if rank.id() == 0 {
                for (op, k, v) in &ops2 {
                    match op {
                        0 => { map.put(*k, *v).unwrap(); }
                        _ => { map.erase(k).unwrap(); }
                    }
                }
            }
            rank.barrier();
            if rank.id() == 0 {
                *live2.lock() = map.snapshot_sorted().unwrap().to_bytes().to_vec();
            }
            rank.barrier();
        });
        let recovered = std::sync::Arc::new(parking_lot::Mutex::new(Vec::new()));
        let recovered2 = std::sync::Arc::clone(&recovered);
        World::run(ww(), move |rank| {
            let map: hcl::OrderedMap<u64, u64> = hcl::OrderedMap::with_config(
                rank,
                "prop.omap",
                OrderedConfig { persist: Some(pcfg.clone()), ..Default::default() },
            );
            rank.barrier();
            if rank.id() == 0 {
                *recovered2.lock() = map.snapshot_sorted().unwrap().to_bytes().to_vec();
            }
            rank.barrier();
        });
        let _ = std::fs::remove_dir_all(&dir);
        prop_assert_eq!(&*live.lock(), &*recovered.lock());
    }

    /// Queue: pushes and pops replay to the identical FIFO order.
    #[test]
    fn queue_replay_matches_live(
        ops in proptest::collection::vec((0u8..3, any::<u64>()), 1..120)
    ) {
        let dir = scratch("queue");
        let pcfg = PersistConfig {
            policy: policy_for(proptest::current_case_seed().unwrap()),
            ..PersistConfig::strict(&dir)
        };
        let ops2 = ops.clone();
        let pcfg1 = pcfg.clone();
        let live = std::sync::Arc::new(parking_lot::Mutex::new(Vec::new()));
        let live2 = std::sync::Arc::clone(&live);
        World::run(ww(), move |rank| {
            let q: Queue<u64> = Queue::with_config(
                rank,
                "prop.q",
                QueueConfig { persist: Some(pcfg1.clone()), ..Default::default() },
            );
            rank.barrier();
            if rank.id() == 0 {
                for (op, v) in &ops2 {
                    match op {
                        0 => { q.push(*v).unwrap(); }
                        1 => { q.pop().unwrap(); }
                        _ => { q.push_bulk(vec![*v, v ^ 1]).unwrap(); }
                    }
                }
            }
            rank.barrier();
            if rank.id() == 0 {
                *live2.lock() = q.snapshot().unwrap().to_bytes().to_vec();
            }
            rank.barrier();
        });
        let recovered = std::sync::Arc::new(parking_lot::Mutex::new(Vec::new()));
        let recovered2 = std::sync::Arc::clone(&recovered);
        World::run(ww(), move |rank| {
            let q: Queue<u64> = Queue::with_config(
                rank,
                "prop.q",
                QueueConfig { persist: Some(pcfg.clone()), ..Default::default() },
            );
            rank.barrier();
            if rank.id() == 0 {
                *recovered2.lock() = q.snapshot().unwrap().to_bytes().to_vec();
            }
            rank.barrier();
        });
        let _ = std::fs::remove_dir_all(&dir);
        prop_assert_eq!(&*live.lock(), &*recovered.lock());
    }

    /// PriorityQueue: pops always take the minimum, so replaying the
    /// logged push/pop stream lands on the identical surviving set.
    #[test]
    fn priority_queue_replay_matches_live(
        ops in proptest::collection::vec((0u8..2, any::<u64>()), 1..120)
    ) {
        let dir = scratch("pq");
        let pcfg = PersistConfig {
            policy: policy_for(proptest::current_case_seed().unwrap()),
            ..PersistConfig::strict(&dir)
        };
        let ops2 = ops.clone();
        let pcfg1 = pcfg.clone();
        let live = std::sync::Arc::new(parking_lot::Mutex::new(Vec::new()));
        let live2 = std::sync::Arc::clone(&live);
        World::run(ww(), move |rank| {
            let pq: PriorityQueue<u64> = PriorityQueue::with_config(
                rank,
                "prop.pq",
                QueueConfig { persist: Some(pcfg1.clone()), ..Default::default() },
            );
            rank.barrier();
            if rank.id() == 0 {
                for (op, v) in &ops2 {
                    match op {
                        0 => { pq.push(*v).unwrap(); }
                        _ => { pq.pop().unwrap(); }
                    }
                }
            }
            rank.barrier();
            if rank.id() == 0 {
                *live2.lock() = pq.snapshot().unwrap().to_bytes().to_vec();
            }
            rank.barrier();
        });
        let recovered = std::sync::Arc::new(parking_lot::Mutex::new(Vec::new()));
        let recovered2 = std::sync::Arc::clone(&recovered);
        World::run(ww(), move |rank| {
            let pq: PriorityQueue<u64> = PriorityQueue::with_config(
                rank,
                "prop.pq",
                QueueConfig { persist: Some(pcfg.clone()), ..Default::default() },
            );
            rank.barrier();
            if rank.id() == 0 {
                *recovered2.lock() = pq.snapshot().unwrap().to_bytes().to_vec();
            }
            rank.barrier();
        });
        let _ = std::fs::remove_dir_all(&dir);
        prop_assert_eq!(&*live.lock(), &*recovered.lock());
    }
}
