//! Epoch-versioned membership and live shard rebalancing (PR 9).
//!
//! Invariants checked here:
//! * elastic containers (no explicit `servers`) start on the node-leader
//!   ranks — bit-identical placement to the historical static default;
//! * every container resolves owners through the *same* world partition
//!   map: cross-container key→owner agreement (the regression pin for the
//!   old `UnorderedMap::get` bug that partitioned by `servers.len()`);
//! * a live [`drain_rank`]/[`admit_rank`] loses no keys and duplicates
//!   none — extract∪install is a permutation — and every rank observes the
//!   identical [`RebalanceReport`];
//! * operations racing an epoch commit either succeed or fail with a
//!   *typed* error, and every acknowledged write survives the rebalance;
//! * leases granted before a membership commit are dead after it (the
//!   unified ownership epoch invalidates the client read cache);
//! * the single-partition containers' host-move seam
//!   (`extract_all`/`install_bulk`) preserves contents and order.

use std::collections::BTreeSet;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use hcl::queue::QueueConfig;
use hcl::unordered::UnorderedMapConfig;
use hcl::{
    admit_rank, drain_rank, stable_hash, HclError, LeaseConfig, OrderedMap, PriorityQueue,
    Queue, UnorderedMap,
};
use hcl_runtime::{World, WorldConfig};
use proptest::prelude::*;

fn ww(nodes: u32, ranks_per_node: u32) -> WorldConfig {
    WorldConfig { nodes, ranks_per_node, ..WorldConfig::small() }
}

/// Elastic containers start exactly where the static default placed them:
/// one partition per node, owned by the node-leader ranks. Until a
/// rebalance, the membership layer is placement-invisible.
#[test]
fn elastic_default_placement_matches_node_leaders() {
    World::run(ww(2, 2), |rank| {
        let m: UnorderedMap<u64, u64> = UnorderedMap::new(rank, "mem.place");
        rank.barrier();
        let map = rank.world().membership().current();
        assert_eq!(map.members(), &[0, 2], "initial members must be the node leaders");
        assert_eq!(m.partitions(), 2);
        for p in 0..m.partitions() {
            assert_eq!(m.server_of(p), map.members()[p]);
        }
        let k = rank.id() as u64;
        m.put(k, k + 1).unwrap();
        rank.barrier();
        for r in 0..rank.world_size() as u64 {
            assert_eq!(m.get(&r).unwrap(), Some(r + 1));
        }
        rank.barrier();
    });
}

/// Cross-container agreement pin: with 3 members × 8 vparts each, a
/// container still computing `hash % members` disagrees with the vpart map
/// for most keys — both maps must resolve every key identically, and to the
/// same rank the membership map names.
#[test]
fn cross_container_key_owner_agreement() {
    World::run(ww(3, 2), |rank| {
        let umap: UnorderedMap<u64, u64> = UnorderedMap::new(rank, "mem.agree.u");
        let omap: OrderedMap<u64, u64> = OrderedMap::new(rank, "mem.agree.o");
        rank.barrier();
        let map = rank.world().membership().current();
        assert_eq!(map.members().len(), 3);
        assert!(map.vparts() > map.members().len(), "vparts must outnumber members");
        for k in 0..256u64 {
            let pu = umap.partition_of(&k);
            assert_eq!(pu, omap.partition_of(&k), "containers disagree on key {k}");
            assert_eq!(
                umap.server_of(pu),
                map.owner_of_hash(stable_hash(&k)),
                "container owner diverges from the partition map for key {k}"
            );
        }
        // And the agreement holds end-to-end: disjoint writers, every rank
        // reads every key back through both containers.
        let me = rank.id() as u64;
        for i in 0..32u64 {
            let k = me * 1000 + i;
            umap.put(k, k ^ 0xABCD).unwrap();
            omap.put(k, k ^ 0xABCD).unwrap();
        }
        rank.barrier();
        for r in 0..rank.world_size() as u64 {
            for i in 0..32u64 {
                let k = r * 1000 + i;
                assert_eq!(umap.get(&k).unwrap(), Some(k ^ 0xABCD), "umap misrouted {k}");
                assert_eq!(omap.get(&k).unwrap(), Some(k ^ 0xABCD), "omap misrouted {k}");
            }
        }
        rank.barrier();
    });
}

/// The tentpole acceptance path: drain a member, admit a brand-new rank,
/// re-admit the victim — after every committed transition both maps hold
/// exactly the same key multiset as before, every rank reports the same
/// numbers, and the victim owns nothing.
#[test]
fn drain_and_admit_preserve_every_key() {
    World::run(ww(2, 2), |rank| {
        let umap: UnorderedMap<u64, u64> = UnorderedMap::new(rank, "mem.move.u");
        let omap: OrderedMap<u64, u64> = OrderedMap::new(rank, "mem.move.o");
        rank.barrier();
        let me = rank.id() as u64;
        let ws = rank.world_size() as u64;
        for i in 0..48u64 {
            let k = me * 100 + i;
            umap.put(k, k * 3).unwrap();
            omap.put(k, k * 7).unwrap();
        }
        rank.barrier();
        let mut base_u = umap.snapshot_all().unwrap();
        base_u.sort();
        let base_o = omap.snapshot_sorted().unwrap();
        let membership = Arc::clone(rank.world().membership());
        let e0 = membership.epoch();

        // Leave: rank 2 hands its shards to the survivors.
        let rep = drain_rank(rank, 2).unwrap();
        assert!(rep.committed);
        assert!(rep.moves > 0, "the victim owned vparts; something must move");
        assert!(rep.migrated_keys > 0, "the victim's vparts held keys");
        assert!(membership.epoch() > e0, "a commit must bump the epoch");
        let reports =
            rank.allgather((rep.epoch, rep.moves, rep.migrated_keys, rep.migrated_bytes));
        assert!(
            reports.iter().all(|r| *r == reports[0]),
            "ranks disagree on the rebalance report: {reports:?}"
        );
        let map = membership.current();
        assert!(!map.members().contains(&2));
        assert!(map.vparts_owned_by(2).is_empty(), "a drained rank owns nothing");

        let mut now_u = umap.snapshot_all().unwrap();
        now_u.sort();
        assert_eq!(now_u, base_u, "unordered keys lost or duplicated by the drain");
        assert_eq!(omap.snapshot_sorted().unwrap(), base_o, "ordered keys lost or duplicated");
        for r in 0..ws {
            for i in 0..48 {
                let k = r * 100 + i;
                assert_eq!(umap.get(&k).unwrap(), Some(k * 3), "umap lost {k} in the drain");
                assert_eq!(omap.get(&k).unwrap(), Some(k * 7), "omap lost {k} in the drain");
            }
        }
        // Barrier: no rank may write the post-drain keys below while another
        // is still snapshotting the pre-drain state.
        rank.barrier();
        // New writes route off the victim.
        let nk = 9_000 + me;
        umap.put(nk, nk).unwrap();
        assert_ne!(umap.server_of(umap.partition_of(&nk)), 2);
        rank.barrier();
        let mut base_u = umap.snapshot_all().unwrap();
        base_u.sort();

        // Join: rank 1 was never a member; it takes a fair share.
        let rep = admit_rank(rank, 1).unwrap();
        assert!(rep.committed);
        let map = membership.current();
        assert!(map.members().contains(&1));
        assert!(!map.vparts_owned_by(1).is_empty(), "an admitted rank owns a share");
        let mut now_u = umap.snapshot_all().unwrap();
        now_u.sort();
        assert_eq!(now_u, base_u, "keys lost or duplicated by the join");
        assert_eq!(omap.snapshot_sorted().unwrap(), base_o);

        // Re-admit the drained victim.
        let rep = admit_rank(rank, 2).unwrap();
        assert!(rep.committed);
        let mut now_u = umap.snapshot_all().unwrap();
        now_u.sort();
        assert_eq!(now_u, base_u, "keys lost or duplicated by the re-admit");
        assert_eq!(omap.snapshot_sorted().unwrap(), base_o);
        rank.barrier();

        // Telemetry: the membership gauges carry the story.
        let snap = rank.telemetry_snapshot();
        let gauge = |name: &str| {
            snap.gauges.iter().find(|(k, _)| k == name).map(|(_, v)| *v).unwrap_or(0)
        };
        assert_eq!(gauge("hcl_runtime_membership_commits"), 3);
        assert_eq!(gauge("hcl_runtime_membership_epoch"), membership.epoch());
        assert!(gauge("hcl_runtime_membership_migrated_keys") > 0);
        assert!(gauge("hcl_runtime_membership_migrated_bytes") > 0);
        rank.barrier();

        // The driver's flight recorder names the commits and the transfers.
        if rank.id() == 0 {
            let events = rank.telemetry().flight().events();
            assert!(
                events.iter().any(|e| e.op == "rebalance.commit"),
                "driver must record epoch commits"
            );
            assert!(
                events.iter().any(|e| e.op == "rebalance.transfer"),
                "driver must record shard transfers"
            );
        }
        rank.barrier();
    });
}

/// Operations racing the epoch commit: a writer thread churns puts and gets
/// through the rebalance; every op either succeeds or fails with a *typed*
/// epoch/rebalance error, reads never observe a hole, and every
/// acknowledged write is still there after the double rebalance.
#[test]
fn ops_straddling_epoch_commits_see_only_typed_errors() {
    World::run(ww(2, 2), |rank| {
        let umap: UnorderedMap<u64, u64> = UnorderedMap::new(rank, "mem.straddle");
        rank.barrier();
        let me = rank.id() as u64;
        for i in 0..32u64 {
            umap.put(me * 100 + i, 1).unwrap();
        }
        rank.barrier();

        let stop = AtomicBool::new(false);
        let acked = std::thread::scope(|s| {
            let writer = s.spawn(|| {
                // A second handle to the same world-shared container, owned
                // by this thread.
                let m: UnorderedMap<u64, u64> = UnorderedMap::new(rank, "mem.straddle");
                let mut acked = Vec::new();
                let mut i = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let k = 10_000 + me * 100_000 + i;
                    match m.put(k, k) {
                        Ok(_) => acked.push(k),
                        Err(HclError::WrongEpoch { .. }) | Err(HclError::Rebalance(_)) => {}
                        Err(e) => panic!("non-typed put failure during rebalance: {e}"),
                    }
                    let rk = me * 100 + (i % 32);
                    match m.get(&rk) {
                        Ok(v) => assert_eq!(v, Some(1), "read lost key {rk} mid-rebalance"),
                        Err(HclError::WrongEpoch { .. }) | Err(HclError::Rebalance(_)) => {}
                        Err(e) => panic!("non-typed get failure during rebalance: {e}"),
                    }
                    i += 1;
                }
                acked
            });
            // Live rebalance under the churn: leave, join, rejoin.
            assert!(drain_rank(rank, 2).unwrap().committed);
            assert!(admit_rank(rank, 3).unwrap().committed);
            assert!(admit_rank(rank, 2).unwrap().committed);
            stop.store(true, Ordering::Relaxed);
            writer.join().unwrap()
        });
        assert!(!acked.is_empty(), "the writer thread never got an op through");
        umap.flush_replication().unwrap();
        rank.barrier();
        for k in &acked {
            assert_eq!(umap.get(k).unwrap(), Some(*k), "acknowledged write {k} lost");
        }
        rank.barrier();
    });
}

/// Leases are epoch-scoped: a 30-second lease granted before a membership
/// commit must not serve another read after it — the unified ownership
/// epoch (failure marks *and* membership commits share one cell) kills it.
#[test]
fn epoch_bump_invalidates_live_leases() {
    World::run(ww(2, 2), |rank| {
        let cfg = UnorderedMapConfig {
            hybrid: false, // force the remote path so every rank caches
            lease: Some(LeaseConfig {
                ttl: Duration::from_secs(30),
                hot_threshold: 2,
                ..LeaseConfig::default()
            }),
            ..UnorderedMapConfig::default()
        };
        let m: UnorderedMap<u64, u64> = UnorderedMap::with_config(rank, "mem.lease", cfg);
        rank.barrier();
        const K: u64 = 7;
        if rank.id() == 0 {
            m.put(K, 1).unwrap();
        }
        rank.barrier();
        // Warm a lease on every rank: enough repeats to cross hot_threshold
        // and then serve from the cache.
        for _ in 0..8 {
            assert_eq!(m.get(&K).unwrap(), Some(1));
        }
        let stats = m.cache_stats().expect("lease cache is configured");
        assert!(stats.lease_grants > 0, "the hot key never earned a lease");
        assert!(stats.hits > 0, "warm reads never hit the lease");
        let owner0 = m.server_of(m.partition_of(&K));
        rank.barrier();

        // Move the key's shard by draining its owner, then overwrite it at
        // the new owner.
        assert!(drain_rank(rank, owner0).unwrap().committed);
        assert_ne!(m.server_of(m.partition_of(&K)), owner0);
        if rank.id() == 1 {
            m.put(K, 2).unwrap();
        }
        rank.barrier();
        // TTL says the old lease is good for another ~30s. The epoch says
        // otherwise — every rank must read the new value now.
        assert_eq!(m.get(&K).unwrap(), Some(2), "a stale lease survived the epoch bump");
        assert!(
            m.cache_stats().expect("lease cache is configured").stale_epoch > 0,
            "the cache must count the epoch invalidation"
        );
        rank.barrier();
        admit_rank(rank, owner0).unwrap();
        rank.barrier();
    });
}

/// Host-move seam of the single-partition containers: extract∪install is a
/// permutation, and the queue's FIFO order survives the move.
#[test]
fn queue_and_pqueue_host_move_preserves_contents() {
    World::run(ww(2, 2), |rank| {
        let old_q: Queue<u64> =
            Queue::with_config(rank, "mem.q.old", QueueConfig { owner: 0, hybrid: true, ..Default::default() });
        let new_q: Queue<u64> =
            Queue::with_config(rank, "mem.q.new", QueueConfig { owner: 2, hybrid: true, ..Default::default() });
        let old_pq: PriorityQueue<u64> =
            PriorityQueue::with_config(rank, "mem.pq.old", QueueConfig { owner: 0, hybrid: true, ..Default::default() });
        let new_pq: PriorityQueue<u64> =
            PriorityQueue::with_config(rank, "mem.pq.new", QueueConfig { owner: 2, hybrid: true, ..Default::default() });
        rank.barrier();
        if rank.id() == 0 {
            for i in 0..20u64 {
                old_q.push(i).unwrap();
                old_pq.push(19 - i).unwrap();
            }
        }
        rank.barrier();
        if rank.id() == 1 {
            // Any rank may drive the move; the seam is one extract and one
            // bulk install per container.
            let moved = old_q.extract_all().unwrap();
            assert_eq!(moved.len(), 20);
            new_q.install_bulk(moved).unwrap();
            let moved = old_pq.extract_all().unwrap();
            assert_eq!(moved.len(), 20);
            new_pq.install_bulk(moved).unwrap();
        }
        rank.barrier();
        assert_eq!(old_q.len().unwrap(), 0, "extract must empty the old host");
        assert_eq!(old_pq.len().unwrap(), 0);
        if rank.id() == 3 {
            assert_eq!(
                new_q.snapshot().unwrap(),
                (0..20).collect::<Vec<u64>>(),
                "FIFO order must survive the move"
            );
            let mut popped = Vec::new();
            while let Some(v) = new_pq.pop().unwrap() {
                popped.push(v);
            }
            assert_eq!(popped, (0..20).collect::<Vec<u64>>(), "priority order lost");
        }
        rank.barrier();
    });
}

/// Interpreter for the proptest sequences: apply `ops` as a deterministic
/// join/leave schedule on a 2×2 world, interleave writes, and after every
/// committed transition compare the container against the model multiset.
fn check_sequence(ops: &[u8]) {
    let ops = ops.to_vec();
    World::run(ww(2, 2), move |rank| {
        let m: UnorderedMap<u64, u64> = UnorderedMap::new(rank, "mem.seq");
        rank.barrier();
        let me = rank.id() as u64;
        let ws = rank.world_size();
        for i in 0..24u64 {
            let k = me * 1000 + i;
            m.put(k, k).unwrap();
        }
        rank.barrier();
        let membership = Arc::clone(rank.world().membership());
        let mut expected: BTreeSet<(u64, u64)> = (0..ws as u64)
            .flat_map(|r| (0..24u64).map(move |i| (r * 1000 + i, r * 1000 + i)))
            .collect();
        for (step, &b) in ops.iter().enumerate() {
            // Same decision on every rank, derived from the same map.
            let members = membership.current().members().to_vec();
            let subject = b as u32 % ws;
            let rep = if !members.contains(&subject) {
                admit_rank(rank, subject).unwrap()
            } else if members.len() > 1 {
                drain_rank(rank, subject).unwrap()
            } else {
                admit_rank(rank, (subject + 1) % ws).unwrap()
            };
            assert!(rep.committed, "step {step} did not commit");

            let k = 100_000 + step as u64 * 100 + me;
            m.put(k, k).unwrap();
            rank.barrier();
            for r in 0..ws as u64 {
                let k = 100_000 + step as u64 * 100 + r;
                expected.insert((k, k));
            }
            if rank.id() == 0 {
                let mut snap = m.snapshot_all().unwrap();
                snap.sort();
                let want: Vec<(u64, u64)> = expected.iter().copied().collect();
                assert_eq!(snap, want, "step {step}: keys lost or duplicated");
            }
            rank.barrier();
        }
    });
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Any join/leave/migrate sequence loses no keys and duplicates none.
    #[test]
    fn any_join_leave_sequence_preserves_the_key_multiset(
        ops in proptest::collection::vec(any::<u8>(), 1..8),
    ) {
        check_sequence(&ops);
    }
}

/// Soak entry point for `just test-membership-soak`: a longer seeded
/// schedule, seed from the environment so CI can sweep.
#[test]
#[ignore = "soak target; run via `just test-membership-soak`"]
fn soak_membership_schedule_env_seed() {
    let seed = std::env::var("HCL_MEMBERSHIP_SEED")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or(1);
    // Derive a 24-step schedule from the seed (splitmix-ish).
    let mut x = seed;
    let ops: Vec<u8> = (0..24)
        .map(|_| {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (x >> 33) as u8
        })
        .collect();
    check_sequence(&ops);
}

/// A migrator that refuses its first `fail_budget` begin() calls — a
/// deterministic stand-in for a transient mid-migration fault. Only the
/// driver calls begin(), so the countdown is driver-local and exact.
struct FlakyMigrator {
    remaining: std::sync::atomic::AtomicU64,
}

impl hcl::ShardMigrator for FlakyMigrator {
    fn name(&self) -> &str {
        "test.flaky"
    }
    fn begin(&self, _rank: &hcl_runtime::Rank, _mv: &hcl_runtime::ShardMove) -> hcl::HclResult<()> {
        if self
            .remaining
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| n.checked_sub(1))
            .is_ok()
        {
            return Err(HclError::Rebalance("injected transient begin fault".into()));
        }
        Ok(())
    }
    fn transfer(
        &self,
        _rank: &hcl_runtime::Rank,
        _mv: &hcl_runtime::ShardMove,
    ) -> hcl::HclResult<(u64, u64)> {
        Ok((0, 0))
    }
    fn end(
        &self,
        _rank: &hcl_runtime::Rank,
        _mv: &hcl_runtime::ShardMove,
        _committed: bool,
    ) -> hcl::HclResult<()> {
        Ok(())
    }
}

/// An aborted rebalance leaves no residue: after a transient copy-phase
/// fault (injected deterministically by a flaky migrator) the same drain
/// retried succeeds, with the data intact through both attempts and the
/// epoch bumped exactly once.
#[test]
fn aborted_rebalance_retries_cleanly_after_fault_clears() {
    World::run(ww(2, 2), |rank| {
        let umap: UnorderedMap<u64, u64> = UnorderedMap::new(rank, "mem.retry.u");
        hcl::MigratorRegistry::shared(rank).register_once(
            "test.flaky",
            Arc::new(FlakyMigrator { remaining: std::sync::atomic::AtomicU64::new(1) }),
        );
        rank.barrier();
        let me = rank.id() as u64;
        for i in 0..32u64 {
            let k = me * 100 + i;
            umap.put(k, k + 9).unwrap();
        }
        rank.barrier();
        let membership = Arc::clone(rank.world().membership());
        let e0 = membership.epoch();

        // First attempt: the flaky migrator kills the copy phase on every
        // rank with the same typed error; nothing commits.
        let err = drain_rank(rank, 2).expect_err("flaky begin must abort the drain");
        assert!(
            matches!(&err, HclError::Rebalance(m) if m.contains("injected transient")),
            "unexpected abort error: {err}"
        );
        assert_eq!(membership.epoch(), e0, "aborted drain must not bump the epoch");
        assert!(membership.current().members().contains(&2));
        for r in 0..rank.world_size() as u64 {
            for i in 0..32 {
                let k = r * 100 + i;
                assert_eq!(umap.get(&k).unwrap(), Some(k + 9), "key {k} lost in the abort");
            }
        }
        rank.barrier();

        // The fault has cleared: the identical retried collective succeeds.
        let rep = drain_rank(rank, 2).unwrap();
        assert!(rep.committed);
        assert_eq!(membership.epoch(), e0 + 1, "retried drain commits exactly one epoch");
        assert!(!membership.current().members().contains(&2));
        for r in 0..rank.world_size() as u64 {
            for i in 0..32 {
                let k = r * 100 + i;
                assert_eq!(umap.get(&k).unwrap(), Some(k + 9), "key {k} lost in the retry");
            }
        }
        rank.barrier();
        admit_rank(rank, 2).unwrap();
        rank.barrier();
    });
}
