# Task runner recipes. Install `just`, or copy the commands by hand.

# Full build + test sweep (tier-1).
default: test

build:
    cargo build --workspace --release

test:
    cargo test --workspace --release

# Fault-injection suite under a fixed seed: deterministic, CI-friendly.
test-faults:
    cargo test --release --test fault_injection
    cargo test --release --test property_based retry_backoff chaos_fault

# Sweep the full container workload through 10 different fault seeds.
test-faults-soak:
    #!/usr/bin/env bash
    set -euo pipefail
    for seed in 1 2 3 5 8 13 21 34 55 89; do
        echo "== fault soak: seed $seed =="
        HCL_FAULT_SEED=$seed cargo test --release --test fault_injection \
            -- --ignored soak_lossy_workload_env_seed
    done
