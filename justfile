# Task runner recipes. Install `just`, or copy the commands by hand.

# Full build + test sweep (tier-1).
default: test

build:
    cargo build --workspace --release

test:
    cargo test --workspace --release

# Fault-injection suite under a fixed seed: deterministic, CI-friendly.
test-faults:
    cargo test --release --test fault_injection
    cargo test --release --test property_based -- retry_backoff chaos_fault

# Sweep the full container workload through 10 different fault seeds.
test-faults-soak:
    #!/usr/bin/env bash
    set -euo pipefail
    for seed in 1 2 3 5 8 13 21 34 55 89; do
        echo "== fault soak: seed $seed =="
        HCL_FAULT_SEED=$seed cargo test --release --test fault_injection \
            -- --ignored soak_lossy_workload_env_seed
    done

# Membership + live-rebalance suite: epoch-versioned placement, drain/admit
# key preservation, epoch-straddling ops, migration chaos twins, and the
# cross-container key→owner agreement regression.
test-membership:
    cargo test --release --test membership
    cargo test --release --test fault_injection -- drain_with_unreachable_victim

# Seeded membership soak: the randomized join/leave/drain schedule and the
# partitioned-victim drain, each across several env-pinned seeds.
test-membership-soak:
    #!/usr/bin/env bash
    set -euo pipefail
    for seed in 2 7 19 41 97; do
        echo "== membership soak: seed $seed =="
        HCL_MEMBERSHIP_SEED=$seed cargo test --release --test membership \
            -- --ignored soak_membership_schedule_env_seed
        HCL_MEMBERSHIP_SEED=$seed cargo test --release --test fault_injection \
            -- --ignored soak_partitioned_victim_drain_env_seed
    done

# Concurrency-hygiene static pass: unsafe blocks need `// SAFETY:`, relaxed
# atomics in containers/mem/rpc need `// ORDERING:`, raw epoch derefs need a
# guard in scope, no modulo owner math outside the partition map.
lint:
    cargo run -p xtask -- lint

# Deterministic schedule exploration: rebuild the lock-free containers with
# the `conc_check` atomics facade and race them through >= 1000 distinct
# seeded schedules per test (fixed seeds; failures print a replay seed).
check-conc:
    #!/usr/bin/env bash
    set -euo pipefail
    export RUSTFLAGS="--cfg conc_check"
    export CARGO_TARGET_DIR=target/conc
    cargo test -p conc-check
    cargo test -p hcl-containers --test conc_sched

# Long sweep: five seed offsets x 5000 schedules per container test.
check-conc-soak:
    #!/usr/bin/env bash
    set -euo pipefail
    export RUSTFLAGS="--cfg conc_check"
    export CARGO_TARGET_DIR=target/conc
    for off in 0 1000000 2000000 3000000 4000000; do
        echo "== conc soak: seed offset $off =="
        HCL_CONC_SEED_OFFSET=$off HCL_CONC_SCHEDULES=5000 \
            cargo test -p hcl-containers --test conc_sched
    done

# Happens-before race checking: the vector-clock checker audits every
# facade atomic/mutex event plus the containers' RaceCell slots. Runs the
# hb unit fixtures, the public-API race fixtures (bounded budget), the
# build-parity smoke and the per-event allocation guard.
check-races:
    #!/usr/bin/env bash
    set -euo pipefail
    export RUSTFLAGS="--cfg conc_check"
    export CARGO_TARGET_DIR=target/conc
    cargo test -p conc-check --lib hb::
    cargo test -p conc-check --test races --test facade_parity --test hb_alloc

# Long race sweep: `schedules` seeded interleavings per fixture (default
# 2000); the racy fixture must still be caught, the clean twins must stay
# race-free.
check-races-soak schedules="2000":
    #!/usr/bin/env bash
    set -euo pipefail
    export RUSTFLAGS="--cfg conc_check"
    export CARGO_TARGET_DIR=target/conc
    HCL_RACE_SCHEDULES={{schedules}} \
        cargo test -p conc-check --test races -- --ignored --nocapture

# Record real multi-rank container histories and replay them through the
# Wing-Gong linearizability checker.
check-lin:
    cargo test --release --features history --test linearizability

# Seeded linearizability soak over the scenario driver's zipfian mixed-op
# histories. `HCL_LIN_SEED` pins the base seed, `HCL_LIN_SOAK_ITERS` the
# round count, so any failing seed replays exactly.
check-lin-soak:
    cargo test --release --features history --test linearizability -- --ignored zipfian_soak_many_seeds

# Lease-staleness soak: read-heavy zipfian driver rounds over a lease-cached
# map, each history replayed through the lease-relaxed checker (cached reads
# admitted iff their value was current somewhere inside the lease window).
# `HCL_LIN_SEED` / `HCL_LIN_SOAK_ITERS` pin the sweep as in check-lin-soak.
check-lin-lease-soak:
    cargo test --release --features history --test linearizability -- --ignored lease_soak_many_seeds

# ~10 s subset of the PR 3 RPC hot-path bench (8-rank memory-fabric
# put/get, baseline vs batched), then validate the committed
# BENCH_pr3.json: schema keys, non-zero throughputs, >= 2x headline
# speedup. The full regeneration is `cargo run --release -p hcl-bench
# --bin pr3`.
bench-smoke:
    cargo run --release -p hcl-bench --bin pr3 -- --smoke

# Read-path cache gate: a reduced 8-rank zipfian get sweep (uncached vs
# lease-cached vs replica-steered), gating a fresh >= 1.5x cached speedup
# with live cache hits and steered reads, then validating the committed
# BENCH_pr8.json (>= 2x cached speedup, lower cached p99). The full
# regeneration is `cargo run --release -p hcl-bench --bin pr8`.
bench-cache-smoke:
    cargo run --release -p hcl-bench --bin pr8 -- --smoke

# Telemetry export gate: 4-rank memory workload with HCL_TELEMETRY_DIR set,
# validating the per-rank JSON snapshot schema, the Prometheus exposition,
# and the committed BENCH_pr5.json overhead artifact. The full overhead
# bench is `cargo run --release -p hcl-bench --bin pr5`.
telemetry-smoke:
    cargo run --release -p hcl-bench --bin telemetry_smoke

# Scenario-matrix gate: re-run the smoke subset of the YCSB-style scenario
# suite (2 containers x 2 mixes, each with a ChaosFabric-faulted twin) and
# compare medians against the committed FIG_scenarios.json, then re-derive
# every committed sim series from its recorded calibration. The full matrix
# regeneration is `cargo run --release -p hcl-bench --bin scenarios`.
scenario-smoke:
    cargo run --release -p hcl-bench --bin scenarios -- --smoke

# Live-rebalance bench gate: a reduced 8-rank zipfian get sweep measuring
# steady-state vs mid-migration throughput/p99, gating typed-only errors and
# zero lost keys, then validating the committed BENCH_pr9.json. The full
# regeneration is `cargo run --release -p hcl-bench --bin pr9`.
bench-rebalance-smoke:
    cargo run --release -p hcl-bench --bin pr9 -- --smoke

# Durability suite: the WAL crate's unit tests (CRC, torn-tail truncation,
# snapshot compaction, replay dedup), the per-container live-vs-recovered
# byte-identity proptests, and the subprocess crash harness (kill -9
# mid-write, then recover; strict = zero acknowledged-write loss, relaxed =
# bounded suffix-only tail loss, plus the drain/admit rejoin).
test-persist:
    cargo test --release -p hcl-persist
    cargo test --release --test persist_property
    cargo test --release --test crash_recovery

# Seeded multi-generation crash soak: repeated kill -9/recover cycles over
# ONE log directory, each child replaying, compacting and appending over
# everything its predecessors survived. `iters`/`seed` pin the sweep.
crash-soak iters="3" seed="12648430":
    HCL_SOAK_ITERS={{iters}} HCL_SOAK_SEED={{seed}} \
        cargo test --release --test crash_recovery -- --ignored --exact crash_soak --nocapture

# Sync-epoch bench gate: a reduced 8-rank zipfian durable-put sweep (no
# persistence vs strict vs relaxed), gating the flush-gap signature —
# every durable put logged, strict fsyncs per append, relaxed fsyncs >= 10x
# rarer, relaxed throughput not collapsed — then validating the committed
# BENCH_pr10.json. The full regeneration is `cargo run --release -p
# hcl-bench --bin pr10`.
bench-persist-smoke:
    cargo run --release -p hcl-bench --bin pr10 -- --smoke

# FIG artifact provenance: every committed FIG_*.json must record its seed,
# measured rank counts, and per-cell workload mix.
check-artifacts:
    cargo run -p xtask -- artifacts

# Everything CI runs: build, tier-1 tests, hygiene lint, fault suite,
# membership/rebalance suite, durability suite + crash soak, schedule
# exploration, linearizability histories, bench smoke-checks,
# scenario-matrix gate, artifact provenance.
ci: build test lint test-faults test-membership test-persist crash-soak check-conc check-races check-lin bench-smoke bench-cache-smoke telemetry-smoke scenario-smoke bench-rebalance-smoke bench-persist-smoke check-artifacts
