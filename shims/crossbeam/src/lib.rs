//! Offline stand-in for the `crossbeam` crate (see `shims/README.md`).
//!
//! Three submodules cover the workspace's usage:
//!
//! * [`channel`] — unbounded MPMC channels with timeout receive, built on a
//!   mutex + condvar queue;
//! * [`epoch`] — the `crossbeam_epoch` pointer API (`Atomic` / `Owned` /
//!   `Shared` / `Guard`, tagged pointers, `compare_exchange`). Reclamation
//!   strategy differs from the real crate: `defer_destroy` *leaks* instead of
//!   deferring (see the module docs for why that is the safe substitution);
//! * [`utils`] — `CachePadded`.

pub mod channel;
pub mod epoch;
pub mod utils;
