//! Unbounded MPMC channels with the `crossbeam::channel` API subset the
//! fabric providers use: `unbounded()`, cloneable `Sender`/`Receiver`,
//! `send`, `recv`, `recv_timeout`, and disconnect detection.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Error returned by [`Sender::send`] when every receiver is gone; carries
/// the unsent value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SendError<T>(pub T);

/// Error returned by [`Receiver::recv`] when the channel is empty and every
/// sender is gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

/// Error returned by [`Receiver::recv_timeout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// No message arrived within the timeout.
    Timeout,
    /// The channel is empty and every sender is gone.
    Disconnected,
}

struct Chan<T> {
    queue: Mutex<VecDeque<T>>,
    ready: Condvar,
    senders: AtomicUsize,
    receivers: AtomicUsize,
}

impl<T> Chan<T> {
    fn disconnected(&self) -> bool {
        self.senders.load(Ordering::Acquire) == 0
    }
}

/// The sending half; cloneable (multi-producer).
pub struct Sender<T> {
    chan: Arc<Chan<T>>,
}

/// The receiving half; cloneable (multi-consumer, each message delivered to
/// exactly one receiver).
pub struct Receiver<T> {
    chan: Arc<Chan<T>>,
}

/// Create an unbounded channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    let chan = Arc::new(Chan {
        queue: Mutex::new(VecDeque::new()),
        ready: Condvar::new(),
        senders: AtomicUsize::new(1),
        receivers: AtomicUsize::new(1),
    });
    (Sender { chan: Arc::clone(&chan) }, Receiver { chan })
}

impl<T> Sender<T> {
    /// Enqueue a message; fails only when every receiver has been dropped.
    pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
        if self.chan.receivers.load(Ordering::Acquire) == 0 {
            return Err(SendError(msg));
        }
        let mut q = self.chan.queue.lock().unwrap_or_else(|e| e.into_inner());
        q.push_back(msg);
        drop(q);
        self.chan.ready.notify_one();
        Ok(())
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.chan.senders.fetch_add(1, Ordering::AcqRel);
        Sender { chan: Arc::clone(&self.chan) }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        if self.chan.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
            // Last sender gone: wake blocked receivers so they can observe
            // the disconnect.
            self.chan.ready.notify_all();
        }
    }
}

impl<T> Receiver<T> {
    /// Block until a message arrives or every sender is gone.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut q = self.chan.queue.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(m) = q.pop_front() {
                return Ok(m);
            }
            if self.chan.disconnected() {
                return Err(RecvError);
            }
            q = self.chan.ready.wait(q).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Block until a message arrives, the timeout elapses, or every sender
    /// is gone.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut q = self.chan.queue.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(m) = q.pop_front() {
                return Ok(m);
            }
            if self.chan.disconnected() {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            let (guard, _) = self
                .chan
                .ready
                .wait_timeout(q, deadline - now)
                .unwrap_or_else(|e| e.into_inner());
            q = guard;
        }
    }

    /// Non-blocking receive: `None` when the queue is currently empty.
    pub fn try_recv(&self) -> Result<T, RecvTimeoutError> {
        let mut q = self.chan.queue.lock().unwrap_or_else(|e| e.into_inner());
        match q.pop_front() {
            Some(m) => Ok(m),
            None if self.chan.disconnected() => Err(RecvTimeoutError::Disconnected),
            None => Err(RecvTimeoutError::Timeout),
        }
    }

    /// Number of queued messages.
    pub fn len(&self) -> usize {
        self.chan.queue.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// True when no messages are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.chan.receivers.fetch_add(1, Ordering::AcqRel);
        Receiver { chan: Arc::clone(&self.chan) }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        self.chan.receivers.fetch_sub(1, Ordering::AcqRel);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_recv_fifo() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
    }

    #[test]
    fn timeout_then_delivery() {
        let (tx, rx) = unbounded::<u32>();
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Err(RecvTimeoutError::Timeout));
        let t = std::thread::spawn(move || tx.send(7).unwrap());
        assert_eq!(rx.recv_timeout(Duration::from_secs(5)), Ok(7));
        t.join().unwrap();
    }

    #[test]
    fn disconnect_detected() {
        let (tx, rx) = unbounded::<u32>();
        tx.send(1).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Err(RecvError));
        assert_eq!(rx.recv_timeout(Duration::from_secs(1)), Err(RecvTimeoutError::Disconnected));
    }

    #[test]
    fn multi_consumer_each_message_once() {
        let (tx, rx) = unbounded::<u32>();
        let rx2 = rx.clone();
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let h = std::thread::spawn(move || {
            let mut got = Vec::new();
            while let Ok(v) = rx2.recv() {
                got.push(v);
            }
            got
        });
        let mut got = Vec::new();
        while let Ok(v) = rx.recv() {
            got.push(v);
        }
        let mut all = got;
        all.extend(h.join().unwrap());
        all.sort_unstable();
        assert_eq!(all, (0..100).collect::<Vec<_>>());
    }
}
