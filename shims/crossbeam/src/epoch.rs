//! An API-compatible stand-in for `crossbeam_epoch`'s pointer layer:
//! [`Atomic`], [`Owned`], [`Shared`], tagged pointers, `compare_exchange`
//! with [`CompareExchangeError`], [`pin`], and [`unprotected`].
//!
//! ## Reclamation strategy (the one deliberate divergence)
//!
//! The real crate defers destruction until no pinned thread can still hold a
//! reference. This shim's [`Guard::defer_destroy`] **leaks** the pointee
//! instead. Leaking is the safe substitution: every deferred node simply
//! stays allocated, so no reader can ever observe freed memory, and the
//! lock-free algorithms built on top keep their correctness unchanged. The
//! cost is bounded by the number of retired nodes over a process lifetime,
//! which is acceptable for the test- and benchmark-scale runs this
//! reproduction performs. `Shared::into_owned` (used by the containers for
//! nodes that were never published, and in `Drop` impls where exclusive
//! access is guaranteed) does reclaim immediately, exactly like the real
//! crate.

use std::marker::PhantomData;

// The atomic word goes through the conc-check facade so that, under
// `--cfg conc_check`, every pointer load/store/CAS becomes a deterministic
// scheduling point (the containers' linked-structure races live here) and
// is reported — with its `Ordering` — to the happens-before checker
// (DESIGN.md §13). Leaking retired nodes also means published addresses
// are never reused, which keeps the checker's per-address `RaceCell`
// audit history sound.
use conc_check::sync::{AtomicUsize, Ordering};

/// Number of pointer low bits available for tags, given `T`'s alignment.
fn low_bits<T>() -> usize {
    std::mem::align_of::<T>() - 1
}

fn decompose<T>(data: usize) -> (*mut T, usize) {
    ((data & !low_bits::<T>()) as *mut T, data & low_bits::<T>())
}

/// Common interface of [`Owned`] and [`Shared`], so `store` and
/// `compare_exchange` accept either.
pub trait Pointer<T> {
    /// Dissolve into the raw tagged representation.
    fn into_usize(self) -> usize;
    /// Rebuild from the raw tagged representation.
    ///
    /// # Safety
    /// `data` must have come from `into_usize` of the same pointer family.
    unsafe fn from_usize(data: usize) -> Self;
}

/// An owned, heap-allocated pointer (a `Box` with tag bits).
pub struct Owned<T> {
    data: usize,
    _marker: PhantomData<Box<T>>,
}

impl<T> Owned<T> {
    /// Allocate `value` on the heap.
    pub fn new(value: T) -> Self {
        Owned { data: Box::into_raw(Box::new(value)) as usize, _marker: PhantomData }
    }

    /// Return the same pointer with `tag` set in the low bits.
    pub fn with_tag(self, tag: usize) -> Self {
        let data = self.data;
        std::mem::forget(self);
        Owned { data: (data & !low_bits::<T>()) | (tag & low_bits::<T>()), _marker: PhantomData }
    }

    /// Convert into a [`Shared`], transferring ownership into the data
    /// structure (the guard witnesses the epoch pin).
    pub fn into_shared<'g>(self, _guard: &'g Guard) -> Shared<'g, T> {
        let data = self.data;
        std::mem::forget(self);
        Shared { data, _marker: PhantomData }
    }

    /// Consume the box, returning the value.
    pub fn into_box(self) -> Box<T> {
        let (ptr, _) = decompose::<T>(self.data);
        std::mem::forget(self);
        // SAFETY: an `Owned` always holds a pointer produced by
        // `Box::into_raw`, and `forget(self)` above prevents a double free.
        unsafe { Box::from_raw(ptr) }
    }
}

impl<T> std::ops::Deref for Owned<T> {
    type Target = T;
    fn deref(&self) -> &T {
        let (ptr, _) = decompose::<T>(self.data);
        // SAFETY: `Owned` uniquely owns a live heap allocation.
        unsafe { &*ptr }
    }
}

impl<T> std::ops::DerefMut for Owned<T> {
    fn deref_mut(&mut self) -> &mut T {
        let (ptr, _) = decompose::<T>(self.data);
        // SAFETY: `&mut self` on a uniquely owned live allocation.
        unsafe { &mut *ptr }
    }
}

impl<T> Drop for Owned<T> {
    fn drop(&mut self) {
        let (ptr, _) = decompose::<T>(self.data);
        // SAFETY: the pointer came from `Box::into_raw` and ownership was
        // never transferred out (those paths `forget` self first).
        drop(unsafe { Box::from_raw(ptr) });
    }
}

impl<T> Pointer<T> for Owned<T> {
    fn into_usize(self) -> usize {
        let data = self.data;
        std::mem::forget(self);
        data
    }
    unsafe fn from_usize(data: usize) -> Self {
        Owned { data, _marker: PhantomData }
    }
}

/// A shared, possibly-tagged pointer valid for the guard lifetime `'g`.
pub struct Shared<'g, T> {
    data: usize,
    _marker: PhantomData<(&'g (), *const T)>,
}

impl<'g, T> Clone for Shared<'g, T> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<'g, T> Copy for Shared<'g, T> {}

impl<'g, T> Shared<'g, T> {
    /// The null pointer.
    pub fn null() -> Self {
        Shared { data: 0, _marker: PhantomData }
    }

    /// True when the (untagged) pointer is null.
    pub fn is_null(&self) -> bool {
        decompose::<T>(self.data).0.is_null()
    }

    /// The untagged raw pointer.
    pub fn as_raw(&self) -> *const T {
        decompose::<T>(self.data).0
    }

    /// The tag stored in the low bits.
    pub fn tag(&self) -> usize {
        decompose::<T>(self.data).1
    }

    /// The same pointer with a different tag.
    pub fn with_tag(&self, tag: usize) -> Self {
        Shared {
            data: (self.data & !low_bits::<T>()) | (tag & low_bits::<T>()),
            _marker: PhantomData,
        }
    }

    /// Dereference.
    ///
    /// # Safety
    /// The pointer must be non-null and the pointee alive.
    pub unsafe fn deref(&self) -> &'g T {
        // SAFETY: forwarded to the caller (see the `# Safety` contract).
        unsafe { &*self.as_raw() }
    }

    /// Dereference as an `Option` (`None` when null).
    ///
    /// # Safety
    /// The pointee must be alive if non-null.
    pub unsafe fn as_ref(&self) -> Option<&'g T> {
        let p = self.as_raw();
        if p.is_null() {
            None
        } else {
            // SAFETY: non-null here; liveness is the caller's contract.
            Some(unsafe { &*p })
        }
    }

    /// Reclaim ownership of the pointee.
    ///
    /// # Safety
    /// The caller must have exclusive access (the pointer unreachable to any
    /// other thread).
    pub unsafe fn into_owned(self) -> Owned<T> {
        debug_assert!(!self.is_null(), "into_owned on null Shared");
        Owned { data: self.data, _marker: PhantomData }
    }
}

impl<'g, T> From<*const T> for Shared<'g, T> {
    fn from(p: *const T) -> Self {
        Shared { data: p as usize, _marker: PhantomData }
    }
}

impl<'g, T> PartialEq for Shared<'g, T> {
    fn eq(&self, other: &Self) -> bool {
        self.data == other.data
    }
}

impl<'g, T> Eq for Shared<'g, T> {}

impl<'g, T> std::fmt::Debug for Shared<'g, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Shared({:p}, tag={})", self.as_raw(), self.tag())
    }
}

impl<'g, T> Pointer<T> for Shared<'g, T> {
    fn into_usize(self) -> usize {
        self.data
    }
    unsafe fn from_usize(data: usize) -> Self {
        Shared { data, _marker: PhantomData }
    }
}

/// Error of a failed [`Atomic::compare_exchange`]: the value actually found,
/// and the `new` pointer handed back so the caller can reuse or free it.
pub struct CompareExchangeError<'g, T, P: Pointer<T>> {
    /// The value the atomic actually held.
    pub current: Shared<'g, T>,
    /// The proposed new pointer, returned to the caller.
    pub new: P,
}

/// An atomic tagged pointer to `T`.
pub struct Atomic<T> {
    data: AtomicUsize,
    _marker: PhantomData<*mut T>,
}

// SAFETY: `Atomic<T>` is a word-sized atomic cell; sharing it across threads
// only hands out `Shared<T>` references, which is sound when `T: Send + Sync`.
unsafe impl<T: Send + Sync> Send for Atomic<T> {}
// SAFETY: as above — all mutation goes through atomic operations.
unsafe impl<T: Send + Sync> Sync for Atomic<T> {}

impl<T> Atomic<T> {
    /// A null atomic pointer.
    pub fn null() -> Self {
        Atomic { data: AtomicUsize::new(0), _marker: PhantomData }
    }

    /// Allocate `value` and store the pointer.
    pub fn new(value: T) -> Self {
        Atomic::from(Owned::new(value))
    }

    /// Load the current pointer.
    pub fn load<'g>(&self, ord: Ordering, _guard: &'g Guard) -> Shared<'g, T> {
        Shared { data: self.data.load(ord), _marker: PhantomData }
    }

    /// Store a pointer ([`Owned`] or [`Shared`]).
    pub fn store<P: Pointer<T>>(&self, new: P, ord: Ordering) {
        self.data.store(new.into_usize(), ord);
    }

    /// Swap in a pointer, returning the previous one.
    pub fn swap<'g, P: Pointer<T>>(&self, new: P, ord: Ordering, _guard: &'g Guard) -> Shared<'g, T> {
        Shared { data: self.data.swap(new.into_usize(), ord), _marker: PhantomData }
    }

    /// Compare-and-exchange: install `new` if the current value is
    /// `current`. On success returns the installed pointer as [`Shared`];
    /// on failure returns the observed value and hands `new` back.
    pub fn compare_exchange<'g, P: Pointer<T>>(
        &self,
        current: Shared<'_, T>,
        new: P,
        success: Ordering,
        failure: Ordering,
        _guard: &'g Guard,
    ) -> Result<Shared<'g, T>, CompareExchangeError<'g, T, P>> {
        let new_data = new.into_usize();
        match self.data.compare_exchange(current.data, new_data, success, failure) {
            Ok(_) => Ok(Shared { data: new_data, _marker: PhantomData }),
            Err(found) => Err(CompareExchangeError {
                current: Shared { data: found, _marker: PhantomData },
                // SAFETY: `new_data` came from `new.into_usize()` two lines
                // up, so rebuilding the same pointer family is sound.
                new: unsafe { P::from_usize(new_data) },
            }),
        }
    }
}

impl<T> Default for Atomic<T> {
    fn default() -> Self {
        Atomic::null()
    }
}

impl<T> From<Owned<T>> for Atomic<T> {
    fn from(owned: Owned<T>) -> Self {
        Atomic { data: AtomicUsize::new(owned.into_usize()), _marker: PhantomData }
    }
}

impl<'g, T> From<Shared<'g, T>> for Atomic<T> {
    fn from(shared: Shared<'g, T>) -> Self {
        Atomic { data: AtomicUsize::new(shared.data), _marker: PhantomData }
    }
}

impl<T> From<*const T> for Atomic<T> {
    fn from(p: *const T) -> Self {
        Atomic { data: AtomicUsize::new(p as usize), _marker: PhantomData }
    }
}

/// Witness of an epoch pin. In this shim pinning is a no-op because retired
/// nodes are leaked rather than reclaimed (module docs).
pub struct Guard {
    _priv: (),
}

impl Guard {
    /// Retire the pointee. This shim leaks it (module docs) — the real crate
    /// frees it once no pinned thread can reach it.
    ///
    /// # Safety
    /// The pointer must be unreachable to threads that pin after this call
    /// (same contract as the real crate; the leak makes it vacuously safe).
    pub unsafe fn defer_destroy<T>(&self, _ptr: Shared<'_, T>) {}

    /// Flush pending retirements (no-op here).
    pub fn flush(&self) {}

    /// Re-pin (no-op here).
    pub fn repin(&mut self) {}
}

/// Pin the current thread, returning a guard.
pub fn pin() -> Guard {
    Guard { _priv: () }
}

static UNPROTECTED: Guard = Guard { _priv: () };

/// A guard that does not actually pin.
///
/// # Safety
/// Caller must guarantee no concurrent access to the data structures used
/// under it (same contract as the real crate).
pub unsafe fn unprotected() -> &'static Guard {
    &UNPROTECTED
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tag_roundtrip() {
        let g = pin();
        let a: Atomic<u64> = Atomic::new(42);
        let s = a.load(Ordering::Acquire, &g);
        assert_eq!(s.tag(), 0);
        let t = s.with_tag(1);
        assert_eq!(t.tag(), 1);
        assert_eq!(t.as_raw(), s.as_raw());
        // SAFETY: single-threaded test; the allocation is live.
        assert_eq!(unsafe { *t.deref() }, 42);
        // SAFETY: sole owner; reclaim exactly once.
        drop(unsafe { s.into_owned() });
    }

    #[test]
    fn cas_success_and_failure() {
        let g = pin();
        let a: Atomic<u64> = Atomic::null();
        let n1 = Owned::new(1u64);
        let installed =
            a.compare_exchange(Shared::null(), n1, Ordering::AcqRel, Ordering::Acquire, &g);
        assert!(installed.is_ok());
        let cur = a.load(Ordering::Acquire, &g);
        // Wrong expectation: CAS fails and hands the new pointer back.
        let n2 = Owned::new(2u64);
        match a.compare_exchange(Shared::null(), n2, Ordering::AcqRel, Ordering::Acquire, &g) {
            Err(e) => {
                assert_eq!(e.current, cur);
                drop(e.new); // reclaim the rejected allocation
            }
            Ok(_) => panic!("CAS must fail"),
        }
        // SAFETY: single-threaded test; sole owner of the installed node.
        drop(unsafe { cur.into_owned() });
    }

    #[test]
    fn null_checks() {
        let s: Shared<'_, u64> = Shared::null();
        assert!(s.is_null());
        // SAFETY: null pointer; `as_ref` returns None without dereferencing.
        assert!(unsafe { s.as_ref() }.is_none());
        // A tagged null is still null.
        assert!(s.with_tag(1).is_null());
    }
}
