//! `CachePadded`: pad-and-align a value to a cache line to prevent false
//! sharing between adjacent hot atomics.

/// Pads and aligns `T` to 64 bytes (the common x86-64/aarch64 line size; the
/// real crate picks 128 on some targets, which only costs padding precision).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
#[repr(align(64))]
pub struct CachePadded<T> {
    value: T,
}

impl<T> CachePadded<T> {
    /// Wrap a value.
    pub const fn new(value: T) -> Self {
        CachePadded { value }
    }

    /// Unwrap.
    pub fn into_inner(self) -> T {
        self.value
    }
}

impl<T> std::ops::Deref for CachePadded<T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> std::ops::DerefMut for CachePadded<T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.value
    }
}

impl<T> From<T> for CachePadded<T> {
    fn from(value: T) -> Self {
        CachePadded::new(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alignment_is_64() {
        assert_eq!(std::mem::align_of::<CachePadded<u8>>(), 64);
        let p = CachePadded::new(7u32);
        assert_eq!(*p, 7);
        assert_eq!(p.into_inner(), 7);
    }
}
