//! Offline stand-in for the `criterion` crate (see `shims/README.md`).
//!
//! Provides the API surface the workspace's benches use — `Criterion`,
//! `benchmark_group`, `bench_function` / `bench_with_input`, `Bencher::iter`,
//! `BenchmarkId`, `Throughput`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros — with a drastically simpler measurement model:
//! a short warm-up, then `sample_size` timed samples, reporting the mean
//! ns/iter (no statistics, no HTML reports, no comparisons to saved
//! baselines).
//!
//! When the harness is invoked by `cargo test` (which passes `--test` to
//! `harness = false` bench targets) every benchmark body runs exactly once
//! as a smoke test, matching real criterion's behavior.

pub use std::hint::black_box;
use std::time::{Duration, Instant};

/// A benchmark identifier: `function_name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Id with a function name and a parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { name: format!("{}/{}", function_name.into(), parameter) }
    }

    /// Id from a parameter only.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { name: parameter.to_string() }
    }
}

/// Accepts `&str`, `String`, or [`BenchmarkId`] where an id is expected.
pub trait IntoBenchmarkId {
    /// Convert to the canonical id.
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { name: self.to_string() }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { name: self }
    }
}

/// Throughput annotation (recorded, reported alongside timing).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Timing loop handle passed to benchmark bodies.
pub struct Bencher {
    /// Nanoseconds accumulated by [`Bencher::iter`].
    elapsed: Duration,
    /// Iterations the measurement loop ran.
    iters: u64,
    /// Smoke mode: run the body exactly once.
    once: bool,
}

impl Bencher {
    /// Run `f` repeatedly and measure it.
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        if self.once {
            black_box(f());
            self.iters = 1;
            return;
        }
        // Warm-up, then measure.
        for _ in 0..3 {
            black_box(f());
        }
        let iters = 10u64;
        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
        self.iters = iters;
    }
}

/// The benchmark driver.
pub struct Criterion {
    test_mode: bool,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        let mut test_mode = false;
        let mut filter = None;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" => test_mode = true,
                "--bench" => {}
                a if a.starts_with('-') => {}
                a => filter = Some(a.to_string()),
            }
        }
        Criterion { test_mode, filter }
    }
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
            sample_size: 10,
        }
    }

    /// Run a single benchmark outside a group.
    pub fn bench_function(&mut self, id: impl IntoBenchmarkId, f: impl FnMut(&mut Bencher)) {
        let name = id.into_benchmark_id().name;
        run_one(&name, None, self.test_mode, &self.filter, f);
    }
}

/// A group of benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'c> {
    criterion: &'c Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl<'c> BenchmarkGroup<'c> {
    /// Set the per-iteration throughput annotation.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = t.into();
        self
    }

    /// Set the sample count (recorded; the shim's timing loop is fixed).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Run a benchmark in this group.
    pub fn bench_function(&mut self, id: impl IntoBenchmarkId, f: impl FnMut(&mut Bencher)) {
        let name = format!("{}/{}", self.name, id.into_benchmark_id().name);
        run_one(&name, self.throughput, self.criterion.test_mode, &self.criterion.filter, f);
    }

    /// Run a benchmark with an input value.
    pub fn bench_with_input<I>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) {
        let name = format!("{}/{}", self.name, id.into_benchmark_id().name);
        run_one(&name, self.throughput, self.criterion.test_mode, &self.criterion.filter, |b| {
            f(b, input)
        });
    }

    /// Finish the group (report separator; nothing to flush in the shim).
    pub fn finish(self) {}
}

fn run_one(
    name: &str,
    throughput: Option<Throughput>,
    test_mode: bool,
    filter: &Option<String>,
    mut f: impl FnMut(&mut Bencher),
) {
    if let Some(filter) = filter {
        if !name.contains(filter.as_str()) {
            return;
        }
    }
    let mut b = Bencher { elapsed: Duration::ZERO, iters: 0, once: test_mode };
    f(&mut b);
    if test_mode {
        println!("{name}: ok (smoke)");
        return;
    }
    if b.iters == 0 {
        println!("{name}: no measurement (body never called iter)");
        return;
    }
    let ns_per_iter = b.elapsed.as_nanos() as f64 / b.iters as f64;
    match throughput {
        Some(Throughput::Elements(n)) => {
            let per_sec = n as f64 / (ns_per_iter / 1e9);
            println!("{name}: {ns_per_iter:.0} ns/iter ({per_sec:.0} elem/s)");
        }
        Some(Throughput::Bytes(n)) => {
            let mb_per_sec = n as f64 / (ns_per_iter / 1e9) / (1 << 20) as f64;
            println!("{name}: {ns_per_iter:.0} ns/iter ({mb_per_sec:.1} MiB/s)");
        }
        None => println!("{name}: {ns_per_iter:.0} ns/iter"),
    }
}

/// Collect benchmark functions under a group name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Generate the bench harness `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_mode_runs_once() {
        let mut calls = 0;
        let mut b = Bencher { elapsed: Duration::ZERO, iters: 0, once: true };
        b.iter(|| calls += 1);
        assert_eq!(calls, 1);
        assert_eq!(b.iters, 1);
    }

    #[test]
    fn measure_mode_runs_warmup_plus_samples() {
        let mut calls = 0;
        let mut b = Bencher { elapsed: Duration::ZERO, iters: 0, once: false };
        b.iter(|| calls += 1);
        assert_eq!(calls, 13); // 3 warm-up + 10 measured
        assert_eq!(b.iters, 10);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("enc", "fixed").name, "enc/fixed");
        assert_eq!(BenchmarkId::from_parameter(42).name, "42");
    }
}
