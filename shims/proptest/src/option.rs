//! Option strategies (`option::of`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Strategy producing `Option<S::Value>`.
pub struct OptionStrategy<S> {
    inner: S,
}

/// `Some` three times out of four, `None` otherwise (matching the real
/// crate's default weighting closely enough for these tests).
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        if rng.below(4) == 0 {
            None
        } else {
            Some(self.inner.generate(rng))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::any;

    #[test]
    fn produces_both_variants() {
        let s = of(any::<u64>());
        let mut rng = TestRng::from_seed(11);
        let draws: Vec<_> = (0..64).map(|_| s.generate(&mut rng)).collect();
        assert!(draws.iter().any(|d| d.is_none()));
        assert!(draws.iter().any(|d| d.is_some()));
    }
}
