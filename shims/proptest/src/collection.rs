//! Collection strategies (`collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A length specification for collection strategies: `[lo, hi)`.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        SizeRange { lo: r.start, hi: r.end }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange { lo: *r.start(), hi: r.end().saturating_add(1) }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

/// Strategy for `Vec<S::Value>` with a length drawn from `size`.
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

/// Generate vectors of values from `element` with lengths in `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let len = rng.in_range(self.size.lo as u64, self.size.hi as u64) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::any;

    #[test]
    fn lengths_in_bounds() {
        let s = vec(any::<u8>(), 2..5);
        let mut rng = TestRng::from_seed(9);
        for _ in 0..50 {
            let v = s.generate(&mut rng);
            assert!(v.len() >= 2 && v.len() < 5);
        }
    }
}
