//! The deterministic case RNG (SplitMix64).

/// Deterministic generator handed to strategies; one per generated case.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Create from an explicit seed.
    pub fn from_seed(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next raw 64 bits (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; 0 when `bound` is 0.
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            0
        } else {
            // Multiply-shift mapping avoids modulo bias better than `%`.
            ((self.next_u64() as u128 * bound as u128) >> 64) as u64
        }
    }

    /// Uniform value in `[lo, hi)`; `lo` when the range is empty.
    pub fn in_range(&mut self, lo: u64, hi: u64) -> u64 {
        if hi <= lo {
            lo
        } else {
            lo + self.below(hi - lo)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let mut a = TestRng::from_seed(1);
        let mut b = TestRng::from_seed(1);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn below_respects_bound() {
        let mut r = TestRng::from_seed(2);
        for bound in [1u64, 2, 3, 10, 1000] {
            for _ in 0..64 {
                assert!(r.below(bound) < bound);
            }
        }
        assert_eq!(r.below(0), 0);
    }
}
