//! Offline stand-in for the `proptest` crate (see `shims/README.md`).
//!
//! Implements the subset of the proptest surface this workspace's property
//! tests use: the [`proptest!`] macro, `prop_assert*` macros,
//! [`ProptestConfig`], `any::<T>()`, integer-range and `".{a,b}"` string
//! strategies, tuple strategies, `collection::vec`, and `option::of`.
//!
//! Differences from the real crate, by design:
//!
//! * **Deterministic**: the case seed is a pure function of the test
//!   function's name and the case index, so every run explores the same
//!   inputs (failures reproduce without a persistence file).
//! * **No shrinking**: a failing case reports its case index and seed
//!   instead of a minimized input.

pub mod collection;
pub mod option;
pub mod strategy;
pub mod test_runner;

pub use strategy::{any, Any, Arbitrary, Just, Strategy};
pub use test_runner::TestRng;

/// Execution configuration for a [`proptest!`] block.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of generated cases per test function.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// FNV-1a of `bytes`; used to derive a per-test-function seed from its name.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

std::thread_local! {
    static CURRENT_CASE_SEED: std::cell::Cell<Option<u64>> =
        const { std::cell::Cell::new(None) };
}

/// The seed of the property-test case currently executing on this thread,
/// or `None` outside a [`proptest!`] body. Test bodies can use it for
/// deterministic side resources (temp-dir names, nested RNGs) so a failing
/// case replays byte-identically under `HCL_PROPTEST_SEED`.
pub fn current_case_seed() -> Option<u64> {
    CURRENT_CASE_SEED.with(|c| c.get())
}

#[doc(hidden)]
pub fn __set_case_seed(seed: Option<u64>) {
    CURRENT_CASE_SEED.with(|c| c.set(seed));
}

/// Replay override from the `HCL_PROPTEST_SEED` env var (decimal or
/// `0x`-prefixed hex). When set, every [`proptest!`] test runs exactly one
/// case with this seed — paste the seed a failure printed to reproduce it.
#[doc(hidden)]
pub fn __replay_seed() -> Option<u64> {
    let v = std::env::var("HCL_PROPTEST_SEED").ok()?;
    let v = v.trim();
    let parsed = match v.strip_prefix("0x").or_else(|| v.strip_prefix("0X")) {
        Some(hex) => u64::from_str_radix(hex, 16),
        None => v.parse(),
    };
    match parsed {
        Ok(s) => Some(s),
        Err(_) => panic!("HCL_PROPTEST_SEED must be a u64 (decimal or 0x hex), got `{v}`"),
    }
}

/// Everything a property test file needs in scope.
pub mod prelude {
    pub use crate::strategy::{any, Any, Arbitrary, Just, Strategy};
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Define property tests. Supports the standard shape:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_prop(x in any::<u64>(), v in proptest::collection::vec(0u8..4, 0..10)) {
///         prop_assert!(x >= 0);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!{ $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!{ $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ($cfg:expr; $(
        $(#[$attr:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block
    )*) => {
        $(
            $(#[$attr])*
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                let fn_seed = $crate::fnv1a(stringify!($name).as_bytes());
                let replay = $crate::__replay_seed();
                for case in 0..cfg.cases {
                    let case_seed = match replay {
                        Some(seed) => seed,
                        None => fn_seed ^ (case as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15),
                    };
                    let mut rng = $crate::TestRng::from_seed(case_seed);
                    $crate::__set_case_seed(Some(case_seed));
                    let outcome = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(|| {
                            $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)*
                            $body
                        }),
                    );
                    $crate::__set_case_seed(None);
                    if let Err(panic) = outcome {
                        eprintln!(
                            "proptest (shim): {} failed at case {}/{} (case seed {:#018x}); \
                             replay with HCL_PROPTEST_SEED={:#x}",
                            stringify!($name), case, cfg.cases, case_seed, case_seed,
                        );
                        ::std::panic::resume_unwind(panic);
                    }
                    if replay.is_some() {
                        break; // replay mode runs exactly the requested case
                    }
                }
            }
        )*
    };
}

/// Assert a condition inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Assert equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Assert inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u64..17, y in 0u8..4) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y < 4);
        }

        #[test]
        fn string_pattern_lengths(s in ".{0,12}") {
            prop_assert!(s.chars().count() <= 12);
        }

        #[test]
        fn vec_sizes(v in crate::collection::vec(any::<u32>(), 2..9)) {
            prop_assert!(v.len() >= 2 && v.len() < 9);
        }

        #[test]
        fn tuples_and_option(t in (any::<u16>(), 0u64..100), o in crate::option::of(any::<u8>())) {
            prop_assert!(t.1 < 100);
            let _ = o;
        }
    }

    #[test]
    fn determinism_same_seed_same_values() {
        let s = crate::collection::vec(any::<u64>(), 0..50);
        let mut a = TestRng::from_seed(42);
        let mut b = TestRng::from_seed(42);
        assert_eq!(s.generate(&mut a), s.generate(&mut b));
    }
}
