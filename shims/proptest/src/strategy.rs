//! The [`Strategy`] trait and the built-in strategies: integer ranges,
//! `any::<T>()`, tuples, `Just`, and `".{a,b}"` string patterns.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A generator of test-case values.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Produce one value from the deterministic RNG.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

/// Types with a canonical full-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Draw a uniformly distributed value over the whole domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Arbitrary for i128 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        u128::arbitrary(rng) as i128
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Printable ASCII keeps generated text debuggable.
        (b' ' + rng.below(95) as u8) as char
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Arbitrary for String {
    fn arbitrary(rng: &mut TestRng) -> Self {
        let len = rng.below(33) as usize;
        (0..len).map(|_| char::arbitrary(rng)).collect()
    }
}

/// The strategy produced by [`any`].
pub struct Any<T> {
    _marker: std::marker::PhantomData<fn() -> T>,
}

/// The full-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any { _marker: std::marker::PhantomData }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy always producing a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                // Shift to u64 space so signed ranges sample uniformly.
                let lo = self.start as i128;
                let hi = self.end as i128;
                if hi <= lo {
                    return self.start;
                }
                let span = (hi - lo) as u64;
                (lo + rng.below(span) as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let lo = *self.start() as i128;
                let hi = *self.end() as i128;
                if hi < lo {
                    return *self.start();
                }
                let span = (hi - lo) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                (lo + rng.below(span as u64) as i128) as $t
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// `&str` as a strategy: the `".{lo,hi}"` pattern family generates printable
/// ASCII strings whose length is uniform in `[lo, hi]`. Other regex patterns
/// are not supported by this shim and panic with a clear message.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let (lo, hi) = parse_dot_repeat(self).unwrap_or_else(|| {
            panic!(
                "proptest shim: unsupported string pattern {self:?}; \
                 only \".{{lo,hi}}\" patterns are implemented"
            )
        });
        let len = rng.in_range(lo as u64, hi as u64 + 1) as usize;
        (0..len).map(|_| char::arbitrary(rng)).collect()
    }
}

/// Parse `".{lo,hi}"` into `(lo, hi)`.
fn parse_dot_repeat(pat: &str) -> Option<(usize, usize)> {
    let body = pat.strip_prefix(".{")?.strip_suffix('}')?;
    let (lo, hi) = body.split_once(',')?;
    Some((lo.trim().parse().ok()?, hi.trim().parse().ok()?))
}

macro_rules! tuple_strategy {
    ($(($($s:ident $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A 0)
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
    (A 0, B 1, C 2, D 3, E 4, F 5)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_repeat_parses() {
        assert_eq!(parse_dot_repeat(".{0,40}"), Some((0, 40)));
        assert_eq!(parse_dot_repeat(".{3,7}"), Some((3, 7)));
        assert_eq!(parse_dot_repeat("[a-z]+"), None);
    }

    #[test]
    fn signed_range_in_bounds() {
        let mut rng = TestRng::from_seed(5);
        let s = -10i64..10;
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((-10..10).contains(&v));
        }
    }
}
