//! Offline stand-in for the `bytes` crate.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! minimal implementations of its external dependencies under `shims/`
//! (see `shims/README.md`). This crate provides the subset of the real
//! `bytes::Bytes` API the workspace uses: a cheaply clonable, immutable byte
//! buffer.

use std::sync::Arc;

/// A cheaply clonable, immutable contiguous slice of bytes.
///
/// Static slices are referenced directly; owned buffers are shared through an
/// `Arc`, so `clone` is a reference-count bump either way (the property the
/// real crate is used for here).
#[derive(Clone)]
pub struct Bytes {
    repr: Repr,
}

#[derive(Clone)]
enum Repr {
    Static(&'static [u8]),
    Shared(Arc<[u8]>),
}

impl Bytes {
    /// An empty buffer.
    pub const fn new() -> Self {
        Bytes { repr: Repr::Static(&[]) }
    }

    /// Wrap a static slice without copying.
    pub const fn from_static(s: &'static [u8]) -> Self {
        Bytes { repr: Repr::Static(s) }
    }

    /// Copy a slice into a new shared buffer.
    pub fn copy_from_slice(s: &[u8]) -> Self {
        Bytes { repr: Repr::Shared(Arc::from(s)) }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.as_slice().len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.as_slice().is_empty()
    }

    /// View as a byte slice.
    pub fn as_slice(&self) -> &[u8] {
        match &self.repr {
            Repr::Static(s) => s,
            Repr::Shared(s) => s,
        }
    }

    /// Copy the contents out into a `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl std::borrow::Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes { repr: Repr::Shared(Arc::from(v.into_boxed_slice())) }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Self {
        Bytes::from_static(s)
    }
}

impl From<Box<[u8]>> for Bytes {
    fn from(b: Box<[u8]>) -> Self {
        Bytes { repr: Repr::Shared(Arc::from(b)) }
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Bytes::from(s.into_bytes())
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_eq() {
        let a = Bytes::from(vec![1, 2, 3]);
        let b = Bytes::copy_from_slice(&[1, 2, 3]);
        assert_eq!(a, b);
        assert_eq!(&a[..], &[1, 2, 3]);
        assert_eq!(a.len(), 3);
        let c = a.clone();
        assert_eq!(c.to_vec(), vec![1, 2, 3]);
    }

    #[test]
    fn static_and_empty() {
        assert!(Bytes::new().is_empty());
        let s = Bytes::from_static(b"hello");
        assert_eq!(&s[..], b"hello");
    }
}
