//! Offline stand-in for the `bytes` crate.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! minimal implementations of its external dependencies under `shims/`
//! (see `shims/README.md`). This crate provides the subset of the real
//! `bytes` API the workspace uses: a cheaply clonable, immutable byte buffer
//! ([`Bytes`]) with zero-copy `From<Vec<u8>>` / [`Bytes::slice`], plus a
//! reusable append-only builder ([`BytesMut`]) whose [`BytesMut::freeze`]
//! hands the accumulated buffer off without copying.

use std::sync::Arc;

/// A cheaply clonable, immutable contiguous slice of bytes.
///
/// Static slices are referenced directly; owned buffers are shared through an
/// `Arc<Vec<u8>>` plus a `[start, end)` window, so `clone` and
/// [`Bytes::slice`] are reference-count bumps — no byte is copied after the
/// buffer is first frozen (the property the real crate is used for here).
#[derive(Clone)]
pub struct Bytes {
    repr: Repr,
}

#[derive(Clone)]
enum Repr {
    Static(&'static [u8]),
    Owned { buf: Arc<Vec<u8>>, start: usize, end: usize },
}

impl Bytes {
    /// An empty buffer.
    pub const fn new() -> Self {
        Bytes { repr: Repr::Static(&[]) }
    }

    /// Wrap a static slice without copying.
    pub const fn from_static(s: &'static [u8]) -> Self {
        Bytes { repr: Repr::Static(s) }
    }

    /// Copy a slice into a new shared buffer.
    pub fn copy_from_slice(s: &[u8]) -> Self {
        Bytes::from(s.to_vec())
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.as_slice().len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.as_slice().is_empty()
    }

    /// View as a byte slice.
    pub fn as_slice(&self) -> &[u8] {
        match &self.repr {
            Repr::Static(s) => s,
            Repr::Owned { buf, start, end } => &buf[*start..*end],
        }
    }

    /// A sub-window `[start, end)` of this buffer sharing the same backing
    /// allocation (zero-copy; panics when the range is out of bounds).
    pub fn slice(&self, start: usize, end: usize) -> Bytes {
        assert!(start <= end && end <= self.len(), "slice out of bounds");
        match &self.repr {
            Repr::Static(s) => Bytes { repr: Repr::Static(&s[start..end]) },
            Repr::Owned { buf, start: base, .. } => Bytes {
                repr: Repr::Owned {
                    buf: Arc::clone(buf),
                    start: base + start,
                    end: base + end,
                },
            },
        }
    }

    /// Copy the contents out into a `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl std::borrow::Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes { repr: Repr::Owned { buf: Arc::new(v), start: 0, end } }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Self {
        Bytes::from_static(s)
    }
}

impl From<Box<[u8]>> for Bytes {
    fn from(b: Box<[u8]>) -> Self {
        Bytes::from(b.into_vec())
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Bytes::from(s.into_bytes())
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

/// An append-only byte builder backing the zero-copy encode path.
///
/// Encoders write into the underlying `Vec<u8>` (via [`BytesMut::vec_mut`] or
/// `extend_from_slice`), then [`BytesMut::freeze`] moves the buffer into a
/// [`Bytes`] without copying. A long-lived `BytesMut` that is `clear`ed
/// between messages reaches a steady state where encoding performs zero
/// allocations (the capacity survives `clear`); `freeze` necessarily
/// re-allocates a fresh `Vec` for the next message, so callers that must be
/// allocation-free keep the buffer and hand out borrowed slices instead.
#[derive(Default)]
pub struct BytesMut {
    vec: Vec<u8>,
}

impl BytesMut {
    /// An empty builder.
    pub fn new() -> Self {
        BytesMut { vec: Vec::new() }
    }

    /// An empty builder with `cap` bytes pre-reserved.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut { vec: Vec::with_capacity(cap) }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.vec.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.vec.is_empty()
    }

    /// Current capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.vec.capacity()
    }

    /// Drop the contents, keeping the capacity for reuse.
    pub fn clear(&mut self) {
        self.vec.clear();
    }

    /// Ensure room for `additional` more bytes.
    pub fn reserve(&mut self, additional: usize) {
        self.vec.reserve(additional);
    }

    /// Append a slice.
    pub fn extend_from_slice(&mut self, s: &[u8]) {
        self.vec.extend_from_slice(s);
    }

    /// Append one byte.
    pub fn put_u8(&mut self, b: u8) {
        self.vec.push(b);
    }

    /// Direct access to the backing `Vec` for encoders written against
    /// `&mut Vec<u8>` (the `DataBox::pack` signature).
    pub fn vec_mut(&mut self) -> &mut Vec<u8> {
        &mut self.vec
    }

    /// View the accumulated bytes.
    pub fn as_slice(&self) -> &[u8] {
        &self.vec
    }

    /// Move the accumulated bytes into an immutable [`Bytes`] without
    /// copying; the builder is left empty (and without capacity).
    pub fn freeze(&mut self) -> Bytes {
        Bytes::from(std::mem::take(&mut self.vec))
    }

    /// Consume the builder into its backing `Vec`.
    pub fn into_vec(self) -> Vec<u8> {
        self.vec
    }
}

impl std::ops::Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.vec
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.vec
    }
}

impl std::fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "BytesMut(len={}, cap={})", self.vec.len(), self.vec.capacity())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_eq() {
        let a = Bytes::from(vec![1, 2, 3]);
        let b = Bytes::copy_from_slice(&[1, 2, 3]);
        assert_eq!(a, b);
        assert_eq!(&a[..], &[1, 2, 3]);
        assert_eq!(a.len(), 3);
        let c = a.clone();
        assert_eq!(c.to_vec(), vec![1, 2, 3]);
    }

    #[test]
    fn static_and_empty() {
        assert!(Bytes::new().is_empty());
        let s = Bytes::from_static(b"hello");
        assert_eq!(&s[..], b"hello");
    }

    #[test]
    fn from_vec_is_zero_copy() {
        let v = vec![7u8; 64];
        let ptr = v.as_ptr();
        let b = Bytes::from(v);
        assert_eq!(b.as_slice().as_ptr(), ptr, "From<Vec<u8>> must not copy");
    }

    #[test]
    fn slice_shares_backing() {
        let b = Bytes::from((0u8..32).collect::<Vec<u8>>());
        let s = b.slice(4, 12);
        assert_eq!(&s[..], &(4u8..12).collect::<Vec<u8>>()[..]);
        // SAFETY: offset 4 is within the 32-byte backing allocation of `b`.
        assert_eq!(s.as_slice().as_ptr(), unsafe { b.as_slice().as_ptr().add(4) });
        let ss = s.slice(2, 4);
        assert_eq!(&ss[..], &[6, 7]);
        let st = Bytes::from_static(b"hello").slice(1, 3);
        assert_eq!(&st[..], b"el");
    }

    #[test]
    fn bytes_mut_freeze_is_zero_copy() {
        let mut m = BytesMut::with_capacity(16);
        m.extend_from_slice(b"abc");
        m.put_u8(b'd');
        let ptr = m.as_slice().as_ptr();
        let b = m.freeze();
        assert_eq!(&b[..], b"abcd");
        assert_eq!(b.as_slice().as_ptr(), ptr, "freeze must not copy");
        assert!(m.is_empty());
    }

    #[test]
    fn bytes_mut_clear_keeps_capacity() {
        let mut m = BytesMut::with_capacity(64);
        m.extend_from_slice(&[1; 32]);
        m.clear();
        assert!(m.capacity() >= 64);
        assert!(m.is_empty());
    }
}
