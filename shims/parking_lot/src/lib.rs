//! Offline stand-in for the `parking_lot` crate (see `shims/README.md`).
//!
//! Wraps `std::sync` primitives behind parking_lot's non-poisoning API:
//! `lock()`/`read()`/`write()` return guards directly, and a poisoned std
//! lock (a thread panicked while holding it) is recovered instead of
//! propagating the poison — matching parking_lot semantics, where poisoning
//! does not exist.

use std::sync::{
    Condvar as StdCondvar, Mutex as StdMutex, MutexGuard as StdMutexGuard, RwLock as StdRwLock,
    RwLockReadGuard as StdReadGuard, RwLockWriteGuard as StdWriteGuard,
};
use std::time::Duration;

/// A mutual exclusion primitive (non-poisoning `lock()` API).
pub struct Mutex<T: ?Sized> {
    inner: StdMutex<T>,
}

/// Guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized> {
    inner: StdMutexGuard<'a, T>,
}

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(t: T) -> Self {
        Mutex { inner: StdMutex::new(t) }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard { inner: self.inner.lock().unwrap_or_else(|e| e.into_inner()) }
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: g }),
            Err(std::sync::TryLockError::Poisoned(e)) => {
                Some(MutexGuard { inner: e.into_inner() })
            }
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mutex").finish_non_exhaustive()
    }
}

impl<'a, T: ?Sized> std::ops::Deref for MutexGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<'a, T: ?Sized> std::ops::DerefMut for MutexGuard<'a, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// A reader-writer lock (non-poisoning `read()`/`write()` API).
pub struct RwLock<T: ?Sized> {
    inner: StdRwLock<T>,
}

/// Shared-read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: StdReadGuard<'a, T>,
}

/// Exclusive-write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: StdWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Create a new reader-writer lock.
    pub const fn new(t: T) -> Self {
        RwLock { inner: StdRwLock::new(t) }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard { inner: self.inner.read().unwrap_or_else(|e| e.into_inner()) }
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard { inner: self.inner.write().unwrap_or_else(|e| e.into_inner()) }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RwLock").finish_non_exhaustive()
    }
}

impl<'a, T: ?Sized> std::ops::Deref for RwLockReadGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<'a, T: ?Sized> std::ops::Deref for RwLockWriteGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<'a, T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'a, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// A condition variable usable with [`Mutex`] guards.
pub struct Condvar {
    inner: StdCondvar,
}

impl Condvar {
    /// Create a new condition variable.
    pub const fn new() -> Self {
        Condvar { inner: StdCondvar::new() }
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wake all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }

    /// Atomically release the guard's lock and wait for a notification.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        take_guard(guard, |g| self.inner.wait(g).unwrap_or_else(|e| e.into_inner()));
    }

    /// Like `wait`, with a timeout. Returns true when the wait timed out.
    pub fn wait_for<T>(&self, guard: &mut MutexGuard<'_, T>, timeout: Duration) -> bool {
        let mut timed_out = false;
        take_guard(guard, |g| match self.inner.wait_timeout(g, timeout) {
            Ok((g, r)) => {
                timed_out = r.timed_out();
                g
            }
            Err(e) => {
                let (g, r) = e.into_inner();
                timed_out = r.timed_out();
                g
            }
        });
        timed_out
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

/// Run `f` on the std guard inside `guard`, replacing it with the guard `f`
/// returns. The std guard is moved out with unsafe pointer reads because
/// `Condvar::wait` consumes it by value; `f` must return a live guard (both
/// callers get one back from the std condvar), so the slot is never left
/// dangling.
fn take_guard<'a, T>(
    guard: &mut MutexGuard<'a, T>,
    f: impl FnOnce(StdMutexGuard<'a, T>) -> StdMutexGuard<'a, T>,
) {
    // SAFETY: the guard read out of the slot is handed to `f`, which (per the
    // contract above) always returns a live replacement that is written back
    // before anyone can observe the slot, so no guard is duplicated or lost.
    unsafe {
        let inner = std::ptr::read(&guard.inner);
        let next = f(inner);
        std::ptr::write(&mut guard.inner, next);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1]);
        assert_eq!(l.read().len(), 1);
        l.write().push(2);
        assert_eq!(*l.read(), vec![1, 2]);
    }

    #[test]
    fn condvar_wakes() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut g = m.lock();
            *g = true;
            cv.notify_one();
        });
        let (m, cv) = &*pair;
        let mut g = m.lock();
        while !*g {
            cv.wait(&mut g);
        }
        t.join().unwrap();
        assert!(*g);
    }

    #[test]
    fn condvar_timeout() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        assert!(cv.wait_for(&mut g, Duration::from_millis(10)));
    }
}
