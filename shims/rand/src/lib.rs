//! Offline stand-in for the `rand` crate (see `shims/README.md`).
//!
//! Provides `rand::random::<T>()`, `thread_rng()`, and a minimal [`Rng`]
//! trait over a per-thread SplitMix64 state seeded from the system clock and
//! thread identity. Not cryptographic — the workspace only uses it for test
//! tempdir names and workload shuffling.

use std::cell::Cell;
use std::time::{SystemTime, UNIX_EPOCH};

/// One SplitMix64 step.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

thread_local! {
    static STATE: Cell<u64> = Cell::new({
        let nanos = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x5eed);
        // Mix in the thread id so simultaneously spawned threads diverge.
        let tid = {
            use std::hash::{Hash, Hasher};
            let mut h = std::collections::hash_map::DefaultHasher::new();
            std::thread::current().id().hash(&mut h);
            h.finish()
        };
        nanos ^ tid.rotate_left(32) ^ 0x9e37_79b9_7f4a_7c15
    });
}

fn next_u64() -> u64 {
    STATE.with(|s| {
        let mut st = s.get();
        let v = splitmix64(&mut st);
        s.set(st);
        v
    })
}

/// Types producible by [`random`].
pub trait Standard: Sized {
    /// Draw a uniformly distributed value.
    fn sample(raw: u64) -> Self;
}

impl Standard for u64 {
    fn sample(raw: u64) -> Self {
        raw
    }
}
impl Standard for u32 {
    fn sample(raw: u64) -> Self {
        (raw >> 32) as u32
    }
}
impl Standard for u16 {
    fn sample(raw: u64) -> Self {
        (raw >> 48) as u16
    }
}
impl Standard for u8 {
    fn sample(raw: u64) -> Self {
        (raw >> 56) as u8
    }
}
impl Standard for usize {
    fn sample(raw: u64) -> Self {
        raw as usize
    }
}
impl Standard for i64 {
    fn sample(raw: u64) -> Self {
        raw as i64
    }
}
impl Standard for i32 {
    fn sample(raw: u64) -> Self {
        (raw >> 32) as i32
    }
}
impl Standard for bool {
    fn sample(raw: u64) -> Self {
        raw & 1 == 1
    }
}
impl Standard for f64 {
    fn sample(raw: u64) -> Self {
        // 53 mantissa bits -> uniform [0, 1).
        (raw >> 11) as f64 / (1u64 << 53) as f64
    }
}
impl Standard for f32 {
    fn sample(raw: u64) -> Self {
        ((raw >> 40) as f32) / (1u64 << 24) as f32
    }
}

/// Draw a random value from the per-thread generator.
pub fn random<T: Standard>() -> T {
    T::sample(next_u64())
}

/// A minimal random generator interface.
pub trait Rng {
    /// Next raw 64 bits.
    fn next_u64(&mut self) -> u64;

    /// Uniform value of `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self.next_u64())
    }

    /// Uniform integer in `[0, bound)` (Lemire-free modulo fallback; the
    /// slight modulo bias is irrelevant at the bounds used here).
    fn gen_range_u64(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            0
        } else {
            self.next_u64() % bound
        }
    }
}

/// Handle to the per-thread generator.
pub struct ThreadRng {
    _priv: (),
}

impl Rng for ThreadRng {
    fn next_u64(&mut self) -> u64 {
        next_u64()
    }
}

/// Get the per-thread generator.
pub fn thread_rng() -> ThreadRng {
    ThreadRng { _priv: () }
}

/// Deterministic SplitMix64 generator for seeded use.
#[derive(Debug, Clone)]
pub struct StdRng {
    state: u64,
}

impl StdRng {
    /// Create from a seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        StdRng { state: seed }
    }
}

impl Rng for StdRng {
    fn next_u64(&mut self) -> u64 {
        splitmix64(&mut self.state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_values_vary() {
        let a: u64 = random();
        let b: u64 = random();
        assert_ne!(a, b, "consecutive draws must differ");
    }

    #[test]
    fn seeded_rng_is_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..100 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }
}
