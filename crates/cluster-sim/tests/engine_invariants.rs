//! Property-based invariants of the discrete-event engine: conservation
//! laws that must hold for any workload, or every figure built on it is
//! suspect.

use hcl_cluster_sim::engine::{ClientPlan, Engine, Phase};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// A resource can never be busy for more than servers × makespan, and
    /// total busy time equals the sum of requested service times.
    #[test]
    fn resource_busy_conservation(
        clients in 1usize..8,
        ops in 1u64..40,
        servers in 1usize..4,
        service in 1u64..5_000,
        latency in 0u64..5_000,
    ) {
        let mut e = Engine::new();
        let r = e.add_resource("x", servers, None);
        let plans: Vec<ClientPlan> = (0..clients)
            .map(|_| ClientPlan {
                ops,
                builder: Box::new(move |_| {
                    vec![Phase {
                        resource: Some(r),
                        service_ns: service,
                        latency_ns: latency,
                        packets: 1,
                        bytes: 8,
                        tag: 0,
                    }]
                }),
            })
            .collect();
        let result = e.run(plans);
        let busy = result.resource_busy["x"];
        prop_assert_eq!(busy, clients as u64 * ops * service);
        prop_assert!(busy <= servers as u64 * result.makespan_ns + service);
        // Makespan is at least the critical path of one client.
        prop_assert!(result.makespan_ns >= ops * (service + latency));
        // All packets/bytes accounted.
        let pk: u64 = result.metrics.packets.iter().sum();
        prop_assert_eq!(pk, clients as u64 * ops);
    }

    /// Client finish times are monotone in workload: more ops per client
    /// can never finish earlier.
    #[test]
    fn monotone_in_ops(ops_a in 1u64..30, extra in 1u64..30) {
        let run = |ops: u64| {
            let mut e = Engine::new();
            let r = e.add_resource("x", 1, None);
            e.run(vec![ClientPlan {
                ops,
                builder: Box::new(move |_| {
                    vec![Phase {
                        resource: Some(r),
                        service_ns: 100,
                        latency_ns: 10,
                        packets: 0,
                        bytes: 0,
                        tag: 0,
                    }]
                }),
            }])
            .makespan_ns
        };
        prop_assert!(run(ops_a + extra) > run(ops_a));
    }

    /// Adding servers never slows a run down.
    #[test]
    fn monotone_in_servers(clients in 1usize..8, s1 in 1usize..4, extra in 1usize..4) {
        let run = |servers: usize| {
            let mut e = Engine::new();
            let r = e.add_resource("x", servers, None);
            let plans: Vec<ClientPlan> = (0..clients)
                .map(|_| ClientPlan {
                    ops: 20,
                    builder: Box::new(move |_| {
                        vec![Phase {
                            resource: Some(r),
                            service_ns: 500,
                            latency_ns: 0,
                            packets: 0,
                            bytes: 0,
                            tag: 0,
                        }]
                    }),
                })
                .collect();
            e.run(plans).makespan_ns
        };
        prop_assert!(run(s1 + extra) <= run(s1));
    }

    /// Tag accounting sums to each client's total elapsed time.
    #[test]
    fn tag_time_accounts_for_everything(
        services in proptest::collection::vec(1u64..2_000, 1..5),
    ) {
        let mut e = Engine::new();
        let r = e.add_resource("x", 1, None);
        let svc = services.clone();
        let result = e.run(vec![ClientPlan {
            ops: 10,
            builder: Box::new(move |_| {
                svc.iter()
                    .enumerate()
                    .map(|(i, &s)| Phase {
                        resource: Some(r),
                        service_ns: s,
                        latency_ns: 7,
                        packets: 0,
                        bytes: 0,
                        tag: i,
                    })
                    .collect()
            }),
        }]);
        let tag_total: u64 = result.tag_ns.values().sum();
        prop_assert_eq!(tag_total, result.client_finish[0]);
        let expected: u64 = 10 * services.iter().map(|&s| s + 7).sum::<u64>();
        prop_assert_eq!(result.client_finish[0], expected);
    }
}
