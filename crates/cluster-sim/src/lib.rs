//! # hcl-cluster-sim — a deterministic model of the Ares testbed
//!
//! The paper's evaluation runs on 64 nodes × 40 ranks with RoCE 40GbE NICs —
//! hardware and scale we cannot reproduce directly (DESIGN.md substitution
//! #3). This crate is a **discrete-event simulator with virtual time** that
//! models the cluster from first principles and replays the exact protocol
//! op sequences of BCL (client-side: CAS + write + CAS, with retries and
//! memory-region lock serialization) and HCL (one RPC send + NIC-core
//! handler + client-pull response, with the hybrid local bypass).
//!
//! The pieces:
//!
//! * [`engine`] — event calendar, multi-server FIFO [`engine::Resource`]s,
//!   closed-loop clients, per-second metric buckets (NIC-core busy time,
//!   packets, bytes, memory);
//! * [`spec`] — the [`spec::ClusterSpec`] constants calibrated to the
//!   numbers the paper states for Ares (4.5 GB/s inter-node point-to-point,
//!   65 GB/s STREAM, 40 ranks/node);
//! * [`protocol`] — per-operation phase builders for BCL and HCL (insert,
//!   find, queue push/pop, ordered variants);
//! * [`scenarios`] — one driver per figure: Fig. 1 (motivating breakdown),
//!   Fig. 4 (profiling time series), Fig. 5 (hybrid bandwidth sweep),
//!   Fig. 6 (DDS scaling), Fig. 7 (ISx + Meraculous end-to-end).
//!
//! Everything is deterministic: a seeded xorshift RNG drives collision
//! retries, so repeated runs regenerate identical tables.

pub mod calibrate;
pub mod engine;
pub mod protocol;
pub mod rng;
pub mod scenarios;
pub mod spec;

pub use calibrate::{simulate_workload, Calibration, SimPoint, WorkloadSimParams};
pub use engine::{Engine, Metrics, Phase, Resource, ResourceId};
pub use rng::SimRng;
pub use spec::ClusterSpec;
