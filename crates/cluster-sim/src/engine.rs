//! The discrete-event engine: resources, closed-loop clients, metrics.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

/// Index of a resource registered with the engine.
pub type ResourceId = usize;

/// A multi-server FIFO resource (NIC core pool, link pipe, memory-region
/// lock, memory bus). `servers` parallel units; work occupies one unit for
/// its service time, queueing when all are busy.
pub struct Resource {
    name: String,
    /// Earliest-free time of each server unit.
    free_at: BinaryHeap<Reverse<u64>>,
    /// Metric group to charge busy time to (e.g. "server NIC").
    metric_group: Option<usize>,
    /// Total busy nanoseconds.
    busy_ns: u64,
}

impl Resource {
    fn new(name: &str, servers: usize, metric_group: Option<usize>) -> Self {
        let mut free_at = BinaryHeap::with_capacity(servers);
        for _ in 0..servers.max(1) {
            free_at.push(Reverse(0));
        }
        Resource { name: name.to_string(), free_at, metric_group, busy_ns: 0 }
    }

    /// Acquire one server unit at `now` for `service` ns; returns
    /// `(start, end)`.
    fn acquire(&mut self, now: u64, service: u64) -> (u64, u64) {
        let Reverse(free) = self.free_at.pop().expect("resource has servers");
        let start = now.max(free);
        let end = start + service;
        self.free_at.push(Reverse(end));
        self.busy_ns += service;
        (start, end)
    }
}

/// One step of an operation: optionally occupy a resource for `service_ns`,
/// then wait `latency_ns` (propagation; overlaps with other clients freely).
#[derive(Debug, Clone, Copy)]
pub struct Phase {
    /// The contended resource, or `None` for a pure delay.
    pub resource: Option<ResourceId>,
    /// Service time on the resource.
    pub service_ns: u64,
    /// Post-service propagation delay.
    pub latency_ns: u64,
    /// Packets this phase puts on the wire (for Fig. 4(c) accounting).
    pub packets: u64,
    /// Payload bytes (for bandwidth accounting).
    pub bytes: u64,
    /// Breakdown tag (Fig. 1's per-component bars).
    pub tag: usize,
}

impl Phase {
    /// A pure delay phase.
    pub fn delay(ns: u64, tag: usize) -> Self {
        Phase { resource: None, service_ns: 0, latency_ns: ns, packets: 0, bytes: 0, tag }
    }
}

/// Per-second metric buckets (the Fig. 4 time series).
#[derive(Debug, Default, Clone)]
pub struct Metrics {
    /// Bucket width in ns (1 s by default).
    pub bucket_ns: u64,
    /// Packets sent per bucket.
    pub packets: Vec<u64>,
    /// Payload bytes per bucket.
    pub bytes: Vec<u64>,
    /// Busy ns per bucket, per metric group.
    pub group_busy: HashMap<usize, Vec<u64>>,
    /// Memory-delta events `(t, signed delta bytes)`.
    pub mem_events: Vec<(u64, i64)>,
}

impl Metrics {
    fn bucket(&self, t: u64) -> usize {
        (t / self.bucket_ns) as usize
    }

    fn grow(v: &mut Vec<u64>, idx: usize) {
        if v.len() <= idx {
            v.resize(idx + 1, 0);
        }
    }

    fn add_packets(&mut self, t: u64, packets: u64, bytes: u64) {
        let b = self.bucket(t);
        Self::grow(&mut self.packets, b);
        Self::grow(&mut self.bytes, b);
        self.packets[b] += packets;
        self.bytes[b] += bytes;
    }

    fn add_busy(&mut self, group: usize, start: u64, end: u64) {
        // Spread the busy interval across the buckets it overlaps.
        let mut t = start;
        while t < end {
            let b = self.bucket(t);
            let bucket_end = ((b as u64) + 1) * self.bucket_ns;
            let chunk = end.min(bucket_end) - t;
            let v = self.group_busy.entry(group).or_default();
            Self::grow(v, b);
            v[b] += chunk;
            t += chunk;
        }
    }

    /// Record a memory allocation/free at time `t`.
    pub fn mem_event(&mut self, t: u64, delta: i64) {
        self.mem_events.push((t, delta));
    }

    /// Memory in use sampled at each bucket boundary.
    pub fn mem_series(&self, buckets: usize) -> Vec<u64> {
        let mut events = self.mem_events.clone();
        events.sort_by_key(|&(t, _)| t);
        let mut series = Vec::with_capacity(buckets);
        let mut cur: i64 = 0;
        let mut i = 0;
        for b in 0..buckets {
            let boundary = (b as u64 + 1) * self.bucket_ns;
            while i < events.len() && events[i].0 <= boundary {
                cur += events[i].1;
                i += 1;
            }
            series.push(cur.max(0) as u64);
        }
        series
    }

    /// Utilization (0..=1) of a metric group per bucket given its capacity
    /// in server-ns per bucket.
    pub fn utilization(&self, group: usize, servers: u64) -> Vec<f64> {
        let cap = (self.bucket_ns * servers) as f64;
        self.group_busy
            .get(&group)
            .map(|v| v.iter().map(|&b| b as f64 / cap).collect())
            .unwrap_or_default()
    }
}

/// A closed-loop client: issues `ops` operations back-to-back, each built
/// by `builder(op_index)`.
pub struct ClientPlan {
    /// Operations to perform.
    pub ops: u64,
    /// Phase-sequence builder per op.
    pub builder: Box<dyn FnMut(u64) -> Vec<Phase>>,
}

/// The result of a simulation run.
#[derive(Debug)]
pub struct RunResult {
    /// Finish time (ns) of each client.
    pub client_finish: Vec<u64>,
    /// Time the last client finished.
    pub makespan_ns: u64,
    /// Client-observed time per breakdown tag (wait + service + latency),
    /// summed over all clients.
    pub tag_ns: HashMap<usize, u64>,
    /// Per-second metrics.
    pub metrics: Metrics,
    /// Per-resource total busy ns, by name.
    pub resource_busy: HashMap<String, u64>,
}

impl RunResult {
    /// Average per-client completion time in seconds (what Fig. 1 reports).
    pub fn avg_client_seconds(&self) -> f64 {
        if self.client_finish.is_empty() {
            return 0.0;
        }
        self.client_finish.iter().map(|&t| t as f64).sum::<f64>()
            / self.client_finish.len() as f64
            / 1e9
    }

    /// Makespan in seconds.
    pub fn makespan_seconds(&self) -> f64 {
        self.makespan_ns as f64 / 1e9
    }

    /// Average per-client seconds attributed to `tag`.
    pub fn tag_avg_seconds(&self, tag: usize) -> f64 {
        if self.client_finish.is_empty() {
            return 0.0;
        }
        *self.tag_ns.get(&tag).unwrap_or(&0) as f64 / self.client_finish.len() as f64 / 1e9
    }
}

/// The simulation engine.
pub struct Engine {
    resources: Vec<Resource>,
    metrics: Metrics,
}

impl Default for Engine {
    fn default() -> Self {
        Self::new()
    }
}

impl Engine {
    /// New engine with 1-second metric buckets.
    pub fn new() -> Self {
        Engine {
            resources: Vec::new(),
            metrics: Metrics { bucket_ns: 1_000_000_000, ..Default::default() },
        }
    }

    /// Override the metric bucket width.
    pub fn with_bucket_ns(mut self, bucket_ns: u64) -> Self {
        self.metrics.bucket_ns = bucket_ns;
        self
    }

    /// Register a resource with `servers` parallel units.
    pub fn add_resource(
        &mut self,
        name: &str,
        servers: usize,
        metric_group: Option<usize>,
    ) -> ResourceId {
        self.resources.push(Resource::new(name, servers, metric_group));
        self.resources.len() - 1
    }

    /// Record a memory event (protocol drivers call this).
    pub fn mem_event(&mut self, t: u64, delta: i64) {
        self.metrics.mem_event(t, delta);
    }

    /// Run all clients to completion (closed loop).
    pub fn run(mut self, mut clients: Vec<ClientPlan>) -> RunResult {
        struct ClientState {
            op_idx: u64,
            phases: std::collections::VecDeque<Phase>,
            op_start: u64,
            finished: bool,
            finish_time: u64,
        }
        let n = clients.len();
        let mut states: Vec<ClientState> = (0..n)
            .map(|_| ClientState {
                op_idx: 0,
                phases: Default::default(),
                op_start: 0,
                finished: false,
                finish_time: 0,
            })
            .collect();
        let mut tag_ns: HashMap<usize, u64> = HashMap::new();
        // Event calendar: (ready_time, seq, client). The seq breaks ties
        // deterministically.
        let mut calendar: BinaryHeap<Reverse<(u64, u64, usize)>> = BinaryHeap::new();
        let mut seq = 0u64;
        for c in 0..n {
            calendar.push(Reverse((0, seq, c)));
            seq += 1;
        }
        let mut makespan = 0u64;
        while let Some(Reverse((now, _, c))) = calendar.pop() {
            let st = &mut states[c];
            if st.finished {
                continue;
            }
            if st.phases.is_empty() {
                // Start the next op or finish.
                if st.op_idx >= clients[c].ops {
                    st.finished = true;
                    st.finish_time = now;
                    makespan = makespan.max(now);
                    continue;
                }
                let phases = (clients[c].builder)(st.op_idx);
                st.op_idx += 1;
                st.phases = phases.into();
                st.op_start = now;
            }
            let phase = st.phases.pop_front().expect("non-empty phase queue");
            if phase.packets > 0 || phase.bytes > 0 {
                self.metrics.add_packets(now, phase.packets, phase.bytes);
            }
            let ready = match phase.resource {
                Some(rid) => {
                    let (start, end) = self.resources[rid].acquire(now, phase.service_ns);
                    if let Some(g) = self.resources[rid].metric_group {
                        self.metrics.add_busy(g, start, end);
                    }
                    end + phase.latency_ns
                }
                None => now + phase.service_ns + phase.latency_ns,
            };
            *tag_ns.entry(phase.tag).or_default() += ready - now;
            calendar.push(Reverse((ready, seq, c)));
            seq += 1;
        }
        let resource_busy =
            self.resources.iter().map(|r| (r.name.clone(), r.busy_ns)).collect();
        RunResult {
            client_finish: states.iter().map(|s| s.finish_time).collect(),
            makespan_ns: makespan,
            tag_ns,
            metrics: self.metrics,
            resource_busy,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_client_sums_phase_times() {
        let mut e = Engine::new();
        let r = e.add_resource("link", 1, None);
        let result = e.run(vec![ClientPlan {
            ops: 10,
            builder: Box::new(move |_| {
                vec![Phase {
                    resource: Some(r),
                    service_ns: 100,
                    latency_ns: 50,
                    packets: 1,
                    bytes: 8,
                    tag: 0,
                }]
            }),
        }]);
        assert_eq!(result.client_finish[0], 10 * 150);
        assert_eq!(result.makespan_ns, 1_500);
        assert_eq!(result.tag_ns[&0], 1_500);
    }

    #[test]
    fn contended_single_server_serializes() {
        // 4 clients × 10 ops on a 1-server resource: total busy = 40 ×
        // service, makespan >= busy.
        let mut e = Engine::new();
        let r = e.add_resource("lock", 1, None);
        let clients = (0..4)
            .map(|_| ClientPlan {
                ops: 10,
                builder: Box::new(move |_| {
                    vec![Phase {
                        resource: Some(r),
                        service_ns: 1_000,
                        latency_ns: 0,
                        packets: 0,
                        bytes: 0,
                        tag: 0,
                    }]
                }),
            })
            .collect();
        let result = e.run(clients);
        assert_eq!(result.makespan_ns, 40_000, "perfect serialization");
        assert_eq!(result.resource_busy["lock"], 40_000);
    }

    #[test]
    fn multi_server_resource_gives_parallel_speedup() {
        let run = |servers: usize| {
            let mut e = Engine::new();
            let r = e.add_resource("pool", servers, None);
            let clients = (0..8)
                .map(|_| ClientPlan {
                    ops: 10,
                    builder: Box::new(move |_| {
                        vec![Phase {
                            resource: Some(r),
                            service_ns: 1_000,
                            latency_ns: 0,
                            packets: 0,
                            bytes: 0,
                            tag: 0,
                        }]
                    }),
                })
                .collect();
            e.run(clients).makespan_ns
        };
        let t1 = run(1);
        let t4 = run(4);
        assert_eq!(t1, 80_000);
        assert_eq!(t4, 20_000, "4 servers -> 4x");
    }

    #[test]
    fn latency_overlaps_across_clients() {
        // Pure-latency phases do not serialize: 100 clients each waiting
        // 1 ms finish at 10 ms (10 ops), not 1 s.
        let e = Engine::new();
        let clients = (0..100)
            .map(|_| ClientPlan {
                ops: 10,
                builder: Box::new(|_| vec![Phase::delay(1_000_000, 0)]),
            })
            .collect();
        let result = e.run(clients);
        assert_eq!(result.makespan_ns, 10_000_000);
    }

    #[test]
    fn metrics_buckets_accumulate() {
        let mut e = Engine::new().with_bucket_ns(1_000);
        let r = e.add_resource("nic", 1, Some(0));
        let result = e.run(vec![ClientPlan {
            ops: 4,
            builder: Box::new(move |_| {
                vec![Phase {
                    resource: Some(r),
                    service_ns: 500,
                    latency_ns: 0,
                    packets: 2,
                    bytes: 100,
                    tag: 0,
                }]
            }),
        }]);
        // 4 ops × 500 ns = 2 µs busy over two 1 µs buckets.
        let util = result.metrics.utilization(0, 1);
        assert_eq!(util.len(), 2);
        assert!((util[0] - 1.0).abs() < 1e-9);
        assert!((util[1] - 1.0).abs() < 1e-9);
        assert_eq!(result.metrics.packets.iter().sum::<u64>(), 8);
        assert_eq!(result.metrics.bytes.iter().sum::<u64>(), 400);
    }

    #[test]
    fn mem_series_tracks_events() {
        let mut m = Metrics { bucket_ns: 1_000, ..Default::default() };
        m.mem_event(0, 500);
        m.mem_event(1_500, 300);
        m.mem_event(2_500, -200);
        let series = m.mem_series(3);
        assert_eq!(series, vec![500, 800, 600]);
    }

    #[test]
    fn deterministic_repeat_runs() {
        let run = || {
            let mut e = Engine::new();
            let r = e.add_resource("x", 2, None);
            let clients = (0..5)
                .map(|i| ClientPlan {
                    ops: 20,
                    builder: Box::new(move |op| {
                        vec![Phase {
                            resource: Some(r),
                            service_ns: 100 + (i as u64 * 7 + op) % 50,
                            latency_ns: 10,
                            packets: 1,
                            bytes: 64,
                            tag: 0,
                        }]
                    }),
                })
                .collect();
            e.run(clients).makespan_ns
        };
        assert_eq!(run(), run());
    }
}
