//! Cluster constants, calibrated to what the paper states about Ares.

/// Physical/timing model of one cluster configuration.
#[derive(Debug, Clone, Copy)]
pub struct ClusterSpec {
    /// Nodes in the run.
    pub nodes: u32,
    /// MPI ranks per node (Ares: 40).
    pub procs_per_node: u32,
    /// NIC processing cores per node serving RPC handlers (BlueField-class
    /// NICs are multi-core, paper §I).
    pub nic_cores: u32,
    /// One-way inter-node propagation latency, ns.
    pub link_latency_ns: u64,
    /// Inter-node per-byte cost, ns/B. Paper: "average network performance
    /// between two nodes in Ares ... approximately 4.5 GB/s" → 0.222 ns/B.
    pub link_ns_per_byte: f64,
    /// Local memory per-byte cost, ns/B. Paper: "memory performance of an
    /// Ares node using Stream ... roughly 65 GB/sec" → 0.0154 ns/B.
    pub mem_ns_per_byte: f64,
    /// Service time of one remote atomic (CAS/FADD) at the target NIC, ns.
    /// RoCE atomics serialize at the memory region; ~1 µs effective.
    pub remote_cas_ns: u64,
    /// A CAS executed locally by the handler (no network), ns.
    pub local_cas_ns: u64,
    /// NIC-core service time to demarshal + dispatch one RPC, ns.
    pub rpc_handler_ns: u64,
    /// Per-op client-side software overhead, ns (stub marshalling etc.).
    pub client_overhead_ns: u64,
    /// MTU used for packet accounting, bytes.
    pub mtu: u64,
    /// Node RAM, bytes (Ares: 96 GB).
    pub node_ram: u64,
    /// BCL's exclusive-buffer multiplier: bytes of pinned buffer required
    /// per client per op-size unit (calibrated so the paper's OOM boundary
    /// — failures above 1 MB ops, 60% usable RAM — is reproduced).
    pub bcl_buffer_factor: u64,
    /// NIC-loopback (PCIe) per-byte cost for intra-node one-sided ops,
    /// ns/B. BCL's intra-node ops go through the NIC even when local (it
    /// has no hybrid model); ~12 GB/s, which is what BCL's intra-node find
    /// bandwidth plateaus at in Fig. 5(a).
    pub pcie_ns_per_byte: f64,
    /// Per-4KB-page cost of BCL's exclusive-buffer registration on the
    /// target partition for *remote* inserts, serialized per partition, ns
    /// (calibrated: explains insert ≪ find bandwidth and the memory blowup
    /// of Fig. 5(b)).
    pub bcl_pin_remote_ns_per_page: u64,
    /// Same for intra-node inserts (no network pinning; faster).
    pub bcl_pin_local_ns_per_page: u64,
}

impl ClusterSpec {
    /// The Ares testbed model (paper §IV-A).
    pub fn ares(nodes: u32) -> Self {
        ClusterSpec {
            nodes,
            procs_per_node: 40,
            nic_cores: 4,
            link_latency_ns: 2_000,
            link_ns_per_byte: 1.0e9 / 4.5e9,  // 4.5 GB/s
            mem_ns_per_byte: 1.0e9 / 65.0e9,  // 65 GB/s STREAM
            remote_cas_ns: 1_070,
            local_cas_ns: 400,
            rpc_handler_ns: 2_500,
            client_overhead_ns: 500,
            mtu: 4_096,
            node_ram: 96 * (1 << 30),
            bcl_buffer_factor: 1_024,
            pcie_ns_per_byte: 1.0e9 / 12.0e9, // ~12 GB/s loopback
            bcl_pin_remote_ns_per_page: 2_500,
            bcl_pin_local_ns_per_page: 500,
        }
    }

    /// Time for the wire transfer of `bytes` inter-node (no latency term).
    pub fn wire_ns(&self, bytes: u64) -> u64 {
        (bytes as f64 * self.link_ns_per_byte) as u64
    }

    /// Time for a local memory copy of `bytes`.
    pub fn memcpy_ns(&self, bytes: u64) -> u64 {
        (bytes as f64 * self.mem_ns_per_byte) as u64
    }

    /// Packets needed for `bytes`.
    pub fn packets(&self, bytes: u64) -> u64 {
        bytes.div_ceil(self.mtu).max(1)
    }

    /// Usable RAM before BCL hits its observed 60% ceiling (§IV-B2).
    pub fn bcl_ram_ceiling(&self) -> u64 {
        (self.node_ram as f64 * 0.6) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ares_constants_match_paper_statements() {
        let s = ClusterSpec::ares(64);
        assert_eq!(s.procs_per_node, 40);
        // 4.5 GB/s: a 4.5 GB transfer takes ~1 s.
        let t = s.wire_ns(4_500_000_000);
        assert!((0.9e9..1.1e9).contains(&(t as f64)), "wire time {t}");
        // 65 GB/s STREAM.
        let m = s.memcpy_ns(65_000_000_000);
        assert!((0.9e9..1.1e9).contains(&(m as f64)), "mem time {m}");
        assert_eq!(s.bcl_ram_ceiling(), (96u64 * (1 << 30)) * 6 / 10);
    }

    #[test]
    fn packet_accounting() {
        let s = ClusterSpec::ares(2);
        assert_eq!(s.packets(1), 1);
        assert_eq!(s.packets(4096), 1);
        assert_eq!(s.packets(4097), 2);
        assert_eq!(s.packets(8 << 20), 2048);
    }
}
