//! Per-operation phase builders: the exact op sequences of the BCL and HCL
//! protocols, expressed as resource/latency phases for the engine.
//!
//! BCL insert (paper §II-B / Fig. 1): CAS-reserve (remote round, serialized
//! at the partition's memory region) → exclusive-buffer registration
//! (serialized per partition) → RDMA write of the payload → CAS-ready
//! (remote round). Collisions retry the reserve with another full round.
//!
//! HCL insert (paper §III-B / Fig. 2): one `RDMA_SEND` carrying op + data →
//! NIC-core handler executing the whole bucket protocol at local-memory
//! speed → client pull of the small response. Intra-node HCL ops bypass
//! everything and run at memory speed (hybrid model, §III-C5).

use crate::engine::{Engine, Phase, ResourceId};
use crate::rng::SimRng;
use crate::spec::ClusterSpec;

/// Breakdown tags (Fig. 1's bar components).
pub mod tags {
    /// BCL: remote CAS to reserve a bucket.
    pub const CAS_RESERVE: usize = 0;
    /// Payload transfer.
    pub const DATA: usize = 1;
    /// BCL: remote CAS to publish the bucket.
    pub const CAS_READY: usize = 2;
    /// HCL: the RPC round (send + response pull).
    pub const RPC_CALL: usize = 3;
    /// Work executed locally at the target (handler CAS/bucket walk).
    pub const LOCAL_WORK: usize = 4;
    /// BCL: exclusive-buffer registration.
    pub const REGISTRATION: usize = 5;
    /// Client-side software overhead / think time.
    pub const CLIENT: usize = 6;
    /// Human-readable names, indexed by tag.
    pub const NAMES: [&str; 7] =
        ["cas-reserve", "data", "cas-ready", "rpc-call", "local-work", "registration", "client"];
}

/// Resource handles for one simulated cluster.
#[derive(Debug, Clone)]
pub struct ClusterResources {
    /// Ingress link pipe per node (serializes inbound wire transfers).
    pub link_in: Vec<ResourceId>,
    /// Egress link pipe per node.
    pub link_out: Vec<ResourceId>,
    /// NIC core pool per node (executes RPC handlers); metric group 0 on
    /// the *server* nodes feeds Fig. 4(a).
    pub nic: Vec<ResourceId>,
    /// Memory bus per node (hybrid local path).
    pub mem: Vec<ResourceId>,
    /// Per-partition atomic/memory-region unit (serializes remote CAS and
    /// BCL buffer registration).
    pub part: Vec<ResourceId>,
    /// Per-partition structure-service unit (the software cost of actually
    /// applying an op at a partition; single-threaded per partition).
    pub part_service: Vec<ResourceId>,
}

/// Build the standard resource set for `nodes` nodes and `partitions`
/// partitions. `metric_server_node` selects which node's NIC feeds metric
/// group 0 (the profiled server of Fig. 4).
pub fn build_resources(
    engine: &mut Engine,
    spec: &ClusterSpec,
    partitions: usize,
    metric_server_node: Option<u32>,
) -> ClusterResources {
    let mut r = ClusterResources {
        link_in: Vec::new(),
        link_out: Vec::new(),
        nic: Vec::new(),
        mem: Vec::new(),
        part: Vec::new(),
        part_service: Vec::new(),
    };
    for n in 0..spec.nodes {
        let metric = if Some(n) == metric_server_node { Some(0) } else { None };
        r.link_in.push(engine.add_resource(&format!("link-in-{n}"), 1, None));
        r.link_out.push(engine.add_resource(&format!("link-out-{n}"), 1, None));
        r.nic.push(engine.add_resource(&format!("nic-{n}"), spec.nic_cores as usize, metric));
        r.mem.push(engine.add_resource(&format!("mem-{n}"), 1, None));
    }
    for p in 0..partitions {
        r.part.push(engine.add_resource(&format!("part-{p}"), 1, None));
        r.part_service.push(engine.add_resource(&format!("psvc-{p}"), 1, None));
    }
    r
}

/// Parameters shared by the op builders.
#[derive(Debug, Clone, Copy)]
pub struct OpParams {
    /// Payload size in bytes.
    pub size: u64,
    /// Probability a BCL CAS-reserve collides and retries (another full
    /// remote round). Grows with concurrency/load factor.
    pub bcl_retry_p: f64,
    /// Extra handler service factor for ordered structures
    /// (log(N) descent vs O(1) bucket). 1.0 for unordered.
    pub ordered_factor: f64,
    /// Per-op software service at the partition, ns (calibrated from the
    /// paper's absolute throughputs; see EXPERIMENTS.md).
    pub part_service_ns: u64,
    /// Client-side think/overhead time per op, ns.
    pub client_ns: u64,
}

impl Default for OpParams {
    fn default() -> Self {
        OpParams {
            size: 4096,
            bcl_retry_p: 0.0,
            ordered_factor: 1.0,
            part_service_ns: 0,
            client_ns: 0,
        }
    }
}

fn rtt(spec: &ClusterSpec) -> u64 {
    2 * spec.link_latency_ns
}

/// BCL insert to a *remote* partition: the paper's 3-remote-op protocol.
pub fn bcl_insert_remote(
    spec: &ClusterSpec,
    r: &ClusterResources,
    target_node: usize,
    part: usize,
    p: &OpParams,
    rng: &mut SimRng,
) -> Vec<Phase> {
    let mut phases = Vec::with_capacity(6);
    if p.client_ns > 0 {
        phases.push(Phase::delay(p.client_ns, tags::CLIENT));
    }
    // CAS reserve, plus collision retries — each one a full remote round
    // serialized at the partition's memory region.
    loop {
        phases.push(Phase {
            resource: Some(r.part[part]),
            service_ns: spec.remote_cas_ns,
            latency_ns: rtt(spec),
            packets: 2,
            bytes: 16,
            tag: tags::CAS_RESERVE,
        });
        if !rng.chance(p.bcl_retry_p) {
            break;
        }
    }
    // Exclusive-buffer registration on the target (serialized per
    // partition; the root of BCL's insert-bandwidth ceiling and its memory
    // blowup — §IV-B2).
    phases.push(Phase {
        resource: Some(r.part[part]),
        service_ns: spec.packets(p.size) * spec.bcl_pin_remote_ns_per_page,
        latency_ns: 0,
        packets: 0,
        bytes: 0,
        tag: tags::REGISTRATION,
    });
    // RDMA write of the payload through the target's ingress pipe.
    phases.push(Phase {
        resource: Some(r.link_in[target_node]),
        service_ns: spec.wire_ns(p.size),
        latency_ns: spec.link_latency_ns,
        packets: spec.packets(p.size),
        bytes: p.size,
        tag: tags::DATA,
    });
    // Optional structure service (Fig. 6 software cost).
    if p.part_service_ns > 0 {
        phases.push(Phase {
            resource: Some(r.part_service[part]),
            service_ns: (p.part_service_ns as f64 * 3.0) as u64,
            latency_ns: 0,
            packets: 0,
            bytes: 0,
            tag: tags::LOCAL_WORK,
        });
    }
    // CAS ready.
    phases.push(Phase {
        resource: Some(r.part[part]),
        service_ns: spec.remote_cas_ns,
        latency_ns: rtt(spec),
        packets: 2,
        bytes: 16,
        tag: tags::CAS_READY,
    });
    phases
}

/// BCL find on a *remote* partition: one full-bucket remote read per probe
/// (no CAS) — cheaper than insert, as the paper observes.
pub fn bcl_find_remote(
    spec: &ClusterSpec,
    r: &ClusterResources,
    target_node: usize,
    part: usize,
    p: &OpParams,
    rng: &mut SimRng,
) -> Vec<Phase> {
    let mut phases = Vec::with_capacity(3);
    if p.client_ns > 0 {
        phases.push(Phase::delay(p.client_ns, tags::CLIENT));
    }
    loop {
        phases.push(Phase {
            resource: Some(r.link_out[target_node]),
            service_ns: spec.wire_ns(p.size),
            latency_ns: rtt(spec),
            packets: spec.packets(p.size) + 1,
            bytes: p.size,
            tag: tags::DATA,
        });
        if !rng.chance(p.bcl_retry_p) {
            break;
        }
    }
    if p.part_service_ns > 0 {
        phases.push(Phase {
            resource: Some(r.part_service[part]),
            service_ns: p.part_service_ns,
            latency_ns: 0,
            packets: 0,
            bytes: 0,
            tag: tags::LOCAL_WORK,
        });
    }
    phases
}

/// BCL insert through the NIC loopback (intra-node; BCL has no hybrid
/// bypass, so the CAS/registration protocol runs even locally).
pub fn bcl_insert_local(
    spec: &ClusterSpec,
    r: &ClusterResources,
    node: usize,
    part: usize,
    p: &OpParams,
    rng: &mut SimRng,
) -> Vec<Phase> {
    let mut phases = Vec::with_capacity(5);
    let loop_lat = 300; // loopback RTT ~0.3 µs
    loop {
        phases.push(Phase {
            resource: Some(r.part[part]),
            service_ns: spec.remote_cas_ns,
            latency_ns: loop_lat,
            packets: 0,
            bytes: 0,
            tag: tags::CAS_RESERVE,
        });
        if !rng.chance(p.bcl_retry_p) {
            break;
        }
    }
    phases.push(Phase {
        resource: Some(r.part[part]),
        service_ns: spec.packets(p.size) * spec.bcl_pin_local_ns_per_page,
        latency_ns: 0,
        packets: 0,
        bytes: 0,
        tag: tags::REGISTRATION,
    });
    // Data moves over the single PCIe pipe into the pinned partition
    // region (serialized with the partition's other traffic).
    let _ = node;
    phases.push(Phase {
        resource: Some(r.part[part]),
        service_ns: (p.size as f64 * spec.pcie_ns_per_byte) as u64,
        latency_ns: loop_lat,
        packets: 0,
        bytes: 0,
        tag: tags::DATA,
    });
    phases.push(Phase {
        resource: Some(r.part[part]),
        service_ns: spec.remote_cas_ns,
        latency_ns: loop_lat,
        packets: 0,
        bytes: 0,
        tag: tags::CAS_READY,
    });
    phases
}

/// BCL find through the NIC loopback (intra-node): PCIe-bound read.
pub fn bcl_find_local(
    spec: &ClusterSpec,
    r: &ClusterResources,
    _node: usize,
    part: usize,
    p: &OpParams,
    _rng: &mut SimRng,
) -> Vec<Phase> {
    // One PCIe round trip through the NIC loopback; the pipe is shared, so
    // aggregate intra-node find bandwidth plateaus at PCIe speed — the
    // ~12 GB/s ceiling Fig. 5(a) shows for BCL finds.
    vec![Phase {
        resource: Some(r.part[part]),
        service_ns: (p.size as f64 * spec.pcie_ns_per_byte) as u64,
        latency_ns: 300,
        packets: 0,
        bytes: 0,
        tag: tags::DATA,
    }]
}

/// HCL insert on a *remote* partition: one RPC (send → NIC handler →
/// client-pull response).
pub fn hcl_insert_remote(
    spec: &ClusterSpec,
    r: &ClusterResources,
    target_node: usize,
    part: usize,
    p: &OpParams,
    lock_free: bool,
) -> Vec<Phase> {
    let mut phases = Vec::with_capacity(4);
    if p.client_ns > 0 {
        phases.push(Phase::delay(p.client_ns, tags::CLIENT));
    }
    phases.push(Phase {
        resource: Some(r.link_in[target_node]),
        service_ns: spec.wire_ns(p.size) + spec.client_overhead_ns,
        latency_ns: spec.link_latency_ns,
        packets: spec.packets(p.size),
        bytes: p.size,
        tag: tags::RPC_CALL,
    });
    // Handler on a NIC core: demarshal + (CAS-based or lock-free) bucket
    // work at local-memory speed.
    let cas_work = if lock_free { 0 } else { 2 * spec.local_cas_ns };
    let handler =
        ((spec.rpc_handler_ns + cas_work + spec.memcpy_ns(p.size)) as f64 * p.ordered_factor)
            as u64;
    phases.push(Phase {
        resource: Some(r.nic[target_node]),
        service_ns: handler,
        latency_ns: 0,
        packets: 0,
        bytes: 0,
        tag: tags::LOCAL_WORK,
    });
    if p.part_service_ns > 0 {
        phases.push(Phase {
            resource: Some(r.part_service[part]),
            service_ns: (p.part_service_ns as f64 * p.ordered_factor) as u64,
            latency_ns: 0,
            packets: 0,
            bytes: 0,
            tag: tags::LOCAL_WORK,
        });
    }
    // Client pulls the small response.
    phases.push(Phase {
        resource: Some(r.link_out[target_node]),
        service_ns: spec.wire_ns(64),
        latency_ns: rtt(spec),
        packets: 1,
        bytes: 64,
        tag: tags::RPC_CALL,
    });
    phases
}

/// HCL find on a *remote* partition: small request, payload-sized pull.
pub fn hcl_find_remote(
    spec: &ClusterSpec,
    r: &ClusterResources,
    target_node: usize,
    part: usize,
    p: &OpParams,
) -> Vec<Phase> {
    let mut phases = Vec::with_capacity(4);
    if p.client_ns > 0 {
        phases.push(Phase::delay(p.client_ns, tags::CLIENT));
    }
    phases.push(Phase {
        resource: Some(r.link_in[target_node]),
        service_ns: spec.wire_ns(64) + spec.client_overhead_ns,
        latency_ns: spec.link_latency_ns,
        packets: 1,
        bytes: 64,
        tag: tags::RPC_CALL,
    });
    let handler = ((spec.rpc_handler_ns + spec.memcpy_ns(p.size)) as f64 * p.ordered_factor) as u64;
    phases.push(Phase {
        resource: Some(r.nic[target_node]),
        service_ns: handler,
        latency_ns: 0,
        packets: 0,
        bytes: 0,
        tag: tags::LOCAL_WORK,
    });
    if p.part_service_ns > 0 {
        phases.push(Phase {
            resource: Some(r.part_service[part]),
            service_ns: (p.part_service_ns as f64 * 0.8 * p.ordered_factor) as u64,
            latency_ns: 0,
            packets: 0,
            bytes: 0,
            tag: tags::LOCAL_WORK,
        });
    }
    phases.push(Phase {
        resource: Some(r.link_out[target_node]),
        service_ns: spec.wire_ns(p.size),
        latency_ns: rtt(spec),
        packets: spec.packets(p.size),
        bytes: p.size,
        tag: tags::RPC_CALL,
    });
    phases
}

/// HCL intra-node op: the hybrid bypass — a straight memory access.
pub fn hcl_local(spec: &ClusterSpec, r: &ClusterResources, node: usize, p: &OpParams) -> Vec<Phase> {
    vec![Phase {
        resource: Some(r.mem[node]),
        service_ns: spec.memcpy_ns(p.size) + 100,
        latency_ns: 0,
        packets: 0,
        bytes: 0,
        tag: tags::LOCAL_WORK,
    }]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::ClientPlan;

    fn spec2() -> ClusterSpec {
        ClusterSpec::ares(2)
    }

    #[test]
    fn bcl_insert_has_three_remote_ops_minimum() {
        let spec = spec2();
        let mut e = Engine::new();
        let r = build_resources(&mut e, &spec, 1, None);
        let mut rng = SimRng::new(1);
        let phases =
            bcl_insert_remote(&spec, &r, 1, 0, &OpParams { size: 4096, ..Default::default() }, &mut rng);
        let remote_packets: u64 = phases.iter().map(|p| p.packets).sum();
        // reserve(2) + data(1) + ready(2).
        assert_eq!(remote_packets, 5);
        assert_eq!(phases.iter().filter(|p| p.tag == tags::CAS_RESERVE).count(), 1);
        assert_eq!(phases.iter().filter(|p| p.tag == tags::CAS_READY).count(), 1);
    }

    #[test]
    fn bcl_retries_add_cas_rounds() {
        let spec = spec2();
        let mut e = Engine::new();
        let r = build_resources(&mut e, &spec, 1, None);
        let mut rng = SimRng::new(7);
        let mut total_reserve = 0;
        for _ in 0..1_000 {
            let phases = bcl_insert_remote(
                &spec,
                &r,
                1,
                0,
                &OpParams { size: 64, bcl_retry_p: 0.5, ..Default::default() },
                &mut rng,
            );
            total_reserve += phases.iter().filter(|p| p.tag == tags::CAS_RESERVE).count();
        }
        // Expected ~2 reserves per op at p=0.5.
        assert!((1_800..2_300).contains(&total_reserve), "reserves {total_reserve}");
    }

    #[test]
    fn hcl_insert_is_one_network_round_plus_pull() {
        let spec = spec2();
        let mut e = Engine::new();
        let r = build_resources(&mut e, &spec, 1, None);
        let phases =
            hcl_insert_remote(&spec, &r, 1, 0, &OpParams { size: 4096, ..Default::default() }, false);
        // Exactly one request phase and one response phase touch the wire.
        let wire_phases = phases.iter().filter(|p| p.packets > 0).count();
        assert_eq!(wire_phases, 2);
    }

    #[test]
    fn single_client_hcl_beats_bcl_on_remote_inserts() {
        // The Fig. 1 relationship must hold structurally, before any
        // calibration: 3 serialized rounds > 1 round + local work.
        let spec = spec2();
        let run = |is_hcl: bool| {
            let mut e = Engine::new();
            let r = build_resources(&mut e, &spec, 1, None);
            let spec2 = spec;
            let mut rng = SimRng::new(3);
            let p = OpParams { size: 4096, ..Default::default() };
            let plans = vec![ClientPlan {
                ops: 1_000,
                builder: Box::new(move |_| {
                    if is_hcl {
                        hcl_insert_remote(&spec2, &r, 1, 0, &p, false)
                    } else {
                        bcl_insert_remote(&spec2, &r, 1, 0, &p, &mut rng)
                    }
                }),
            }];
            e.run(plans).makespan_ns
        };
        let bcl = run(false);
        let hcl = run(true);
        // A single client sees the round-count difference (3 rounds vs
        // send+pull); the full ~2x of Fig. 1 needs 40-way concurrency,
        // which the fig1 scenario test covers.
        assert!(
            bcl as f64 > 1.25 * hcl as f64,
            "bcl {bcl} should be >1.25x hcl {hcl}"
        );
    }

    #[test]
    fn hcl_local_is_memory_speed() {
        let spec = spec2();
        let mut e = Engine::new();
        let r = build_resources(&mut e, &spec, 1, None);
        let p = OpParams { size: 1 << 20, ..Default::default() };
        let phases = hcl_local(&spec, &r, 0, &p);
        assert_eq!(phases.len(), 1);
        // ~16 µs for 1 MB at 65 GB/s.
        assert!((10_000..25_000).contains(&phases[0].service_ns));
    }
}
