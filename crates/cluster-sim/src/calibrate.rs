//! Telemetry→sim feedback loop: calibrate the queueing model's software
//! constants from *measured* per-rank latency histograms, then extrapolate
//! a workload to node counts the test host cannot run.
//!
//! The scenario suite measures real 1–8-rank runs with the in-memory
//! fabric and records per-op latencies into `hcl-telemetry` histograms.
//! [`Calibration::from_remote_p50`] decomposes the measured median remote
//! op latency into the model's two software knobs ([`OpParams`]'s
//! `part_service_ns` and `client_ns`) by subtracting the Ares network
//! floor the [`ClusterSpec`] already accounts for; [`simulate_workload`]
//! then replays the same mix shape through the discrete-event engine at
//! 64–512 nodes. The committed FIG artifacts record the calibration
//! values, so the simulated series regenerates bit-identically on any
//! host (the engine is deterministic) even though the measurement that
//! produced the calibration is host-speed dependent.

use crate::engine::{ClientPlan, Engine};
use crate::protocol::{self, OpParams};
use crate::rng::SimRng;
use crate::spec::ClusterSpec;

/// Software constants distilled from one measured latency distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Calibration {
    /// Per-op structure service at the owning partition, ns.
    pub part_service_ns: u64,
    /// Per-op client-side software overhead, ns.
    pub client_ns: u64,
    /// The measured median remote-op latency this was derived from, ns
    /// (recorded in artifacts for provenance).
    pub measured_p50_ns: u64,
}

/// Floor for `part_service_ns`: even a trivial op pays a bucket walk.
const MIN_PART_SERVICE_NS: u64 = 1_000;
/// Floor for `client_ns`: marshalling is never free.
const MIN_CLIENT_NS: u64 = 500;
/// Of the software remainder, the share attributed to the partition
/// (the rest is client-side). The split matters less than the sum — both
/// serialize per closed-loop client — but the partition share is the part
/// that contends under fan-in.
const PART_SHARE: f64 = 0.6;

impl Calibration {
    /// Decompose a measured median remote-op latency (`p50_ns`, from the
    /// dispatcher's `hcl_core_op_latency_remote_ns` histogram or the
    /// workload driver's own per-op histogram) for ops carrying
    /// `value_bytes` payloads.
    ///
    /// The modeled Ares network floor — wire time both ways, propagation,
    /// NIC handler, handler-side memcpy — is subtracted; what remains is
    /// software cost the model does not otherwise account for, split
    /// between partition service and client overhead. Host machines
    /// faster than the modeled path clamp to the floors, so calibration
    /// is total and deterministic for any input.
    pub fn from_remote_p50(spec: &ClusterSpec, p50_ns: u64, value_bytes: u64) -> Calibration {
        let floor = spec.wire_ns(value_bytes)
            + spec.client_overhead_ns
            + spec.rpc_handler_ns
            + 2 * spec.local_cas_ns
            + spec.memcpy_ns(value_bytes)
            + spec.wire_ns(64)
            + 3 * spec.link_latency_ns; // request one-way + response RTT
        let software = p50_ns.saturating_sub(floor);
        let part_raw = (software as f64 * PART_SHARE) as u64;
        let part = part_raw.max(MIN_PART_SERVICE_NS);
        let client = software.saturating_sub(part_raw).max(MIN_CLIENT_NS);
        Calibration { part_service_ns: part, client_ns: client, measured_p50_ns: p50_ns }
    }

    /// The [`OpParams`] this calibration induces for a payload of
    /// `value_bytes` with the given ordered-structure factor.
    pub fn op_params(&self, value_bytes: u64, ordered_factor: f64) -> OpParams {
        OpParams {
            size: value_bytes.max(1),
            bcl_retry_p: 0.0,
            ordered_factor,
            part_service_ns: self.part_service_ns,
            client_ns: self.client_ns,
        }
    }
}

/// Shape of the workload to extrapolate (mirrors the bench driver's spec).
#[derive(Debug, Clone)]
pub struct WorkloadSimParams {
    /// Node counts to simulate (the suite uses 64–512).
    pub node_list: Vec<u32>,
    /// Closed-loop clients per node.
    pub ranks_per_node: u32,
    /// Ops each simulated client issues.
    pub ops_per_client: u64,
    /// Payload bytes per op.
    pub value_bytes: u64,
    /// Fraction of ops that are reads (finds); the rest are inserts.
    pub read_fraction: f64,
    /// Handler service multiplier for ordered structures (1.0 unordered).
    pub ordered_factor: f64,
    /// Deterministic seed for partition/op choice.
    pub seed: u64,
    /// The measured calibration to run under.
    pub cal: Calibration,
}

/// One simulated scale point.
#[derive(Debug, Clone, Copy)]
pub struct SimPoint {
    /// Node count of this point.
    pub nodes: u32,
    /// Aggregate throughput, ops/s.
    pub ops_per_sec: f64,
    /// Makespan, seconds.
    pub makespan_s: f64,
}

/// Run the calibrated mixed workload at every node count in
/// `params.node_list`: one partition per node, `ranks_per_node` closed-loop
/// clients per node spraying calibrated insert/find phases uniformly over
/// the partitions. Fully deterministic for fixed params.
pub fn simulate_workload(params: &WorkloadSimParams) -> Vec<SimPoint> {
    params
        .node_list
        .iter()
        .map(|&nodes| {
            let spec = ClusterSpec::ares(nodes);
            let partitions = nodes as usize;
            let clients = (nodes * params.ranks_per_node) as usize;
            let mut e = Engine::new();
            let r = protocol::build_resources(&mut e, &spec, partitions, None);
            let plans: Vec<ClientPlan> = (0..clients)
                .map(|c| {
                    let r = r.clone();
                    let mut rng = SimRng::new(params.seed ^ (c as u64).wrapping_mul(0x9E37) | 1);
                    let p = params.cal.op_params(params.value_bytes, params.ordered_factor);
                    let read_fraction = params.read_fraction;
                    ClientPlan {
                        ops: params.ops_per_client,
                        builder: Box::new(move |_| {
                            let part = rng.below(partitions as u64) as usize;
                            let node = part % spec.nodes as usize;
                            if rng.chance(read_fraction) {
                                protocol::hcl_find_remote(&spec, &r, node, part, &p)
                            } else {
                                protocol::hcl_insert_remote(&spec, &r, node, part, &p, false)
                            }
                        }),
                    }
                })
                .collect();
            let result = e.run(plans);
            let makespan_s = result.makespan_seconds();
            SimPoint {
                nodes,
                ops_per_sec: clients as f64 * params.ops_per_client as f64 / makespan_s,
                makespan_s,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> ClusterSpec {
        ClusterSpec::ares(64)
    }

    #[test]
    fn calibration_clamps_fast_hosts_to_floors() {
        // A 2 µs measured median is below the modeled Ares network floor:
        // both knobs clamp, nothing underflows.
        let c = Calibration::from_remote_p50(&spec(), 2_000, 64);
        assert_eq!(c.part_service_ns, MIN_PART_SERVICE_NS);
        assert_eq!(c.client_ns, MIN_CLIENT_NS);
        assert_eq!(c.measured_p50_ns, 2_000);
    }

    #[test]
    fn calibration_is_monotonic_in_measured_latency() {
        let s = spec();
        let slow = Calibration::from_remote_p50(&s, 2_000_000, 64);
        let fast = Calibration::from_remote_p50(&s, 100_000, 64);
        assert!(slow.part_service_ns > fast.part_service_ns);
        assert!(slow.client_ns >= fast.client_ns);
        // The decomposition conserves the software remainder.
        let floor_plus = slow.part_service_ns + slow.client_ns;
        assert!(floor_plus < 2_000_000, "software split {floor_plus} exceeds the measurement");
    }

    #[test]
    fn simulated_series_is_deterministic_and_scales() {
        let params = WorkloadSimParams {
            node_list: vec![64, 128, 256, 512],
            ranks_per_node: 4,
            ops_per_client: 8,
            value_bytes: 64,
            read_fraction: 0.5,
            ordered_factor: 1.0,
            seed: 42,
            cal: Calibration::from_remote_p50(&spec(), 40_000, 64),
        };
        let a = simulate_workload(&params);
        let b = simulate_workload(&params);
        assert_eq!(a.len(), 4);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.ops_per_sec.to_bits(), y.ops_per_sec.to_bits(), "sim must be bitwise deterministic");
        }
        // Weak scaling: aggregate throughput grows with node count (more
        // clients, proportionally more partitions).
        assert!(
            a[3].ops_per_sec > 3.0 * a[0].ops_per_sec,
            "512-node throughput {:.0} should be >3x the 64-node {:.0}",
            a[3].ops_per_sec,
            a[0].ops_per_sec
        );
        for p in &a {
            assert!(p.makespan_s > 0.0 && p.makespan_s.is_finite());
        }
    }
}
