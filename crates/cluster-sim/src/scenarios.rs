//! One driver per evaluation figure. Each returns plain data that the
//! `hcl-bench` binaries print next to the paper's reference values.
//!
//! Calibration philosophy (see EXPERIMENTS.md): hardware constants
//! (latency, link/memory bandwidth, MTU) come from the paper's stated Ares
//! numbers; *software* constants (per-op client overhead, per-partition
//! structure service) are calibrated once against the paper's absolute
//! throughputs, and every *comparison* (BCL vs HCL, ordered vs unordered,
//! scaling curves, crossovers) then emerges from the queueing model.

use crate::engine::{ClientPlan, Engine, RunResult};
use crate::protocol::{self, tags, ClusterResources, OpParams};
use crate::rng::SimRng;
use crate::spec::ClusterSpec;

// ---------------------------------------------------------------- Fig. 1

/// One system's bar in Fig. 1.
#[derive(Debug, Clone)]
pub struct Fig1Bar {
    /// System label.
    pub system: &'static str,
    /// Average seconds per client (the figure's y-axis).
    pub total_s: f64,
    /// `(component, seconds)` breakdown.
    pub components: Vec<(&'static str, f64)>,
}

/// Fig. 1: 40 clients on one node issue 8192 × 4 KB inserts to a hashmap
/// partition on another node; BCL vs RPC-with-CAS vs RPC-lock-free.
pub fn fig1() -> Vec<Fig1Bar> {
    let spec = ClusterSpec::ares(2);
    let clients = 40;
    let ops = 8192;
    let size = 4096;

    let bar = |system: &'static str, result: &RunResult, tags_of: &[(usize, &'static str)]| {
        Fig1Bar {
            system,
            total_s: result.avg_client_seconds(),
            components: tags_of
                .iter()
                .map(|&(t, name)| (name, result.tag_avg_seconds(t)))
                .collect(),
        }
    };

    // BCL.
    let mut e = Engine::new();
    let r = protocol::build_resources(&mut e, &spec, 1, None);
    let plans: Vec<ClientPlan> = (0..clients)
        .map(|c| {
            let r = r.clone();
            let mut rng = SimRng::new(c as u64 + 1);
            let p = OpParams { size, bcl_retry_p: 0.05, ..Default::default() };
            ClientPlan {
                ops,
                builder: Box::new(move |_| {
                    protocol::bcl_insert_remote(&spec, &r, 1, 0, &p, &mut rng)
                }),
            }
        })
        .collect();
    let bcl = e.run(plans);

    // HCL-style RPC, with CAS inside the handler.
    let run_rpc = |lock_free: bool| {
        let mut e = Engine::new();
        let r = protocol::build_resources(&mut e, &spec, 1, None);
        let plans: Vec<ClientPlan> = (0..clients)
            .map(|_| {
                let r = r.clone();
                let p = OpParams { size, ..Default::default() };
                ClientPlan {
                    ops,
                    builder: Box::new(move |_| {
                        protocol::hcl_insert_remote(&spec, &r, 1, 0, &p, lock_free)
                    }),
                }
            })
            .collect();
        e.run(plans)
    };
    let rpc_cas = run_rpc(false);
    let lock_free = run_rpc(true);

    vec![
        bar(
            "BCL",
            &bcl,
            &[
                (tags::CAS_RESERVE, "reserve bucket (remote)"),
                (tags::DATA, "insert data (remote)"),
                (tags::CAS_READY, "set bucket state (remote)"),
                (tags::REGISTRATION, "buffer registration (remote)"),
            ],
        ),
        bar(
            "RPC with CAS",
            &rpc_cas,
            &[(tags::RPC_CALL, "rpc call"), (tags::LOCAL_WORK, "local ops")],
        ),
        bar(
            "RPC lock-free",
            &lock_free,
            &[(tags::RPC_CALL, "rpc call"), (tags::LOCAL_WORK, "local ops")],
        ),
    ]
}

// ---------------------------------------------------------------- Fig. 4

/// Time-series output of the profiling comparison.
#[derive(Debug, Clone)]
pub struct Fig4Series {
    /// System label.
    pub system: &'static str,
    /// Total seconds to complete the workload.
    pub total_s: f64,
    /// NIC utilization per second-bucket (0..=1).
    pub nic_util: Vec<f64>,
    /// Memory in use per bucket, bytes.
    pub mem: Vec<u64>,
    /// Packets per second per bucket.
    pub packets_per_s: Vec<u64>,
    /// Payload bytes per second per bucket.
    pub bytes_per_s: Vec<u64>,
}

/// Fig. 4: PAT-style profiling of 40 clients × 8192 × 4 KB remote writes;
/// BCL vs HCL. Client-side software overheads are calibrated to the paper's
/// totals (28 s vs 10.5 s); utilization, memory and packet series derive
/// from the model.
pub fn fig4() -> Vec<Fig4Series> {
    let spec = ClusterSpec::ares(2);
    let clients = 40usize;
    let ops = 8192u64;
    let size = 4096u64;
    let total_ops = clients as u64 * ops;

    // BCL: per-op client software path calibrated to land at ~28 s.
    let mut e = Engine::new();
    let r = protocol::build_resources(&mut e, &spec, 1, Some(1));
    // Static up-front allocation: the paper shows BCL's memory ramping
    // during initialization (first ~6 s) to its full static size.
    let bcl_static = total_ops * size * 2; // partition + client bound buffers
    for i in 0..60 {
        e.mem_event(i * 100_000_000, (bcl_static / 60) as i64);
    }
    let plans: Vec<ClientPlan> = (0..clients)
        .map(|c| {
            let r = r.clone();
            let mut rng = SimRng::new(c as u64 + 11);
            let p = OpParams {
                size,
                bcl_retry_p: 0.05,
                client_ns: 3_330_000, // calibrated: BCL software path
                ..Default::default()
            };
            ClientPlan {
                ops,
                builder: Box::new(move |_| {
                    protocol::bcl_insert_remote(&spec, &r, 1, 0, &p, &mut rng)
                }),
            }
        })
        .collect();
    let bcl = e.run(plans);
    let bcl_buckets = (bcl.makespan_ns / 1_000_000_000 + 1) as usize;

    // HCL: dynamic growth; memory expands as ops complete.
    let mut e = Engine::new();
    let r = protocol::build_resources(&mut e, &spec, 1, Some(1));
    let hcl_target = total_ops * size;
    // Doubling growth: reach the same total by the end (paper: "eventually
    // reaching the same overall memory utilization").
    let mut allocated = 64 * 1024 * 1024u64;
    let mut t = 0u64;
    let hcl_total_est = 10_500_000_000u64;
    e.mem_event(0, allocated as i64);
    while allocated < hcl_target {
        t += hcl_total_est / 8;
        e.mem_event(t, allocated as i64); // double
        allocated *= 2;
    }
    let plans: Vec<ClientPlan> = (0..clients)
        .map(|_| {
            let r = r.clone();
            let p = OpParams {
                size,
                client_ns: 1_270_000, // calibrated: HCL software path
                ..Default::default()
            };
            ClientPlan {
                ops,
                builder: Box::new(move |_| {
                    protocol::hcl_insert_remote(&spec, &r, 1, 0, &p, false)
                }),
            }
        })
        .collect();
    let hcl = e.run(plans);
    let hcl_buckets = (hcl.makespan_ns / 1_000_000_000 + 1) as usize;

    // NIC utilization: measured busy share plus the polling floor the
    // paper's PAT traces include (BCL clients spin on CAS completions,
    // keeping the NIC work queue hot; HCL's NIC only works per request).
    let util_series = |r: &RunResult, buckets: usize, poll_floor: f64| -> Vec<f64> {
        let measured = r.metrics.utilization(0, spec.nic_cores as u64);
        (0..buckets)
            .map(|i| {
                let m = measured.get(i).copied().unwrap_or(0.0);
                (poll_floor + m).min(0.95)
            })
            .collect()
    };
    let pkts = |r: &RunResult, buckets: usize| -> Vec<u64> {
        (0..buckets).map(|i| r.metrics.packets.get(i).copied().unwrap_or(0)).collect()
    };
    let bytes = |r: &RunResult, buckets: usize| -> Vec<u64> {
        (0..buckets).map(|i| r.metrics.bytes.get(i).copied().unwrap_or(0)).collect()
    };

    vec![
        Fig4Series {
            system: "BCL",
            total_s: bcl.makespan_seconds(),
            nic_util: util_series(&bcl, bcl_buckets, 0.55),
            mem: bcl.metrics.mem_series(bcl_buckets),
            packets_per_s: pkts(&bcl, bcl_buckets),
            bytes_per_s: bytes(&bcl, bcl_buckets),
        },
        Fig4Series {
            system: "HCL",
            total_s: hcl.makespan_seconds(),
            nic_util: util_series(&hcl, hcl_buckets, 0.30),
            mem: hcl.metrics.mem_series(hcl_buckets),
            packets_per_s: pkts(&hcl, hcl_buckets),
            bytes_per_s: bytes(&hcl, hcl_buckets),
        },
    ]
}

// ---------------------------------------------------------------- Fig. 5

/// One point of the hybrid-access bandwidth sweep.
#[derive(Debug, Clone)]
pub struct Fig5Point {
    /// Operation size in bytes.
    pub size: u64,
    /// BCL insert bandwidth, MB/s (`None` = out of memory).
    pub bcl_insert: Option<f64>,
    /// BCL find bandwidth, MB/s (`None` = out of memory).
    pub bcl_find: Option<f64>,
    /// HCL insert bandwidth, MB/s.
    pub hcl_insert: f64,
    /// HCL find bandwidth, MB/s.
    pub hcl_find: f64,
}

/// Fig. 5: 8192 ops per client, 40 clients, op sizes 4 KB → 8 MB;
/// `intra = true` places the partition on the clients' node.
pub fn fig5(intra: bool, ops_per_client: u64) -> Vec<Fig5Point> {
    let spec = ClusterSpec::ares(2);
    let clients = 40usize;
    let sizes: Vec<u64> = (0..12).map(|i| 4096u64 << i).collect(); // 4KB..8MB

    let run = |size: u64, system: &'static str, op: &'static str| -> f64 {
        let mut e = Engine::new();
        let r = protocol::build_resources(&mut e, &spec, 1, None);
        let plans: Vec<ClientPlan> = (0..clients)
            .map(|c| {
                let r = r.clone();
                let mut rng = SimRng::new(c as u64 * 31 + 7);
                let p = OpParams { size, bcl_retry_p: 0.05, ..Default::default() };
                ClientPlan {
                    ops: ops_per_client,
                    builder: Box::new(move |_| match (system, op, intra) {
                        ("bcl", "insert", false) => {
                            protocol::bcl_insert_remote(&spec, &r, 1, 0, &p, &mut rng)
                        }
                        ("bcl", "find", false) => {
                            protocol::bcl_find_remote(&spec, &r, 1, 0, &p, &mut rng)
                        }
                        ("bcl", "insert", true) => {
                            protocol::bcl_insert_local(&spec, &r, 0, 0, &p, &mut rng)
                        }
                        ("bcl", "find", true) => {
                            protocol::bcl_find_local(&spec, &r, 0, 0, &p, &mut rng)
                        }
                        ("hcl", "insert", false) => {
                            protocol::hcl_insert_remote(&spec, &r, 1, 0, &p, false)
                        }
                        ("hcl", "find", false) => {
                            protocol::hcl_find_remote(&spec, &r, 1, 0, &p)
                        }
                        ("hcl", _, true) => protocol::hcl_local(&spec, &r, 0, &p),
                        _ => unreachable!(),
                    }),
                }
            })
            .collect();
        let result = e.run(plans);
        let bytes = clients as f64 * ops_per_client as f64 * size as f64;
        bytes / result.makespan_seconds() / 1.0e6
    };

    sizes
        .into_iter()
        .map(|size| {
            // BCL's exclusive buffers: clients × size × factor, against the
            // 60%-of-RAM ceiling (paper §IV-B2: fails above 1 MB).
            let bcl_mem = clients as u64 * size * spec.bcl_buffer_factor;
            let bcl_ok = bcl_mem <= spec.bcl_ram_ceiling();
            Fig5Point {
                size,
                bcl_insert: bcl_ok.then(|| run(size, "bcl", "insert")),
                bcl_find: bcl_ok.then(|| run(size, "bcl", "find")),
                hcl_insert: run(size, "hcl", "insert"),
                hcl_find: run(size, "hcl", "find"),
            }
        })
        .collect()
}

// ---------------------------------------------------------------- Fig. 6

/// One point of the DDS scaling study.
#[derive(Debug, Clone)]
pub struct Fig6Point {
    /// X-axis value (partitions for maps/sets, clients for queues).
    pub x: u64,
    /// `(series name, throughput ops/s)`.
    pub series: Vec<(&'static str, f64)>,
}

/// Shared driver: `clients` closed-loop clients spraying ops uniformly over
/// `partitions` partitions (one per server node).
fn scaling_run(
    spec: &ClusterSpec,
    clients: usize,
    partitions: usize,
    ops: u64,
    p: OpParams,
    system: &'static str,
    op: &'static str,
) -> f64 {
    let mut e = Engine::new();
    // Server nodes host partitions; clients live on the other nodes.
    let r = protocol::build_resources(&mut e, spec, partitions, None);
    let plans: Vec<ClientPlan> = (0..clients)
        .map(|c| {
            let r: ClusterResources = r.clone();
            let mut rng = SimRng::new(c as u64 * 977 + 13);
            let spec = *spec;
            ClientPlan {
                ops,
                builder: Box::new(move |_| {
                    let part = rng.below(partitions as u64) as usize;
                    let node = part % spec.nodes as usize;
                    match (system, op) {
                        ("bcl", "insert") => {
                            protocol::bcl_insert_remote(&spec, &r, node, part, &p, &mut rng)
                        }
                        ("bcl", "find") => {
                            protocol::bcl_find_remote(&spec, &r, node, part, &p, &mut rng)
                        }
                        ("hcl", "insert") => {
                            protocol::hcl_insert_remote(&spec, &r, node, part, &p, false)
                        }
                        ("hcl", "find") => protocol::hcl_find_remote(&spec, &r, node, part, &p),
                        _ => unreachable!(),
                    }
                }),
            }
        })
        .collect();
    let result = e.run(plans);
    clients as f64 * ops as f64 / result.makespan_seconds()
}

/// Fig. 6(a)/(b): maps and sets — 2560 clients × 64 KB ops, partitions
/// 8 → 64. `set = true` drops the value payload (7–14% faster per paper).
pub fn fig6_maps(set: bool, ops_per_client: u64) -> Vec<(&'static str, Vec<Fig6Point>)> {
    let clients = 2_560usize;
    // Calibrated software service at each partition (EXPERIMENTS.md).
    let base_insert: u64 = 100_000;
    let base_find: u64 = 80_000;
    let set_factor = if set { 0.90 } else { 1.0 }; // single key per element
    let mut out_insert = Vec::new();
    let mut out_find = Vec::new();
    for &parts in &[8usize, 16, 32, 64] {
        let spec = ClusterSpec::ares(64);
        let mk = |svc: u64, ordered: f64| OpParams {
            size: 64 * 1024,
            bcl_retry_p: 0.15,
            ordered_factor: ordered,
            part_service_ns: (svc as f64 * set_factor) as u64,
            client_ns: 4_000_000,
        };
        let hcl_u_i =
            scaling_run(&spec, clients, parts, ops_per_client, mk(base_insert, 1.0), "hcl", "insert");
        let hcl_o_i =
            scaling_run(&spec, clients, parts, ops_per_client, mk(base_insert, 2.17), "hcl", "insert");
        let bcl_i =
            scaling_run(&spec, clients, parts, ops_per_client, mk(base_insert * 3, 1.0), "bcl", "insert");
        let hcl_u_f =
            scaling_run(&spec, clients, parts, ops_per_client, mk(base_find, 1.0), "hcl", "find");
        let hcl_o_f =
            scaling_run(&spec, clients, parts, ops_per_client, mk(base_find, 2.17), "hcl", "find");
        let bcl_f =
            scaling_run(&spec, clients, parts, ops_per_client, mk(base_find * 5, 1.0), "bcl", "find");
        let (u_name, o_name, b_name): (&'static str, &'static str, &'static str) = if set {
            ("HCL::unordered_set", "HCL::set", "BCL (n/a: no sets)")
        } else {
            ("HCL::unordered_map", "HCL::map", "BCL::unordered_map")
        };
        out_insert.push(Fig6Point {
            x: parts as u64,
            series: vec![(u_name, hcl_u_i), (o_name, hcl_o_i), (b_name, bcl_i)],
        });
        out_find.push(Fig6Point {
            x: parts as u64,
            series: vec![(u_name, hcl_u_f), (o_name, hcl_o_f), (b_name, bcl_f)],
        });
    }
    vec![("insert", out_insert), ("find", out_find)]
}

/// Fig. 6(c): queues — one partition, clients 320 → 2560.
pub fn fig6_queues(ops_per_client: u64) -> Vec<(&'static str, Vec<Fig6Point>)> {
    let spec = ClusterSpec::ares(64);
    let mut out_push = Vec::new();
    let mut out_pop = Vec::new();
    for &clients in &[320usize, 640, 1280, 2560] {
        // Calibrated queue service times (fifo capacity ~130K/s).
        let mk = |svc: u64, ordered: f64| OpParams {
            size: 1024,
            bcl_retry_p: 0.2,
            ordered_factor: ordered,
            part_service_ns: svc,
            client_ns: 10_000_000,
        };
        let fifo_push = scaling_run(&spec, clients, 1, ops_per_client, mk(7_700, 1.0), "hcl", "insert");
        let prio_push = scaling_run(&spec, clients, 1, ops_per_client, mk(7_700, 1.43), "hcl", "insert");
        let bcl_push = scaling_run(&spec, clients, 1, ops_per_client, mk(28_000, 1.0), "bcl", "insert");
        let fifo_pop = scaling_run(&spec, clients, 1, ops_per_client, mk(6_500, 1.0), "hcl", "find");
        let prio_pop = scaling_run(&spec, clients, 1, ops_per_client, mk(6_500, 1.2), "hcl", "find");
        let bcl_pop = scaling_run(&spec, clients, 1, ops_per_client, mk(23_000, 1.0), "bcl", "find");
        out_push.push(Fig6Point {
            x: clients as u64,
            series: vec![
                ("HCL::FIFO_queue", fifo_push),
                ("HCL::priority_queue", prio_push),
                ("BCL::CircularQueue", bcl_push),
            ],
        });
        out_pop.push(Fig6Point {
            x: clients as u64,
            series: vec![
                ("HCL::FIFO_queue", fifo_pop),
                ("HCL::priority_queue", prio_pop),
                ("BCL::CircularQueue", bcl_pop),
            ],
        });
    }
    vec![("push", out_push), ("pop", out_pop)]
}

// ---------------------------------------------------------------- Fig. 7

/// One point of a real-workload weak-scaling run.
#[derive(Debug, Clone)]
pub struct Fig7Point {
    /// Node count.
    pub nodes: u32,
    /// BCL end-to-end seconds.
    pub bcl_s: f64,
    /// HCL end-to-end seconds.
    pub hcl_s: f64,
}

/// Shared fabric/bisection resource model for the application runs: beyond
/// per-node links, all inter-node traffic also crosses a fixed-capacity
/// fabric core, which is what turns all-to-all exchanges superlinear.
fn app_run(
    spec: &ClusterSpec,
    ranks_per_node: u32,
    ops_per_rank: u64,
    is_hcl: bool,
    size: u64,
    retry_p: f64,
    hcl_ordered: f64,
    bcl_extra_rounds: u64,
    sort_tail_ns: u64,
) -> f64 {
    let mut e = Engine::new();
    let r = protocol::build_resources(&mut e, spec, spec.nodes as usize, None);
    // Fabric core: per-packet service on a fixed-capacity bisection.
    let fabric = e.add_resource("fabric", 8, None);
    let per_packet_ns = 3_900;
    let clients = (spec.nodes * ranks_per_node) as usize;
    let plans: Vec<ClientPlan> = (0..clients)
        .map(|c| {
            let r = r.clone();
            let mut rng = SimRng::new(c as u64 * 131 + 3);
            let nodes = spec.nodes as usize;
            let spec = *spec;
            ClientPlan {
                ops: ops_per_rank,
                builder: Box::new(move |_| {
                    let dest = rng.below(nodes as u64) as usize;
                    let p = OpParams {
                        size,
                        bcl_retry_p: retry_p,
                        ordered_factor: hcl_ordered,
                        ..Default::default()
                    };
                    let mut phases = if is_hcl {
                        protocol::hcl_insert_remote(&spec, &r, dest, dest, &p, false)
                    } else {
                        protocol::bcl_insert_remote(&spec, &r, dest, dest, &p, &mut rng)
                    };
                    // Route every wire packet across the fabric core too.
                    let pkts: u64 = phases.iter().map(|ph| ph.packets).sum();
                    let extra = if is_hcl { 0 } else { bcl_extra_rounds };
                    phases.push(crate::engine::Phase {
                        resource: Some(fabric),
                        service_ns: (pkts + extra) * per_packet_ns,
                        latency_ns: 0,
                        packets: 0,
                        bytes: 0,
                        tag: tags::DATA,
                    });
                    phases
                }),
            }
        })
        .collect();
    let result = e.run(plans);
    result.makespan_seconds() + sort_tail_ns as f64 / 1e9
}

/// Fig. 7(a): ISx bucket sort, weak scaling 8 → 64 nodes. HCL sorts on
/// arrival via the priority queue; BCL pushes then sorts locally and pays
/// the all-to-all exchange.
pub fn fig7_isx(keys_per_rank: u64) -> Vec<Fig7Point> {
    fig7_isx_at(&[8, 16, 32, 64], keys_per_rank)
}

/// [`fig7_isx`] over an arbitrary node list — the scenario suite extends
/// the paper's 8–64 sweep out to 512 simulated nodes.
pub fn fig7_isx_at(node_list: &[u32], keys_per_rank: u64) -> Vec<Fig7Point> {
    node_list
        .iter()
        .map(|&nodes| {
            let spec = ClusterSpec::ares(nodes);
            // HCL: one RPC per key into the destination priority queue
            // (log-factor handler), no sort phase.
            let hcl = app_run(&spec, 8, keys_per_rank, true, 64, 0.0, 1.6, 0, 0);
            // BCL: queue pushes (multiple rounds + flush acks whose count
            // grows with the participant set — the all-to-all exchange and
            // client-side synchronization), then a local n·log n sort tail.
            let n = keys_per_rank;
            let sort_ns = n * ((64 - n.leading_zeros() as u64).max(1)) * 120;
            let extra_rounds = 7 + nodes as u64 / 8;
            let bcl =
                app_run(&spec, 8, keys_per_rank, false, 64, 0.10, 1.0, extra_rounds, sort_ns);
            Fig7Point { nodes, bcl_s: bcl, hcl_s: hcl }
        })
        .collect()
}

/// Fig. 7(b)/(c): Meraculous kernels, weak scaling. `contig = true` is the
/// find-heavy contig-generation kernel; otherwise k-mer counting
/// (insert-heavy with hot-key contention that grows with scale).
pub fn fig7_meraculous(contig: bool, kmers_per_rank: u64) -> Vec<Fig7Point> {
    fig7_meraculous_at(&[8, 16, 32, 64], contig, kmers_per_rank)
}

/// [`fig7_meraculous`] over an arbitrary node list (see [`fig7_isx_at`]).
pub fn fig7_meraculous_at(
    node_list: &[u32],
    contig: bool,
    kmers_per_rank: u64,
) -> Vec<Fig7Point> {
    node_list
        .iter()
        .map(|&nodes| {
            let spec = ClusterSpec::ares(nodes);
            // Hot k-mer buckets: BCL's CAS retry probability grows with the
            // number of concurrent clients per hot bucket (∝ nodes).
            let retry = (0.06 * nodes as f64).min(0.80);
            let base_rounds: u64 = if contig { 9 } else { 7 };
            let (hcl_ord, bcl_rounds) = (1.0, base_rounds + nodes as u64 / 8);
            let hcl = app_run(&spec, 8, kmers_per_rank, true, 32, 0.0, hcl_ord, 0, 0);
            let bcl =
                app_run(&spec, 8, kmers_per_rank, false, 32, retry, 1.0, bcl_rounds, 0);
            Fig7Point { nodes, bcl_s: bcl, hcl_s: hcl }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_shape_bcl_slowest_lockfree_fastest() {
        let bars = fig1();
        assert_eq!(bars.len(), 3);
        let bcl = bars[0].total_s;
        let rpc = bars[1].total_s;
        let lf = bars[2].total_s;
        assert!(bcl > 1.5 * rpc, "BCL {bcl:.3}s vs RPC {rpc:.3}s: paper shows ~2x");
        assert!(lf <= rpc, "lock-free {lf:.3}s must not exceed RPC+CAS {rpc:.3}s");
        // Remote CAS must dominate BCL's time (paper: ~2/3).
        let cas: f64 = bars[0]
            .components
            .iter()
            .filter(|(n, _)| n.contains("reserve") || n.contains("state"))
            .map(|(_, s)| s)
            .sum();
        assert!(cas / bcl > 0.4, "CAS share {:.2}", cas / bcl);
    }

    #[test]
    fn fig4_shape_totals_and_memory() {
        let series = fig4();
        let bcl = &series[0];
        let hcl = &series[1];
        assert!(bcl.total_s > 2.0 * hcl.total_s, "{} vs {}", bcl.total_s, hcl.total_s);
        // BCL reaches its full static allocation early; HCL grows over time.
        let hcl_first = hcl.mem.first().copied().unwrap_or(0);
        let hcl_last = hcl.mem.last().copied().unwrap_or(0);
        assert!(hcl_last > hcl_first * 4, "HCL memory must grow: {hcl_first} -> {hcl_last}");
        // Packet *rate*: HCL pushes the same data in far less time.
        let bcl_peak = bcl.packets_per_s.iter().copied().max().unwrap_or(0);
        let hcl_peak = hcl.packets_per_s.iter().copied().max().unwrap_or(0);
        assert!(hcl_peak > bcl_peak, "HCL peak packet rate {hcl_peak} <= BCL {bcl_peak}");
    }

    #[test]
    fn fig5_inter_shape() {
        let pts = fig5(false, 256);
        // BCL OOMs above 1 MB.
        for p in &pts {
            if p.size > 1 << 20 {
                assert!(p.bcl_insert.is_none(), "BCL should OOM at {} bytes", p.size);
            } else {
                assert!(p.bcl_insert.is_some());
            }
        }
        // At 1 MB: HCL insert ≥ 2× BCL insert; finds comparable to link.
        let mb = pts.iter().find(|p| p.size == 1 << 20).unwrap();
        let bcl_i = mb.bcl_insert.unwrap();
        assert!(mb.hcl_insert > 2.0 * bcl_i, "hcl {} bcl {}", mb.hcl_insert, bcl_i);
        assert!(mb.hcl_insert > 3_000.0, "HCL ~4 GB/s at 1MB, got {} MB/s", mb.hcl_insert);
        // HCL insert ≈ HCL find inter-node (same data volume).
        assert!((mb.hcl_find / mb.hcl_insert) < 1.6);
    }

    #[test]
    fn fig5_intra_shape() {
        let pts = fig5(true, 256);
        let p64k = pts.iter().find(|p| p.size == 64 * 1024).unwrap();
        // Paper: HCL up to 20x faster on inserts at 64 KB.
        let ratio = p64k.hcl_insert / p64k.bcl_insert.unwrap();
        assert!(ratio > 4.0, "intra insert ratio {ratio}");
        // HCL intra approaches memory bandwidth ≫ inter-node link speed.
        assert!(p64k.hcl_insert > 20_000.0, "HCL intra {} MB/s", p64k.hcl_insert);
    }

    #[test]
    fn fig6_maps_scale_linearly_and_ordered_slower() {
        let out = fig6_maps(false, 64);
        let insert = &out[0].1;
        let first = &insert[0];
        let last = &insert[3];
        let get = |pt: &Fig6Point, name: &str| {
            pt.series.iter().find(|(n, _)| n.contains(name)).unwrap().1
        };
        // Linear-ish scaling 8 -> 64 partitions.
        let scale = get(last, "unordered_map") / get(first, "unordered_map");
        assert!(scale > 4.0, "scaling factor {scale}");
        // Ordered slower than unordered.
        assert!(get(last, "HCL::map") < get(last, "HCL::unordered_map"));
        // BCL well below HCL.
        assert!(get(last, "BCL") * 2.0 < get(last, "HCL::unordered_map"));
    }

    #[test]
    fn fig6_queues_saturate() {
        let out = fig6_queues(32);
        let push = &out[0].1;
        let get = |pt: &Fig6Point, name: &str| {
            pt.series.iter().find(|(n, _)| n.contains(name)).unwrap().1
        };
        // Throughput grows from 320 to 1280 clients then plateaus.
        let t320 = get(&push[0], "FIFO");
        let t1280 = get(&push[2], "FIFO");
        let t2560 = get(&push[3], "FIFO");
        assert!(t1280 > 1.8 * t320, "growth {t320} -> {t1280}");
        assert!(t2560 < 1.3 * t1280, "plateau violated: {t1280} -> {t2560}");
        // Priority below FIFO; BCL far below both.
        assert!(get(&push[3], "priority") < get(&push[3], "FIFO"));
        assert!(get(&push[3], "BCL") * 2.0 < get(&push[3], "FIFO"));
    }

    #[test]
    fn fig7_shapes() {
        let isx = fig7_isx(300);
        for p in &isx {
            assert!(p.bcl_s > p.hcl_s, "HCL must win ISx at {} nodes", p.nodes);
        }
        // The HCL advantage grows with scale.
        let r8 = isx[0].bcl_s / isx[0].hcl_s;
        let r64 = isx[3].bcl_s / isx[3].hcl_s;
        assert!(r64 > r8, "ISx ratio must grow: {r8} -> {r64}");

        let kmer = fig7_meraculous(false, 300);
        let k8 = kmer[0].bcl_s / kmer[0].hcl_s;
        let k64 = kmer[3].bcl_s / kmer[3].hcl_s;
        assert!(k8 > 1.2 && k64 > k8, "k-mer ratios {k8} -> {k64}");
    }
}
