//! Deterministic xorshift RNG for the simulator (collision retries, key
//! draws). Seeded explicitly so every figure regenerates bit-identically.

/// A small xorshift64* generator.
#[derive(Debug, Clone)]
pub struct SimRng(u64);

impl SimRng {
    /// Seeded constructor (zero is remapped).
    pub fn new(seed: u64) -> Self {
        SimRng(if seed == 0 { 0x9e37_79b9_7f4a_7c15 } else { seed })
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Uniform in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform integer in `[0, n)`.
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n.max(1)
    }

    /// Bernoulli draw.
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn f64_in_unit_interval_and_roughly_uniform() {
        let mut r = SimRng::new(7);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let v = r.next_f64();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / 10_000.0;
        assert!((0.45..0.55).contains(&mean), "mean {mean}");
    }

    #[test]
    fn chance_matches_probability() {
        let mut r = SimRng::new(9);
        let hits = (0..10_000).filter(|_| r.chance(0.25)).count();
        assert!((2_200..2_800).contains(&hits), "hits {hits}");
    }
}
