//! Byte-level sequential specifications for the five public HCL containers.
//!
//! The history hooks in `hcl` record keys and values as their DataBox
//! encodings (`Vec<u8>`), so one op/spec vocabulary covers UnorderedMap,
//! UnorderedSet, OrderedMap, Queue and PriorityQueue regardless of the
//! user's key/value types. Response conventions mirror the `hcl` handles
//! exactly:
//!
//! | container op        | recorded response                         |
//! |---------------------|-------------------------------------------|
//! | map `put`           | `Inserted(true)` iff the key was new      |
//! | map `get`/`erase`   | `Value(prev)`                             |
//! | map/set `contains`  | `Contains(bool)`                          |
//! | set `insert`        | `Inserted(bool)`                          |
//! | set `remove`        | `Removed(bool)`                           |
//! | queue/pq `push`     | `Pushed(bool)` (`true` on success)        |
//! | queue/pq `pop`      | `Popped(Option<value>)`                   |
//!
//! Caveat: [`DsSpec::Pq`] orders by **byte-lexicographic** comparison of the
//! encoded values. That matches the logical `Ord` only when the encoding is
//! order-preserving (e.g. fixed-width big-endian); record priorities in such
//! an encoding when checking PQ histories.

use crate::lin::SeqSpec;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Encoded key or value.
pub type Bytes = Vec<u8>;

/// One operation against a container, with encoded operands.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum DsOp {
    MapPut { key: Bytes, value: Bytes },
    MapGet { key: Bytes },
    /// A map read served from a client-side lease cache without touching the
    /// fabric. `valid_from` is the logical invoke timestamp of the RPC that
    /// granted the lease: the cached value was current somewhere inside the
    /// grant's own interval, so under lease semantics this read may
    /// linearize anywhere in `[valid_from, returned]` rather than only in
    /// its real-time interval. [`lease_relax`] performs that widening;
    /// sequentially the op behaves exactly like [`DsOp::MapGet`].
    MapGetCached { key: Bytes, valid_from: u64 },
    MapErase { key: Bytes },
    MapContains { key: Bytes },
    SetInsert { key: Bytes },
    SetRemove { key: Bytes },
    SetContains { key: Bytes },
    QueuePush { value: Bytes },
    QueuePop,
    PqPush { value: Bytes },
    PqPop,
}

/// The recorded response of a [`DsOp`].
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum DsRet {
    /// Map put / set insert: was the element newly inserted?
    Inserted(bool),
    /// Set remove: was the element present?
    Removed(bool),
    /// Membership test result.
    Contains(bool),
    /// Map get/erase payload (previous value for erase).
    Value(Option<Bytes>),
    /// Queue/pq push acknowledgement.
    Pushed(bool),
    /// Queue/pq pop payload.
    Popped(Option<Bytes>),
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h = (h ^ b as u64).wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Sequential state for one container, selected by variant.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum DsSpec {
    /// Map (also backs sets: values ignored for `Set*` ops).
    Map(BTreeMap<Bytes, Bytes>),
    /// Set.
    Set(BTreeSet<Bytes>),
    /// FIFO queue.
    Queue(VecDeque<Bytes>),
    /// Min-priority multiset under byte-lexicographic order.
    Pq(BTreeMap<Bytes, usize>),
}

impl DsSpec {
    /// Empty map state.
    pub fn map() -> Self {
        DsSpec::Map(BTreeMap::new())
    }
    /// Empty set state.
    pub fn set() -> Self {
        DsSpec::Set(BTreeSet::new())
    }
    /// Empty queue state.
    pub fn queue() -> Self {
        DsSpec::Queue(VecDeque::new())
    }
    /// Empty priority-queue state.
    pub fn pq() -> Self {
        DsSpec::Pq(BTreeMap::new())
    }
}

impl SeqSpec for DsSpec {
    type Op = DsOp;
    type Ret = DsRet;

    fn apply(&mut self, op: &DsOp) -> DsRet {
        match (self, op) {
            (DsSpec::Map(m), DsOp::MapPut { key, value }) => {
                DsRet::Inserted(m.insert(key.clone(), value.clone()).is_none())
            }
            (DsSpec::Map(m), DsOp::MapGet { key }) => DsRet::Value(m.get(key).cloned()),
            (DsSpec::Map(m), DsOp::MapGetCached { key, .. }) => DsRet::Value(m.get(key).cloned()),
            (DsSpec::Map(m), DsOp::MapErase { key }) => DsRet::Value(m.remove(key)),
            (DsSpec::Map(m), DsOp::MapContains { key }) => DsRet::Contains(m.contains_key(key)),
            (DsSpec::Set(s), DsOp::SetInsert { key }) => DsRet::Inserted(s.insert(key.clone())),
            (DsSpec::Set(s), DsOp::SetRemove { key }) => DsRet::Removed(s.remove(key)),
            (DsSpec::Set(s), DsOp::SetContains { key }) => DsRet::Contains(s.contains(key)),
            (DsSpec::Queue(q), DsOp::QueuePush { value }) => {
                q.push_back(value.clone());
                DsRet::Pushed(true)
            }
            (DsSpec::Queue(q), DsOp::QueuePop) => DsRet::Popped(q.pop_front()),
            (DsSpec::Pq(pq), DsOp::PqPush { value }) => {
                *pq.entry(value.clone()).or_insert(0) += 1;
                DsRet::Pushed(true)
            }
            (DsSpec::Pq(pq), DsOp::PqPop) => {
                let min = pq.keys().next().cloned();
                match min {
                    None => DsRet::Popped(None),
                    Some(k) => {
                        let n = pq.get_mut(&k).expect("present key");
                        *n -= 1;
                        if *n == 0 {
                            pq.remove(&k);
                        }
                        DsRet::Popped(Some(k))
                    }
                }
            }
            (state, op) => panic!("op {op:?} does not match spec variant {state:?}"),
        }
    }

    /// Map/set histories partition by key; queue/pq histories do not.
    fn partition(op: &DsOp) -> Option<u64> {
        match op {
            DsOp::MapPut { key, .. }
            | DsOp::MapGet { key }
            | DsOp::MapGetCached { key, .. }
            | DsOp::MapErase { key }
            | DsOp::MapContains { key }
            | DsOp::SetInsert { key }
            | DsOp::SetRemove { key }
            | DsOp::SetContains { key } => Some(fnv1a(key)),
            DsOp::QueuePush { .. } | DsOp::QueuePop | DsOp::PqPush { .. } | DsOp::PqPop => None,
        }
    }
}

/// Widen each cached read's admissible window to its lease: rewrite
/// `invoked` back to the `valid_from` grant stamp (never forward — the
/// recorded invoke already bounds the window on histories without caching).
///
/// Soundness: the checker's frontier condition compares invoke timestamps
/// against return timestamps with strict `<`, and a grant's invoke stamp is
/// always smaller than the cached read's own stamps, so the rewrite only
/// *adds* legal linearization orders for the cached read — every other op's
/// constraints are untouched. A cached read of a value that was never
/// current anywhere in `[valid_from, returned]` still has no witness and is
/// still rejected.
pub fn lease_relax(history: &[crate::history::OpRecord<DsOp, DsRet>]) -> Vec<crate::history::OpRecord<DsOp, DsRet>> {
    let mut out: Vec<_> = history.to_vec();
    for r in &mut out {
        if let DsOp::MapGetCached { valid_from, .. } = r.op {
            r.invoked = r.invoked.min(valid_from);
        }
    }
    out.sort_by_key(|r| r.invoked);
    out
}

/// [`crate::lin::check`] under **lease-bounded staleness**: cached reads may
/// linearize anywhere inside their lease window (grant stamp → return), all
/// other operations keep strict real-time order. This is the consistency
/// contract of the lease-based client cache: a read never returns a value
/// older than its own lease window.
pub fn check_lease(
    initial: &DsSpec,
    history: &[crate::history::OpRecord<DsOp, DsRet>],
) -> Result<crate::lin::CheckStats, crate::lin::CheckError<DsOp, DsRet>> {
    crate::lin::check(initial, &lease_relax(history))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::OpRecord;
    use crate::lin::{check, CheckError};

    fn rec(proc: u64, op: DsOp, ret: DsRet, iv: u64, rt: u64) -> OpRecord<DsOp, DsRet> {
        OpRecord { proc, op, ret, invoked: iv, returned: rt }
    }

    fn b(x: u8) -> Bytes {
        vec![x]
    }

    #[test]
    fn queue_overlapping_enqueues_any_order_is_linearizable() {
        // enq(a) overlaps enq(b); deq order b, a is legal (b linearized
        // first inside the overlap).
        let h = vec![
            rec(0, DsOp::QueuePush { value: b(1) }, DsRet::Pushed(true), 0, 5),
            rec(1, DsOp::QueuePush { value: b(2) }, DsRet::Pushed(true), 1, 4),
            rec(2, DsOp::QueuePop, DsRet::Popped(Some(b(2))), 6, 7),
            rec(2, DsOp::QueuePop, DsRet::Popped(Some(b(1))), 8, 9),
        ];
        check(&DsSpec::queue(), &h).expect("linearizable");
    }

    #[test]
    fn queue_fifo_violation_is_rejected() {
        // enq(a) completes before enq(b) starts, yet b dequeues first.
        let h = vec![
            rec(0, DsOp::QueuePush { value: b(1) }, DsRet::Pushed(true), 0, 1),
            rec(0, DsOp::QueuePush { value: b(2) }, DsRet::Pushed(true), 2, 3),
            rec(1, DsOp::QueuePop, DsRet::Popped(Some(b(2))), 4, 5),
            rec(1, DsOp::QueuePop, DsRet::Popped(Some(b(1))), 6, 7),
        ];
        let err = check(&DsSpec::queue(), &h).unwrap_err();
        assert!(matches!(err, CheckError::Violation(_)), "FIFO violation must be caught");
    }

    #[test]
    fn queue_dequeue_before_enqueue_completes_overlap_ok() {
        // The classic trace: pop returns x while push(x) is still pending —
        // legal, because both linearization points fit inside the overlap.
        let h = vec![
            rec(0, DsOp::QueuePush { value: b(7) }, DsRet::Pushed(true), 0, 3),
            rec(1, DsOp::QueuePop, DsRet::Popped(Some(b(7))), 1, 2),
        ];
        check(&DsSpec::queue(), &h).expect("overlapping enq/deq is linearizable");
    }

    #[test]
    fn queue_dequeue_of_a_future_enqueue_is_rejected() {
        // Non-linearizable flavor: pop returned x strictly before push(x)
        // was even invoked — the value came from the future.
        let h = vec![
            rec(1, DsOp::QueuePop, DsRet::Popped(Some(b(7))), 0, 1),
            rec(0, DsOp::QueuePush { value: b(7) }, DsRet::Pushed(true), 2, 3),
        ];
        let err = check(&DsSpec::queue(), &h).unwrap_err();
        match err {
            CheckError::Violation(v) => {
                assert_eq!(v.linearized, 0);
                assert_eq!(v.window.len(), 1, "window pinpoints the impossible pop");
            }
            other => panic!("expected violation, got {other}"),
        }
    }

    #[test]
    fn pq_pop_must_return_the_completed_minimum() {
        // push(1) and push(5) both complete, then pop returns 5: illegal.
        let h = vec![
            rec(0, DsOp::PqPush { value: b(5) }, DsRet::Pushed(true), 0, 1),
            rec(0, DsOp::PqPush { value: b(1) }, DsRet::Pushed(true), 2, 3),
            rec(1, DsOp::PqPop, DsRet::Popped(Some(b(5))), 4, 5),
        ];
        let err = check(&DsSpec::pq(), &h).unwrap_err();
        assert!(matches!(err, CheckError::Violation(_)));
        // And the fixed version passes.
        let ok = vec![
            rec(0, DsOp::PqPush { value: b(5) }, DsRet::Pushed(true), 0, 1),
            rec(0, DsOp::PqPush { value: b(1) }, DsRet::Pushed(true), 2, 3),
            rec(1, DsOp::PqPop, DsRet::Popped(Some(b(1))), 4, 5),
        ];
        check(&DsSpec::pq(), &ok).expect("min-first pop is linearizable");
    }

    #[test]
    fn map_semantics_match_the_hcl_handles() {
        let mut s = DsSpec::map();
        assert_eq!(s.apply(&DsOp::MapPut { key: b(1), value: b(9) }), DsRet::Inserted(true));
        assert_eq!(s.apply(&DsOp::MapPut { key: b(1), value: b(8) }), DsRet::Inserted(false));
        assert_eq!(s.apply(&DsOp::MapGet { key: b(1) }), DsRet::Value(Some(b(8))));
        assert_eq!(s.apply(&DsOp::MapContains { key: b(1) }), DsRet::Contains(true));
        assert_eq!(s.apply(&DsOp::MapErase { key: b(1) }), DsRet::Value(Some(b(8))));
        assert_eq!(s.apply(&DsOp::MapErase { key: b(1) }), DsRet::Value(None));
        let mut t = DsSpec::set();
        assert_eq!(t.apply(&DsOp::SetInsert { key: b(2) }), DsRet::Inserted(true));
        assert_eq!(t.apply(&DsOp::SetInsert { key: b(2) }), DsRet::Inserted(false));
        assert_eq!(t.apply(&DsOp::SetRemove { key: b(2) }), DsRet::Removed(true));
        assert_eq!(t.apply(&DsOp::SetRemove { key: b(2) }), DsRet::Removed(false));
    }

    #[test]
    fn cached_read_stale_within_lease_passes_only_under_lease_spec() {
        // put(k,1) completes, a lease on k=1 is granted during [1, ...],
        // put(k,2) completes, then a locally-served cached read returns the
        // leased value 1. In strict real time that read is stale; within its
        // lease window (valid_from = 1, the grant's invoke stamp) it can
        // linearize before put(k,2).
        let h = vec![
            rec(0, DsOp::MapPut { key: b(9), value: b(1) }, DsRet::Inserted(true), 0, 1),
            rec(1, DsOp::MapPut { key: b(9), value: b(2) }, DsRet::Inserted(false), 2, 3),
            rec(
                2,
                DsOp::MapGetCached { key: b(9), valid_from: 1 },
                DsRet::Value(Some(b(1))),
                4,
                5,
            ),
        ];
        let err = check(&DsSpec::map(), &h).unwrap_err();
        assert!(matches!(err, CheckError::Violation(_)), "strict check must reject staleness");
        check_lease(&DsSpec::map(), &h).expect("stale-within-lease is admissible");
    }

    #[test]
    fn cached_read_older_than_its_lease_window_is_rejected() {
        // The lease was granted *after* put(k,2) had already completed: the
        // value 1 was never current anywhere in [valid_from, returned], so
        // even the lease spec must reject the read.
        let h = vec![
            rec(0, DsOp::MapPut { key: b(9), value: b(1) }, DsRet::Inserted(true), 0, 1),
            rec(1, DsOp::MapPut { key: b(9), value: b(2) }, DsRet::Inserted(false), 2, 3),
            rec(
                2,
                DsOp::MapGetCached { key: b(9), valid_from: 4 },
                DsRet::Value(Some(b(1))),
                5,
                6,
            ),
        ];
        let err = check_lease(&DsSpec::map(), &h).unwrap_err();
        assert!(matches!(err, CheckError::Violation(_)), "value older than the lease window");
    }

    #[test]
    fn cached_read_crossing_an_erase_is_rejected_outside_its_window() {
        // erase(k) completes before the lease's grant stamp: a cached read
        // still returning the erased value has no witness in its window.
        let h = vec![
            rec(0, DsOp::MapPut { key: b(7), value: b(1) }, DsRet::Inserted(true), 0, 1),
            rec(0, DsOp::MapErase { key: b(7) }, DsRet::Value(Some(b(1))), 2, 3),
            rec(
                1,
                DsOp::MapGetCached { key: b(7), valid_from: 4 },
                DsRet::Value(Some(b(1))),
                5,
                6,
            ),
        ];
        assert!(check_lease(&DsSpec::map(), &h).is_err());
        // Same shape, but the lease predates the erase: admissible.
        let ok = vec![
            rec(0, DsOp::MapPut { key: b(7), value: b(1) }, DsRet::Inserted(true), 0, 1),
            rec(0, DsOp::MapErase { key: b(7) }, DsRet::Value(Some(b(1))), 2, 3),
            rec(
                1,
                DsOp::MapGetCached { key: b(7), valid_from: 1 },
                DsRet::Value(Some(b(1))),
                5,
                6,
            ),
        ];
        check_lease(&DsSpec::map(), &ok).expect("lease granted before the erase");
    }

    #[test]
    fn lease_relax_never_moves_invoke_forward_and_resorts() {
        let h = vec![
            rec(0, DsOp::MapGetCached { key: b(1), valid_from: 9 }, DsRet::Value(None), 4, 5),
            rec(0, DsOp::MapGetCached { key: b(1), valid_from: 1 }, DsRet::Value(None), 6, 7),
        ];
        let relaxed = lease_relax(&h);
        // First record: valid_from (9) is later than invoked (4) — unchanged.
        // Second: widened back to 1, so it now sorts first.
        assert_eq!(relaxed[0].invoked, 1);
        assert_eq!(relaxed[1].invoked, 4);
    }

    #[test]
    fn set_histories_partition_by_member() {
        let h = vec![
            rec(0, DsOp::SetInsert { key: b(1) }, DsRet::Inserted(true), 0, 1),
            rec(1, DsOp::SetInsert { key: b(2) }, DsRet::Inserted(true), 2, 3),
            rec(0, DsOp::SetContains { key: b(1) }, DsRet::Contains(true), 4, 5),
            rec(1, DsOp::SetRemove { key: b(2) }, DsRet::Removed(true), 6, 7),
        ];
        let stats = check(&DsSpec::set(), &h).unwrap();
        assert_eq!(stats.partitions, 2);
    }
}
