//! A seeded, schedule-exploring deterministic scheduler (shuttle-style
//! random scheduling with preemption bounding).
//!
//! ## Model
//!
//! Inside [`run_one`] every *task* (the closure itself plus anything it
//! starts with [`spawn`]) runs on its own OS thread, but the scheduler
//! serializes them: exactly one task is *active* at any instant, and
//! control only changes hands at explicit **scheduling points** — the
//! [`crate::sync`] facade emits one before every atomic access and lock
//! acquisition. At each point a seeded RNG picks the next task to run:
//!
//! * **preemptive** points (atomic accesses): switching away from a task
//!   that could keep running costs one unit of the *preemption budget*;
//!   once the budget is spent the current task runs until it blocks or
//!   yields (preemption bounding — most concurrency bugs need only a few
//!   preemptions, and bounding them concentrates the search);
//! * **voluntary** points (lock contention, `yield_now`, `join`): switching
//!   is free, since the task cannot make progress anyway.
//!
//! Because the RNG is the only source of nondeterminism, a schedule is a
//! pure function of its seed: a failing seed printed by [`explore`] replays
//! the identical interleaving in [`run_one`].
//!
//! ## What this explores (and what it does not)
//!
//! Interleavings are explored at the granularity of facade operations, with
//! the host's memory model underneath. This catches atomicity violations,
//! lost updates, broken invariants and ABA-style races — the bug classes
//! the HCL containers are exposed to. Executions are not *reordered* by the
//! host's memory model (every facade op still runs sequentially
//! consistently), but each schedule is additionally audited by the
//! [`crate::hb`] vector-clock checker: the facade reports every access
//! *with its `Ordering`*, and a value consumed without a genuine
//! happens-before edge (Release→Acquire/SeqCst pair, mutex, spawn/join)
//! fails the schedule as an ordering race even though the host happened to
//! deliver the right value. Fences and `consume` are out of scope (see
//! DESIGN.md §13); the static side of the same audit is `xtask lint`'s
//! `ORDERING:` pass.
//!
//! A failing exploration prints its seed; `HCL_SCHED_SEED=<seed>` (decimal
//! or `0x…` hex) makes any [`explore`] call replay exactly that one
//! schedule.

use std::cell::RefCell;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

use crate::hb::HbState;

/// Task identifier within one schedule (0 = the root closure).
pub type TaskId = usize;

/// Per-schedule step budget; exceeding it means a livelock under this
/// schedule (or a workload far too large for exploration).
const MAX_STEPS: u64 = 4_000_000;

/// SplitMix64 step — small, seedable, and good enough for schedule choice.
fn splitmix(rng: &mut u64) -> u64 {
    *rng = rng.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *rng;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Status {
    Runnable,
    /// Waiting for the given task to finish (a `join`).
    Blocked(TaskId),
    Finished,
}

/// The kind of scheduling point, which decides whether a switch costs
/// preemption budget.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Point {
    /// An atomic access: the task could continue, switching is a preemption.
    Preemptive,
    /// Lock contention: the task cannot progress; prefer another task, free.
    Contended,
    /// An explicit yield: switching is free.
    Yield,
}

struct State {
    rng: u64,
    status: Vec<Status>,
    active: TaskId,
    preemptions_left: Option<u32>,
    steps: u64,
    /// FNV-style accumulator over every scheduling decision — two runs with
    /// the same hash executed the same interleaving.
    trace_hash: u64,
    unfinished: usize,
    abort: Option<String>,
    /// First panic message from a spawned task (safety net for unjoined
    /// handles).
    task_panic: Option<String>,
    /// Happens-before audit state for this schedule.
    hb: HbState,
}

impl State {
    /// Allocation-free runnable census (the scheduler sits on every facade
    /// event, and the HB alloc guard asserts the steady state allocates
    /// nothing — so no per-decision `Vec` here).
    fn runnable_count(&self) -> usize {
        self.status.iter().filter(|s| **s == Status::Runnable).count()
    }

    /// The `i`-th runnable task (0-based), skipping `exclude` if given.
    fn nth_runnable(&self, i: usize, exclude: Option<TaskId>) -> TaskId {
        self.status
            .iter()
            .enumerate()
            .filter(|&(t, s)| *s == Status::Runnable && Some(t) != exclude)
            .nth(i)
            .map(|(t, _)| t)
            .expect("runnable index out of range")
    }
}

pub(crate) struct SchedInner {
    state: Mutex<State>,
    cv: Condvar,
}

thread_local! {
    static CURRENT: RefCell<Option<(Arc<SchedInner>, TaskId)>> = const { RefCell::new(None) };
}

fn current() -> Option<(Arc<SchedInner>, TaskId)> {
    CURRENT.with(|c| c.borrow().as_ref().map(|(a, id)| (Arc::clone(a), *id)))
}

/// True when the calling thread is a task inside a [`run_one`] schedule.
pub fn in_schedule() -> bool {
    CURRENT.with(|c| c.borrow().is_some())
}

/// Emit a scheduling point. No-op outside a schedule, so facade types stay
/// usable (if not zero-cost) in ordinary `--cfg conc_check` builds.
pub fn point(kind: Point) {
    if let Some((inner, me)) = current() {
        inner.switch(me, kind);
    }
}

/// Explicit voluntary yield (free switch).
pub fn yield_now() {
    point(Point::Yield);
}

/// Run `f` against the current schedule's happens-before state (serialized
/// by the scheduler lock). Returns `None` outside a schedule — the facade's
/// audit hooks become no-ops there.
#[cfg_attr(not(any(conc_check, test)), allow(dead_code))]
pub(crate) fn with_hb<R>(f: impl FnOnce(&mut HbState, TaskId) -> R) -> Option<R> {
    let (inner, me) = current()?;
    let mut st = inner.lock();
    Some(f(&mut st.hb, me))
}

impl SchedInner {
    fn lock(&self) -> MutexGuard<'_, State> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn check_abort(st: &MutexGuard<'_, State>) -> Option<String> {
        st.abort.clone()
    }

    /// One scheduling decision at a point of `kind` for task `me`.
    fn switch(&self, me: TaskId, kind: Point) {
        let mut st = self.lock();
        if let Some(msg) = Self::check_abort(&st) {
            drop(st);
            panic!("{msg}");
        }
        st.steps += 1;
        if st.steps > MAX_STEPS {
            let msg = format!("conc-check: schedule exceeded {MAX_STEPS} steps (livelock?)");
            st.abort = Some(msg.clone());
            self.cv.notify_all();
            drop(st);
            panic!("{msg}");
        }
        let n = st.runnable_count();
        debug_assert!(st.status[me] == Status::Runnable, "switching task {me} is not runnable");
        let r = splitmix(&mut st.rng);
        let next = match kind {
            Point::Preemptive => {
                let pick = st.nth_runnable((r % n as u64) as usize, None);
                if pick != me {
                    match st.preemptions_left {
                        Some(0) => me,
                        Some(ref mut budget) => {
                            *budget -= 1;
                            pick
                        }
                        None => pick,
                    }
                } else {
                    me
                }
            }
            Point::Contended => {
                // Never re-pick the contender when someone else can run —
                // the lock holder must be given the chance to release.
                if n <= 1 {
                    me
                } else {
                    st.nth_runnable((r % (n - 1) as u64) as usize, Some(me))
                }
            }
            Point::Yield => st.nth_runnable((r % n as u64) as usize, None),
        };
        st.trace_hash =
            (st.trace_hash ^ next as u64).wrapping_mul(0x100_0000_01b3).rotate_left(5);
        self.hand_over(st, me, next);
    }

    /// Set `next` active and, if that is not `me`, sleep until re-chosen.
    fn hand_over(&self, mut st: MutexGuard<'_, State>, me: TaskId, next: TaskId) {
        st.active = next;
        if next == me {
            return;
        }
        self.cv.notify_all();
        while st.active != me {
            if let Some(msg) = Self::check_abort(&st) {
                drop(st);
                panic!("{msg}");
            }
            st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Block `me` until `target` finishes.
    fn wait_for(&self, me: TaskId, target: TaskId) {
        loop {
            let mut st = self.lock();
            if let Some(msg) = Self::check_abort(&st) {
                drop(st);
                panic!("{msg}");
            }
            if st.status[target] == Status::Finished {
                // The join edge: everything the child did happens-before the
                // joiner's next step.
                st.hb.on_join(me, target);
                return;
            }
            st.status[me] = Status::Blocked(target);
            let n = st.runnable_count();
            if n == 0 {
                let msg = format!(
                    "conc-check: deadlock — every task blocked (task {me} joining task {target})"
                );
                st.abort = Some(msg.clone());
                self.cv.notify_all();
                drop(st);
                panic!("{msg}");
            }
            let r = splitmix(&mut st.rng);
            let next = st.nth_runnable((r % n as u64) as usize, None);
            st.trace_hash =
                (st.trace_hash ^ next as u64).wrapping_mul(0x100_0000_01b3).rotate_left(5);
            self.hand_over(st, me, next);
            // Woken as active again: target finished (its `finish` marked us
            // runnable); loop re-checks in case of spurious ordering.
        }
    }

    /// Mark `me` finished, wake its joiners, and schedule a successor.
    fn finish(&self, me: TaskId, panic_msg: Option<String>) {
        let mut st = self.lock();
        st.status[me] = Status::Finished;
        st.unfinished -= 1;
        if panic_msg.is_some() && st.task_panic.is_none() {
            st.task_panic = panic_msg;
        }
        for t in 0..st.status.len() {
            if st.status[t] == Status::Blocked(me) {
                st.status[t] = Status::Runnable;
            }
        }
        let n = st.runnable_count();
        if n == 0 {
            if st.unfinished > 0 && st.abort.is_none() {
                st.abort = Some(format!(
                    "conc-check: deadlock — task {me} finished but {} task(s) remain blocked",
                    st.unfinished
                ));
            }
            self.cv.notify_all(); // completion (or deadlock) notification
            return;
        }
        let r = splitmix(&mut st.rng);
        let next = st.nth_runnable((r % n as u64) as usize, None);
        st.trace_hash =
            (st.trace_hash ^ next as u64).wrapping_mul(0x100_0000_01b3).rotate_left(5);
        st.active = next;
        self.cv.notify_all();
    }

    /// Register a new runnable task spawned by `parent`; returns its id.
    fn register(&self, parent: TaskId) -> TaskId {
        let mut st = self.lock();
        let id = st.status.len();
        st.status.push(Status::Runnable);
        st.unfinished += 1;
        // The spawn edge: the child starts with the parent's clock.
        st.hb.on_spawn(parent, id);
        id
    }

    /// Park the calling OS thread until its task is scheduled for the first
    /// time. Returns false when the schedule aborted before that happened.
    fn wait_until_active(&self, me: TaskId) -> bool {
        let mut st = self.lock();
        while st.active != me {
            if st.abort.is_some() {
                return false;
            }
            st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
        true
    }
}

fn panic_message(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Handle to a task started with [`spawn`].
pub struct JoinHandle<T> {
    imp: JoinImp<T>,
}

enum JoinImp<T> {
    Sched {
        inner: Arc<SchedInner>,
        id: TaskId,
        result: Arc<Mutex<Option<std::thread::Result<T>>>>,
        os: Option<std::thread::JoinHandle<()>>,
    },
    Os(std::thread::JoinHandle<T>),
}

impl<T> JoinHandle<T> {
    /// Wait for the task and return its value, re-raising its panic.
    pub fn join(self) -> T {
        match self.imp {
            JoinImp::Sched { inner, id, result, os } => {
                let (_, me) = current().expect("join called outside the owning schedule");
                inner.wait_for(me, id);
                // The task has finished inside the schedule; its OS thread is
                // exiting — reap it so no thread outlives `run_one`.
                if let Some(h) = os {
                    let _ = h.join();
                }
                let r = result
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .take()
                    .expect("task finished without storing a result");
                match r {
                    Ok(v) => v,
                    Err(p) => resume_unwind(p),
                }
            }
            JoinImp::Os(h) => match h.join() {
                Ok(v) => v,
                Err(p) => resume_unwind(p),
            },
        }
    }
}

/// Spawn a task. Inside a schedule the task joins the cooperative scheduler;
/// outside it falls back to a plain OS thread.
pub fn spawn<T, F>(f: F) -> JoinHandle<T>
where
    T: Send + 'static,
    F: FnOnce() -> T + Send + 'static,
{
    match current() {
        None => JoinHandle { imp: JoinImp::Os(std::thread::spawn(f)) },
        Some((inner, me)) => {
            let id = inner.register(me);
            let result: Arc<Mutex<Option<std::thread::Result<T>>>> = Arc::new(Mutex::new(None));
            let r2 = Arc::clone(&result);
            let i2 = Arc::clone(&inner);
            let os = std::thread::Builder::new()
                .name(format!("conc-check-task-{id}"))
                .spawn(move || {
                    CURRENT.with(|c| *c.borrow_mut() = Some((Arc::clone(&i2), id)));
                    if !i2.wait_until_active(id) {
                        // Schedule aborted before we ever ran.
                        i2.finish(id, None);
                        return;
                    }
                    let out = catch_unwind(AssertUnwindSafe(f));
                    let panic_msg = out.as_ref().err().map(|p| panic_message(p.as_ref()));
                    *r2.lock().unwrap_or_else(|e| e.into_inner()) = Some(out);
                    i2.finish(id, panic_msg);
                })
                .expect("spawn conc-check task thread");
            JoinHandle { imp: JoinImp::Sched { inner, id, result, os: Some(os) } }
        }
    }
}

/// Outcome of a single schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunReport {
    /// Scheduling points taken.
    pub steps: u64,
    /// Hash of the decision sequence — identical hash ⇒ identical schedule.
    pub trace_hash: u64,
    /// Tasks that participated (including the root).
    pub tasks: usize,
}

/// Run `f` once under the deterministic scheduler with the given `seed` and
/// preemption `bound` (`None` = unbounded preemptions). Panics (with the
/// offending task's panic) if any task fails, deadlocks, or livelocks.
pub fn run_one<F: FnOnce()>(seed: u64, bound: Option<u32>, f: F) -> RunReport {
    assert!(!in_schedule(), "run_one cannot nest inside another schedule");
    let inner = Arc::new(SchedInner {
        state: Mutex::new(State {
            rng: seed ^ 0x5851_f42d_4c95_7f2d,
            status: vec![Status::Runnable],
            active: 0,
            preemptions_left: bound,
            steps: 0,
            trace_hash: 0xcbf2_9ce4_8422_2325,
            unfinished: 1,
            abort: None,
            task_panic: None,
            hb: HbState::new(seed, bound),
        }),
        cv: Condvar::new(),
    });
    CURRENT.with(|c| *c.borrow_mut() = Some((Arc::clone(&inner), 0)));
    let out = catch_unwind(AssertUnwindSafe(f));
    match &out {
        Ok(()) => {
            inner.finish(0, None);
            // Drive any tasks the root left running to completion.
            let mut st = inner.lock();
            while st.unfinished > 0 && st.abort.is_none() {
                st = inner.cv.wait(st).unwrap_or_else(|e| e.into_inner());
            }
        }
        Err(_) => {
            // Root panicked: tear the schedule down so parked tasks exit.
            let mut st = inner.lock();
            if st.abort.is_none() {
                st.abort = Some("conc-check: root task panicked; schedule aborted".into());
            }
            st.unfinished -= 1; // the root
            inner.cv.notify_all();
        }
    }
    CURRENT.with(|c| *c.borrow_mut() = None);
    let st = inner.lock();
    let report =
        RunReport { steps: st.steps, trace_hash: st.trace_hash, tasks: st.status.len() };
    let abort = st.abort.clone();
    let task_panic = st.task_panic.clone();
    drop(st);
    if let Err(p) = out {
        resume_unwind(p);
    }
    if let Some(msg) = abort {
        panic!("{msg}");
    }
    if let Some(msg) = task_panic {
        panic!("conc-check: unjoined task panicked: {msg}");
    }
    report
}

/// Configuration for [`explore`].
#[derive(Debug, Clone, Copy)]
pub struct ExploreConfig {
    /// First seed; schedule `i` uses `base_seed + i`.
    pub base_seed: u64,
    /// Number of schedules to run.
    pub schedules: u64,
    /// Preemption bound per schedule (`None` = unbounded).
    pub preemption_bound: Option<u32>,
}

impl ExploreConfig {
    /// `schedules` runs from `base_seed` with the default bound of 3
    /// preemptions (research consensus: almost all schedule-sensitive bugs
    /// need ≤ 2 preemptions; 3 gives margin).
    pub fn new(base_seed: u64, schedules: u64) -> Self {
        ExploreConfig { base_seed, schedules, preemption_bound: Some(3) }
    }

    /// Apply a replay-seed override (the parsed value of `HCL_SCHED_SEED`):
    /// run exactly one schedule at that seed, keeping the bound. Mirrors
    /// `HCL_PROPTEST_SEED` for the proptest shim.
    pub fn with_seed_override(self, seed: Option<u64>) -> Self {
        match seed {
            None => self,
            Some(s) => ExploreConfig { base_seed: s, schedules: 1, ..self },
        }
    }
}

/// Parse an `HCL_SCHED_SEED`-style value: decimal, or hex with an `0x`
/// prefix (the form failure reports print).
pub fn parse_seed(s: &str) -> Option<u64> {
    let s = s.trim();
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

fn env_seed() -> Option<u64> {
    let raw = std::env::var("HCL_SCHED_SEED").ok()?;
    let parsed = parse_seed(&raw);
    if parsed.is_none() {
        eprintln!("conc-check: ignoring unparsable HCL_SCHED_SEED={raw:?}");
    }
    parsed
}

/// Aggregate statistics over an exploration.
#[derive(Debug, Clone, Default)]
pub struct ExploreStats {
    /// Schedules executed.
    pub schedules: u64,
    /// Schedules with pairwise-distinct decision traces.
    pub distinct_schedules: u64,
    /// Total scheduling points across all runs.
    pub total_steps: u64,
}

/// Run `f` under `cfg.schedules` seeded schedules. On failure, prints the
/// seed that reproduces the interleaving, then re-raises the panic. Setting
/// `HCL_SCHED_SEED=<seed>` (decimal or `0x…` hex) overrides `cfg` to replay
/// exactly that single schedule.
pub fn explore<F: Fn() + std::panic::RefUnwindSafe>(cfg: ExploreConfig, f: F) -> ExploreStats {
    let override_seed = env_seed();
    if let Some(s) = override_seed {
        eprintln!("conc-check: HCL_SCHED_SEED={s:#x} set — replaying that single schedule");
    }
    let cfg = cfg.with_seed_override(override_seed);
    let mut stats = ExploreStats::default();
    let mut traces = std::collections::HashSet::new();
    for i in 0..cfg.schedules {
        let seed = cfg.base_seed.wrapping_add(i);
        match catch_unwind(AssertUnwindSafe(|| run_one(seed, cfg.preemption_bound, &f))) {
            Ok(report) => {
                stats.schedules += 1;
                stats.total_steps += report.steps;
                traces.insert(report.trace_hash);
            }
            Err(p) => {
                eprintln!(
                    "conc-check: schedule FAILED — replay with HCL_SCHED_SEED={seed:#x} \
                     or `sched::run_one({seed:#x}, {:?}, ..)` (base seed {:#x}, index {i})",
                    cfg.preemption_bound, cfg.base_seed
                );
                resume_unwind(p);
            }
        }
    }
    stats.distinct_schedules = traces.len() as u64;
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn single_task_runs_to_completion() {
        let hits = Arc::new(AtomicU64::new(0));
        let h2 = Arc::clone(&hits);
        let report = run_one(1, None, move || {
            for _ in 0..10 {
                point(Point::Preemptive);
                h2.fetch_add(1, Ordering::Relaxed);
            }
        });
        assert_eq!(hits.load(Ordering::Relaxed), 10);
        assert_eq!(report.tasks, 1);
        assert!(report.steps >= 10);
    }

    #[test]
    fn spawned_tasks_interleave_and_join() {
        let counter = Arc::new(AtomicU64::new(0));
        let c2 = Arc::clone(&counter);
        run_one(7, None, move || {
            let handles: Vec<_> = (0..3)
                .map(|_| {
                    let c = Arc::clone(&c2);
                    spawn(move || {
                        for _ in 0..100 {
                            point(Point::Preemptive);
                            c.fetch_add(1, Ordering::Relaxed);
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join();
            }
            assert_eq!(c2.load(Ordering::Relaxed), 300);
        });
    }

    #[test]
    fn same_seed_same_trace_different_seed_mostly_differs() {
        let run = |seed| {
            run_one(seed, None, || {
                let h: Vec<_> = (0..2)
                    .map(|_| {
                        spawn(|| {
                            for _ in 0..50 {
                                point(Point::Preemptive);
                            }
                        })
                    })
                    .collect();
                for x in h {
                    x.join();
                }
            })
            .trace_hash
        };
        assert_eq!(run(42), run(42), "same seed must replay the same schedule");
        let distinct: std::collections::HashSet<u64> = (0..32).map(run).collect();
        assert!(distinct.len() >= 24, "schedules barely vary: {}", distinct.len());
    }

    #[test]
    fn explore_counts_distinct_schedules() {
        let stats = explore(ExploreConfig::new(0xA11CE, 64), || {
            let a = spawn(|| {
                for _ in 0..20 {
                    point(Point::Preemptive);
                }
            });
            let b = spawn(|| {
                for _ in 0..20 {
                    point(Point::Preemptive);
                }
            });
            a.join();
            b.join();
        });
        assert_eq!(stats.schedules, 64);
        assert!(stats.distinct_schedules >= 48, "only {} distinct", stats.distinct_schedules);
    }

    #[test]
    fn schedule_can_find_a_planted_atomicity_bug() {
        // A racy read-modify-write (load; add; store) loses updates under
        // some interleaving; random scheduling must find it within a modest
        // seed budget — this is the canary for the whole approach.
        let mut found = false;
        for seed in 0..200 {
            let cell = Arc::new(AtomicU64::new(0));
            let lost = catch_unwind(AssertUnwindSafe(|| {
                run_one(seed, Some(3), || {
                    let h: Vec<_> = (0..2)
                        .map(|_| {
                            let c = Arc::clone(&cell);
                            spawn(move || {
                                for _ in 0..4 {
                                    point(Point::Preemptive);
                                    let v = c.load(Ordering::SeqCst);
                                    point(Point::Preemptive);
                                    c.store(v + 1, Ordering::SeqCst);
                                }
                            })
                        })
                        .collect();
                    for x in h {
                        x.join();
                    }
                    assert_eq!(cell.load(Ordering::SeqCst), 8, "lost update");
                })
            }))
            .is_err();
            if lost {
                found = true;
                break;
            }
        }
        assert!(found, "scheduler failed to expose a textbook lost-update race");
    }

    #[test]
    fn unjoined_panicking_task_fails_the_run() {
        let r = catch_unwind(AssertUnwindSafe(|| {
            run_one(3, None, || {
                let _h = spawn(|| panic!("boom"));
                // Root returns without joining; run_one must still fail.
            });
        }));
        assert!(r.is_err());
    }

    #[test]
    fn seed_override_parses_and_collapses_to_one_schedule() {
        assert_eq!(parse_seed("42"), Some(42));
        assert_eq!(parse_seed("0x2a"), Some(42));
        assert_eq!(parse_seed(" 0X2A "), Some(42));
        assert_eq!(parse_seed("zebra"), None);
        assert_eq!(parse_seed(""), None);
        let cfg = ExploreConfig::new(7, 500).with_seed_override(Some(0xDEAD));
        assert_eq!(cfg.base_seed, 0xDEAD);
        assert_eq!(cfg.schedules, 1);
        assert_eq!(cfg.preemption_bound, Some(3));
        let same = ExploreConfig::new(7, 500).with_seed_override(None);
        assert_eq!(same.base_seed, 7);
        assert_eq!(same.schedules, 500);
    }

    #[test]
    fn preemption_bound_zero_serializes_tasks() {
        // With no preemptions allowed, each task runs to completion once
        // scheduled (only voluntary switches) — the counter never races.
        for seed in 0..20 {
            let cell = Arc::new(AtomicU64::new(0));
            run_one(seed, Some(0), || {
                let h: Vec<_> = (0..2)
                    .map(|_| {
                        let c = Arc::clone(&cell);
                        spawn(move || {
                            for _ in 0..5 {
                                point(Point::Preemptive);
                                let v = c.load(Ordering::SeqCst);
                                c.store(v + 1, Ordering::SeqCst);
                            }
                        })
                    })
                    .collect();
                for x in h {
                    x.join();
                }
                assert_eq!(cell.load(Ordering::SeqCst), 10);
            });
        }
    }
}
