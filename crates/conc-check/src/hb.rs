//! Vector-clock happens-before checker for schedules run under
//! [`crate::sched`].
//!
//! ## Model
//!
//! Every task inside a schedule carries a **vector clock**. Edges are
//! created only by the synchronization the C11 memory model actually
//! grants:
//!
//! * **Release→Acquire**: an `Acquire` (or `SeqCst`) atomic load that reads
//!   a location last published by a `Release`/`AcqRel`/`SeqCst` store or RMW
//!   joins the publisher's clock (release sequences continue through RMWs:
//!   a relaxed RMW preserves the head store's clock, a releasing RMW adds
//!   its own). A `Relaxed` store *breaks* the sequence; a `Relaxed` load
//!   joins nothing.
//! * **Mutexes**: releasing a facade mutex publishes the holder's clock;
//!   the next acquisition joins it.
//! * **Spawn/join**: a spawned task inherits its parent's clock; a `join`
//!   joins the child's final clock into the joiner.
//!
//! Two race classes are reported, both with the reproducing seed, the two
//! access sites, and the minimal event window between them:
//!
//! 1. **Ordering race** — an `Acquire`/`SeqCst` load consumes a value
//!    written by another task with *no* happens-before edge (the classic
//!    `Relaxed`-publish bug: the reader paid for `Acquire` but the writer
//!    never released).
//! 2. **Cell race** — a [`RaceCell`] (the audit wrapper around the
//!    containers' non-atomic shared slots) is read or written without a
//!    happens-before edge to the conflicting access.
//!
//! ## Non-goals
//!
//! Fences, `SeqCst` total-order effects beyond their acquire/release
//! halves, and consume ordering are not modeled (see DESIGN.md §13). The
//! checker observes one executed schedule at a time; coverage comes from
//! [`crate::sched::explore`]'s seeded schedule sweep.

#![cfg_attr(not(any(conc_check, test)), allow(dead_code))]

use std::cell::UnsafeCell;
use std::collections::HashMap;
use std::panic::Location;
use std::sync::atomic::Ordering;

use crate::sched::TaskId;

/// Events retained for race reports. Older events fall off; the report says
/// so when the window is truncated.
const EVENT_RING: usize = 256;

/// Maximum events printed in one race report.
const MAX_WINDOW_LINES: usize = 32;

/// A vector clock: component `t` is the count of release points task `t`
/// had performed the last time an edge from `t` was joined.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub(crate) struct Vc(Vec<u32>);

impl Vc {
    fn get(&self, t: TaskId) -> u32 {
        self.0.get(t).copied().unwrap_or(0)
    }

    fn ensure(&mut self, n: usize) {
        if self.0.len() < n {
            self.0.resize(n, 0);
        }
    }

    fn bump(&mut self, t: TaskId) {
        self.ensure(t + 1);
        self.0[t] += 1;
    }

    /// `self := self ⊔ other` (component-wise max). Allocation-free once
    /// `self` has capacity for `other`'s length.
    fn join(&mut self, other: &Vc) {
        self.ensure(other.0.len());
        for (a, b) in self.0.iter_mut().zip(other.0.iter()) {
            *a = (*a).max(*b);
        }
    }

    /// `self := other`, reusing `self`'s allocation when possible.
    fn assign(&mut self, other: &Vc) {
        self.0.clone_from(&other.0);
    }
}

/// What kind of access an [`Event`] records.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum EvKind {
    Load,
    Store,
    Rmw,
    CellRead,
    CellWrite,
    CellInit,
    Lock,
    Unlock,
}

impl EvKind {
    fn label(self) -> &'static str {
        match self {
            EvKind::Load => "atomic load",
            EvKind::Store => "atomic store",
            EvKind::Rmw => "atomic rmw",
            EvKind::CellRead => "cell read",
            EvKind::CellWrite => "cell write",
            EvKind::CellInit => "cell init",
            EvKind::Lock => "mutex lock",
            EvKind::Unlock => "mutex unlock",
        }
    }
}

/// One recorded access, kept in the bounded event ring.
#[derive(Clone, Copy)]
struct Event {
    seq: u64,
    task: TaskId,
    kind: EvKind,
    addr: usize,
    ord: Option<Ordering>,
    site: &'static Location<'static>,
}

impl Event {
    fn render(&self, out: &mut String) {
        use std::fmt::Write;
        let _ = write!(out, "    [{:>4}] task {} {}", self.seq, self.task, self.kind.label());
        if let Some(ord) = self.ord {
            let _ = write!(out, " {ord:?}");
        }
        let _ = writeln!(out, " addr {:#x} at {}", self.addr, self.site);
    }
}

/// One side of a race: who, where, and at which point of its clock.
#[derive(Clone, Copy)]
struct Access {
    task: TaskId,
    /// The accessor's own clock component at access time; the access
    /// happens-before task `u`'s current point iff `epoch <= C_u[task]`.
    epoch: u32,
    seq: u64,
    kind: EvKind,
    ord: Option<Ordering>,
    site: &'static Location<'static>,
}

/// Per-atomic-location state.
#[derive(Default)]
struct AtomicLoc {
    /// Clock published by the release sequence currently headed at this
    /// location; meaningless when `msg_valid` is false.
    msg: Vc,
    msg_valid: bool,
    last_write: Option<Access>,
}

/// Per-[`RaceCell`] state (FastTrack-style, full clocks).
#[derive(Default)]
struct CellLoc {
    write: Option<Access>,
    /// Last read per task (index = TaskId).
    reads: Vec<Option<Access>>,
}

/// Per-mutex state.
#[derive(Default)]
struct MutexLoc {
    clock: Vc,
    valid: bool,
}

fn is_acquire(ord: Ordering) -> bool {
    matches!(ord, Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst)
}

fn is_release(ord: Ordering) -> bool {
    matches!(ord, Ordering::Release | Ordering::AcqRel | Ordering::SeqCst)
}

/// Happens-before state for one schedule. Owned by the scheduler's `State`
/// (so the scheduler lock serializes all updates) and rebuilt per
/// [`crate::sched::run_one`].
pub struct HbState {
    seed: u64,
    bound: Option<u32>,
    clocks: Vec<Vc>,
    atomics: HashMap<usize, AtomicLoc>,
    cells: HashMap<usize, CellLoc>,
    mutexes: HashMap<usize, MutexLoc>,
    ring: Vec<Event>,
    seq: u64,
}

type HbResult = Result<(), String>;

impl HbState {
    /// Fresh state for a schedule driven by `seed` under `bound`.
    pub(crate) fn new(seed: u64, bound: Option<u32>) -> Self {
        let mut root = Vc::default();
        root.bump(0);
        HbState {
            seed,
            bound,
            clocks: vec![root],
            atomics: HashMap::new(),
            cells: HashMap::new(),
            mutexes: HashMap::new(),
            ring: Vec::with_capacity(EVENT_RING),
            seq: 0,
        }
    }

    /// Child inherits the parent's clock; the parent advances so later
    /// parent events are not ordered before the child's.
    pub(crate) fn on_spawn(&mut self, parent: TaskId, child: TaskId) {
        debug_assert_eq!(child, self.clocks.len());
        let mut c = self.clocks[parent].clone();
        c.bump(child);
        self.clocks.push(c);
        self.clocks[parent].bump(parent);
    }

    /// A join edge: the joiner absorbs the finished child's clock.
    pub(crate) fn on_join(&mut self, me: TaskId, child: TaskId) {
        let (a, b) = borrow_two(&mut self.clocks, me, child);
        a.join(b);
    }

    fn push_event(
        &mut self,
        task: TaskId,
        kind: EvKind,
        addr: usize,
        ord: Option<Ordering>,
        site: &'static Location<'static>,
    ) -> u64 {
        self.seq += 1;
        let ev = Event { seq: self.seq, task, kind, addr, ord, site };
        if self.ring.len() < EVENT_RING {
            self.ring.push(ev);
        } else {
            self.ring[(self.seq as usize) % EVENT_RING] = ev;
        }
        self.seq
    }

    /// Format a full race report (failure path: allocation is fine here).
    fn race(&self, first: Access, second: Access, why: &str) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(out, "conc-check: HAPPENS-BEFORE RACE — {why}");
        let _ = writeln!(
            out,
            "  seed {:#x} (replay: HCL_SCHED_SEED={:#x}), preemption bound {:?}",
            self.seed, self.seed, self.bound
        );
        for (tag, a) in [("first ", first), ("second", second)] {
            let _ = write!(out, "  {tag}: task {} {}", a.task, a.kind.label());
            if let Some(ord) = a.ord {
                let _ = write!(out, " {ord:?}");
            }
            let _ = writeln!(out, " at {}", a.site);
        }
        let mut window: Vec<Event> = self
            .ring
            .iter()
            .filter(|e| e.seq >= first.seq && e.seq <= second.seq)
            .copied()
            .collect();
        window.sort_by_key(|e| e.seq);
        let truncated = first.seq < self.seq.saturating_sub(self.ring.len() as u64) + 1;
        let _ = writeln!(
            out,
            "  event window (seq {}..={}, {} event(s){}):",
            first.seq,
            second.seq,
            window.len(),
            if truncated { ", older events dropped from the ring" } else { "" }
        );
        let skip = window.len().saturating_sub(MAX_WINDOW_LINES);
        if skip > 0 {
            let _ = writeln!(out, "    ({skip} earlier event(s) elided)");
        }
        for e in window.iter().skip(skip) {
            e.render(&mut out);
        }
        out.push_str("  no happens-before edge orders these accesses ");
        out.push_str("(only Release→Acquire/SeqCst pairs, mutexes, and spawn/join create edges)");
        out
    }

    fn access(&self, me: TaskId, kind: EvKind, ord: Option<Ordering>, seq: u64, site: &'static Location<'static>) -> Access {
        Access { task: me, epoch: self.clocks[me].get(me), seq, kind, ord, site }
    }

    /// Atomic load at `addr` with `ord`. Creates the Release→Acquire edge
    /// when one exists; otherwise, an acquire load that consumes another
    /// task's un-released value is an ordering race.
    pub(crate) fn atomic_load(
        &mut self,
        me: TaskId,
        addr: usize,
        ord: Ordering,
        site: &'static Location<'static>,
    ) -> HbResult {
        let seq = self.push_event(me, EvKind::Load, addr, Some(ord), site);
        let Self { clocks, atomics, .. } = self;
        let loc = atomics.entry(addr).or_default();
        if is_acquire(ord) {
            if loc.msg_valid {
                clocks[me].join(&loc.msg);
            }
            if let Some(w) = loc.last_write {
                if w.task != me && w.epoch > clocks[me].get(w.task) {
                    let second = self.access(me, EvKind::Load, Some(ord), seq, site);
                    return Err(self.race(
                        w,
                        second,
                        "acquire load consumed a value published without a release edge",
                    ));
                }
            }
        }
        Ok(())
    }

    /// Atomic store at `addr` with `ord`. A releasing store publishes the
    /// writer's clock; a relaxed store breaks the release sequence.
    pub(crate) fn atomic_store(
        &mut self,
        me: TaskId,
        addr: usize,
        ord: Ordering,
        site: &'static Location<'static>,
    ) -> HbResult {
        let seq = self.push_event(me, EvKind::Store, addr, Some(ord), site);
        let Self { clocks, atomics, .. } = self;
        let loc = atomics.entry(addr).or_default();
        if is_release(ord) {
            loc.msg.assign(&clocks[me]);
            loc.msg_valid = true;
        } else {
            loc.msg_valid = false;
        }
        loc.last_write =
            Some(Access { task: me, epoch: clocks[me].get(me), seq, kind: EvKind::Store, ord: Some(ord), site });
        if is_release(ord) {
            clocks[me].bump(me);
        }
        Ok(())
    }

    /// Atomic read-modify-write (swap, fetch-ops, successful CAS). The read
    /// half may acquire, the write half may release; a relaxed RMW keeps the
    /// release sequence alive without contributing its own clock.
    pub(crate) fn atomic_rmw(
        &mut self,
        me: TaskId,
        addr: usize,
        ord: Ordering,
        site: &'static Location<'static>,
    ) -> HbResult {
        let seq = self.push_event(me, EvKind::Rmw, addr, Some(ord), site);
        let Self { clocks, atomics, .. } = self;
        let loc = atomics.entry(addr).or_default();
        let mut racy_write = None;
        if is_acquire(ord) {
            if loc.msg_valid {
                clocks[me].join(&loc.msg);
            }
            if let Some(w) = loc.last_write {
                if w.task != me && w.epoch > clocks[me].get(w.task) {
                    racy_write = Some(w);
                }
            }
        }
        if is_release(ord) {
            if loc.msg_valid {
                loc.msg.join(&clocks[me]);
            } else {
                loc.msg.assign(&clocks[me]);
                loc.msg_valid = true;
            }
        }
        loc.last_write =
            Some(Access { task: me, epoch: clocks[me].get(me), seq, kind: EvKind::Rmw, ord: Some(ord), site });
        if is_release(ord) {
            clocks[me].bump(me);
        }
        if let Some(w) = racy_write {
            let second = self.access(me, EvKind::Rmw, Some(ord), seq, site);
            return Err(self.race(
                w,
                second,
                "acquiring rmw consumed a value published without a release edge",
            ));
        }
        Ok(())
    }

    /// Mutex acquisition joins the clock left by the previous release.
    pub(crate) fn mutex_lock(
        &mut self,
        me: TaskId,
        addr: usize,
        site: &'static Location<'static>,
    ) -> HbResult {
        self.push_event(me, EvKind::Lock, addr, None, site);
        let Self { clocks, mutexes, .. } = self;
        let loc = mutexes.entry(addr).or_default();
        if loc.valid {
            clocks[me].join(&loc.clock);
        }
        Ok(())
    }

    /// Mutex release publishes the holder's clock.
    pub(crate) fn mutex_unlock(
        &mut self,
        me: TaskId,
        addr: usize,
        site: &'static Location<'static>,
    ) -> HbResult {
        self.push_event(me, EvKind::Unlock, addr, None, site);
        let Self { clocks, mutexes, .. } = self;
        let loc = mutexes.entry(addr).or_default();
        loc.clock.assign(&clocks[me]);
        loc.valid = true;
        clocks[me].bump(me);
        Ok(())
    }

    /// A [`RaceCell`] initialization: declares `me` the (re)initializing
    /// writer and resets the cell's audit history. Used for the
    /// construct-then-publish idiom, where the allocation may reuse an
    /// address whose previous (freed) occupant left stale access records.
    pub(crate) fn cell_init(
        &mut self,
        me: TaskId,
        addr: usize,
        site: &'static Location<'static>,
    ) -> HbResult {
        let seq = self.push_event(me, EvKind::CellInit, addr, None, site);
        let epoch = self.clocks[me].get(me);
        let loc = self.cells.entry(addr).or_default();
        loc.write =
            Some(Access { task: me, epoch, seq, kind: EvKind::CellInit, ord: None, site });
        for r in loc.reads.iter_mut() {
            *r = None;
        }
        Ok(())
    }

    /// A checked read of a [`RaceCell`]: must be ordered after the last
    /// write.
    pub(crate) fn cell_read(
        &mut self,
        me: TaskId,
        addr: usize,
        site: &'static Location<'static>,
    ) -> HbResult {
        let seq = self.push_event(me, EvKind::CellRead, addr, None, site);
        let epoch = self.clocks[me].get(me);
        let ntasks = self.clocks.len();
        let Self { clocks, cells, .. } = self;
        let loc = cells.entry(addr).or_default();
        let racy_write = match loc.write {
            Some(w) if w.task != me && w.epoch > clocks[me].get(w.task) => Some(w),
            _ => None,
        };
        if loc.reads.len() < ntasks {
            loc.reads.resize(ntasks, None);
        }
        loc.reads[me] =
            Some(Access { task: me, epoch, seq, kind: EvKind::CellRead, ord: None, site });
        if let Some(w) = racy_write {
            let second = self.access(me, EvKind::CellRead, None, seq, site);
            return Err(self.race(w, second, "shared cell read races with its last write"));
        }
        Ok(())
    }

    /// A checked write of a live shared [`RaceCell`]: must be ordered after
    /// the last write *and* every recorded read.
    pub(crate) fn cell_write(
        &mut self,
        me: TaskId,
        addr: usize,
        site: &'static Location<'static>,
    ) -> HbResult {
        let seq = self.push_event(me, EvKind::CellWrite, addr, None, site);
        let epoch = self.clocks[me].get(me);
        let ntasks = self.clocks.len();
        let Self { clocks, cells, .. } = self;
        let loc = cells.entry(addr).or_default();
        let mut conflict = match loc.write {
            Some(w) if w.task != me && w.epoch > clocks[me].get(w.task) => Some(w),
            _ => None,
        };
        if conflict.is_none() {
            for r in loc.reads.iter().flatten() {
                if r.task != me && r.epoch > clocks[me].get(r.task) {
                    conflict = Some(*r);
                    break;
                }
            }
        }
        if loc.reads.len() < ntasks {
            loc.reads.resize(ntasks, None);
        }
        loc.write =
            Some(Access { task: me, epoch, seq, kind: EvKind::CellWrite, ord: None, site });
        for r in loc.reads.iter_mut() {
            *r = None;
        }
        if let Some(c) = conflict {
            let second = self.access(me, EvKind::CellWrite, None, seq, site);
            return Err(self.race(c, second, "shared cell write races with a prior access"));
        }
        Ok(())
    }
}

/// Disjoint mutable borrows of two clock slots.
fn borrow_two(v: &mut [Vc], a: usize, b: usize) -> (&mut Vc, &Vc) {
    assert_ne!(a, b, "join with self");
    if a < b {
        let (lo, hi) = v.split_at_mut(b);
        (&mut lo[a], &hi[0])
    } else {
        let (lo, hi) = v.split_at_mut(a);
        (&mut hi[0], &lo[b])
    }
}

// ---------------------------------------------------------------------------
// Reporting hooks, called by the `sync` facade wrappers and `RaceCell`.
// No-ops outside an active schedule. Compiled only when the facade's
// scheduled wrappers are (`--cfg conc_check`, or this crate's own tests).
// ---------------------------------------------------------------------------

#[cfg(any(conc_check, test))]
#[track_caller]
fn report(
    f: impl FnOnce(&mut HbState, TaskId, &'static Location<'static>) -> HbResult,
) {
    let site = Location::caller();
    if let Some(Err(race)) = crate::sched::with_hb(|hb, me| f(hb, me, site)) {
        panic!("{race}");
    }
}

#[cfg(any(conc_check, test))]
#[track_caller]
pub(crate) fn atomic_load(addr: usize, ord: Ordering) {
    report(|hb, me, site| hb.atomic_load(me, addr, ord, site));
}

#[cfg(any(conc_check, test))]
#[track_caller]
pub(crate) fn atomic_store(addr: usize, ord: Ordering) {
    report(|hb, me, site| hb.atomic_store(me, addr, ord, site));
}

#[cfg(any(conc_check, test))]
#[track_caller]
pub(crate) fn atomic_rmw(addr: usize, ord: Ordering) {
    report(|hb, me, site| hb.atomic_rmw(me, addr, ord, site));
}

#[cfg(any(conc_check, test))]
#[track_caller]
pub(crate) fn mutex_lock(addr: usize) {
    report(|hb, me, site| hb.mutex_lock(me, addr, site));
}

#[cfg(any(conc_check, test))]
#[track_caller]
pub(crate) fn mutex_unlock(addr: usize) {
    report(|hb, me, site| hb.mutex_unlock(me, addr, site));
}

#[cfg(any(conc_check, test))]
#[track_caller]
fn cell_event(kind: EvKind, addr: usize) {
    report(|hb, me, site| match kind {
        EvKind::CellInit => hb.cell_init(me, addr, site),
        EvKind::CellRead => hb.cell_read(me, addr, site),
        EvKind::CellWrite => hb.cell_write(me, addr, site),
        _ => Ok(()),
    });
}

// ---------------------------------------------------------------------------
// RaceCell
// ---------------------------------------------------------------------------

/// Audit wrapper for a non-atomic slot shared between threads through
/// `unsafe` publication (the queue's `MaybeUninit` value slot, the cuckoo
/// entry payload, the skiplist value pointee).
///
/// In default builds every method is a zero-cost passthrough. Under
/// `--cfg conc_check` (or this crate's own tests), accesses report to the
/// happens-before checker, which fails the schedule when a read or write is
/// not ordered after the conflicting access by a real synchronization edge.
///
/// The wrapper does not add any synchronization of its own: callers remain
/// responsible for exclusivity, exactly as with a bare `UnsafeCell`.
#[derive(Debug, Default)]
pub struct RaceCell<T> {
    inner: UnsafeCell<T>,
}

// SAFETY: RaceCell adds no state beyond the wrapped value and performs no
// unsynchronized access itself; it is Send exactly when T is.
unsafe impl<T: Send> Send for RaceCell<T> {}
// SAFETY: shared access goes through `with`/`with_mut`, whose contracts put
// exclusivity on the caller (the same obligation the containers already
// discharge via epoch publication); the audit hooks only read `&self`.
unsafe impl<T: Send + Sync> Sync for RaceCell<T> {}

impl<T> RaceCell<T> {
    /// Wrap `value`. No event is recorded; call [`RaceCell::mark_write`]
    /// once the cell has reached its final (shared) address.
    pub const fn new(value: T) -> Self {
        RaceCell { inner: UnsafeCell::new(value) }
    }

    /// Record this task as the cell's initializing writer and reset the
    /// audit history. Call after placing the cell at its shared address
    /// (e.g. right after `Owned::new`) and *before* publishing it: the
    /// publication edge then orders every consumer after this write.
    ///
    /// Zero-sized `T` is not audited: a ZST has no bytes to race on, and
    /// every heap-allocated ZST shares the same dangling address, so the
    /// per-address history would alias unrelated cells.
    #[track_caller]
    pub fn mark_write(&self) {
        #[cfg(any(conc_check, test))]
        if std::mem::size_of::<T>() != 0 {
            cell_event(EvKind::CellInit, self.inner.get() as usize);
        }
    }

    /// Read access: run `f` on a shared reference to the value.
    ///
    /// # Safety
    /// No concurrent [`RaceCell::with_mut`] may be in progress (callers
    /// guarantee this via their publication protocol; the checker audits
    /// that the protocol actually orders the accesses).
    #[track_caller]
    pub unsafe fn with<R>(&self, f: impl FnOnce(&T) -> R) -> R {
        #[cfg(any(conc_check, test))]
        if std::mem::size_of::<T>() != 0 {
            cell_event(EvKind::CellRead, self.inner.get() as usize);
        }
        // SAFETY: exclusivity is the caller's contract (see above).
        f(unsafe { &*self.inner.get() })
    }

    /// Write access to an already-shared cell: run `f` on a mutable
    /// reference.
    ///
    /// # Safety
    /// The caller must have exclusive access for the duration of `f` (no
    /// concurrent [`RaceCell::with`] or `with_mut`).
    #[track_caller]
    pub unsafe fn with_mut<R>(&self, f: impl FnOnce(&mut T) -> R) -> R {
        #[cfg(any(conc_check, test))]
        if std::mem::size_of::<T>() != 0 {
            cell_event(EvKind::CellWrite, self.inner.get() as usize);
        }
        // SAFETY: exclusivity is the caller's contract (see above).
        f(unsafe { &mut *self.inner.get() })
    }

    /// Exclusive access through `&mut self` (statically race-free).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut()
    }

    /// Unwrap the value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::{self, ExploreConfig};
    use crate::sync::scheduled::{AtomicBool, Mutex};
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::Arc;

    fn panic_text(r: std::thread::Result<crate::sched::RunReport>) -> String {
        match r {
            Ok(_) => String::new(),
            Err(p) => {
                if let Some(s) = p.downcast_ref::<String>() {
                    s.clone()
                } else if let Some(s) = p.downcast_ref::<&str>() {
                    (*s).to_string()
                } else {
                    "<non-string>".into()
                }
            }
        }
    }

    /// The racy half of the negative-control pair: data published with a
    /// `Relaxed` store, consumed through an `Acquire` load. Returns the
    /// panic text of the first failing seed (empty if no seed failed).
    fn run_relaxed_publish(seed: u64) -> String {
        let r = catch_unwind(AssertUnwindSafe(|| {
            sched::run_one(seed, None, || {
                let flag = Arc::new(AtomicBool::new(false));
                let data = Arc::new(RaceCell::new(0u64));
                let producer = {
                    let (flag, data) = (Arc::clone(&flag), Arc::clone(&data));
                    sched::spawn(move || {
                        // SAFETY: the producer is the only writer; the bug
                        // under test is the *publication*, not this write.
                        unsafe { data.with_mut(|d| *d = 42) };
                        // The deliberate bug: a Relaxed publish creates no
                        // synchronizes-with edge for the consumer below.
                        flag.store(true, Ordering::Relaxed);
                    })
                };
                let consumer = {
                    let (flag, data) = (Arc::clone(&flag), Arc::clone(&data));
                    sched::spawn(move || {
                        while !flag.load(Ordering::Acquire) {
                            sched::yield_now();
                        }
                        // SAFETY: the producer wrote before setting the flag
                        // (but never released — that is the planted race).
                        unsafe { data.with(|d| *d) }
                    })
                };
                producer.join();
                assert_eq!(consumer.join(), 42);
            })
        }));
        panic_text(r.map(|_| sched::run_one(0, None, || {})))
    }

    #[test]
    fn relaxed_publish_is_flagged_with_both_sites_and_seed() {
        let msg = run_relaxed_publish(0x1CE);
        assert!(msg.contains("HAPPENS-BEFORE RACE"), "no race reported: {msg}");
        assert!(msg.contains("without a release edge"), "wrong race class: {msg}");
        // Both access sites point into this file, and the seed replays.
        assert!(msg.matches("hb.rs").count() >= 2, "missing access sites: {msg}");
        assert!(msg.contains("HCL_SCHED_SEED=0x1ce"), "missing replay seed: {msg}");
        assert!(msg.contains("Relaxed"), "publisher ordering missing: {msg}");
    }

    #[test]
    fn relaxed_consume_is_flagged_as_cell_race() {
        // The mirror fixture: a correct Release publish, but the consumer
        // spins on a Relaxed load — the cell read has no HB edge.
        let r = catch_unwind(AssertUnwindSafe(|| {
            sched::run_one(0xBEE, None, || {
                let flag = Arc::new(AtomicBool::new(false));
                let data = Arc::new(RaceCell::new(0u64));
                let producer = {
                    let (flag, data) = (Arc::clone(&flag), Arc::clone(&data));
                    sched::spawn(move || {
                        // SAFETY: sole writer before publication.
                        unsafe { data.with_mut(|d| *d = 7) };
                        flag.store(true, Ordering::Release);
                    })
                };
                let consumer = {
                    let (flag, data) = (Arc::clone(&flag), Arc::clone(&data));
                    sched::spawn(move || {
                        // The deliberate bug: Relaxed consumption discards
                        // the edge the Release store offered.
                        while !flag.load(Ordering::Relaxed) {
                            sched::yield_now();
                        }
                        // SAFETY: exclusivity holds; the ordering does not.
                        unsafe { data.with(|d| *d) }
                    })
                };
                producer.join();
                assert_eq!(consumer.join(), 7);
            })
        }));
        let msg = panic_text(r.map(|_| sched::run_one(0, None, || {})));
        assert!(msg.contains("cell read races"), "expected a cell race: {msg}");
        assert!(msg.contains("cell write"), "missing write site: {msg}");
    }

    #[test]
    fn racy_fixture_is_detected_within_the_default_explore_budget() {
        // Mirror of the acceptance criterion: under a modest explore budget
        // at least one seed must flag the Relaxed publish.
        let r = catch_unwind(AssertUnwindSafe(|| {
            sched::explore(ExploreConfig::new(0x5EED_CAFE, 50), || {
                let flag = Arc::new(AtomicBool::new(false));
                let data = Arc::new(RaceCell::new(0u64));
                let p = {
                    let (flag, data) = (Arc::clone(&flag), Arc::clone(&data));
                    sched::spawn(move || {
                        // SAFETY: sole writer before publication.
                        unsafe { data.with_mut(|d| *d = 1) };
                        flag.store(true, Ordering::Relaxed);
                    })
                };
                let c = {
                    let (flag, data) = (Arc::clone(&flag), Arc::clone(&data));
                    sched::spawn(move || {
                        while !flag.load(Ordering::Acquire) {
                            sched::yield_now();
                        }
                        // SAFETY: see the producer note.
                        unsafe { data.with(|d| *d) }
                    })
                };
                p.join();
                c.join();
            });
        }));
        assert!(r.is_err(), "explore missed the planted ordering race");
    }

    #[test]
    fn mutex_protected_twin_passes_race_free() {
        // The clean twin of the racy pair: the flag lives under a facade
        // mutex, whose release/acquire edges order the cell accesses.
        let stats = sched::explore(ExploreConfig::new(0x600D, 150), || {
            let ready = Arc::new(Mutex::new(false));
            let data = Arc::new(RaceCell::new(0u64));
            let producer = {
                let (ready, data) = (Arc::clone(&ready), Arc::clone(&data));
                sched::spawn(move || {
                    // SAFETY: sole writer; publication via the mutex below.
                    unsafe { data.with_mut(|d| *d = 9) };
                    *ready.lock() = true;
                })
            };
            let consumer = {
                let (ready, data) = (Arc::clone(&ready), Arc::clone(&data));
                sched::spawn(move || {
                    loop {
                        if *ready.lock() {
                            break;
                        }
                        sched::yield_now();
                    }
                    // SAFETY: ordered after the write by the mutex edge.
                    unsafe { data.with(|d| *d) }
                })
            };
            producer.join();
            assert_eq!(consumer.join(), 9);
        });
        assert_eq!(stats.schedules, 150);
    }

    #[test]
    fn release_acquire_twin_passes_race_free() {
        let stats = sched::explore(ExploreConfig::new(0xACE, 150), || {
            let flag = Arc::new(AtomicBool::new(false));
            let data = Arc::new(RaceCell::new(0u64));
            let producer = {
                let (flag, data) = (Arc::clone(&flag), Arc::clone(&data));
                sched::spawn(move || {
                    // SAFETY: sole writer before the Release publish.
                    unsafe { data.with_mut(|d| *d = 3) };
                    flag.store(true, Ordering::Release);
                })
            };
            let consumer = {
                let (flag, data) = (Arc::clone(&flag), Arc::clone(&data));
                sched::spawn(move || {
                    while !flag.load(Ordering::Acquire) {
                        sched::yield_now();
                    }
                    // SAFETY: ordered by the Release→Acquire edge.
                    unsafe { data.with(|d| *d) }
                })
            };
            producer.join();
            assert_eq!(consumer.join(), 3);
        });
        assert_eq!(stats.schedules, 150);
    }

    #[test]
    fn spawn_and_join_create_edges() {
        let stats = sched::explore(ExploreConfig::new(0x90, 100), || {
            let data = Arc::new(RaceCell::new(0u64));
            // Pre-spawn write: ordered before the child via the spawn edge.
            // SAFETY: no other task exists yet.
            unsafe { data.with_mut(|d| *d = 5) };
            let child = {
                let data = Arc::clone(&data);
                sched::spawn(move || {
                    // SAFETY: ordered after the parent's write by spawn.
                    let v = unsafe { data.with(|d| *d) };
                    // SAFETY: sole live accessor until join.
                    unsafe { data.with_mut(|d| *d = v + 1) };
                })
            };
            child.join();
            // SAFETY: ordered after the child's write by the join edge.
            assert_eq!(unsafe { data.with(|d| *d) }, 6);
        });
        assert_eq!(stats.schedules, 100);
    }

    #[test]
    fn vector_clock_join_and_bump() {
        let mut a = Vc::default();
        a.bump(0);
        a.bump(0);
        let mut b = Vc::default();
        b.bump(2);
        a.join(&b);
        assert_eq!(a.get(0), 2);
        assert_eq!(a.get(1), 0);
        assert_eq!(a.get(2), 1);
        let mut c = Vc::default();
        c.assign(&a);
        assert_eq!(c, a);
    }
}
