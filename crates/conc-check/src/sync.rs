//! Cfg-gated synchronization facade.
//!
//! Code that wants schedule exploration imports its primitives from here
//! instead of `std::sync::atomic` / `parking_lot`:
//!
//! * **default build** (`--cfg conc_check` absent): every name is a plain
//!   re-export of the std / parking_lot original — zero cost, zero behavior
//!   change;
//! * **`RUSTFLAGS="--cfg conc_check"`**: the same names resolve to thin
//!   newtype wrappers that emit a [`crate::sched`] scheduling point before
//!   each atomic access or lock acquisition, so [`crate::sched::explore`]
//!   can drive the callers through seeded interleavings. Outside an active
//!   schedule the wrappers degrade to the plain operation (the scheduling
//!   point is a no-op), so a `conc_check` build still runs ordinary tests
//!   correctly, just a little slower.
//!
//! `Ordering` is always the real `std::sync::atomic::Ordering`. The facade
//! explores interleavings at operation granularity and the *execution*
//! passes orderings straight through to the host — but each access is also
//! reported, with its `Ordering`, to the [`crate::hb`] vector-clock
//! happens-before checker, so a value consumed without a genuine
//! Release→Acquire (or SeqCst) edge fails the schedule as an ordering race
//! even when the host's stronger memory model delivered the right value.
//! Mutex acquire/release and spawn/join report edges the same way.

pub use std::sync::atomic::Ordering;

#[cfg(not(conc_check))]
pub use std::sync::atomic::{AtomicBool, AtomicIsize, AtomicU32, AtomicU64, AtomicUsize};

#[cfg(not(conc_check))]
pub use parking_lot::{Mutex, MutexGuard};

#[cfg(conc_check)]
pub use scheduled::{AtomicBool, AtomicIsize, AtomicU32, AtomicU64, AtomicUsize, Mutex, MutexGuard};

/// Threading facade: under `conc_check` spawned threads become scheduler
/// tasks (when a schedule is active); otherwise plain `std::thread`.
pub mod thread {
    #[cfg(not(conc_check))]
    pub use std::thread::{spawn, yield_now, JoinHandle};

    #[cfg(conc_check)]
    pub use crate::sched::{spawn, yield_now, JoinHandle};
}

#[cfg(any(conc_check, test))]
pub(crate) mod scheduled {
    //! Wrapper types used when `--cfg conc_check` is set (also compiled under
    //! `cfg(test)` so the facade itself is testable from a default build).
    //!
    //! Every operation does three things, in order: emit a scheduling point
    //! (the interleaving decision), perform the real operation, and report
    //! the access *with its `Ordering`* to the [`crate::hb`] checker. The
    //! scheduler serializes tasks, so op + report are atomic with respect to
    //! the schedule.
    #![allow(dead_code)]

    use crate::hb;
    use crate::sched::{point, Point};
    use std::sync::atomic::Ordering;

    macro_rules! sched_atomic_int {
        ($name:ident, $std:ident, $ty:ty) => {
            /// Schedule-aware wrapper around the std atomic of the same name.
            #[derive(Debug, Default)]
            pub struct $name(std::sync::atomic::$std);

            impl $name {
                pub const fn new(v: $ty) -> Self {
                    Self(std::sync::atomic::$std::new(v))
                }
                fn addr(&self) -> usize {
                    &self.0 as *const _ as usize
                }
                #[track_caller]
                pub fn load(&self, ord: Ordering) -> $ty {
                    point(Point::Preemptive);
                    let v = self.0.load(ord);
                    hb::atomic_load(self.addr(), ord);
                    v
                }
                #[track_caller]
                pub fn store(&self, v: $ty, ord: Ordering) {
                    point(Point::Preemptive);
                    self.0.store(v, ord);
                    hb::atomic_store(self.addr(), ord);
                }
                #[track_caller]
                pub fn swap(&self, v: $ty, ord: Ordering) -> $ty {
                    point(Point::Preemptive);
                    let old = self.0.swap(v, ord);
                    hb::atomic_rmw(self.addr(), ord);
                    old
                }
                #[track_caller]
                pub fn compare_exchange(
                    &self,
                    cur: $ty,
                    new: $ty,
                    ok: Ordering,
                    err: Ordering,
                ) -> Result<$ty, $ty> {
                    point(Point::Preemptive);
                    let r = self.0.compare_exchange(cur, new, ok, err);
                    // A successful CAS is an RMW under `ok`; a failed one is
                    // just a load under `err`.
                    match r {
                        Ok(_) => hb::atomic_rmw(self.addr(), ok),
                        Err(_) => hb::atomic_load(self.addr(), err),
                    }
                    r
                }
                #[track_caller]
                pub fn compare_exchange_weak(
                    &self,
                    cur: $ty,
                    new: $ty,
                    ok: Ordering,
                    err: Ordering,
                ) -> Result<$ty, $ty> {
                    point(Point::Preemptive);
                    let r = self.0.compare_exchange_weak(cur, new, ok, err);
                    match r {
                        Ok(_) => hb::atomic_rmw(self.addr(), ok),
                        Err(_) => hb::atomic_load(self.addr(), err),
                    }
                    r
                }
                #[track_caller]
                pub fn fetch_add(&self, v: $ty, ord: Ordering) -> $ty {
                    point(Point::Preemptive);
                    let old = self.0.fetch_add(v, ord);
                    hb::atomic_rmw(self.addr(), ord);
                    old
                }
                #[track_caller]
                pub fn fetch_sub(&self, v: $ty, ord: Ordering) -> $ty {
                    point(Point::Preemptive);
                    let old = self.0.fetch_sub(v, ord);
                    hb::atomic_rmw(self.addr(), ord);
                    old
                }
                #[track_caller]
                pub fn fetch_max(&self, v: $ty, ord: Ordering) -> $ty {
                    point(Point::Preemptive);
                    let old = self.0.fetch_max(v, ord);
                    hb::atomic_rmw(self.addr(), ord);
                    old
                }
                #[track_caller]
                pub fn fetch_min(&self, v: $ty, ord: Ordering) -> $ty {
                    point(Point::Preemptive);
                    let old = self.0.fetch_min(v, ord);
                    hb::atomic_rmw(self.addr(), ord);
                    old
                }
                #[track_caller]
                pub fn fetch_or(&self, v: $ty, ord: Ordering) -> $ty {
                    point(Point::Preemptive);
                    let old = self.0.fetch_or(v, ord);
                    hb::atomic_rmw(self.addr(), ord);
                    old
                }
                #[track_caller]
                pub fn fetch_and(&self, v: $ty, ord: Ordering) -> $ty {
                    point(Point::Preemptive);
                    let old = self.0.fetch_and(v, ord);
                    hb::atomic_rmw(self.addr(), ord);
                    old
                }
                pub fn get_mut(&mut self) -> &mut $ty {
                    self.0.get_mut()
                }
                pub fn into_inner(self) -> $ty {
                    self.0.into_inner()
                }
            }
        };
    }

    sched_atomic_int!(AtomicU32, AtomicU32, u32);
    sched_atomic_int!(AtomicU64, AtomicU64, u64);
    sched_atomic_int!(AtomicUsize, AtomicUsize, usize);
    sched_atomic_int!(AtomicIsize, AtomicIsize, isize);

    /// Schedule-aware wrapper around `std::sync::atomic::AtomicBool`.
    #[derive(Debug, Default)]
    pub struct AtomicBool(std::sync::atomic::AtomicBool);

    impl AtomicBool {
        pub const fn new(v: bool) -> Self {
            Self(std::sync::atomic::AtomicBool::new(v))
        }
        fn addr(&self) -> usize {
            &self.0 as *const _ as usize
        }
        #[track_caller]
        pub fn load(&self, ord: Ordering) -> bool {
            point(Point::Preemptive);
            let v = self.0.load(ord);
            hb::atomic_load(self.addr(), ord);
            v
        }
        #[track_caller]
        pub fn store(&self, v: bool, ord: Ordering) {
            point(Point::Preemptive);
            self.0.store(v, ord);
            hb::atomic_store(self.addr(), ord);
        }
        #[track_caller]
        pub fn swap(&self, v: bool, ord: Ordering) -> bool {
            point(Point::Preemptive);
            let old = self.0.swap(v, ord);
            hb::atomic_rmw(self.addr(), ord);
            old
        }
        #[track_caller]
        pub fn compare_exchange(
            &self,
            cur: bool,
            new: bool,
            ok: Ordering,
            err: Ordering,
        ) -> Result<bool, bool> {
            point(Point::Preemptive);
            let r = self.0.compare_exchange(cur, new, ok, err);
            match r {
                Ok(_) => hb::atomic_rmw(self.addr(), ok),
                Err(_) => hb::atomic_load(self.addr(), err),
            }
            r
        }
        pub fn get_mut(&mut self) -> &mut bool {
            self.0.get_mut()
        }
    }

    /// Schedule-aware mutex: acquisition spins on `try_lock` with a
    /// *contended* (free) scheduling point between attempts, so a
    /// descheduled lock holder always gets a chance to run — a plain
    /// blocking `lock()` would deadlock the cooperative scheduler.
    pub struct Mutex<T: ?Sized>(parking_lot::Mutex<T>);

    /// Guard for the schedule-aware [`Mutex`]; dropping it reports the
    /// release edge to the happens-before checker.
    pub struct MutexGuard<'a, T: ?Sized> {
        addr: usize,
        guard: parking_lot::MutexGuard<'a, T>,
    }

    impl<T> Mutex<T> {
        pub const fn new(t: T) -> Self {
            Mutex(parking_lot::Mutex::new(t))
        }
        pub fn into_inner(self) -> T {
            self.0.into_inner()
        }
    }

    impl<T: ?Sized> Mutex<T> {
        fn addr(&self) -> usize {
            &self.0 as *const parking_lot::Mutex<T> as *const () as usize
        }
        #[track_caller]
        pub fn lock(&self) -> MutexGuard<'_, T> {
            if !crate::sched::in_schedule() {
                return MutexGuard { addr: self.addr(), guard: self.0.lock() };
            }
            loop {
                point(Point::Preemptive);
                if let Some(g) = self.0.try_lock() {
                    hb::mutex_lock(self.addr());
                    return MutexGuard { addr: self.addr(), guard: g };
                }
                point(Point::Contended);
            }
        }
        #[track_caller]
        pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
            point(Point::Preemptive);
            let g = self.0.try_lock()?;
            hb::mutex_lock(self.addr());
            Some(MutexGuard { addr: self.addr(), guard: g })
        }
        pub fn get_mut(&mut self) -> &mut T {
            self.0.get_mut()
        }
    }

    impl<T: Default> Default for Mutex<T> {
        fn default() -> Self {
            Mutex::new(T::default())
        }
    }

    impl<T: std::fmt::Debug> std::fmt::Debug for Mutex<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_struct("Mutex").finish_non_exhaustive()
        }
    }

    impl<'a, T: ?Sized> std::ops::Deref for MutexGuard<'a, T> {
        type Target = T;
        fn deref(&self) -> &T {
            &self.guard
        }
    }

    impl<'a, T: ?Sized> std::ops::DerefMut for MutexGuard<'a, T> {
        fn deref_mut(&mut self) -> &mut T {
            &mut self.guard
        }
    }

    impl<'a, T: ?Sized> Drop for MutexGuard<'a, T> {
        fn drop(&mut self) {
            // Report before the parking_lot guard actually releases: the
            // scheduler serializes tasks, so no acquirer can slip between.
            hb::mutex_unlock(self.addr);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::scheduled;
    use crate::sched::{self, ExploreConfig};
    use std::sync::atomic::Ordering;
    use std::sync::Arc;

    #[test]
    fn facade_atomics_work_outside_a_schedule() {
        let a = scheduled::AtomicU64::new(1);
        a.fetch_add(2, Ordering::SeqCst);
        assert_eq!(a.load(Ordering::SeqCst), 3);
        assert_eq!(a.compare_exchange(3, 9, Ordering::SeqCst, Ordering::SeqCst), Ok(3));
        let b = scheduled::AtomicBool::new(false);
        assert!(!b.swap(true, Ordering::SeqCst));
        assert!(b.load(Ordering::SeqCst));
    }

    #[test]
    fn scheduled_mutex_cannot_deadlock_the_scheduler() {
        // Two tasks fight over one facade mutex under many schedules; the
        // contended-yield loop must always hand control to the holder.
        let stats = sched::explore(ExploreConfig::new(0xBEEF, 200), || {
            let m = Arc::new(scheduled::Mutex::new(0u64));
            let hs: Vec<_> = (0..2)
                .map(|_| {
                    let m = Arc::clone(&m);
                    sched::spawn(move || {
                        for _ in 0..10 {
                            *m.lock() += 1;
                        }
                    })
                })
                .collect();
            for h in hs {
                h.join();
            }
            assert_eq!(*m.lock(), 20);
        });
        assert_eq!(stats.schedules, 200);
    }

    #[test]
    fn scheduled_atomics_expose_lost_update_in_schedule() {
        // The same canary as in sched::tests, but through the facade types:
        // a load;store RMW on a facade atomic must lose updates under some
        // schedule, proving the wrappers emit usable preemption points.
        let mut found = false;
        for seed in 0..200u64 {
            let r = std::panic::catch_unwind(|| {
                sched::run_one(seed, Some(3), || {
                    let c = Arc::new(scheduled::AtomicU64::new(0));
                    let hs: Vec<_> = (0..2)
                        .map(|_| {
                            let c = Arc::clone(&c);
                            sched::spawn(move || {
                                for _ in 0..4 {
                                    let v = c.load(Ordering::SeqCst);
                                    c.store(v + 1, Ordering::SeqCst);
                                }
                            })
                        })
                        .collect();
                    for h in hs {
                        h.join();
                    }
                    assert_eq!(c.load(Ordering::SeqCst), 8);
                })
            });
            if r.is_err() {
                found = true;
                break;
            }
        }
        assert!(found, "facade atomics produced no interleaving that loses an update");
    }
}
