//! Wing–Gong linearizability checking with P-compositionality.
//!
//! ## Algorithm
//!
//! The checker consumes a *complete* history of operations with real-time
//! intervals (`[invoked, returned]`, from [`crate::history::Recorder`]) and
//! searches for a legal linearization: a total order of the ops that (a)
//! respects real time — if op A returned before op B was invoked, A comes
//! first — and (b) replays correctly against a sequential specification.
//!
//! The search is Wing & Gong's recursion: at each step the *candidates* are
//! the not-yet-linearized ops whose invocation precedes every
//! not-yet-linearized return (the real-time frontier). Each candidate is
//! applied to a clone of the spec; if the spec's answer matches the
//! recorded response, recurse. A memo set of (linearized-bitset, spec
//! state) pairs prunes re-exploration of equivalent prefixes — the
//! Lowe-style optimization that makes WGL practical.
//!
//! ## P-compositionality
//!
//! Linearizability is compositional: a history over independent objects is
//! linearizable iff its per-object projections are. A hash map is a product
//! of per-key registers, so when the spec assigns every op a partition key
//! ([`SeqSpec::partition`]) the history is split and each partition checked
//! alone — turning one exponential search into many small ones. Queues and
//! priority queues have no such decomposition and are checked whole.
//!
//! ## Failure reporting
//!
//! On failure the checker reports the deepest linearizable prefix it
//! reached and the *frontier window* there: the concurrent ops that were
//! all tried and all disagreed with the spec. That window is the minimal
//! region a human needs to stare at.

use crate::history::OpRecord;
use std::collections::HashSet;
use std::fmt;
use std::hash::Hash;

/// A sequential specification: deterministic object state with an `apply`
/// step, plus an optional partition key enabling P-compositionality.
pub trait SeqSpec: Clone + Eq + Hash {
    /// Operation (input side).
    type Op: Clone + fmt::Debug;
    /// Response.
    type Ret: PartialEq + Clone + fmt::Debug;

    /// Apply `op` sequentially, mutating the state and returning the
    /// specified response.
    fn apply(&mut self, op: &Self::Op) -> Self::Ret;

    /// Partition key for P-compositionality. Return `Some(k)` when ops with
    /// different keys touch independent sub-objects (map/set keys); `None`
    /// when the whole object is entangled (queues). A history is split only
    /// if *every* op yields `Some`.
    fn partition(_op: &Self::Op) -> Option<u64> {
        None
    }
}

/// Search statistics from a successful check.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CheckStats {
    /// Operations checked.
    pub ops: usize,
    /// Partitions the history split into (1 = unpartitioned).
    pub partitions: usize,
    /// Sequential spec applications performed across the search.
    pub states_explored: u64,
}

/// A linearizability violation: no legal order exists.
#[derive(Debug, Clone)]
pub struct Violation<O, R> {
    /// Partition key the violation occurred in (`None` = unpartitioned).
    pub partition: Option<u64>,
    /// Ops in the violating partition.
    pub partition_ops: usize,
    /// Length of the deepest linearizable prefix found.
    pub linearized: usize,
    /// The frontier ops at that depth — every one was tried and every one
    /// disagreed with the sequential spec. This is the minimal window to
    /// inspect.
    pub window: Vec<OpRecord<O, R>>,
}

impl<O: fmt::Debug, R: fmt::Debug> fmt::Display for Violation<O, R> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "history is NOT linearizable (partition {:?}): linearized {}/{} ops, \
             then every op in the concurrent window failed:",
            self.partition, self.linearized, self.partition_ops
        )?;
        for r in &self.window {
            writeln!(
                f,
                "  proc {} op {:?} -> {:?} @[{}, {}]",
                r.proc, r.op, r.ret, r.invoked, r.returned
            )?;
        }
        Ok(())
    }
}

/// Why a check did not return a verdict of "linearizable".
#[derive(Debug, Clone)]
pub enum CheckError<O, R> {
    /// Definite violation with the minimal window.
    Violation(Violation<O, R>),
    /// The search exceeded its state budget without a verdict (history too
    /// concurrent for exhaustive replay).
    BudgetExhausted {
        /// States explored before giving up.
        states: u64,
    },
}

impl<O: fmt::Debug, R: fmt::Debug> fmt::Display for CheckError<O, R> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckError::Violation(v) => v.fmt(f),
            CheckError::BudgetExhausted { states } => {
                write!(f, "linearizability search exhausted its budget after {states} states")
            }
        }
    }
}

/// Default bound on sequential applications per partition search.
const DEFAULT_BUDGET: u64 = 50_000_000;

/// Check `history` against the sequential spec starting from `initial`.
///
/// Returns `Ok(stats)` when a legal linearization exists for every
/// partition, `Err(CheckError::Violation)` with the minimal window when one
/// does not.
pub fn check<S: SeqSpec>(
    initial: &S,
    history: &[OpRecord<S::Op, S::Ret>],
) -> Result<CheckStats, CheckError<S::Op, S::Ret>> {
    check_with_budget(initial, history, DEFAULT_BUDGET)
}

/// [`check`] with an explicit state budget per partition.
pub fn check_with_budget<S: SeqSpec>(
    initial: &S,
    history: &[OpRecord<S::Op, S::Ret>],
    budget: u64,
) -> Result<CheckStats, CheckError<S::Op, S::Ret>> {
    // Partition iff every op is partitionable (P-compositionality).
    let keys: Option<Vec<u64>> = history.iter().map(|r| S::partition(&r.op)).collect();
    let groups: Vec<(Option<u64>, Vec<&OpRecord<S::Op, S::Ret>>)> = match keys {
        Some(keys) => {
            let mut by_key: std::collections::BTreeMap<u64, Vec<&OpRecord<S::Op, S::Ret>>> =
                Default::default();
            for (r, k) in history.iter().zip(keys) {
                by_key.entry(k).or_default().push(r);
            }
            by_key.into_iter().map(|(k, v)| (Some(k), v)).collect()
        }
        None => vec![(None, history.iter().collect())],
    };

    let mut stats =
        CheckStats { ops: history.len(), partitions: groups.len().max(1), states_explored: 0 };
    for (key, mut group) in groups {
        group.sort_by_key(|r| r.invoked);
        let mut search = Search {
            ops: group,
            initial: initial.clone(),
            memo: HashSet::new(),
            states: 0,
            budget,
            best_depth: 0,
            best_window: Vec::new(),
        };
        match search.run() {
            Outcome::Linearizable => stats.states_explored += search.states,
            Outcome::Budget => {
                return Err(CheckError::BudgetExhausted { states: search.states })
            }
            Outcome::Violation => {
                let window =
                    search.best_window.iter().map(|&i| search.ops[i].clone()).collect();
                return Err(CheckError::Violation(Violation {
                    partition: key,
                    partition_ops: search.ops.len(),
                    linearized: search.best_depth,
                    window,
                }));
            }
        }
    }
    Ok(stats)
}

enum Outcome {
    Linearizable,
    Violation,
    Budget,
}

struct Search<'a, S: SeqSpec> {
    ops: Vec<&'a OpRecord<S::Op, S::Ret>>,
    initial: S,
    memo: HashSet<(Vec<u64>, S)>,
    states: u64,
    budget: u64,
    best_depth: usize,
    best_window: Vec<usize>,
}

impl<'a, S: SeqSpec> Search<'a, S> {
    fn run(&mut self) -> Outcome {
        let n = self.ops.len();
        if n == 0 {
            return Outcome::Linearizable;
        }
        let mut done = vec![false; n];
        let mut bits = vec![0u64; n.div_ceil(64)];
        let spec = self.initial.clone();
        match self.rec(spec, &mut done, &mut bits, 0) {
            Some(true) => Outcome::Linearizable,
            Some(false) => Outcome::Violation,
            None => Outcome::Budget,
        }
    }

    /// Returns Some(linearizable?) or None when the budget ran out.
    fn rec(&mut self, spec: S, done: &mut [bool], bits: &mut [u64], depth: usize) -> Option<bool> {
        let n = self.ops.len();
        if depth == n {
            return Some(true);
        }
        // Real-time frontier: ops invoked before every outstanding return.
        let min_ret = self
            .ops
            .iter()
            .enumerate()
            .filter(|(i, _)| !done[*i])
            .map(|(_, r)| r.returned)
            .min()
            .expect("depth < n implies an undone op");
        let candidates: Vec<usize> = (0..n)
            .filter(|&i| !done[i] && self.ops[i].invoked < min_ret)
            .collect();
        debug_assert!(!candidates.is_empty(), "the earliest-returning undone op is a candidate");
        if depth >= self.best_depth {
            self.best_depth = depth;
            self.best_window = candidates.clone();
        }
        for &i in &candidates {
            self.states += 1;
            if self.states > self.budget {
                return None;
            }
            let mut next = spec.clone();
            let got = next.apply(&self.ops[i].op);
            if got != self.ops[i].ret {
                continue;
            }
            done[i] = true;
            bits[i / 64] |= 1u64 << (i % 64);
            let fresh = self.memo.insert((bits.to_vec(), next.clone()));
            let verdict = if fresh { self.rec(next, done, bits, depth + 1) } else { Some(false) };
            done[i] = false;
            bits[i / 64] &= !(1u64 << (i % 64));
            match verdict {
                Some(true) => return Some(true),
                Some(false) => {}
                None => return None,
            }
        }
        Some(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimal register spec for hand-written histories.
    #[derive(Clone, PartialEq, Eq, Hash, Default)]
    struct RegSpec(std::collections::BTreeMap<u64, u64>);

    #[derive(Clone, Debug, PartialEq, Eq)]
    enum RegOp {
        Put(u64, u64),
        Get(u64),
    }

    impl SeqSpec for RegSpec {
        type Op = RegOp;
        type Ret = Option<u64>;
        fn apply(&mut self, op: &RegOp) -> Option<u64> {
            match *op {
                RegOp::Put(k, v) => self.0.insert(k, v),
                RegOp::Get(k) => self.0.get(&k).copied(),
            }
        }
        fn partition(op: &RegOp) -> Option<u64> {
            Some(match *op {
                RegOp::Put(k, _) | RegOp::Get(k) => k,
            })
        }
    }

    fn rec(
        proc: u64,
        op: RegOp,
        ret: Option<u64>,
        iv: u64,
        rt: u64,
    ) -> OpRecord<RegOp, Option<u64>> {
        OpRecord { proc, op, ret, invoked: iv, returned: rt }
    }

    #[test]
    fn concurrent_overlapping_puts_and_get_linearizable() {
        // put(1) and put(2) overlap; their returns (previous values) only
        // fit the order put(2), put(1) — which the later get confirms.
        let h = vec![
            rec(0, RegOp::Put(7, 1), Some(2), 0, 5),
            rec(1, RegOp::Put(7, 2), None, 1, 4),
            rec(2, RegOp::Get(7), Some(1), 6, 7),
        ];
        let stats = check(&RegSpec::default(), &h).expect("linearizable");
        assert_eq!(stats.ops, 3);
    }

    #[test]
    fn stale_read_after_sequential_puts_is_rejected() {
        // put(1) completes, THEN put(2) completes, THEN get sees 1 — stale.
        let h = vec![
            rec(0, RegOp::Put(7, 1), None, 0, 1),
            rec(0, RegOp::Put(7, 2), Some(1), 2, 3),
            rec(1, RegOp::Get(7), Some(1), 4, 5),
        ];
        let err = check(&RegSpec::default(), &h).unwrap_err();
        match err {
            CheckError::Violation(v) => {
                assert_eq!(v.partition, Some(7));
                assert_eq!(v.linearized, 2, "both puts linearize, the get cannot");
                assert_eq!(v.window.len(), 1, "window is exactly the stale get");
            }
            other => panic!("expected violation, got {other}"),
        }
    }

    #[test]
    fn partitioning_isolates_the_bad_key() {
        // Key 1 is fine; key 2 carries a stale read.
        let h = vec![
            rec(0, RegOp::Put(1, 10), None, 0, 1),
            rec(0, RegOp::Put(2, 20), None, 2, 3),
            rec(0, RegOp::Put(2, 21), Some(20), 4, 5),
            rec(1, RegOp::Get(1), Some(10), 6, 7),
            rec(1, RegOp::Get(2), Some(20), 8, 9), // stale
        ];
        match check(&RegSpec::default(), &h).unwrap_err() {
            CheckError::Violation(v) => assert_eq!(v.partition, Some(2)),
            other => panic!("expected violation, got {other}"),
        }
    }

    #[test]
    fn read_concurrent_with_put_may_see_old_or_new() {
        for seen in [None, Some(9u64)] {
            let h = vec![
                rec(0, RegOp::Put(3, 9), None, 0, 4),
                rec(1, RegOp::Get(3), seen, 1, 2),
            ];
            check(&RegSpec::default(), &h).expect("both old and new are linearizable");
        }
    }

    #[test]
    fn memoization_handles_wide_concurrency() {
        // 12 concurrent puts of the same value to one key, then a get: an
        // unmemoized search walks 12! prefixes; memoized this is instant.
        let mut h: Vec<OpRecord<RegOp, Option<u64>>> = (0..12)
            .map(|i| {
                OpRecord {
                    proc: i,
                    op: RegOp::Put(1, 5),
                    // All puts overlap; exactly one (the one linearized
                    // first) may report "no previous value".
                    ret: if i == 0 { None } else { Some(5) },
                    invoked: i,
                    returned: 100 + i,
                }
            })
            .collect();
        h.push(rec(99, RegOp::Get(1), Some(5), 200, 201));
        let stats = check(&RegSpec::default(), &h).expect("linearizable");
        assert!(
            stats.states_explored < 100_000,
            "memoization failed: {} states",
            stats.states_explored
        );
    }

    #[test]
    fn budget_exhaustion_is_reported_not_hung() {
        let h: Vec<OpRecord<RegOp, Option<u64>>> = (0..10)
            .map(|i| OpRecord {
                proc: i,
                op: RegOp::Put(1, i),
                ret: None, // mutually inconsistent: at most one can be first
                invoked: i,
                returned: 100 + i,
            })
            .collect();
        match check_with_budget(&RegSpec::default(), &h, 3) {
            Err(CheckError::BudgetExhausted { states }) => assert!(states > 3),
            other => panic!("expected budget exhaustion, got {other:?}"),
        }
    }

    #[test]
    fn empty_history_is_linearizable() {
        let stats = check(&RegSpec::default(), &[]).unwrap();
        assert_eq!(stats.ops, 0);
    }
}
