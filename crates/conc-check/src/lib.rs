//! # conc-check — concurrency correctness toolkit for the HCL reproduction
//!
//! Three layers, usable independently:
//!
//! 1. **[`lin`] + [`history`] + [`spec`]** — a Wing–Gong linearizability
//!    checker with P-compositionality. Record a concurrent history of
//!    container operations with [`history::Recorder`], then replay it
//!    against a sequential spec ([`spec::DsSpec`] for the byte-level HCL
//!    containers, or any [`lin::SeqSpec`]) with [`lin::check`]. Violations
//!    report the minimal concurrent window that cannot be linearized.
//!
//! 2. **[`sync`]** — a cfg-gated atomics/lock facade. Plain re-exports of
//!    `std::sync::atomic` and `parking_lot` by default; under
//!    `RUSTFLAGS="--cfg conc_check"` the same names become wrappers that
//!    yield to the deterministic scheduler, letting tests drive the real
//!    container code through seeded interleavings.
//!
//! 3. **[`sched`]** — the scheduler itself: shuttle-style random scheduling
//!    with preemption bounding. [`sched::explore`] runs a closure under N
//!    seeded schedules and reports how many distinct interleavings were
//!    covered; a failing seed replays the exact schedule via
//!    [`sched::run_one`].
//!
//! 4. **[`hb`]** — a vector-clock happens-before checker layered on the
//!    scheduler: the facade reports every atomic access *with its
//!    `Ordering`*, mutex acquire/release, and spawn/join, and any value
//!    consumed without a genuine synchronizes-with edge fails the schedule
//!    as an ordering race (replayable via `HCL_SCHED_SEED`). [`RaceCell`]
//!    extends the audit to the containers' unsafe non-atomic shared slots.
//!
//! The static fifth leg of the toolkit — the `SAFETY:`/`ORDERING:`/epoch
//! lint — lives in the workspace `xtask` binary, not here; the `ORDERING:`
//! cross-check there and [`hb`] validate the same annotations from both
//! sides.

pub mod hb;
pub mod history;
pub mod lin;
pub mod sched;
pub mod spec;
pub mod sync;

pub use hb::RaceCell;
pub use history::{OpRecord, Recorder};
pub use lin::{check, check_with_budget, CheckError, CheckStats, SeqSpec, Violation};
pub use spec::{check_lease, lease_relax, Bytes, DsOp, DsRet, DsSpec};
