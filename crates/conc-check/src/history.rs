//! Concurrent operation-history recording.
//!
//! A [`Recorder`] captures *complete* histories: each operation is bracketed
//! by [`Recorder::invoke`] (before the data-structure call) and
//! [`Recorder::record_return`] (after it), and both edges draw a timestamp
//! from one shared atomic clock. Because the clock is a single
//! `fetch_add(1)`, timestamps are unique and totally ordered, and an op's
//! invoke timestamp always precedes its return timestamp — exactly the
//! real-time intervals the Wing–Gong checker in [`crate::lin`] consumes.
//!
//! The recorder only supports complete histories (every invoked op must
//! return before [`Recorder::take`]); crashed/pending ops are out of scope —
//! the HCL test workloads join all workers before checking.

use parking_lot::Mutex;
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

/// One completed operation: `op` returned `ret`, occupying the real-time
/// interval `[invoked, returned]` on logical process `proc`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpRecord<O, R> {
    /// Diagnostic process id (per recording thread).
    pub proc: u64,
    /// The operation (input side).
    pub op: O,
    /// The observed response.
    pub ret: R,
    /// Logical invoke timestamp (unique, shared clock).
    pub invoked: u64,
    /// Logical return timestamp (unique, `> invoked`).
    pub returned: u64,
}

/// In-flight operation token returned by [`Recorder::invoke`]; feed it back
/// to [`Recorder::record_return`] once the operation completed.
#[must_use = "an invoked operation must be completed with record_return"]
pub struct Token<O> {
    op: O,
    proc: u64,
    invoked: u64,
}

impl<O> Token<O> {
    /// The logical invoke timestamp this token was stamped with. Lease
    /// caches persist it as the grant stamp of a cached value: a later
    /// locally-served read records that stamp as the left edge of its
    /// admissible linearization window (see `spec::lease_relax`).
    pub fn invoked_at(&self) -> u64 {
        self.invoked
    }
}

static NEXT_PROC: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static PROC: Cell<u64> = const { Cell::new(u64::MAX) };
}

fn proc_id() -> u64 {
    PROC.with(|c| {
        if c.get() == u64::MAX {
            c.set(NEXT_PROC.fetch_add(1, Ordering::Relaxed));
        }
        c.get()
    })
}

/// Thread-safe recorder of a concurrent operation history.
#[derive(Debug, Default)]
pub struct Recorder<O, R> {
    clock: AtomicU64,
    log: Mutex<Vec<OpRecord<O, R>>>,
}

impl<O, R> Recorder<O, R> {
    /// Fresh recorder with an empty history and clock at zero.
    pub fn new() -> Self {
        Recorder { clock: AtomicU64::new(0), log: Mutex::new(Vec::new()) }
    }

    /// Stamp the invocation of `op`. Call immediately before the real
    /// data-structure operation.
    pub fn invoke(&self, op: O) -> Token<O> {
        Token { op, proc: proc_id(), invoked: self.clock.fetch_add(1, Ordering::SeqCst) }
    }

    /// Stamp the return of a previously invoked op with its response.
    pub fn record_return(&self, token: Token<O>, ret: R) {
        let returned = self.clock.fetch_add(1, Ordering::SeqCst);
        let Token { op, proc, invoked } = token;
        self.log.lock().push(OpRecord { proc, op, ret, invoked, returned });
    }

    /// Number of completed operations recorded so far.
    pub fn len(&self) -> usize {
        self.log.lock().len()
    }

    /// True when no operation has completed yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drain the history, sorted by invoke timestamp.
    pub fn take(&self) -> Vec<OpRecord<O, R>> {
        let mut h = std::mem::take(&mut *self.log.lock());
        h.sort_by_key(|r| r.invoked);
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn intervals_are_well_formed_and_unique() {
        let rec: Arc<Recorder<u32, u32>> = Arc::new(Recorder::new());
        let hs: Vec<_> = (0..4)
            .map(|t| {
                let rec = Arc::clone(&rec);
                std::thread::spawn(move || {
                    for i in 0..50 {
                        let tok = rec.invoke(t * 100 + i);
                        rec.record_return(tok, i);
                    }
                })
            })
            .collect();
        for h in hs {
            h.join().unwrap();
        }
        let hist = rec.take();
        assert_eq!(hist.len(), 200);
        let mut stamps: Vec<u64> = Vec::new();
        for r in &hist {
            assert!(r.invoked < r.returned, "invoke must precede return");
            stamps.push(r.invoked);
            stamps.push(r.returned);
        }
        stamps.sort_unstable();
        stamps.dedup();
        assert_eq!(stamps.len(), 400, "timestamps must be unique");
        assert!(hist.windows(2).all(|w| w[0].invoked < w[1].invoked), "take() sorts by invoke");
    }

    #[test]
    fn take_drains() {
        let rec: Recorder<u8, u8> = Recorder::new();
        let t = rec.invoke(1);
        rec.record_return(t, 2);
        assert_eq!(rec.len(), 1);
        assert_eq!(rec.take().len(), 1);
        assert!(rec.is_empty());
    }
}
