//! Negative-control race fixtures driven through the *public* facade and
//! scheduler API — what `just check-races` runs.
//!
//! The racy fixture is the classic message-passing bug: a writer publishes
//! data with a `Relaxed` store and the reader pays for an `Acquire` load the
//! writer never matched. The happens-before checker must catch it within
//! the default schedule budget and report a seed that replays it. The
//! mutex-protected and Release/Acquire twins are the positive controls: the
//! same shape with real synchronization must stay race-free.
#![cfg(conc_check)]

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

use conc_check::sched::{self, ExploreConfig};
use conc_check::sync::{AtomicUsize, Mutex, Ordering};

/// Schedule budget used by the non-soak tests; matches `just check-races`.
const DEFAULT_BUDGET: u64 = 64;

/// BUG (on purpose): the flag is published with `Relaxed`, so the reader's
/// `Acquire` load has no release edge to synchronize with.
fn relaxed_publish_pair() {
    let data = Arc::new(AtomicUsize::new(0));
    let ready = Arc::new(AtomicUsize::new(0));
    let (d, r) = (Arc::clone(&data), Arc::clone(&ready));
    let t = sched::spawn(move || {
        d.store(42, Ordering::Relaxed);
        r.store(1, Ordering::Relaxed);
    });
    if ready.load(Ordering::Acquire) == 1 {
        assert_eq!(data.load(Ordering::Acquire), 42);
    }
    t.join();
}

/// Twin of the racy pair with the publication done under a mutex.
fn mutex_protected_twin() {
    let slot = Arc::new(Mutex::new(None::<usize>));
    let s = Arc::clone(&slot);
    let t = sched::spawn(move || {
        *s.lock() = Some(42);
    });
    if let Some(v) = *slot.lock() {
        assert_eq!(v, 42);
    }
    t.join();
}

/// Twin of the racy pair with a proper Release publish.
fn release_acquire_twin() {
    let data = Arc::new(AtomicUsize::new(0));
    let ready = Arc::new(AtomicUsize::new(0));
    let (d, r) = (Arc::clone(&data), Arc::clone(&ready));
    let t = sched::spawn(move || {
        d.store(42, Ordering::Relaxed);
        r.store(1, Ordering::Release);
    });
    if ready.load(Ordering::Acquire) == 1 {
        assert_eq!(data.load(Ordering::Relaxed), 42);
    }
    t.join();
}

/// Extract the panic payload as a string (race reports panic with `String`).
fn race_message(err: Box<dyn std::any::Any + Send>) -> String {
    match err.downcast::<String>() {
        Ok(s) => *s,
        Err(e) => e.downcast::<&str>().map(|s| (*s).to_string()).unwrap_or_default(),
    }
}

fn expect_race<F: Fn() + std::panic::RefUnwindSafe>(base_seed: u64, budget: u64, f: F) -> String {
    let err = catch_unwind(AssertUnwindSafe(|| {
        sched::explore(ExploreConfig::new(base_seed, budget), f);
    }))
    .expect_err("fixture must race within the schedule budget");
    let msg = race_message(err);
    assert!(msg.contains("HAPPENS-BEFORE RACE"), "unexpected panic: {msg}");
    msg
}

#[test]
fn racy_relaxed_publish_is_detected_within_the_default_budget() {
    let msg = expect_race(0xBAD_ACE5, DEFAULT_BUDGET, relaxed_publish_pair);
    // Both access sites point into this file, the orderings are named, and
    // the report carries a replayable seed.
    assert!(msg.matches("races.rs").count() >= 2, "both sites should be here:\n{msg}");
    assert!(msg.contains("Relaxed"), "writer ordering missing:\n{msg}");
    assert!(msg.contains("HCL_SCHED_SEED=0x"), "replay hint missing:\n{msg}");
}

#[test]
fn reported_seed_replays_the_same_race() {
    let msg = expect_race(0xBAD_ACE5, DEFAULT_BUDGET, relaxed_publish_pair);
    let at = msg.find("HCL_SCHED_SEED=").expect("replay hint") + "HCL_SCHED_SEED=".len();
    let token: String =
        msg[at..].chars().take_while(|c| c.is_ascii_alphanumeric()).collect();
    let seed = sched::parse_seed(&token).expect("seed token parses");
    let again = catch_unwind(AssertUnwindSafe(|| {
        sched::run_one(seed, None, relaxed_publish_pair);
    }))
    .expect_err("replaying the reported seed must reproduce the race");
    assert!(race_message(again).contains("HAPPENS-BEFORE RACE"));
}

#[test]
fn mutex_protected_twin_is_race_free() {
    let stats = sched::explore(ExploreConfig::new(0x600D_0001, 150), mutex_protected_twin);
    assert_eq!(stats.schedules, 150);
}

#[test]
fn release_acquire_twin_is_race_free() {
    let stats = sched::explore(ExploreConfig::new(0x600D_0002, 150), release_acquire_twin);
    assert_eq!(stats.schedules, 150);
}

/// Soak variant: `HCL_RACE_SCHEDULES` scales the budget (default 2000).
/// Run via `just check-races-soak`.
#[test]
#[ignore = "soak — run via `just check-races-soak`"]
fn soak_fixtures_under_many_schedules() {
    let budget: u64 = std::env::var("HCL_RACE_SCHEDULES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2_000);
    let clean = sched::explore(ExploreConfig::new(0x50A_C1EA, budget), mutex_protected_twin);
    assert_eq!(clean.schedules, budget);
    let ra = sched::explore(ExploreConfig::new(0x50A_C1EB, budget), release_acquire_twin);
    assert_eq!(ra.schedules, budget);
    let msg = expect_race(0x50A_BAD0, budget, relaxed_publish_pair);
    assert!(msg.contains("HCL_SCHED_SEED=0x"));
}
