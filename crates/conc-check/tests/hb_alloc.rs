//! Allocation guard for the happens-before checker: after warm-up (clock
//! growth, per-location map entries, the preallocated event ring), steady-
//! state event tracking must allocate **nothing** — the checker may not
//! distort the interleavings it observes with allocator traffic, and soak
//! runs must not accumulate memory per event.
//!
//! Kept as its own integration-test binary so the counting global allocator
//! sees no traffic from unrelated tests.
#![cfg(conc_check)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering as StdOrdering};

use conc_check::sched;
use conc_check::sync::{AtomicU64, Mutex, Ordering};
use conc_check::RaceCell;

/// Allocations observed while [`GATE`] is up.
static ALLOCS: AtomicUsize = AtomicUsize::new(0);
static GATE: AtomicBool = AtomicBool::new(false);

struct CountingAlloc;

// SAFETY: defers every allocation to `System` unchanged; the counter is a
// side effect only.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if GATE.load(StdOrdering::Relaxed) {
            ALLOCS.fetch_add(1, StdOrdering::Relaxed);
        }
        // SAFETY: same layout contract as our caller's.
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: `ptr` was allocated by `System` in `alloc` above.
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static A: CountingAlloc = CountingAlloc;

#[test]
fn hb_tracking_is_alloc_free_per_event_after_warmup() {
    sched::run_one(0xA110_C8, None, || {
        let a = AtomicU64::new(0);
        let m = Mutex::new(0u64);
        let cell = RaceCell::new(0u64);
        cell.mark_write();
        let spin = |rounds: usize| {
            for _ in 0..rounds {
                a.store(1, Ordering::Release);
                let _ = a.load(Ordering::Acquire);
                let _ = a.fetch_add(1, Ordering::AcqRel);
                let _ = a.compare_exchange(0, 1, Ordering::AcqRel, Ordering::Acquire);
                *m.lock() += 1;
                // SAFETY: single task inside the schedule — exclusive.
                unsafe { cell.with_mut(|v| *v += 1) };
                // SAFETY: as above.
                let _ = unsafe { cell.with(|v| *v) };
            }
        };
        // Warm-up: populate the per-location maps, grow the clocks, and
        // cycle the event ring past its preallocated capacity.
        spin(64);
        GATE.store(true, StdOrdering::SeqCst);
        spin(256);
        GATE.store(false, StdOrdering::SeqCst);
    });
    assert_eq!(
        ALLOCS.load(StdOrdering::SeqCst),
        0,
        "HB tracking must not allocate per event after warm-up"
    );
}
