//! Default-vs-`conc_check` facade parity: the same workload written against
//! `conc_check::sync` must build and produce identical results in both
//! configurations, and the default build must stay a zero-cost re-export.
//!
//! This file compiles under both cfgs (no crate-level `#![cfg]`): `just
//! check-races` runs it with `--cfg conc_check`, plain `cargo test` runs it
//! against the std/parking_lot re-exports.

use std::sync::Arc;

use conc_check::sync::{thread, AtomicUsize, Mutex, Ordering};

/// Run `f` — under the deterministic scheduler when the facade is the
/// scheduled one, directly otherwise. `run_one` places the closure on the
/// root task, so no `Send`/`'static` bounds are needed.
#[cfg(conc_check)]
fn drive<F: FnOnce()>(f: F) {
    conc_check::sched::run_one(0xFA11_ADE, None, f);
}
#[cfg(not(conc_check))]
fn drive<F: FnOnce()>(f: F) {
    f();
}

/// The two `JoinHandle` flavors differ in API: the scheduler's returns `T`,
/// std's returns `Result<T, ..>`.
#[cfg(conc_check)]
fn join<T>(h: thread::JoinHandle<T>) -> T {
    h.join()
}
#[cfg(not(conc_check))]
fn join<T>(h: thread::JoinHandle<T>) -> T {
    h.join().expect("workload thread panicked")
}

/// Three threads hammer a shared counter and a mutex-protected accumulator.
/// The results are interleaving-independent, so both builds must agree.
fn workload() -> (usize, u64) {
    let counter = Arc::new(AtomicUsize::new(0));
    let acc = Arc::new(Mutex::new(0u64));
    let handles: Vec<_> = (0..3u64)
        .map(|i| {
            let c = Arc::clone(&counter);
            let a = Arc::clone(&acc);
            thread::spawn(move || {
                for k in 0..50u64 {
                    c.fetch_add(1, Ordering::AcqRel);
                    *a.lock() += k + i;
                }
            })
        })
        .collect();
    for h in handles {
        join(h);
    }
    let total = *acc.lock();
    (counter.load(Ordering::Acquire), total)
}

#[test]
fn workload_result_is_identical_in_both_builds() {
    let mut out = (0usize, 0u64);
    drive(|| out = workload());
    assert_eq!(out.0, 150);
    // sum over i in 0..3 of sum over k in 0..50 of (k + i)
    assert_eq!(out.1, 3 * 1225 + 50 * 3);
}

#[test]
fn facade_atomics_are_layout_compatible() {
    // The scheduled wrappers are newtypes over the std atomics: no size or
    // alignment penalty in either build.
    assert_eq!(std::mem::size_of::<AtomicUsize>(), std::mem::size_of::<usize>());
    assert_eq!(std::mem::align_of::<AtomicUsize>(), std::mem::align_of::<usize>());
}

#[cfg(not(conc_check))]
#[test]
fn default_build_reexports_std_and_parking_lot() {
    use std::any::type_name;
    assert_eq!(
        type_name::<AtomicUsize>(),
        type_name::<std::sync::atomic::AtomicUsize>(),
        "default-build AtomicUsize must be the std type itself"
    );
    assert_eq!(
        type_name::<Mutex<u8>>(),
        type_name::<parking_lot::Mutex<u8>>(),
        "default-build Mutex must be the parking_lot type itself"
    );
}

#[cfg(conc_check)]
#[test]
fn conc_build_uses_the_scheduled_wrappers() {
    use std::any::type_name;
    assert!(
        type_name::<AtomicUsize>().contains("conc_check"),
        "conc_check build must route atomics through the facade wrappers, got {}",
        type_name::<AtomicUsize>()
    );
}
