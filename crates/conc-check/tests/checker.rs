//! Integration tests for the linearizability checker: property tests that
//! sequential histories always pass, and an end-to-end recorder round trip
//! where real threads drive a lock-protected spec (atomic ops ⇒ always
//! linearizable).

use conc_check::{check, DsOp, DsRet, DsSpec, OpRecord, Recorder, SeqSpec};
use parking_lot::Mutex;
use proptest::prelude::*;
use std::sync::Arc;

/// Decode a (op-selector, key, value) triple into a map op.
fn map_op(sel: u8, k: u64, v: u64) -> DsOp {
    let key = k.to_be_bytes().to_vec();
    match sel % 4 {
        0 => DsOp::MapPut { key, value: v.to_be_bytes().to_vec() },
        1 => DsOp::MapGet { key },
        2 => DsOp::MapErase { key },
        _ => DsOp::MapContains { key },
    }
}

/// Run `ops` sequentially against `spec`, producing a (trivially
/// linearizable) history whose responses are the spec's own answers.
fn sequential_history(mut spec: DsSpec, ops: Vec<DsOp>) -> Vec<OpRecord<DsOp, DsRet>> {
    ops.into_iter()
        .enumerate()
        .map(|(i, op)| {
            let ret = spec.apply(&op);
            OpRecord { proc: 0, op, ret, invoked: 2 * i as u64, returned: 2 * i as u64 + 1 }
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any sequential map history is linearizable (and partitions by key).
    #[test]
    fn sequential_map_histories_always_pass(
        ops in proptest::collection::vec((0u8..4, 0u64..8, any::<u64>()), 0..200)
    ) {
        let ops: Vec<DsOp> = ops.into_iter().map(|(s, k, v)| map_op(s, k, v)).collect();
        let h = sequential_history(DsSpec::map(), ops);
        let stats = check(&DsSpec::map(), &h).expect("sequential history must linearize");
        prop_assert!(stats.partitions >= 1);
    }

    /// Any sequential queue history is linearizable (unpartitioned).
    #[test]
    fn sequential_queue_histories_always_pass(
        ops in proptest::collection::vec((0u8..2, any::<u64>()), 0..200)
    ) {
        let ops: Vec<DsOp> = ops
            .into_iter()
            .map(|(s, v)| if s == 0 {
                DsOp::QueuePush { value: v.to_be_bytes().to_vec() }
            } else {
                DsOp::QueuePop
            })
            .collect();
        let h = sequential_history(DsSpec::queue(), ops);
        let stats = check(&DsSpec::queue(), &h).expect("sequential history must linearize");
        prop_assert_eq!(stats.partitions, 1);
    }

    /// Any sequential priority-queue history is linearizable.
    #[test]
    fn sequential_pq_histories_always_pass(
        ops in proptest::collection::vec((0u8..3, any::<u32>()), 0..150)
    ) {
        let ops: Vec<DsOp> = ops
            .into_iter()
            .map(|(s, v)| if s < 2 {
                DsOp::PqPush { value: v.to_be_bytes().to_vec() }
            } else {
                DsOp::PqPop
            })
            .collect();
        let h = sequential_history(DsSpec::pq(), ops);
        check(&DsSpec::pq(), &h).expect("sequential history must linearize");
    }
}

/// Threads hammer a lock-protected spec through a Recorder: every op is
/// atomic between its invoke and return stamps, so the recorded history
/// must always check out. This validates recorder + checker end to end on
/// genuinely concurrent (interleaved-interval) histories.
#[test]
fn concurrent_atomic_ops_always_linearizable() {
    let rec: Arc<Recorder<DsOp, DsRet>> = Arc::new(Recorder::new());
    let obj = Arc::new(Mutex::new(DsSpec::map()));
    let hs: Vec<_> = (0..4)
        .map(|t| {
            let rec = Arc::clone(&rec);
            let obj = Arc::clone(&obj);
            std::thread::spawn(move || {
                // Deterministic per-thread op stream over 4 hot keys.
                let mut x = 0x9e3779b97f4a7c15u64.wrapping_mul(t + 1);
                for _ in 0..200 {
                    x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                    let op = map_op((x >> 8) as u8, (x >> 16) % 4, x >> 32);
                    let tok = rec.invoke(op.clone());
                    let ret = obj.lock().apply(&op);
                    rec.record_return(tok, ret);
                }
            })
        })
        .collect();
    for h in hs {
        h.join().unwrap();
    }
    let hist = rec.take();
    assert_eq!(hist.len(), 800);
    let stats = check(&DsSpec::map(), &hist).expect("atomic ops are always linearizable");
    assert_eq!(stats.partitions, 4);
}
