//! Stress/interleaving tests of both fabric providers: many endpoints,
//! mixed two-sided and one-sided traffic, full-mesh messaging.

use std::sync::Arc;
use std::time::Duration;

use bytes::Bytes;
use hcl_fabric::memory::MemoryFabric;
use hcl_fabric::tcp::TcpFabric;
use hcl_fabric::{EpId, Fabric, RegionKey};
use hcl_mem::Segment;

fn full_mesh(fabric: Arc<dyn Fabric>, nodes: u32, ranks_per_node: u32) {
    let eps: Vec<EpId> = (0..nodes)
        .flat_map(|n| {
            (0..ranks_per_node).map(move |r| EpId { node: n, rank: n * ranks_per_node + r })
        })
        .collect();
    for ep in &eps {
        fabric.register_endpoint(*ep).unwrap();
    }
    // One region per endpoint.
    for ep in &eps {
        fabric
            .register_region(RegionKey { ep: *ep, region: 1 }, Segment::new(4096))
            .unwrap();
    }
    let msgs_per_pair = 20u64;
    std::thread::scope(|s| {
        // Senders: every endpoint sends to every other.
        for &from in &eps {
            let fabric = Arc::clone(&fabric);
            let eps = eps.clone();
            s.spawn(move || {
                for &to in &eps {
                    if to == from {
                        continue;
                    }
                    for i in 0..msgs_per_pair {
                        let payload =
                            format!("{}->{} #{i}", from.rank, to.rank).into_bytes();
                        fabric.send(from, to, Bytes::from(payload)).unwrap();
                        // Interleave one-sided traffic on the target region.
                        fabric
                            .fadd64(from, RegionKey { ep: to, region: 1 }, 0, 1)
                            .unwrap();
                    }
                }
            });
        }
        // Receivers: drain expected message counts.
        for &me in &eps {
            let fabric = Arc::clone(&fabric);
            let expect = (eps.len() as u64 - 1) * msgs_per_pair;
            s.spawn(move || {
                let mut got = 0u64;
                while got < expect {
                    match fabric.recv(me, Some(Duration::from_secs(20))).unwrap() {
                        Some((src, payload)) => {
                            let text = String::from_utf8(payload.to_vec()).unwrap();
                            assert!(
                                text.starts_with(&format!("{}->", src.rank)),
                                "message source mismatch: {text} from {src}"
                            );
                            got += 1;
                        }
                        None => panic!("timed out at {got}/{expect} messages"),
                    }
                }
            });
        }
    });
    // Every endpoint's counter saw exactly (eps-1) * msgs fadds.
    for &ep in &eps {
        let v = fabric
            .read_u64(eps[0], RegionKey { ep, region: 1 }, 0)
            .unwrap();
        assert_eq!(v, (eps.len() as u64 - 1) * msgs_per_pair);
    }
}

#[test]
fn memory_fabric_full_mesh_stress() {
    full_mesh(Arc::new(MemoryFabric::new()), 3, 2);
}

#[test]
fn tcp_fabric_full_mesh_stress() {
    full_mesh(Arc::new(TcpFabric::new()), 2, 2);
}

#[test]
fn interleaved_writes_to_disjoint_offsets_are_exact() {
    let fabric: Arc<dyn Fabric> = Arc::new(MemoryFabric::new());
    let owner = EpId::new(0, 0);
    let key = RegionKey { ep: owner, region: 0 };
    fabric.register_region(key, Segment::new(8 * 64)).unwrap();
    std::thread::scope(|s| {
        for w in 0..8u32 {
            let fabric = Arc::clone(&fabric);
            s.spawn(move || {
                let me = EpId::new(1, 10 + w);
                let block = vec![w as u8 + 1; 64];
                for _ in 0..100 {
                    fabric.write(me, key, w as usize * 64, &block).unwrap();
                }
            });
        }
    });
    for w in 0..8usize {
        let got = fabric.read(EpId::new(0, 0), key, w * 64, 64).unwrap();
        assert!(got.iter().all(|&b| b == w as u8 + 1), "writer {w} corrupted");
    }
}

#[test]
fn tcp_fabric_concurrent_connections_to_one_server() {
    let fabric = Arc::new(TcpFabric::new());
    let server = EpId::new(0, 0);
    fabric.register_endpoint(server).unwrap();
    let key = RegionKey { ep: server, region: 0 };
    fabric.register_region(key, Segment::new(4096)).unwrap();
    std::thread::scope(|s| {
        for c in 0..12u32 {
            let fabric = Arc::clone(&fabric);
            s.spawn(move || {
                let me = EpId::new(1 + c % 3, 100 + c);
                for i in 0..100u64 {
                    fabric.fadd64(me, key, 8, 1).unwrap();
                    if i % 10 == 0 {
                        fabric.write(me, key, 64 + (c as usize * 8), &i.to_le_bytes()).unwrap();
                    }
                }
            });
        }
    });
    assert_eq!(fabric.read_u64(server, key, 8).unwrap(), 1_200);
}
