//! # ChaosFabric — deterministic fault injection over any [`Fabric`]
//!
//! The paper's evaluation runs on a healthy cluster; this module exists to
//! answer the question the paper leaves open — *what does the RoR protocol do
//! when the network misbehaves?* [`ChaosFabric`] wraps any inner provider and
//! perturbs traffic according to a [`FaultPlan`]:
//!
//! * **drop** — a two-sided message is silently discarded (the sender still
//!   sees success, exactly like a lost datagram). For one-sided RMA and
//!   atomics a "drop" surfaces as a transient [`FabricError::Injected`]
//!   instead: RDMA verbs complete-or-fail, they never silently skip, and a
//!   silently dropped-but-acknowledged `write` would make the fabric lie to
//!   the initiator.
//! * **delay** — a fixed extra latency plus a uniformly drawn jitter.
//! * **duplication** — a two-sided message is delivered twice (retransmit
//!   storms). RMA ops are not duplicated; re-executing a `fadd64` would
//!   change application-visible state, which is a *semantic* fault, not a
//!   network fault.
//! * **transient errors** — the op fails with [`FabricError::Injected`]
//!   without reaching the inner fabric.
//! * **endpoint slow-down** — every op touching a marked endpoint pays an
//!   extra fixed latency (a straggler node).
//!
//! Rules resolve most-specific-first: (pair, class) → pair → class → default.
//!
//! ## Determinism
//!
//! Every `(from, to, op-class)` triple owns an independent SplitMix64 stream
//! seeded from the plan seed; the fault decision for the *k*-th operation on
//! a stream is a pure function of `(seed, stream, k)`. Each operation draws
//! exactly [`DRAWS_PER_OP`] values, so decisions never shift position within
//! a stream regardless of which faults fire. Streams whose op order is fixed
//! by per-rank program order (`Send` from a rank's client) therefore replay
//! identically run-to-run under the same seed; polling-driven streams
//! (`Read` issued while spinning on a response slot) advance a
//! timing-dependent number of times, so determinism tests should target the
//! `Send` class.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use bytes::Bytes;

use crate::{EpId, Fabric, FabricError, FabricResult, RegionKey, TrafficSnapshot};

/// Operation classes a [`FaultPlan`] can target independently.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum OpClass {
    /// Two-sided message send.
    Send,
    /// Two-sided receive (faults hit the receiving endpoint's queue).
    Recv,
    /// One-sided RMA read.
    Read,
    /// One-sided RMA write.
    Write,
    /// Remote atomic (CAS / fetch-add).
    Atomic,
}

/// All op classes, in stream-key order.
pub const ALL_OP_CLASSES: [OpClass; 5] =
    [OpClass::Send, OpClass::Recv, OpClass::Read, OpClass::Write, OpClass::Atomic];

/// Fault probabilities and delays applied to one class of traffic.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultRule {
    /// Probability a message is lost (Send/Recv) or an RMA op fails
    /// transiently (Read/Write/Atomic).
    pub drop_prob: f64,
    /// Probability a sent message is delivered twice (Send only).
    pub dup_prob: f64,
    /// Probability the op fails with [`FabricError::Injected`].
    pub error_prob: f64,
    /// Fixed extra latency added to every matching op.
    pub delay: Duration,
    /// Additional uniformly drawn latency in `[0, delay_jitter)`.
    pub delay_jitter: Duration,
}

impl FaultRule {
    /// The no-fault rule (the default for unmatched traffic).
    pub const NONE: FaultRule = FaultRule {
        drop_prob: 0.0,
        dup_prob: 0.0,
        error_prob: 0.0,
        delay: Duration::ZERO,
        delay_jitter: Duration::ZERO,
    };

    /// Set the drop probability (clamped to `[0, 1]`).
    pub fn drop(mut self, p: f64) -> Self {
        self.drop_prob = p.clamp(0.0, 1.0);
        self
    }

    /// Set the duplication probability (clamped to `[0, 1]`).
    pub fn dup(mut self, p: f64) -> Self {
        self.dup_prob = p.clamp(0.0, 1.0);
        self
    }

    /// Set the transient-error probability (clamped to `[0, 1]`).
    pub fn error(mut self, p: f64) -> Self {
        self.error_prob = p.clamp(0.0, 1.0);
        self
    }

    /// Set the fixed delay.
    pub fn delay(mut self, d: Duration) -> Self {
        self.delay = d;
        self
    }

    /// Set the jitter bound.
    pub fn jitter(mut self, d: Duration) -> Self {
        self.delay_jitter = d;
        self
    }

    /// True when this rule can never perturb anything.
    pub fn is_none(&self) -> bool {
        self.drop_prob == 0.0
            && self.dup_prob == 0.0
            && self.error_prob == 0.0
            && self.delay == Duration::ZERO
            && self.delay_jitter == Duration::ZERO
    }
}

impl Default for FaultRule {
    fn default() -> Self {
        FaultRule::NONE
    }
}

/// A deterministic, seeded description of which traffic gets which faults.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    seed: u64,
    default_rule: FaultRule,
    class_rules: HashMap<OpClass, FaultRule>,
    pair_rules: HashMap<(EpId, EpId), FaultRule>,
    pair_class_rules: HashMap<(EpId, EpId, OpClass), FaultRule>,
    slow_endpoints: HashMap<EpId, Duration>,
}

impl FaultPlan {
    /// An empty plan (no faults) under `seed`.
    pub fn new(seed: u64) -> Self {
        FaultPlan { seed, ..Default::default() }
    }

    /// The plan seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Rule applied to traffic no more specific rule matches.
    pub fn with_default(mut self, rule: FaultRule) -> Self {
        self.default_rule = rule;
        self
    }

    /// Rule for every op of one class, any endpoint pair.
    pub fn for_class(mut self, class: OpClass, rule: FaultRule) -> Self {
        self.class_rules.insert(class, rule);
        self
    }

    /// Rule for every op class on one directed endpoint pair. For RMA
    /// classes the pair is `(initiator, region owner)`.
    pub fn for_pair(mut self, from: EpId, to: EpId, rule: FaultRule) -> Self {
        self.pair_rules.insert((from, to), rule);
        self
    }

    /// Rule for one op class on one directed endpoint pair — the most
    /// specific match, wins over everything else.
    pub fn for_pair_class(mut self, from: EpId, to: EpId, class: OpClass, rule: FaultRule) -> Self {
        self.pair_class_rules.insert((from, to, class), rule);
        self
    }

    /// Mark `ep` as a straggler: every op touching it (as initiator or
    /// target) pays `extra` latency on top of any rule delay.
    pub fn slow_endpoint(mut self, ep: EpId, extra: Duration) -> Self {
        self.slow_endpoints.insert(ep, extra);
        self
    }

    /// Resolve the effective rule for one op, most specific first.
    pub fn resolve(&self, from: EpId, to: EpId, class: OpClass) -> FaultRule {
        if let Some(r) = self.pair_class_rules.get(&(from, to, class)) {
            return *r;
        }
        if let Some(r) = self.pair_rules.get(&(from, to)) {
            return *r;
        }
        if let Some(r) = self.class_rules.get(&class) {
            return *r;
        }
        self.default_rule
    }

    /// Total straggler latency for an op between `from` and `to`.
    pub fn slowdown(&self, from: EpId, to: EpId) -> Duration {
        let mut d = self.slow_endpoints.get(&from).copied().unwrap_or(Duration::ZERO);
        if to != from {
            d += self.slow_endpoints.get(&to).copied().unwrap_or(Duration::ZERO);
        }
        d
    }
}

/// Monotonic per-fault counters.
#[derive(Debug, Default)]
pub struct ChaosStats {
    /// Messages dropped (and RMA ops failed as "lost").
    pub drops: AtomicU64,
    /// Messages delivered twice.
    pub duplicates: AtomicU64,
    /// Ops failed with [`FabricError::Injected`].
    pub injected_errors: AtomicU64,
    /// Ops that paid a rule delay (fixed and/or jitter).
    pub delayed_ops: AtomicU64,
    /// Ops that paid a straggler-endpoint delay.
    pub slowed_ops: AtomicU64,
}

/// A point-in-time copy of [`ChaosStats`] (comparable across runs for
/// determinism checks).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChaosSnapshot {
    /// Messages dropped.
    pub drops: u64,
    /// Messages duplicated.
    pub duplicates: u64,
    /// Transient errors injected.
    pub injected_errors: u64,
    /// Ops delayed by a rule.
    pub delayed_ops: u64,
    /// Ops slowed by a straggler endpoint.
    pub slowed_ops: u64,
}

impl ChaosSnapshot {
    /// Total faults of any kind.
    pub fn total_faults(&self) -> u64 {
        self.drops + self.duplicates + self.injected_errors + self.delayed_ops + self.slowed_ops
    }
}

/// Random draws consumed per operation (fixed so stream positions never
/// shift based on which faults fire).
pub const DRAWS_PER_OP: u32 = 4;

/// One resolved fault decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Decision {
    drop: bool,
    dup: bool,
    error: bool,
    delay: Duration,
}

/// SplitMix64 step — the same generator the workspace's shimmed `rand` uses.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Fold `v` into `acc` through one SplitMix64 step.
fn mix(acc: u64, v: u64) -> u64 {
    let mut s = acc ^ v;
    splitmix64(&mut s)
}

/// Initial RNG state for a `(from, to, class)` stream under `seed`.
fn stream_seed(seed: u64, from: EpId, to: EpId, class: OpClass) -> u64 {
    let mut s = mix(seed, 0xC4A0_5_u64);
    s = mix(s, from.node as u64);
    s = mix(s, from.rank as u64);
    s = mix(s, to.node as u64);
    s = mix(s, to.rank as u64);
    mix(s, class as u64)
}

/// Map a uniform u64 draw onto `[0, 1)` and compare against a probability.
fn hit(draw: u64, prob: f64) -> bool {
    if prob <= 0.0 {
        return false;
    }
    if prob >= 1.0 {
        return true;
    }
    ((draw >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < prob
}

/// A fault-injecting wrapper around any [`Fabric`] provider.
pub struct ChaosFabric {
    inner: Arc<dyn Fabric>,
    plan: FaultPlan,
    /// RNG state per `(from, to, class)` stream.
    streams: Mutex<HashMap<(EpId, EpId, OpClass), u64>>,
    stats: ChaosStats,
}

impl ChaosFabric {
    /// Wrap `inner`, perturbing its traffic per `plan`.
    pub fn wrap(inner: Arc<dyn Fabric>, plan: FaultPlan) -> Self {
        ChaosFabric { inner, plan, streams: Mutex::new(HashMap::new()), stats: ChaosStats::default() }
    }

    /// Convenience: a [`ChaosFabric`] over a fresh in-process
    /// [`crate::memory::MemoryFabric`].
    pub fn over_memory(plan: FaultPlan) -> Self {
        Self::wrap(Arc::new(crate::memory::MemoryFabric::new()), plan)
    }

    /// The fault plan.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// The wrapped provider.
    pub fn inner(&self) -> &Arc<dyn Fabric> {
        &self.inner
    }

    /// Per-fault counters.
    pub fn chaos_stats(&self) -> ChaosSnapshot {
        ChaosSnapshot {
            drops: self.stats.drops.load(Ordering::Relaxed),
            duplicates: self.stats.duplicates.load(Ordering::Relaxed),
            injected_errors: self.stats.injected_errors.load(Ordering::Relaxed),
            delayed_ops: self.stats.delayed_ops.load(Ordering::Relaxed),
            slowed_ops: self.stats.slowed_ops.load(Ordering::Relaxed),
        }
    }

    /// Draw the next fault decision for `(from, to, class)`. Exactly
    /// [`DRAWS_PER_OP`] values are consumed from the stream.
    fn decide(&self, from: EpId, to: EpId, class: OpClass) -> Decision {
        let rule = self.plan.resolve(from, to, class);
        let (d_drop, d_dup, d_err, d_jitter) = {
            let mut streams = self.streams.lock().unwrap_or_else(|e| e.into_inner());
            let state = streams
                .entry((from, to, class))
                .or_insert_with(|| stream_seed(self.plan.seed, from, to, class));
            (
                splitmix64(state),
                splitmix64(state),
                splitmix64(state),
                splitmix64(state),
            )
        };
        debug_assert_eq!(DRAWS_PER_OP, 4);
        let mut delay = rule.delay;
        if rule.delay_jitter > Duration::ZERO {
            let jitter_ns = rule.delay_jitter.as_nanos() as u64;
            delay += Duration::from_nanos(d_jitter % jitter_ns.max(1));
        }
        Decision {
            drop: hit(d_drop, rule.drop_prob),
            dup: hit(d_dup, rule.dup_prob),
            error: hit(d_err, rule.error_prob),
            delay,
        }
    }

    /// Apply the decision's latency terms (rule delay + straggler penalty)
    /// and bump the corresponding counters.
    fn apply_latency(&self, decision: &Decision, from: EpId, to: EpId) {
        let slow = self.plan.slowdown(from, to);
        if decision.delay > Duration::ZERO {
            self.stats.delayed_ops.fetch_add(1, Ordering::Relaxed);
        }
        if slow > Duration::ZERO {
            self.stats.slowed_ops.fetch_add(1, Ordering::Relaxed);
        }
        let total = decision.delay + slow;
        if total > Duration::ZERO {
            if total < Duration::from_micros(50) {
                let start = std::time::Instant::now();
                while start.elapsed() < total {
                    std::hint::spin_loop();
                }
            } else {
                std::thread::sleep(total);
            }
        }
    }

    /// Fail the op with an injected transient error.
    fn inject(&self, class: OpClass, from: EpId, to: EpId) -> FabricError {
        self.stats.injected_errors.fetch_add(1, Ordering::Relaxed);
        FabricError::Injected(format!("{class:?} {from}->{to}"))
    }

    /// Shared fault path for the synchronous RMA/atomic classes: delay, then
    /// possibly fail. Returns an error the op must propagate, or `Ok(())` to
    /// proceed to the inner fabric.
    fn rma_gate(&self, from: EpId, owner: EpId, class: OpClass) -> FabricResult<()> {
        let d = self.decide(from, owner, class);
        self.apply_latency(&d, from, owner);
        if d.error {
            return Err(self.inject(class, from, owner));
        }
        if d.drop {
            // RMA ops complete-or-fail; a "lost" op is a transient failure.
            self.stats.drops.fetch_add(1, Ordering::Relaxed);
            return Err(FabricError::Injected(format!("{class:?} {from}->{owner} (lost)")));
        }
        Ok(())
    }
}

impl Fabric for ChaosFabric {
    fn register_endpoint(&self, ep: EpId) -> FabricResult<()> {
        self.inner.register_endpoint(ep)
    }

    fn register_region(
        &self,
        key: RegionKey,
        seg: Arc<hcl_mem::Segment>,
    ) -> FabricResult<()> {
        self.inner.register_region(key, seg)
    }

    fn send(&self, from: EpId, to: EpId, msg: Bytes) -> FabricResult<()> {
        let d = self.decide(from, to, OpClass::Send);
        self.apply_latency(&d, from, to);
        if d.error {
            return Err(self.inject(OpClass::Send, from, to));
        }
        if d.drop {
            // Lost in flight: the sender still observes success.
            self.stats.drops.fetch_add(1, Ordering::Relaxed);
            return Ok(());
        }
        if d.dup {
            self.stats.duplicates.fetch_add(1, Ordering::Relaxed);
            self.inner.send(from, to, msg.clone())?;
        }
        self.inner.send(from, to, msg)
    }

    fn recv(&self, ep: EpId, timeout: Option<Duration>) -> FabricResult<Option<(EpId, Bytes)>> {
        let d = self.decide(ep, ep, OpClass::Recv);
        self.apply_latency(&d, ep, ep);
        if d.error {
            return Err(self.inject(OpClass::Recv, ep, ep));
        }
        let got = self.inner.recv(ep, timeout)?;
        if d.drop {
            if got.is_some() {
                // Receive-side loss: the message made it across but the
                // endpoint's queue "lost" it.
                self.stats.drops.fetch_add(1, Ordering::Relaxed);
            }
            return Ok(None);
        }
        Ok(got)
    }

    fn read(&self, from: EpId, key: RegionKey, off: usize, len: usize) -> FabricResult<Vec<u8>> {
        self.rma_gate(from, key.ep, OpClass::Read)?;
        self.inner.read(from, key, off, len)
    }

    fn write(&self, from: EpId, key: RegionKey, off: usize, data: &[u8]) -> FabricResult<()> {
        self.rma_gate(from, key.ep, OpClass::Write)?;
        self.inner.write(from, key, off, data)
    }

    fn cas64(
        &self,
        from: EpId,
        key: RegionKey,
        off: usize,
        expected: u64,
        new: u64,
    ) -> FabricResult<u64> {
        self.rma_gate(from, key.ep, OpClass::Atomic)?;
        self.inner.cas64(from, key, off, expected, new)
    }

    fn fadd64(&self, from: EpId, key: RegionKey, off: usize, delta: u64) -> FabricResult<u64> {
        self.rma_gate(from, key.ep, OpClass::Atomic)?;
        self.inner.fadd64(from, key, off, delta)
    }

    fn stats(&self) -> TrafficSnapshot {
        self.inner.stats()
    }

    fn fault_stats(&self) -> Option<ChaosSnapshot> {
        Some(self.chaos_stats())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::MemoryFabric;
    use hcl_mem::Segment;

    fn ep(r: u32) -> EpId {
        EpId::new(0, r)
    }

    #[test]
    fn rule_resolution_most_specific_wins() {
        let a = ep(0);
        let b = ep(1);
        let plan = FaultPlan::new(1)
            .with_default(FaultRule::NONE.drop(0.1))
            .for_class(OpClass::Send, FaultRule::NONE.drop(0.2))
            .for_pair(a, b, FaultRule::NONE.drop(0.3))
            .for_pair_class(a, b, OpClass::Send, FaultRule::NONE.drop(0.4));
        assert_eq!(plan.resolve(a, b, OpClass::Send).drop_prob, 0.4);
        assert_eq!(plan.resolve(a, b, OpClass::Read).drop_prob, 0.3);
        assert_eq!(plan.resolve(b, a, OpClass::Send).drop_prob, 0.2);
        assert_eq!(plan.resolve(b, a, OpClass::Write).drop_prob, 0.1);
    }

    #[test]
    fn same_seed_same_decision_sequence() {
        let a = ep(0);
        let b = ep(1);
        let plan = || {
            FaultPlan::new(42).for_class(
                OpClass::Send,
                FaultRule::NONE.drop(0.3).dup(0.2).error(0.1).jitter(Duration::from_nanos(1000)),
            )
        };
        let f1 = ChaosFabric::over_memory(plan());
        let f2 = ChaosFabric::over_memory(plan());
        let d1: Vec<_> = (0..256).map(|_| f1.decide(a, b, OpClass::Send)).collect();
        let d2: Vec<_> = (0..256).map(|_| f2.decide(a, b, OpClass::Send)).collect();
        assert_eq!(d1, d2);
        // A different seed must diverge somewhere in 256 draws.
        let f3 = ChaosFabric::over_memory(FaultPlan::new(43).for_class(
            OpClass::Send,
            FaultRule::NONE.drop(0.3).dup(0.2).error(0.1).jitter(Duration::from_nanos(1000)),
        ));
        let d3: Vec<_> = (0..256).map(|_| f3.decide(a, b, OpClass::Send)).collect();
        assert_ne!(d1, d3);
    }

    #[test]
    fn streams_are_independent() {
        let plan = FaultPlan::new(7)
            .for_class(OpClass::Send, FaultRule::NONE.drop(0.5));
        let f1 = ChaosFabric::over_memory(plan.clone());
        let f2 = ChaosFabric::over_memory(plan);
        // Interleave streams differently across the two fabrics; per-stream
        // sequences must still match.
        let mut seq1 = Vec::new();
        for i in 0..64 {
            seq1.push(f1.decide(ep(0), ep(1), OpClass::Send));
            let _ = f1.decide(ep(2), ep(3 + i % 2), OpClass::Send);
        }
        let mut seq2 = Vec::new();
        for _ in 0..64 {
            seq2.push(f2.decide(ep(0), ep(1), OpClass::Send));
        }
        assert_eq!(seq1, seq2);
    }

    #[test]
    fn full_drop_loses_sends_but_reports_success() {
        let chaos = ChaosFabric::over_memory(
            FaultPlan::new(3).for_class(OpClass::Send, FaultRule::NONE.drop(1.0)),
        );
        chaos.register_endpoint(ep(0)).unwrap();
        chaos.register_endpoint(ep(1)).unwrap();
        for _ in 0..10 {
            chaos.send(ep(0), ep(1), Bytes::from_static(b"gone")).unwrap();
        }
        assert_eq!(chaos.recv(ep(1), Some(Duration::from_millis(5))).unwrap(), None);
        let s = chaos.chaos_stats();
        assert_eq!(s.drops, 10);
        assert_eq!(s.duplicates, 0);
    }

    #[test]
    fn duplication_delivers_twice() {
        let chaos = ChaosFabric::over_memory(
            FaultPlan::new(3).for_class(OpClass::Send, FaultRule::NONE.dup(1.0)),
        );
        chaos.register_endpoint(ep(0)).unwrap();
        chaos.register_endpoint(ep(1)).unwrap();
        chaos.send(ep(0), ep(1), Bytes::from_static(b"twice")).unwrap();
        let a = chaos.recv(ep(1), Some(Duration::from_millis(100))).unwrap();
        let b = chaos.recv(ep(1), Some(Duration::from_millis(100))).unwrap();
        assert!(a.is_some() && b.is_some());
        assert_eq!(chaos.chaos_stats().duplicates, 1);
    }

    #[test]
    fn injected_errors_surface_and_count() {
        let chaos = ChaosFabric::over_memory(
            FaultPlan::new(9).for_class(OpClass::Write, FaultRule::NONE.error(1.0)),
        );
        chaos.register_endpoint(ep(0)).unwrap();
        chaos.register_endpoint(ep(1)).unwrap();
        let key = RegionKey { ep: ep(1), region: 5 };
        chaos.register_region(key, Segment::new(64)).unwrap();
        let err = chaos.write(ep(0), key, 0, &[1, 2, 3]).unwrap_err();
        assert!(matches!(err, FabricError::Injected(_)));
        assert_eq!(chaos.chaos_stats().injected_errors, 1);
        // Reads were left un-faulted and still work.
        assert_eq!(chaos.read(ep(0), key, 0, 3).unwrap(), vec![0, 0, 0]);
    }

    #[test]
    fn rma_drop_is_a_transient_failure_not_a_silent_skip() {
        let chaos = ChaosFabric::over_memory(
            FaultPlan::new(4).for_class(OpClass::Write, FaultRule::NONE.drop(1.0)),
        );
        chaos.register_endpoint(ep(0)).unwrap();
        chaos.register_endpoint(ep(1)).unwrap();
        let key = RegionKey { ep: ep(1), region: 1 };
        chaos.register_region(key, Segment::new(64)).unwrap();
        assert!(matches!(
            chaos.write(ep(0), key, 0, &[9]).unwrap_err(),
            FabricError::Injected(_)
        ));
        assert_eq!(chaos.chaos_stats().drops, 1);
        // The write never reached memory.
        assert_eq!(chaos.read(ep(0), key, 0, 1).unwrap(), vec![0]);
    }

    #[test]
    fn straggler_endpoint_counts_slowed_ops() {
        let chaos = ChaosFabric::over_memory(
            FaultPlan::new(5).slow_endpoint(ep(1), Duration::from_micros(10)),
        );
        chaos.register_endpoint(ep(0)).unwrap();
        chaos.register_endpoint(ep(1)).unwrap();
        chaos.send(ep(0), ep(1), Bytes::from_static(b"slow")).unwrap();
        chaos.send(ep(0), ep(0), Bytes::from_static(b"fast")).unwrap();
        assert_eq!(chaos.chaos_stats().slowed_ops, 1);
    }

    #[test]
    fn clean_plan_is_transparent() {
        let inner: Arc<dyn Fabric> = Arc::new(MemoryFabric::new());
        let chaos = ChaosFabric::wrap(Arc::clone(&inner), FaultPlan::new(0));
        chaos.register_endpoint(ep(0)).unwrap();
        chaos.register_endpoint(ep(1)).unwrap();
        chaos.send(ep(0), ep(1), Bytes::from_static(b"hi")).unwrap();
        let (from, msg) = chaos.recv(ep(1), Some(Duration::from_millis(100))).unwrap().unwrap();
        assert_eq!(from, ep(0));
        assert_eq!(&msg[..], b"hi");
        assert_eq!(chaos.chaos_stats(), ChaosSnapshot::default());
        assert_eq!(chaos.stats().sends, 1);
    }
}
