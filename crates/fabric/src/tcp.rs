//! TCP provider: one-sided verbs served by per-connection agent threads.
//!
//! The repro plan's "emulate RPC over TCP" path. Each registered endpoint
//! owns a loopback listener; a per-connection *agent thread* decodes verb
//! frames and executes them against the registered segments — playing
//! exactly the role the RDMA NIC plays in Fig. 2 (the target rank's own
//! threads never participate in one-sided ops). Two-sided sends are
//! delivered into the destination endpoint's receive queue by the agent.
//!
//! Wire format (all little-endian):
//!
//! ```text
//! SEND : [0u8][from:8][len:u32][payload]                      (no reply)
//! READ : [1u8][key:12][off:u64][len:u64]       -> [st:u8][len:u32][data]
//! WRITE: [2u8][key:12][off:u64][len:u32][data] -> [st:u8]
//! CAS  : [3u8][key:12][off:u64][exp:u64][new:u64] -> [st:u8][prev:u64]
//! FADD : [4u8][key:12][off:u64][delta:u64]     -> [st:u8][prev:u64]
//! ```

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use hcl_mem::Segment;
use parking_lot::{Mutex, RwLock};

use crate::{
    EpId, Fabric, FabricError, FabricResult, RegionKey, TrafficSnapshot, TrafficStats,
};

const OP_SEND: u8 = 0;
const OP_READ: u8 = 1;
const OP_WRITE: u8 = 2;
const OP_CAS: u8 = 3;
const OP_FADD: u8 = 4;

const ST_OK: u8 = 0;
const ST_ERR: u8 = 1;

fn io_err(e: std::io::Error) -> FabricError {
    FabricError::Io(e.to_string())
}

fn put_ep(buf: &mut Vec<u8>, ep: EpId) {
    buf.extend_from_slice(&ep.node.to_le_bytes());
    buf.extend_from_slice(&ep.rank.to_le_bytes());
}

fn get_ep(b: &[u8]) -> EpId {
    EpId {
        node: u32::from_le_bytes(b[0..4].try_into().unwrap()),
        rank: u32::from_le_bytes(b[4..8].try_into().unwrap()),
    }
}

fn put_key(buf: &mut Vec<u8>, key: RegionKey) {
    put_ep(buf, key.ep);
    buf.extend_from_slice(&key.region.to_le_bytes());
}

fn get_key(b: &[u8]) -> RegionKey {
    RegionKey { ep: get_ep(&b[0..8]), region: u32::from_le_bytes(b[8..12].try_into().unwrap()) }
}

struct EndpointState {
    tx: Sender<(EpId, Bytes)>,
    rx: Receiver<(EpId, Bytes)>,
    addr: SocketAddr,
}

struct Inner {
    endpoints: RwLock<HashMap<EpId, EndpointState>>,
    regions: RwLock<HashMap<RegionKey, Arc<Segment>>>,
    stats: TrafficStats,
    stop: AtomicBool,
}

impl Inner {
    /// Agent-side execution of one decoded frame; returns the reply bytes
    /// (empty for SEND).
    fn serve(&self, op: u8, body: &[u8]) -> Vec<u8> {
        match op {
            OP_SEND => {
                let from = get_ep(&body[0..8]);
                let len = u32::from_le_bytes(body[8..12].try_into().unwrap()) as usize;
                let to = get_ep(&body[12..20]);
                let payload = Bytes::copy_from_slice(&body[20..20 + len]);
                if let Some(ep) = self.endpoints.read().get(&to) {
                    let _ = ep.tx.send((from, payload));
                }
                Vec::new()
            }
            OP_READ => {
                let key = get_key(&body[0..12]);
                let off = u64::from_le_bytes(body[12..20].try_into().unwrap()) as usize;
                let len = u64::from_le_bytes(body[20..28].try_into().unwrap()) as usize;
                match self.regions.read().get(&key) {
                    Some(seg) => {
                        let mut data = vec![0u8; len];
                        match seg.read(off, &mut data) {
                            Ok(()) => {
                                let mut out = Vec::with_capacity(5 + len);
                                out.push(ST_OK);
                                out.extend_from_slice(&(len as u32).to_le_bytes());
                                out.extend_from_slice(&data);
                                out
                            }
                            Err(_) => vec![ST_ERR, 0, 0, 0, 0],
                        }
                    }
                    None => vec![ST_ERR, 0, 0, 0, 0],
                }
            }
            OP_WRITE => {
                let key = get_key(&body[0..12]);
                let off = u64::from_le_bytes(body[12..20].try_into().unwrap()) as usize;
                let len = u32::from_le_bytes(body[20..24].try_into().unwrap()) as usize;
                let data = &body[24..24 + len];
                match self.regions.read().get(&key) {
                    Some(seg) if seg.write(off, data).is_ok() => vec![ST_OK],
                    _ => vec![ST_ERR],
                }
            }
            OP_CAS | OP_FADD => {
                let key = get_key(&body[0..12]);
                let off = u64::from_le_bytes(body[12..20].try_into().unwrap()) as usize;
                let a = u64::from_le_bytes(body[20..28].try_into().unwrap());
                let result = self.regions.read().get(&key).ok_or(()).and_then(|seg| {
                    if op == OP_CAS {
                        let b = u64::from_le_bytes(body[28..36].try_into().unwrap());
                        seg.cas_u64(off, a, b).map_err(|_| ())
                    } else {
                        seg.fadd_u64(off, a).map_err(|_| ())
                    }
                });
                match result {
                    Ok(prev) => {
                        let mut out = vec![ST_OK];
                        out.extend_from_slice(&prev.to_le_bytes());
                        out
                    }
                    Err(()) => vec![ST_ERR, 0, 0, 0, 0, 0, 0, 0, 0],
                }
            }
            _ => vec![ST_ERR],
        }
    }
}

/// The TCP fabric provider.
pub struct TcpFabric {
    inner: Arc<Inner>,
    conns: Mutex<HashMap<(EpId, EpId), Arc<Mutex<TcpStream>>>>,
    listeners: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl Default for TcpFabric {
    fn default() -> Self {
        Self::new()
    }
}

impl TcpFabric {
    /// Create an empty TCP fabric.
    pub fn new() -> Self {
        TcpFabric {
            inner: Arc::new(Inner {
                endpoints: RwLock::new(HashMap::new()),
                regions: RwLock::new(HashMap::new()),
                stats: TrafficStats::default(),
                stop: AtomicBool::new(false),
            }),
            conns: Mutex::new(HashMap::new()),
            listeners: Mutex::new(Vec::new()),
        }
    }

    fn connect(&self, from: EpId, to: EpId) -> FabricResult<Arc<Mutex<TcpStream>>> {
        if let Some(c) = self.conns.lock().get(&(from, to)) {
            return Ok(Arc::clone(c));
        }
        let addr = {
            let eps = self.inner.endpoints.read();
            eps.get(&to).ok_or(FabricError::UnknownEndpoint(to))?.addr
        };
        let stream = TcpStream::connect(addr).map_err(io_err)?;
        stream.set_nodelay(true).map_err(io_err)?;
        let conn = Arc::new(Mutex::new(stream));
        self.conns.lock().insert((from, to), Arc::clone(&conn));
        Ok(conn)
    }

    /// Issue a framed request; when `reply_len_hint` is `None` the op has no
    /// reply (SEND); otherwise read the status byte and reply body.
    fn roundtrip(
        &self,
        from: EpId,
        to: EpId,
        frame: &[u8],
        has_reply: bool,
    ) -> FabricResult<Vec<u8>> {
        let conn = self.connect(from, to)?;
        let mut stream = conn.lock();
        stream.write_all(frame).map_err(io_err)?;
        if !has_reply {
            return Ok(Vec::new());
        }
        let mut st = [0u8; 1];
        stream.read_exact(&mut st).map_err(io_err)?;
        if st[0] != ST_OK {
            // Drain the fixed error tails by opcode.
            let tail = match frame[0] {
                OP_READ => 4,
                OP_CAS | OP_FADD => 8,
                _ => 0,
            };
            let mut sink = vec![0u8; tail];
            let _ = stream.read_exact(&mut sink);
            return Err(FabricError::Io("remote op failed".into()));
        }
        match frame[0] {
            OP_READ => {
                let mut lenb = [0u8; 4];
                stream.read_exact(&mut lenb).map_err(io_err)?;
                let len = u32::from_le_bytes(lenb) as usize;
                let mut data = vec![0u8; len];
                stream.read_exact(&mut data).map_err(io_err)?;
                Ok(data)
            }
            OP_CAS | OP_FADD => {
                let mut prev = [0u8; 8];
                stream.read_exact(&mut prev).map_err(io_err)?;
                Ok(prev.to_vec())
            }
            OP_WRITE => Ok(Vec::new()),
            _ => Ok(Vec::new()),
        }
    }
}

/// Read one frame from the agent side; returns `(opcode, body)`.
fn read_frame(stream: &mut TcpStream) -> std::io::Result<Option<(u8, Vec<u8>)>> {
    let mut op = [0u8; 1];
    match stream.read_exact(&mut op) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let body = match op[0] {
        OP_SEND => {
            // [from:8][len:4][to:8][payload]
            let mut hdr = [0u8; 12];
            stream.read_exact(&mut hdr)?;
            let len = u32::from_le_bytes(hdr[8..12].try_into().unwrap()) as usize;
            let mut rest = vec![0u8; 8 + len];
            stream.read_exact(&mut rest)?;
            let mut body = hdr.to_vec();
            body.extend_from_slice(&rest);
            body
        }
        OP_READ => {
            let mut b = vec![0u8; 12 + 16];
            stream.read_exact(&mut b)?;
            b
        }
        OP_WRITE => {
            let mut hdr = vec![0u8; 12 + 8 + 4];
            stream.read_exact(&mut hdr)?;
            let len = u32::from_le_bytes(hdr[20..24].try_into().unwrap()) as usize;
            let mut data = vec![0u8; len];
            stream.read_exact(&mut data)?;
            hdr.extend_from_slice(&data);
            hdr
        }
        OP_CAS => {
            let mut b = vec![0u8; 12 + 24];
            stream.read_exact(&mut b)?;
            b
        }
        OP_FADD => {
            let mut b = vec![0u8; 12 + 16];
            stream.read_exact(&mut b)?;
            b
        }
        _ => return Err(std::io::Error::other("bad opcode")),
    };
    Ok(Some((op[0], body)))
}

impl Fabric for TcpFabric {
    fn register_endpoint(&self, ep: EpId) -> FabricResult<()> {
        {
            let eps = self.inner.endpoints.read();
            if eps.contains_key(&ep) {
                return Ok(());
            }
        }
        let listener = TcpListener::bind("127.0.0.1:0").map_err(io_err)?;
        let addr = listener.local_addr().map_err(io_err)?;
        let (tx, rx) = unbounded();
        self.inner.endpoints.write().insert(ep, EndpointState { tx, rx, addr });
        let inner = Arc::clone(&self.inner);
        let handle = std::thread::Builder::new()
            .name(format!("hcl-tcp-agent-{ep}"))
            .spawn(move || {
                for stream in listener.incoming() {
                    if inner.stop.load(Ordering::Acquire) {
                        break;
                    }
                    let Ok(mut stream) = stream else { continue };
                    let inner = Arc::clone(&inner);
                    // One agent thread per connection: the "NIC core".
                    std::thread::Builder::new()
                        .name(format!("hcl-tcp-nic-{ep}"))
                        .spawn(move || {
                            let _ = stream.set_nodelay(true);
                            while let Ok(Some((op, body))) = read_frame(&mut stream) {
                                let reply = inner.serve(op, &body);
                                if !reply.is_empty() && stream.write_all(&reply).is_err() {
                                    break;
                                }
                            }
                        })
                        .expect("spawn agent thread");
                }
            })
            .expect("spawn listener thread");
        self.listeners.lock().push(handle);
        Ok(())
    }

    fn register_region(&self, key: RegionKey, seg: Arc<Segment>) -> FabricResult<()> {
        self.inner.regions.write().insert(key, seg);
        Ok(())
    }

    fn send(&self, from: EpId, to: EpId, msg: Bytes) -> FabricResult<()> {
        self.inner.stats.sends.fetch_add(1, Ordering::Relaxed);
        self.inner.stats.send_bytes.fetch_add(msg.len() as u64, Ordering::Relaxed);
        self.inner.stats.count_locality(&from, &to);
        let mut frame = Vec::with_capacity(21 + msg.len());
        frame.push(OP_SEND);
        put_ep(&mut frame, from);
        frame.extend_from_slice(&(msg.len() as u32).to_le_bytes());
        put_ep(&mut frame, to);
        frame.extend_from_slice(&msg);
        self.roundtrip(from, to, &frame, false)?;
        Ok(())
    }

    fn recv(&self, ep: EpId, timeout: Option<Duration>) -> FabricResult<Option<(EpId, Bytes)>> {
        let rx = {
            let eps = self.inner.endpoints.read();
            eps.get(&ep).ok_or(FabricError::UnknownEndpoint(ep))?.rx.clone()
        };
        match timeout {
            None => rx.recv().map(Some).map_err(|_| FabricError::Closed),
            Some(t) => match rx.recv_timeout(t) {
                Ok(m) => Ok(Some(m)),
                Err(RecvTimeoutError::Timeout) => Ok(None),
                Err(RecvTimeoutError::Disconnected) => Err(FabricError::Closed),
            },
        }
    }

    fn read(&self, from: EpId, key: RegionKey, off: usize, len: usize) -> FabricResult<Vec<u8>> {
        self.inner.stats.reads.fetch_add(1, Ordering::Relaxed);
        self.inner.stats.read_bytes.fetch_add(len as u64, Ordering::Relaxed);
        self.inner.stats.count_locality(&from, &key.ep);
        let mut frame = Vec::with_capacity(29);
        frame.push(OP_READ);
        put_key(&mut frame, key);
        frame.extend_from_slice(&(off as u64).to_le_bytes());
        frame.extend_from_slice(&(len as u64).to_le_bytes());
        self.roundtrip(from, key.ep, &frame, true)
    }

    fn write(&self, from: EpId, key: RegionKey, off: usize, data: &[u8]) -> FabricResult<()> {
        self.inner.stats.writes.fetch_add(1, Ordering::Relaxed);
        self.inner.stats.write_bytes.fetch_add(data.len() as u64, Ordering::Relaxed);
        self.inner.stats.count_locality(&from, &key.ep);
        let mut frame = Vec::with_capacity(25 + data.len());
        frame.push(OP_WRITE);
        put_key(&mut frame, key);
        frame.extend_from_slice(&(off as u64).to_le_bytes());
        frame.extend_from_slice(&(data.len() as u32).to_le_bytes());
        frame.extend_from_slice(data);
        self.roundtrip(from, key.ep, &frame, true)?;
        Ok(())
    }

    fn cas64(
        &self,
        from: EpId,
        key: RegionKey,
        off: usize,
        expected: u64,
        new: u64,
    ) -> FabricResult<u64> {
        self.inner.stats.cas_ops.fetch_add(1, Ordering::Relaxed);
        self.inner.stats.count_locality(&from, &key.ep);
        let mut frame = Vec::with_capacity(37);
        frame.push(OP_CAS);
        put_key(&mut frame, key);
        frame.extend_from_slice(&(off as u64).to_le_bytes());
        frame.extend_from_slice(&expected.to_le_bytes());
        frame.extend_from_slice(&new.to_le_bytes());
        let reply = self.roundtrip(from, key.ep, &frame, true)?;
        Ok(u64::from_le_bytes(reply[..8].try_into().unwrap()))
    }

    fn fadd64(&self, from: EpId, key: RegionKey, off: usize, delta: u64) -> FabricResult<u64> {
        self.inner.stats.fadd_ops.fetch_add(1, Ordering::Relaxed);
        self.inner.stats.count_locality(&from, &key.ep);
        let mut frame = Vec::with_capacity(29);
        frame.push(OP_FADD);
        put_key(&mut frame, key);
        frame.extend_from_slice(&(off as u64).to_le_bytes());
        frame.extend_from_slice(&delta.to_le_bytes());
        let reply = self.roundtrip(from, key.ep, &frame, true)?;
        Ok(u64::from_le_bytes(reply[..8].try_into().unwrap()))
    }

    fn stats(&self) -> TrafficSnapshot {
        self.inner.stats.snapshot()
    }
}

impl Drop for TcpFabric {
    fn drop(&mut self) {
        self.inner.stop.store(true, Ordering::Release);
        // Close client connections so agent threads see EOF and exit.
        self.conns.lock().clear();
        // Wake every listener's accept() with a dummy connection.
        let addrs: Vec<SocketAddr> =
            self.inner.endpoints.read().values().map(|e| e.addr).collect();
        for addr in addrs {
            let _ = TcpStream::connect(addr);
        }
        for h in self.listeners.lock().drain(..) {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Arc<TcpFabric>, EpId, EpId, RegionKey) {
        let f = Arc::new(TcpFabric::new());
        let a = EpId::new(0, 0);
        let b = EpId::new(1, 1);
        f.register_endpoint(a).unwrap();
        f.register_endpoint(b).unwrap();
        let key = RegionKey { ep: b, region: 0 };
        f.register_region(key, Segment::new(4096)).unwrap();
        (f, a, b, key)
    }

    #[test]
    fn send_recv_over_tcp() {
        let (f, a, b, _) = setup();
        f.send(a, b, Bytes::from_static(b"over the wire")).unwrap();
        let (src, msg) = f.recv(b, Some(Duration::from_secs(5))).unwrap().unwrap();
        assert_eq!(src, a);
        assert_eq!(&msg[..], b"over the wire");
    }

    #[test]
    fn one_sided_ops_over_tcp() {
        let (f, a, _b, key) = setup();
        f.write(a, key, 128, b"tcp rma write").unwrap();
        assert_eq!(&f.read(a, key, 128, 13).unwrap(), b"tcp rma write");
        f.write_u64(a, key, 0, 100).unwrap();
        assert_eq!(f.cas64(a, key, 0, 100, 200).unwrap(), 100);
        assert_eq!(f.fadd64(a, key, 0, 1).unwrap(), 200);
        assert_eq!(f.read_u64(a, key, 0).unwrap(), 201);
    }

    #[test]
    fn unknown_region_fails_cleanly() {
        let (f, a, b, _) = setup();
        let ghost = RegionKey { ep: b, region: 9 };
        assert!(f.read(a, ghost, 0, 8).is_err());
        // The connection must still be usable after an error reply.
        let ok = RegionKey { ep: b, region: 0 };
        f.write(a, ok, 0, &[1, 2, 3]).unwrap();
        assert_eq!(f.read(a, ok, 0, 3).unwrap(), vec![1, 2, 3]);
    }

    #[test]
    fn concurrent_clients_cas_serialize() {
        let (f, _a, _b, key) = setup();
        let clients: Vec<EpId> = (0..4).map(|r| EpId::new(2, 10 + r)).collect();
        for c in &clients {
            f.register_endpoint(*c).unwrap();
        }
        std::thread::scope(|s| {
            for &c in &clients {
                let f = Arc::clone(&f);
                s.spawn(move || {
                    for _ in 0..200 {
                        f.fadd64(c, key, 8, 1).unwrap();
                    }
                });
            }
        });
        assert_eq!(f.read_u64(clients[0], key, 8).unwrap(), 800);
    }

    #[test]
    fn large_payload_roundtrip() {
        let (f, a, _b, key) = setup();
        let seg = { f.inner.regions.read().get(&key).unwrap().clone() };
        seg.grow(1 << 20);
        let data: Vec<u8> = (0..(1 << 20)).map(|i| (i % 251) as u8).collect();
        f.write(a, key, 0, &data).unwrap();
        assert_eq!(f.read(a, key, 0, data.len()).unwrap(), data);
    }

    #[test]
    fn drop_shuts_down_threads() {
        let (f, a, b, key) = setup();
        f.write(a, key, 0, &[9]).unwrap();
        f.send(a, b, Bytes::from_static(b"x")).unwrap();
        let f = Arc::try_unwrap(f).map_err(|_| ()).expect("sole owner");
        drop(f); // must not hang
    }
}
