//! In-process provider: one-sided ops act directly on registered segments.
//!
//! This is the highest-fidelity emulation of RDMA semantics available
//! without the hardware: the *initiating* thread performs the memory access
//! on the target's registered segment, so — exactly as with a real
//! RDMA-capable NIC — no thread of the target rank participates. Two-sided
//! sends go through per-endpoint unbounded queues (the "request buffer
//! residing at the server's main memory" of Fig. 2).

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use hcl_mem::Segment;
use parking_lot::RwLock;

use crate::{
    EpId, Fabric, FabricError, FabricResult, LatencyModel, RegionKey, TrafficSnapshot,
    TrafficStats,
};

struct Endpoint {
    tx: Sender<(EpId, Bytes)>,
    rx: Receiver<(EpId, Bytes)>,
}

/// The in-process fabric provider.
pub struct MemoryFabric {
    endpoints: RwLock<HashMap<EpId, Endpoint>>,
    regions: RwLock<HashMap<RegionKey, Arc<Segment>>>,
    stats: TrafficStats,
    latency: LatencyModel,
}

impl Default for MemoryFabric {
    fn default() -> Self {
        Self::new()
    }
}

impl MemoryFabric {
    /// A fabric with no injected latency.
    pub fn new() -> Self {
        Self::with_latency(LatencyModel::NONE)
    }

    /// A fabric that injects the given latency model on every operation.
    pub fn with_latency(latency: LatencyModel) -> Self {
        MemoryFabric {
            endpoints: RwLock::new(HashMap::new()),
            regions: RwLock::new(HashMap::new()),
            stats: TrafficStats::default(),
            latency,
        }
    }

    fn segment(&self, key: &RegionKey) -> FabricResult<Arc<Segment>> {
        self.regions.read().get(key).cloned().ok_or(FabricError::UnknownRegion(*key))
    }
}

impl Fabric for MemoryFabric {
    fn register_endpoint(&self, ep: EpId) -> FabricResult<()> {
        let mut eps = self.endpoints.write();
        eps.entry(ep).or_insert_with(|| {
            let (tx, rx) = unbounded();
            Endpoint { tx, rx }
        });
        Ok(())
    }

    fn register_region(&self, key: RegionKey, seg: Arc<Segment>) -> FabricResult<()> {
        self.regions.write().insert(key, seg);
        Ok(())
    }

    fn send(&self, from: EpId, to: EpId, msg: Bytes) -> FabricResult<()> {
        self.latency.apply(&from, &to, msg.len());
        self.stats.sends.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        self.stats.send_bytes.fetch_add(msg.len() as u64, std::sync::atomic::Ordering::Relaxed);
        self.stats.count_locality(&from, &to);
        let eps = self.endpoints.read();
        let ep = eps.get(&to).ok_or(FabricError::UnknownEndpoint(to))?;
        ep.tx.send((from, msg)).map_err(|_| FabricError::Closed)
    }

    fn recv(&self, ep: EpId, timeout: Option<Duration>) -> FabricResult<Option<(EpId, Bytes)>> {
        let rx = {
            let eps = self.endpoints.read();
            eps.get(&ep).ok_or(FabricError::UnknownEndpoint(ep))?.rx.clone()
        };
        match timeout {
            None => rx.recv().map(Some).map_err(|_| FabricError::Closed),
            Some(t) => match rx.recv_timeout(t) {
                Ok(m) => Ok(Some(m)),
                Err(RecvTimeoutError::Timeout) => Ok(None),
                Err(RecvTimeoutError::Disconnected) => Err(FabricError::Closed),
            },
        }
    }

    fn read(&self, from: EpId, key: RegionKey, off: usize, len: usize) -> FabricResult<Vec<u8>> {
        self.latency.apply(&from, &key.ep, len);
        self.stats.reads.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        self.stats.read_bytes.fetch_add(len as u64, std::sync::atomic::Ordering::Relaxed);
        self.stats.count_locality(&from, &key.ep);
        let seg = self.segment(&key)?;
        let mut buf = vec![0u8; len];
        seg.read(off, &mut buf)?;
        Ok(buf)
    }

    fn write(&self, from: EpId, key: RegionKey, off: usize, data: &[u8]) -> FabricResult<()> {
        self.latency.apply(&from, &key.ep, data.len());
        self.stats.writes.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        self.stats.write_bytes.fetch_add(data.len() as u64, std::sync::atomic::Ordering::Relaxed);
        self.stats.count_locality(&from, &key.ep);
        let seg = self.segment(&key)?;
        seg.write(off, data)?;
        Ok(())
    }

    fn cas64(
        &self,
        from: EpId,
        key: RegionKey,
        off: usize,
        expected: u64,
        new: u64,
    ) -> FabricResult<u64> {
        self.latency.apply(&from, &key.ep, 8);
        self.stats.cas_ops.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        self.stats.count_locality(&from, &key.ep);
        let seg = self.segment(&key)?;
        Ok(seg.cas_u64(off, expected, new)?)
    }

    fn fadd64(&self, from: EpId, key: RegionKey, off: usize, delta: u64) -> FabricResult<u64> {
        self.latency.apply(&from, &key.ep, 8);
        self.stats.fadd_ops.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        self.stats.count_locality(&from, &key.ep);
        let seg = self.segment(&key)?;
        Ok(seg.fadd_u64(off, delta)?)
    }

    fn stats(&self) -> TrafficSnapshot {
        self.stats.snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Arc<MemoryFabric>, EpId, EpId, RegionKey) {
        let f = Arc::new(MemoryFabric::new());
        let a = EpId::new(0, 0);
        let b = EpId::new(1, 1);
        f.register_endpoint(a).unwrap();
        f.register_endpoint(b).unwrap();
        let key = RegionKey { ep: b, region: 0 };
        f.register_region(key, Segment::new(4096)).unwrap();
        (f, a, b, key)
    }

    #[test]
    fn send_recv_roundtrip() {
        let (f, a, b, _) = setup();
        f.send(a, b, Bytes::from_static(b"hello")).unwrap();
        let (src, msg) = f.recv(b, Some(Duration::from_secs(1))).unwrap().unwrap();
        assert_eq!(src, a);
        assert_eq!(&msg[..], b"hello");
    }

    #[test]
    fn recv_timeout_returns_none() {
        let (f, _a, b, _) = setup();
        let got = f.recv(b, Some(Duration::from_millis(10))).unwrap();
        assert!(got.is_none());
    }

    #[test]
    fn unknown_endpoint_rejected() {
        let (f, a, _b, _) = setup();
        let ghost = EpId::new(9, 9);
        assert!(matches!(
            f.send(a, ghost, Bytes::new()),
            Err(FabricError::UnknownEndpoint(_))
        ));
        assert!(matches!(f.recv(ghost, None), Err(FabricError::UnknownEndpoint(_))));
    }

    #[test]
    fn one_sided_read_write() {
        let (f, a, _b, key) = setup();
        f.write(a, key, 64, b"remote write").unwrap();
        let got = f.read(a, key, 64, 12).unwrap();
        assert_eq!(&got, b"remote write");
    }

    #[test]
    fn one_sided_atomics() {
        let (f, a, _b, key) = setup();
        f.write_u64(a, key, 0, 10).unwrap();
        assert_eq!(f.cas64(a, key, 0, 10, 20).unwrap(), 10);
        assert_eq!(f.cas64(a, key, 0, 10, 30).unwrap(), 20); // failed CAS
        assert_eq!(f.fadd64(a, key, 0, 5).unwrap(), 20);
        assert_eq!(f.read_u64(a, key, 0).unwrap(), 25);
    }

    #[test]
    fn unknown_region_rejected() {
        let (f, a, b, _) = setup();
        let ghost = RegionKey { ep: b, region: 77 };
        assert!(matches!(f.read(a, ghost, 0, 8), Err(FabricError::UnknownRegion(_))));
    }

    #[test]
    fn stats_track_classes_and_locality() {
        let (f, a, b, key) = setup();
        // a (node 0) -> b (node 1): inter-node.
        f.send(a, b, Bytes::from_static(b"xyz")).unwrap();
        f.write(a, key, 0, &[0u8; 16]).unwrap();
        f.read(a, key, 0, 16).unwrap();
        f.cas64(a, key, 0, 0, 1).unwrap();
        // b -> own region: intra-node.
        f.read(b, key, 0, 4).unwrap();
        let s = f.stats();
        assert_eq!(s.sends, 1);
        assert_eq!(s.send_bytes, 3);
        assert_eq!(s.writes, 1);
        assert_eq!(s.write_bytes, 16);
        assert_eq!(s.reads, 2);
        assert_eq!(s.cas_ops, 1);
        assert_eq!(s.inter_node_ops, 4);
        assert_eq!(s.intra_node_ops, 1);
    }

    #[test]
    fn concurrent_remote_cas_serializes() {
        let (f, _a, _b, key) = setup();
        let clients: Vec<EpId> = (0..8).map(|r| EpId::new(2, 10 + r)).collect();
        for c in &clients {
            f.register_endpoint(*c).unwrap();
        }
        std::thread::scope(|s| {
            for &c in &clients {
                let f = Arc::clone(&f);
                s.spawn(move || {
                    for _ in 0..1_000 {
                        loop {
                            let cur = f.read_u64(c, key, 8).unwrap();
                            if f.cas64(c, key, 8, cur, cur + 1).unwrap() == cur {
                                break;
                            }
                        }
                    }
                });
            }
        });
        assert_eq!(f.read_u64(clients[0], key, 8).unwrap(), 8_000);
    }

    #[test]
    fn latency_model_slows_inter_node_ops() {
        let f = MemoryFabric::with_latency(LatencyModel {
            intra_node: Duration::ZERO,
            inter_node: Duration::from_micros(200),
            inter_node_per_byte_ns: 0,
        });
        let a = EpId::new(0, 0);
        let local = RegionKey { ep: a, region: 0 };
        let remote_ep = EpId::new(1, 1);
        let remote = RegionKey { ep: remote_ep, region: 0 };
        f.register_region(local, Segment::new(64)).unwrap();
        f.register_region(remote, Segment::new(64)).unwrap();
        let t0 = std::time::Instant::now();
        for _ in 0..20 {
            f.read(a, local, 0, 8).unwrap();
        }
        let intra = t0.elapsed();
        let t1 = std::time::Instant::now();
        for _ in 0..20 {
            f.read(a, remote, 0, 8).unwrap();
        }
        let inter = t1.elapsed();
        assert!(inter > intra + Duration::from_millis(2), "intra {intra:?} inter {inter:?}");
    }
}
