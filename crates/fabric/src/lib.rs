//! # hcl-fabric — the communication fabric (paper §III, "HCL uses the Open
//! Fabric Interface (OFI) to build a portable cross-platform communication
//! fabric able to interface with any underlying network protocols").
//!
//! The [`Fabric`] trait is our OFI-provider surface. It exposes exactly the
//! verb set both HCL and BCL are built on:
//!
//! * two-sided messaging — [`Fabric::send`] / [`Fabric::recv`]
//!   (`RDMA_SEND` + work-queue receive in Fig. 2);
//! * one-sided RMA — [`Fabric::read`] / [`Fabric::write`]
//!   (`IBV_WR_RDMA_READ` / `RDMA WRITE`), which execute **without any
//!   involvement of the target's CPU threads**;
//! * remote atomics — [`Fabric::cas64`] / [`Fabric::fadd64`], the primitives
//!   BCL's client-side protocol requires ("Without CAS support, BCL
//!   structures cannot be implemented", §II-B).
//!
//! Two providers are included (DESIGN.md substitution #1):
//!
//! * [`memory::MemoryFabric`] — endpoints share the process; one-sided ops
//!   act directly on registered [`Segment`]s, which is semantically what
//!   RDMA hardware does (the initiator's "NIC" touches target memory with no
//!   target-CPU participation). An optional [`LatencyModel`] injects
//!   per-message latency and bandwidth costs so inter- vs intra-node gaps
//!   are observable in real time.
//! * [`tcp::TcpFabric`] — endpoints are served by per-connection agent
//!   threads over loopback TCP; the agent thread plays the role of the NIC
//!   (this is the "emulate RPC over TCP" path).
//!
//! Every operation updates a [`TrafficStats`] block — packets and bytes by
//! class — which is what the Fig. 4(c) network-profiling comparison reads.

pub mod chaos;
pub mod memory;
pub mod tcp;

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use bytes::Bytes;
use hcl_mem::MemError;

/// Endpoint identity: `(node, rank)`. The node component is what the hybrid
/// access model compares ("if the target process has the same nodeID as the
/// caller-process, then a Direct Memory Access call is made", §III-C5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EpId {
    /// Node (machine) index.
    pub node: u32,
    /// Rank (process) index, global across nodes.
    pub rank: u32,
}

impl EpId {
    /// Shorthand constructor.
    pub fn new(node: u32, rank: u32) -> Self {
        EpId { node, rank }
    }

    /// True when `other` lives on the same node (intra-node access).
    pub fn same_node(&self, other: &EpId) -> bool {
        self.node == other.node
    }
}

impl std::fmt::Display for EpId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}r{}", self.node, self.rank)
    }
}

/// A registered memory region: `(owner endpoint, region id)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RegionKey {
    /// The endpoint that registered (owns) the region.
    pub ep: EpId,
    /// Region id, unique per endpoint.
    pub region: u32,
}

/// Fabric errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FabricError {
    /// Destination endpoint was never registered.
    UnknownEndpoint(EpId),
    /// Region was never registered.
    UnknownRegion(RegionKey),
    /// Underlying memory error (bounds/alignment).
    Mem(MemError),
    /// Transport-level I/O failure.
    Io(String),
    /// The fabric (or peer) has shut down.
    Closed,
    /// A transient failure injected by [`chaos::ChaosFabric`]; retrying the
    /// operation may succeed.
    Injected(String),
}

impl std::fmt::Display for FabricError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FabricError::UnknownEndpoint(ep) => write!(f, "unknown endpoint {ep}"),
            FabricError::UnknownRegion(k) => write!(f, "unknown region {}:{}", k.ep, k.region),
            FabricError::Mem(e) => write!(f, "memory error: {e}"),
            FabricError::Io(e) => write!(f, "fabric I/O error: {e}"),
            FabricError::Closed => write!(f, "fabric closed"),
            FabricError::Injected(e) => write!(f, "injected fault: {e}"),
        }
    }
}

impl std::error::Error for FabricError {}

impl From<MemError> for FabricError {
    fn from(e: MemError) -> Self {
        FabricError::Mem(e)
    }
}

/// Result alias for fabric operations.
pub type FabricResult<T> = Result<T, FabricError>;

/// Traffic counters, split intra- vs inter-node (the hybrid access model's
/// two classes). All counters are monotonically increasing.
#[derive(Debug, Default)]
pub struct TrafficStats {
    /// Two-sided messages sent.
    pub sends: AtomicU64,
    /// Bytes carried by two-sided messages.
    pub send_bytes: AtomicU64,
    /// One-sided reads issued.
    pub reads: AtomicU64,
    /// Bytes fetched by one-sided reads.
    pub read_bytes: AtomicU64,
    /// One-sided writes issued.
    pub writes: AtomicU64,
    /// Bytes pushed by one-sided writes.
    pub write_bytes: AtomicU64,
    /// Remote atomic CAS operations.
    pub cas_ops: AtomicU64,
    /// Remote atomic fetch-add operations.
    pub fadd_ops: AtomicU64,
    /// Operations whose initiator and target share a node.
    pub intra_node_ops: AtomicU64,
    /// Operations that crossed nodes.
    pub inter_node_ops: AtomicU64,
}

impl TrafficStats {
    /// Record one operation's locality class.
    pub fn count_locality(&self, from: &EpId, to: &EpId) {
        if from.same_node(to) {
            self.intra_node_ops.fetch_add(1, Ordering::Relaxed);
        } else {
            self.inter_node_ops.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Copy the counters out.
    pub fn snapshot(&self) -> TrafficSnapshot {
        TrafficSnapshot {
            sends: self.sends.load(Ordering::Relaxed),
            send_bytes: self.send_bytes.load(Ordering::Relaxed),
            reads: self.reads.load(Ordering::Relaxed),
            read_bytes: self.read_bytes.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
            write_bytes: self.write_bytes.load(Ordering::Relaxed),
            cas_ops: self.cas_ops.load(Ordering::Relaxed),
            fadd_ops: self.fadd_ops.load(Ordering::Relaxed),
            intra_node_ops: self.intra_node_ops.load(Ordering::Relaxed),
            inter_node_ops: self.inter_node_ops.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of [`TrafficStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TrafficSnapshot {
    /// Two-sided messages sent.
    pub sends: u64,
    /// Bytes carried by two-sided messages.
    pub send_bytes: u64,
    /// One-sided reads issued.
    pub reads: u64,
    /// Bytes fetched by one-sided reads.
    pub read_bytes: u64,
    /// One-sided writes issued.
    pub writes: u64,
    /// Bytes pushed by one-sided writes.
    pub write_bytes: u64,
    /// Remote atomic CAS operations.
    pub cas_ops: u64,
    /// Remote atomic fetch-add operations.
    pub fadd_ops: u64,
    /// Same-node operations.
    pub intra_node_ops: u64,
    /// Cross-node operations.
    pub inter_node_ops: u64,
}

impl TrafficSnapshot {
    /// Total remote "packets" (every one-sided or two-sided op counts one
    /// round on the wire; reads/CAS imply the response too).
    pub fn total_ops(&self) -> u64 {
        self.sends + self.reads + self.writes + self.cas_ops + self.fadd_ops
    }
}

/// Injected latency/bandwidth model so the *relative* intra/inter-node cost
/// structure of the Ares testbed is observable in real-time benches.
#[derive(Debug, Clone, Copy)]
pub struct LatencyModel {
    /// One-way latency for intra-node operations.
    pub intra_node: Duration,
    /// One-way latency for inter-node operations.
    pub inter_node: Duration,
    /// Per-byte cost for inter-node payloads (models link bandwidth);
    /// zero disables the bandwidth term.
    pub inter_node_per_byte_ns: u64,
}

impl LatencyModel {
    /// No injected delay (the default).
    pub const NONE: LatencyModel = LatencyModel {
        intra_node: Duration::ZERO,
        inter_node: Duration::ZERO,
        inter_node_per_byte_ns: 0,
    };

    /// Delay appropriate for an op from `from` to `to` carrying `bytes`.
    pub fn delay(&self, from: &EpId, to: &EpId, bytes: usize) -> Duration {
        if from.same_node(to) {
            self.intra_node
        } else {
            self.inter_node + Duration::from_nanos(self.inter_node_per_byte_ns * bytes as u64)
        }
    }

    /// Busy-wait/sleep for the modeled delay.
    pub fn apply(&self, from: &EpId, to: &EpId, bytes: usize) {
        let d = self.delay(from, to, bytes);
        if d > Duration::ZERO {
            if d < Duration::from_micros(50) {
                let start = std::time::Instant::now();
                while start.elapsed() < d {
                    std::hint::spin_loop();
                }
            } else {
                std::thread::sleep(d);
            }
        }
    }
}

impl Default for LatencyModel {
    fn default() -> Self {
        LatencyModel::NONE
    }
}

/// The OFI-provider surface shared by HCL and BCL.
pub trait Fabric: Send + Sync {
    /// Register an endpoint so it can receive messages.
    fn register_endpoint(&self, ep: EpId) -> FabricResult<()>;

    /// Expose a memory segment for one-sided access under `key`.
    fn register_region(&self, key: RegionKey, seg: std::sync::Arc<hcl_mem::Segment>)
        -> FabricResult<()>;

    /// Two-sided message send (`RDMA_SEND` into the target's request queue).
    fn send(&self, from: EpId, to: EpId, msg: Bytes) -> FabricResult<()>;

    /// Receive the next message for `ep`; `None` on timeout.
    fn recv(&self, ep: EpId, timeout: Option<Duration>) -> FabricResult<Option<(EpId, Bytes)>>;

    /// One-sided read of `len` bytes at `off` in the remote region.
    fn read(&self, from: EpId, key: RegionKey, off: usize, len: usize) -> FabricResult<Vec<u8>>;

    /// One-sided write of `data` at `off` in the remote region.
    fn write(&self, from: EpId, key: RegionKey, off: usize, data: &[u8]) -> FabricResult<()>;

    /// Remote atomic compare-and-swap on an 8-aligned u64; returns the
    /// previous value.
    fn cas64(&self, from: EpId, key: RegionKey, off: usize, expected: u64, new: u64)
        -> FabricResult<u64>;

    /// Remote atomic fetch-add on an 8-aligned u64; returns the previous
    /// value.
    fn fadd64(&self, from: EpId, key: RegionKey, off: usize, delta: u64) -> FabricResult<u64>;

    /// Atomic read of an 8-aligned u64 (one-sided).
    fn read_u64(&self, from: EpId, key: RegionKey, off: usize) -> FabricResult<u64> {
        let b = self.read(from, key, off, 8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(&b);
        Ok(u64::from_le_bytes(a))
    }

    /// Atomic store of an 8-aligned u64 (one-sided).
    fn write_u64(&self, from: EpId, key: RegionKey, off: usize, val: u64) -> FabricResult<()> {
        self.write(from, key, off, &val.to_le_bytes())
    }

    /// Cumulative traffic counters.
    fn stats(&self) -> TrafficSnapshot;

    /// Cumulative fault-injection counters, when this fabric injects
    /// faults (`ChaosFabric` overrides this). Lets telemetry fold chaos
    /// counters into a rank's snapshot without downcasting.
    fn fault_stats(&self) -> Option<chaos::ChaosSnapshot> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epid_same_node() {
        let a = EpId::new(0, 0);
        let b = EpId::new(0, 5);
        let c = EpId::new(1, 6);
        assert!(a.same_node(&b));
        assert!(!a.same_node(&c));
    }

    #[test]
    fn latency_model_classes() {
        let m = LatencyModel {
            intra_node: Duration::from_nanos(100),
            inter_node: Duration::from_micros(2),
            inter_node_per_byte_ns: 1,
        };
        let a = EpId::new(0, 0);
        let b = EpId::new(0, 1);
        let c = EpId::new(1, 2);
        assert_eq!(m.delay(&a, &b, 1000), Duration::from_nanos(100));
        assert_eq!(m.delay(&a, &c, 1000), Duration::from_micros(3));
        assert_eq!(LatencyModel::NONE.delay(&a, &c, 1 << 20), Duration::ZERO);
    }

    #[test]
    fn traffic_snapshot_totals() {
        let s = TrafficStats::default();
        s.sends.store(3, Ordering::Relaxed);
        s.reads.store(2, Ordering::Relaxed);
        s.cas_ops.store(5, Ordering::Relaxed);
        assert_eq!(s.snapshot().total_ops(), 10);
    }
}
