//! Schedule-exploration tests for the lock-free containers, compiled only
//! under `--cfg conc_check` (see `just check-conc`). Each test drives a small
//! concurrent workload through ≥ 1000 seeded deterministic schedules of the
//! `conc_check` scheduler; every atomic access in the containers (directly or
//! through the epoch shim) is a preemption point.
//!
//! A test failure prints the seed that reproduces the interleaving, e.g.
//! `sched::run_one(0x2a, Some(3), ..)`.
#![cfg(conc_check)]

use std::sync::Arc;

use conc_check::sched::{self, ExploreConfig};
use hcl_containers::cuckoo::CuckooMap;
use hcl_containers::pq::SkipListPq;
use hcl_containers::queue::LockFreeQueue;
use hcl_containers::skiplist::SkipListMap;

/// Schedules per test. `explore` seeds are `seed(tag) + i`, so runs are
/// reproducible end to end; distinct-trace counts are asserted per test.
const SCHEDULES: u64 = 1500;

const fn seed(tag: u64) -> u64 {
    // Fixed per-test base seeds; spread them out so tests never share seeds.
    0x5eed_0000_0000_0000 | (tag << 16)
}

/// Unbounded-preemption config: these workloads are tiny (a handful of ops
/// per task), so the full interleaving space is affordable and explores far
/// more distinct traces than bound-3 sampling does.
///
/// Soak knobs (`just check-conc-soak`): `HCL_CONC_SCHEDULES` raises the
/// schedule count, `HCL_CONC_SEED_OFFSET` shifts every base seed so repeated
/// sweeps sample fresh regions of the interleaving space.
fn cfg(tag: u64) -> ExploreConfig {
    let env_u64 = |name: &str| std::env::var(name).ok().and_then(|v| v.parse::<u64>().ok());
    ExploreConfig {
        base_seed: seed(tag).wrapping_add(env_u64("HCL_CONC_SEED_OFFSET").unwrap_or(0)),
        schedules: env_u64("HCL_CONC_SCHEDULES").unwrap_or(SCHEDULES),
        preemption_bound: None,
    }
}

#[test]
fn queue_len_never_underflows_under_racing_push_pop() {
    // Regression for the signed-length fix: `pop` decrements `len` as soon as
    // it wins the head CAS, which can land *before* the racing `push`'s
    // increment (the node is linked by the tail CAS first). With a usize
    // counter the observer read `usize::MAX`; with the signed counter plus
    // clamp, `len()` must never exceed the number of pushes.
    let stats = sched::explore(cfg(1), || {
        let q = Arc::new(LockFreeQueue::new());
        let pusher = {
            let q = Arc::clone(&q);
            sched::spawn(move || {
                q.push(7u64);
                q.push(8);
            })
        };
        let popper = {
            let q = Arc::clone(&q);
            sched::spawn(move || {
                let mut n = 0;
                for _ in 0..2 {
                    if q.pop().is_some() {
                        n += 1;
                    }
                }
                n
            })
        };
        // Sample the length while both tasks are in flight: any read above
        // the number of pushes means the raw counter wrapped below zero.
        for _ in 0..4 {
            let observed = q.len();
            assert!(observed <= 2, "queue len underflowed: observed {observed}");
        }
        pusher.join();
        let popped = popper.join();
        assert_eq!(q.len(), 2 - popped);
        let mut left = 0;
        while q.pop().is_some() {
            left += 1;
        }
        assert_eq!(popped + left, 2, "queue lost or duplicated an element");
    });
    assert!(
        stats.distinct_schedules >= 1000,
        "only {} distinct schedules explored",
        stats.distinct_schedules
    );
}

#[test]
fn queue_conserves_elements_across_two_pushers_one_popper() {
    let stats = sched::explore(cfg(2), || {
        let q = Arc::new(LockFreeQueue::new());
        let a = {
            let q = Arc::clone(&q);
            sched::spawn(move || {
                q.push(1u32);
                q.push(2);
            })
        };
        let b = {
            let q = Arc::clone(&q);
            sched::spawn(move || q.push(3u32))
        };
        let c = {
            let q = Arc::clone(&q);
            sched::spawn(move || {
                let mut got = Vec::new();
                for _ in 0..2 {
                    if let Some(v) = q.pop() {
                        got.push(v);
                    }
                }
                got
            })
        };
        a.join();
        b.join();
        let mut all = c.join();
        while let Some(v) = q.pop() {
            all.push(v);
        }
        all.sort_unstable();
        assert_eq!(all, vec![1, 2, 3], "elements lost or duplicated");
        assert_eq!(q.len(), 0);
        // Per-producer FIFO: 1 must have been popped before 2.
        // (checked implicitly: both present exactly once; order across
        // producers is unconstrained)
    });
    assert!(stats.distinct_schedules >= 1000, "only {}", stats.distinct_schedules);
}

#[test]
fn cuckoo_concurrent_inserts_remain_consistent() {
    let stats = sched::explore(cfg(3), || {
        let m = Arc::new(CuckooMap::new());
        let a = {
            let m = Arc::clone(&m);
            sched::spawn(move || m.insert(10u64, 100u64))
        };
        let b = {
            let m = Arc::clone(&m);
            sched::spawn(move || m.insert(10u64, 200u64))
        };
        let ra = a.join();
        let rb = b.join();
        // Exactly one insert saw an empty slot.
        assert_eq!(ra.is_none() as u32 + rb.is_none() as u32, 1);
        let v = m.get(&10).expect("key must be present");
        assert!(v == 100 || v == 200);
        assert_eq!(m.len(), 1);
    });
    assert!(stats.distinct_schedules >= 1000, "only {}", stats.distinct_schedules);
}

#[test]
fn cuckoo_insert_remove_len_never_drifts() {
    let stats = sched::explore(cfg(4), || {
        let m = Arc::new(CuckooMap::new());
        m.insert(1u64, 1u64);
        let a = {
            let m = Arc::clone(&m);
            sched::spawn(move || m.insert(2u64, 2u64))
        };
        let b = {
            let m = Arc::clone(&m);
            sched::spawn(move || m.remove(&1u64))
        };
        a.join();
        let removed = b.join();
        assert_eq!(removed, Some(1));
        assert_eq!(m.len(), 1);
        assert_eq!(m.get(&2), Some(2));
        assert_eq!(m.get(&1), None);
    });
    assert!(stats.distinct_schedules >= 1000, "only {}", stats.distinct_schedules);
}

#[test]
fn skiplist_len_never_underflows_under_racing_insert_remove() {
    // Same signed-counter regression as the queue: `claim` decrements `len`
    // the moment it wins the value-claim CAS, which can precede the racing
    // inserter's increment (nodes publish before the counter bump).
    let stats = sched::explore(cfg(5), || {
        let m = Arc::new(SkipListMap::new());
        let ins = {
            let m = Arc::clone(&m);
            sched::spawn(move || m.insert(5u64, 50u64))
        };
        let rem = {
            let m = Arc::clone(&m);
            sched::spawn(move || m.remove(&5u64))
        };
        // Sample while both tasks are in flight (see the queue test).
        for _ in 0..4 {
            let observed = m.len();
            assert!(observed <= 1, "skiplist len underflowed: observed {observed}");
        }
        ins.join();
        let removed = rem.join();
        let expect = if removed.is_some() { 0 } else { 1 };
        assert_eq!(m.len(), expect);
        assert_eq!(m.get(&5).is_some(), removed.is_none());
    });
    assert!(stats.distinct_schedules >= 1000, "only {}", stats.distinct_schedules);
}

#[test]
fn skiplist_concurrent_remove_min_hands_out_each_key_once() {
    let stats = sched::explore(cfg(6), || {
        let m = Arc::new(SkipListMap::new());
        m.insert(1u64, ());
        m.insert(2u64, ());
        let a = {
            let m = Arc::clone(&m);
            sched::spawn(move || m.remove_min())
        };
        let b = {
            let m = Arc::clone(&m);
            sched::spawn(move || m.remove_min())
        };
        let ra = a.join();
        let rb = b.join();
        let mut keys: Vec<u64> = ra.into_iter().chain(rb).map(|(k, ())| k).collect();
        keys.sort_unstable();
        assert_eq!(keys, vec![1, 2], "remove_min lost or duplicated a key");
        assert_eq!(m.len(), 0);
    });
    assert!(stats.distinct_schedules >= 1000, "only {}", stats.distinct_schedules);
}

#[test]
fn pq_concurrent_push_pop_conserves_elements() {
    let stats = sched::explore(cfg(7), || {
        let pq = Arc::new(SkipListPq::new());
        pq.push(5u64);
        let a = {
            let pq = Arc::clone(&pq);
            sched::spawn(move || pq.push(3u64))
        };
        let b = {
            let pq = Arc::clone(&pq);
            sched::spawn(move || pq.pop())
        };
        a.join();
        let popped = b.join().expect("an element was available throughout");
        assert!(popped == 3 || popped == 5);
        let rest = pq.drain_sorted();
        let mut all = rest;
        all.push(popped);
        all.sort_unstable();
        assert_eq!(all, vec![3, 5], "pq lost or duplicated an element");
    });
    assert!(stats.distinct_schedules >= 1000, "only {}", stats.distinct_schedules);
}
