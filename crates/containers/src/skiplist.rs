//! A lock-free ordered map (skiplist), standing in for the paper's
//! wait-free red-black tree \[31\] (DESIGN.md substitution #5).
//!
//! Design: the classic Harris/Herlihy–Shavit lock-free skiplist.
//!
//! * Each node carries a tower of `next` pointers; the *tag bit* of a level's
//!   next pointer is the deletion mark for that level.
//! * `find` walks top-down, physically unlinking marked nodes it passes
//!   (helping), and returns the pred link / successor per level.
//! * `insert` publishes at level 0 with a CAS (the linearization point),
//!   then links higher levels; links race deletion via CAS on the node's own
//!   next pointers.
//! * `remove` marks top-down; the successful level-0 mark CAS is the unique
//!   claim (exactly one thread wins a concurrent remove of the same node) —
//!   this claim is also what [`SkipListMap::remove_min`] uses to implement a
//!   lock-free priority-queue pop.
//! * Values live behind their own atomic pointer so `insert` on an existing
//!   key is a lock-free value swap.
//! * Reclamation: each node tracks how many levels it is currently linked
//!   at; the unlink that drops the count to zero defers destruction through
//!   the crossbeam epoch scheme. Nodes are therefore never freed while any
//!   level still reaches them.

use conc_check::sync::{AtomicIsize, AtomicU64, AtomicUsize, Ordering};
use conc_check::RaceCell;
use crossbeam::epoch::{self, Atomic, Guard, Owned, Shared};

/// Maximum tower height. 2^16 expected elements per partition is far beyond
/// the per-partition sizes HCL's evaluation uses.
const MAX_HEIGHT: usize = 16;

struct Node<K, V> {
    key: K,
    /// The pointee is a `RaceCell` so the happens-before checker audits
    /// every value read against the publication edge that released it.
    value: Atomic<RaceCell<V>>,
    /// Levels currently linked (1 after the level-0 publish). The unlink
    /// that brings this to 0 frees the node.
    links: AtomicUsize,
    height: usize,
    tower: [Atomic<Node<K, V>>; MAX_HEIGHT],
}

impl<K, V> Node<K, V> {
    fn new(key: K, value: Shared<'_, RaceCell<V>>, height: usize) -> Owned<Self> {
        Owned::new(Node {
            key,
            value: Atomic::from(value.as_raw() as *const RaceCell<V>),
            links: AtomicUsize::new(1),
            height,
            tower: Default::default(),
        })
    }
}

struct FindResult<'g, K, V> {
    /// Per level: the link (an `Atomic`) whose successor is `succs[level]`.
    preds: [*const Atomic<Node<K, V>>; MAX_HEIGHT],
    succs: [Shared<'g, Node<K, V>>; MAX_HEIGHT],
    /// The node with exactly the searched key at level 0, if present.
    found: Option<Shared<'g, Node<K, V>>>,
}

/// A lock-free concurrent ordered map.
pub struct SkipListMap<K, V> {
    head: [Atomic<Node<K, V>>; MAX_HEIGHT],
    /// Signed on purpose: a remover can claim a freshly published node (and
    /// decrement) before the inserting thread's increment lands, so the raw
    /// counter can transiently dip below zero. `len()` clamps at 0.
    len: AtomicIsize,
    rng: AtomicU64,
}

// SAFETY: nodes are shared between threads via epoch-protected atomics and
// values are cloned out of shared nodes, so K and V must be Send + Sync; all
// mutation goes through tagged-pointer CAS with epoch reclamation.
unsafe impl<K: Send + Sync, V: Send + Sync> Send for SkipListMap<K, V> {}
// SAFETY: see the Send impl above; &SkipListMap only exposes atomic ops.
unsafe impl<K: Send + Sync, V: Send + Sync> Sync for SkipListMap<K, V> {}

impl<K, V> Default for SkipListMap<K, V>
where
    K: Ord + Clone + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
{
    fn default() -> Self {
        Self::new()
    }
}

impl<K, V> SkipListMap<K, V>
where
    K: Ord + Clone + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
{
    /// Create an empty map.
    pub fn new() -> Self {
        SkipListMap {
            head: Default::default(),
            len: AtomicIsize::new(0),
            rng: AtomicU64::new(0x9e37_79b9_7f4a_7c15),
        }
    }

    /// Number of live entries (approximate under concurrency). Clamped at 0:
    /// a remove's decrement can land before the racing insert's increment,
    /// making the raw counter transiently negative.
    pub fn len(&self) -> usize {
        self.len.load(Ordering::Relaxed).max(0) as usize
    }

    /// True when no entries are present.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Allocate a value cell and declare the write at its final heap
    /// address, before any pointer to it is published.
    fn alloc_value<'g>(value: &V, guard: &'g Guard) -> Shared<'g, RaceCell<V>> {
        let cell = Owned::new(RaceCell::new(value.clone()));
        cell.mark_write();
        cell.into_shared(guard)
    }

    fn random_height(&self) -> usize {
        // SplitMix64 step; geometric with p = 1/2, capped at MAX_HEIGHT.
        // ORDERING: Relaxed — the RNG state carries no cross-thread data
        // dependency; any interleaving of increments is an acceptable seed.
        let mut x = self.rng.fetch_add(0x9e37_79b9_7f4a_7c15, Ordering::Relaxed);
        x ^= x >> 30;
        x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x ^= x >> 27;
        x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
        x ^= x >> 31;
        ((x.trailing_ones() as usize) + 1).min(MAX_HEIGHT)
    }

    /// Decrement a node's link count after a successful unlink at one level;
    /// free the node (and its value) when it reaches zero.
    ///
    /// # Safety
    /// The caller must have just won the CAS that unlinked `node` at one
    /// level (each unlink may release exactly once), and `node` must still
    /// be protected by `guard`.
    unsafe fn release_link(node: Shared<'_, Node<K, V>>, guard: &Guard) {
        // SAFETY: `node` is protected by `guard` per this fn's contract.
        let n = unsafe { node.deref() };
        if n.links.fetch_sub(1, Ordering::AcqRel) == 1 {
            let val = n.value.load(Ordering::Acquire, guard);
            // SAFETY: the count hit zero, so ours was the last link — no
            // future traversal can reach the node; defer_destroy waits out
            // current guards, after which node and value are freed once.
            unsafe {
                guard.defer_destroy(val);
                guard.defer_destroy(node);
            }
        }
    }

    fn find<'g>(&self, key: &K, guard: &'g Guard) -> FindResult<'g, K, V> {
        'retry: loop {
            let mut preds: [*const Atomic<Node<K, V>>; MAX_HEIGHT] =
                [std::ptr::null(); MAX_HEIGHT];
            let mut succs: [Shared<'g, Node<K, V>>; MAX_HEIGHT] = [Shared::null(); MAX_HEIGHT];
            let mut pred_link: &Atomic<Node<K, V>> = &self.head[MAX_HEIGHT - 1];
            for level in (0..MAX_HEIGHT).rev() {
                let mut curr = pred_link.load(Ordering::Acquire, guard);
                if curr.tag() == 1 {
                    // Our pred was deleted under us; restart from the top.
                    continue 'retry;
                }
                loop {
                    // SAFETY: `curr` was loaded from a live link under the
                    // pin; nodes are only freed after every link to them is
                    // severed and all guards drain.
                    let Some(c) = (unsafe { curr.as_ref() }) else { break };
                    let succ = c.tower[level].load(Ordering::Acquire, guard);
                    if succ.tag() == 1 {
                        // `c` is marked at this level: help unlink it.
                        match pred_link.compare_exchange(
                            curr,
                            succ.with_tag(0),
                            Ordering::AcqRel,
                            Ordering::Acquire,
                            guard,
                        ) {
                            Ok(_) => {
                                // SAFETY: we just won the unlink CAS for this
                                // level, which is exactly release_link's
                                // contract; `curr` is guard-protected.
                                unsafe { Self::release_link(curr, guard) };
                                curr = succ.with_tag(0);
                                continue;
                            }
                            Err(_) => continue 'retry,
                        }
                    }
                    if c.key < *key {
                        pred_link = &c.tower[level];
                        curr = succ;
                    } else {
                        break;
                    }
                }
                preds[level] = pred_link as *const _;
                succs[level] = curr;
                if level > 0 {
                    // Descend: continue from the same pred at the next level.
                    // `pred_link` currently points at this level's link of the
                    // pred node (or head); move to the level below.
                    // SAFETY: `preds[level]` was written this iteration from
                    // a live `&Atomic` (head slot or guard-protected node
                    // tower entry), so the pointer is valid here.
                    pred_link = match unsafe { preds[level].as_ref() } {
                        Some(link) => {
                            // Identify whether this link belongs to head or a node:
                            // head links are contiguous in `self.head`.
                            let head_start = self.head.as_ptr();
                            // SAFETY: one-past-the-end pointer of the head
                            // array, used only for the range comparison.
                            let head_end = unsafe { head_start.add(MAX_HEIGHT) };
                            let p = link as *const Atomic<Node<K, V>>;
                            if p >= head_start && p < head_end {
                                &self.head[level - 1]
                            } else {
                                // The link is `&node.tower[level]`; step to
                                // `&node.tower[level-1]` within the same node.
                                // SAFETY: `p` points into a node's tower array
                                // at index `level` ≥ 1, so `p - 1` stays in
                                // bounds of the same array; the node is
                                // guard-protected for the whole find.
                                unsafe { &*p.sub(1) }
                            }
                        }
                        None => &self.head[level - 1],
                    };
                }
            }
            // SAFETY: `succs[0]` was read from a live link under the pin.
            let found = match unsafe { succs[0].as_ref() } {
                Some(c) if c.key == *key => Some(succs[0]),
                _ => None,
            };
            return FindResult { preds, succs, found };
        }
    }

    /// Insert `key -> value`; returns the previous value if the key was
    /// present (whose replacement is a lock-free pointer swap).
    pub fn insert(&self, key: K, value: V) -> Option<V> {
        let guard = &epoch::pin();
        'outer: loop {
            let f = self.find(&key, guard);
            if let Some(node) = f.found {
                // SAFETY: `found` nodes are guard-protected (see find).
                let n = unsafe { node.deref() };
                // Replace the value in place.
                loop {
                    if n.tower[0].load(Ordering::Acquire, guard).tag() == 1 {
                        // Node is being removed; insert a fresh one.
                        continue 'outer;
                    }
                    let old = n.value.load(Ordering::Acquire, guard);
                    let new = Self::alloc_value(&value, guard);
                    match n.value.compare_exchange(
                        old,
                        new,
                        Ordering::AcqRel,
                        Ordering::Acquire,
                        guard,
                    ) {
                        Ok(_) => {
                            if n.tower[0].load(Ordering::Acquire, guard).tag() == 1 {
                                // Lost to a concurrent remove: our value will
                                // die with the node. Re-insert fresh; the old
                                // value now belongs to the remover's claim.
                                continue 'outer;
                            }
                            // SAFETY: `old` was the node's live value until
                            // our CAS; values are never null for live nodes.
                            let prev = unsafe { old.deref().with(V::clone) };
                            // SAFETY: our winning CAS unlinked `old`, making
                            // this thread its unique retirer.
                            unsafe { guard.defer_destroy(old) };
                            return Some(prev);
                        }
                        Err(e) => {
                            // Another replace won; retry with current.
                            // SAFETY: our speculative value never became
                            // visible to other threads; we still own it.
                            drop(unsafe { e.new.into_owned() });
                            continue;
                        }
                    }
                }
            }
            // Publish a new node at level 0.
            let height = self.random_height();
            let value_ptr = Self::alloc_value(&value, guard);
            let mut node = Node::new(key.clone(), value_ptr, height);
            node.tower[0] = Atomic::from(f.succs[0].as_raw() as *const Node<K, V>);
            let node_shared = node.into_shared(guard);
            // SAFETY: `preds[0]` points at a live link (head slot or a
            // guard-protected node's tower entry) found by this find pass.
            let pred0 = unsafe { &*f.preds[0] };
            if pred0
                .compare_exchange(
                    f.succs[0],
                    node_shared,
                    Ordering::AcqRel,
                    Ordering::Acquire,
                    guard,
                )
                .is_err()
            {
                // Lost the publish race; free the speculative node + value.
                // SAFETY: the node was never published, so we still own it
                // exclusively; the value pointer is retired via the guard
                // because `value` was cloned into it.
                unsafe {
                    guard.defer_destroy(value_ptr);
                    drop(node_shared.into_owned());
                }
                continue 'outer;
            }
            // ORDERING: Relaxed — `len` is a statistic; a racing remover may
            // decrement before this lands (hence the signed clamp in len()).
            self.len.fetch_add(1, Ordering::Relaxed);
            // Link the higher levels.
            // SAFETY: just published; guard-protected.
            let n = unsafe { node_shared.deref() };
            let mut last_set: Shared<'_, Node<K, V>> = Shared::null();
            for level in 1..height {
                loop {
                    let f2 = self.find(&key, guard);
                    match f2.found {
                        Some(fnode) if fnode == node_shared => {}
                        _ => break, // our node is gone; stop linking
                    }
                    let succ = f2.succs[level];
                    // Set our own next pointer first; a failed CAS means a
                    // remover marked us — stop linking.
                    if last_set != succ
                        && n.tower[level]
                            .compare_exchange(
                                last_set,
                                succ,
                                Ordering::AcqRel,
                                Ordering::Acquire,
                                guard,
                            )
                            .is_err()
                    {
                        break;
                    }
                    last_set = succ;
                    n.links.fetch_add(1, Ordering::AcqRel);
                    // SAFETY: `preds[level]` comes from the find pass above
                    // and points at a live, guard-protected link.
                    let predl = unsafe { &*f2.preds[level] };
                    match predl.compare_exchange(
                        succ,
                        node_shared,
                        Ordering::AcqRel,
                        Ordering::Acquire,
                        guard,
                    ) {
                        Ok(_) => break,
                        Err(_) => {
                            n.links.fetch_sub(1, Ordering::AcqRel);
                            continue;
                        }
                    }
                }
                if n.tower[0].load(Ordering::Acquire, guard).tag() == 1 {
                    break; // node removed while we were linking
                }
                last_set = Shared::null();
                // (each level starts from our null/previous pointer)
            }
            return None;
        }
    }

    /// Look up `key`, returning a clone of its value.
    pub fn get(&self, key: &K) -> Option<V> {
        let guard = &epoch::pin();
        let f = self.find(key, guard);
        let node = f.found?;
        // SAFETY: `found` nodes are guard-protected (see find).
        let n = unsafe { node.deref() };
        if n.tower[0].load(Ordering::Acquire, guard).tag() == 1 {
            return None;
        }
        let v = n.value.load(Ordering::Acquire, guard);
        // SAFETY: the node was unmarked just above; live nodes always hold a
        // non-null value, and the pin keeps it alive while we clone.
        Some(unsafe { v.deref().with(V::clone) })
    }

    /// True when `key` is present.
    pub fn contains(&self, key: &K) -> bool {
        self.get(key).is_some()
    }

    /// Mark `node` for deletion; returns true when this call won the claim.
    fn claim<'g>(&self, node: Shared<'g, Node<K, V>>, guard: &'g Guard) -> Option<V> {
        // SAFETY: callers pass nodes reached through live links under
        // `guard`, so the node outlives this call.
        let n = unsafe { node.deref() };
        // Mark the upper levels top-down.
        for level in (1..n.height).rev() {
            loop {
                let next = n.tower[level].load(Ordering::Acquire, guard);
                if next.tag() == 1 {
                    break;
                }
                if n.tower[level]
                    .compare_exchange(
                        next,
                        next.with_tag(1),
                        Ordering::AcqRel,
                        Ordering::Acquire,
                        guard,
                    )
                    .is_ok()
                {
                    break;
                }
            }
        }
        // Level 0 is the claim.
        loop {
            let next = n.tower[0].load(Ordering::Acquire, guard);
            if next.tag() == 1 {
                return None; // someone else claimed it
            }
            if n.tower[0]
                .compare_exchange(
                    next,
                    next.with_tag(1),
                    Ordering::AcqRel,
                    Ordering::Acquire,
                    guard,
                )
                .is_ok()
            {
                // ORDERING: Relaxed statistic; may precede the inserter's
                // increment (see the signed-counter note on `len`).
                self.len.fetch_sub(1, Ordering::Relaxed);
                let v = n.value.load(Ordering::Acquire, guard);
                // SAFETY: we won the claim, so the value pointer cannot be
                // retired before our guard drops; it is non-null for any
                // node that was live when we began.
                return Some(unsafe { v.deref().with(V::clone) });
            }
        }
    }

    /// Remove `key`; returns its value when this call performed the removal.
    pub fn remove(&self, key: &K) -> Option<V> {
        let guard = &epoch::pin();
        loop {
            let f = self.find(key, guard);
            let node = f.found?;
            match self.claim(node, guard) {
                Some(v) => {
                    // Physically unlink (helping): one more find pass.
                    let _ = self.find(key, guard);
                    return Some(v);
                }
                None => {
                    // Lost the claim; the key may have been re-inserted as a
                    // fresh node — retry until find says absent.
                    continue;
                }
            }
        }
    }

    /// Remove and return the smallest entry — the lock-free priority-queue
    /// pop (§III-D3B): locate the minimum, logically delete it (mark), let
    /// traversals purge it physically.
    pub fn remove_min(&self) -> Option<(K, V)> {
        let guard = &epoch::pin();
        loop {
            let mut curr = self.head[0].load(Ordering::Acquire, guard);
            let mut claimed = None;
            // SAFETY: each node is reached through live links under the pin.
            while let Some(c) = unsafe { curr.as_ref() } {
                let next = c.tower[0].load(Ordering::Acquire, guard);
                if next.tag() == 0 {
                    if let Some(v) = self.claim(curr, guard) {
                        claimed = Some((c.key.clone(), v));
                        let _ = self.find(&c.key, guard); // physical unlink
                        break;
                    }
                }
                curr = next.with_tag(0);
            }
            match claimed {
                Some(kv) => return Some(kv),
                None => {
                    // Either empty, or every node we saw was claimed by
                    // someone else; if the list head is now empty, give up.
                    if self.head[0].load(Ordering::Acquire, guard).is_null() {
                        return None;
                    }
                    // A full pass found nothing claimable: the remaining
                    // marked nodes belong to other removers. Report empty.
                    return None;
                }
            }
        }
    }

    /// Clone of the smallest entry without removing it.
    pub fn first(&self) -> Option<(K, V)> {
        let guard = &epoch::pin();
        let mut curr = self.head[0].load(Ordering::Acquire, guard);
        // SAFETY: each node is reached through live links under the pin.
        while let Some(c) = unsafe { curr.as_ref() } {
            let next = c.tower[0].load(Ordering::Acquire, guard);
            if next.tag() == 0 {
                let v = c.value.load(Ordering::Acquire, guard);
                // SAFETY: unmarked node observed under the pin ⇒ its value
                // is non-null and cannot be reclaimed before the guard drops.
                return Some((c.key.clone(), unsafe { v.deref().with(V::clone) }));
            }
            curr = next.with_tag(0);
        }
        None
    }

    /// Snapshot of all live entries in key order (not atomic).
    pub fn iter_snapshot(&self) -> Vec<(K, V)> {
        let guard = &epoch::pin();
        let mut out = Vec::new();
        let mut curr = self.head[0].load(Ordering::Acquire, guard);
        // SAFETY: each node is reached through live links under the pin.
        while let Some(c) = unsafe { curr.as_ref() } {
            let next = c.tower[0].load(Ordering::Acquire, guard);
            if next.tag() == 0 {
                let v = c.value.load(Ordering::Acquire, guard);
                // SAFETY: unmarked ⇒ non-null value, guard-protected.
                out.push((c.key.clone(), unsafe { v.deref().with(V::clone) }));
            }
            curr = next.with_tag(0);
        }
        out
    }

    /// Snapshot of live entries with keys in `[lo, hi)`.
    pub fn range_snapshot(&self, lo: &K, hi: &K) -> Vec<(K, V)> {
        let guard = &epoch::pin();
        let f = self.find(lo, guard);
        let mut out = Vec::new();
        let mut curr = f.succs[0];
        // SAFETY: each node is reached through live links under the pin.
        while let Some(c) = unsafe { curr.as_ref() } {
            if c.key >= *hi {
                break;
            }
            let next = c.tower[0].load(Ordering::Acquire, guard);
            if next.tag() == 0 {
                let v = c.value.load(Ordering::Acquire, guard);
                // SAFETY: unmarked ⇒ non-null value, guard-protected.
                out.push((c.key.clone(), unsafe { v.deref().with(V::clone) }));
            }
            curr = next.with_tag(0);
        }
        out
    }

    /// Physically unlink every logically deleted node reachable at level 0 —
    /// the paper's "background purge methodology". Returns how many marked
    /// nodes were encountered.
    pub fn purge(&self) -> usize {
        let guard = &epoch::pin();
        let mut marked = 0;
        let mut curr = self.head[0].load(Ordering::Acquire, guard);
        let mut keys = Vec::new();
        // SAFETY: each node is reached through live links under the pin.
        while let Some(c) = unsafe { curr.as_ref() } {
            let next = c.tower[0].load(Ordering::Acquire, guard);
            if next.tag() == 1 {
                marked += 1;
                keys.push(c.key.clone());
            }
            curr = next.with_tag(0);
        }
        for k in keys {
            let _ = self.find(&k, guard);
        }
        marked
    }
}

impl<K, V> Drop for SkipListMap<K, V> {
    fn drop(&mut self) {
        // Single-threaded teardown. A node that was claimed but only
        // partially unlinked may be absent from level 0 yet still reachable
        // at a higher level, so walk every level and free each distinct
        // node exactly once.
        // SAFETY: `&mut self` proves no other thread can touch the list, so
        // an unprotected guard is sound for the teardown walk.
        let guard = unsafe { epoch::unprotected() };
        let mut seen = std::collections::HashSet::new();
        for level in 0..MAX_HEIGHT {
            let mut curr = self.head[level].load(Ordering::Relaxed, guard).with_tag(0);
            // SAFETY: exclusive access; every reachable node is still allocated.
            while let Some(c) = unsafe { curr.as_ref() } {
                let next = c.tower[level].load(Ordering::Relaxed, guard).with_tag(0);
                seen.insert(curr.as_raw() as usize);
                curr = next;
            }
        }
        for &addr in &seen {
            let node: Shared<'_, Node<K, V>> = Shared::from(addr as *const Node<K, V>);
            // SAFETY: `addr` came from the reachability walk above, so it is a
            // valid, still-allocated node pointer.
            let c = unsafe { node.deref() };
            let val = c.value.load(Ordering::Relaxed, guard);
            // SAFETY: `seen` holds each node address exactly once, so each
            // node (and its value, if still attached) is freed exactly once.
            unsafe {
                if !val.is_null() {
                    drop(val.into_owned());
                }
                drop(node.into_owned());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;
    use std::sync::Arc;

    #[test]
    fn insert_get_remove_basic() {
        let m = SkipListMap::new();
        assert_eq!(m.insert(5u64, "five".to_string()), None);
        assert_eq!(m.insert(3, "three".to_string()), None);
        assert_eq!(m.insert(8, "eight".to_string()), None);
        assert_eq!(m.get(&5), Some("five".to_string()));
        assert_eq!(m.get(&4), None);
        assert_eq!(m.len(), 3);
        assert_eq!(m.insert(5, "FIVE".to_string()), Some("five".to_string()));
        assert_eq!(m.get(&5), Some("FIVE".to_string()));
        assert_eq!(m.len(), 3);
        assert_eq!(m.remove(&5), Some("FIVE".to_string()));
        assert_eq!(m.remove(&5), None);
        assert_eq!(m.get(&5), None);
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn ordered_iteration() {
        let m = SkipListMap::new();
        for k in [9u32, 1, 7, 3, 5, 2, 8, 4, 6] {
            m.insert(k, k * 10);
        }
        let snap = m.iter_snapshot();
        let keys: Vec<u32> = snap.iter().map(|(k, _)| *k).collect();
        assert_eq!(keys, vec![1, 2, 3, 4, 5, 6, 7, 8, 9]);
    }

    #[test]
    fn range_snapshot_bounds() {
        let m = SkipListMap::new();
        for k in 0u32..20 {
            m.insert(k, ());
        }
        let r = m.range_snapshot(&5, &9);
        let keys: Vec<u32> = r.iter().map(|(k, _)| *k).collect();
        assert_eq!(keys, vec![5, 6, 7, 8]);
        assert!(m.range_snapshot(&25, &30).is_empty());
    }

    #[test]
    fn first_and_remove_min_order() {
        let m = SkipListMap::new();
        for k in [5u64, 2, 9, 1, 7] {
            m.insert(k, k as i64);
        }
        assert_eq!(m.first(), Some((1, 1)));
        assert_eq!(m.remove_min(), Some((1, 1)));
        assert_eq!(m.remove_min(), Some((2, 2)));
        assert_eq!(m.first(), Some((5, 5)));
        assert_eq!(m.remove_min(), Some((5, 5)));
        assert_eq!(m.remove_min(), Some((7, 7)));
        assert_eq!(m.remove_min(), Some((9, 9)));
        assert_eq!(m.remove_min(), None);
    }

    #[test]
    fn matches_btreemap_oracle_sequential() {
        let m = SkipListMap::new();
        let mut oracle = BTreeMap::new();
        let mut x = 12345u64;
        for _ in 0..5_000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let k = (x >> 33) % 200;
            match (x >> 1) % 3 {
                0 => assert_eq!(m.insert(k, x), oracle.insert(k, x)),
                1 => assert_eq!(m.get(&k), oracle.get(&k).copied()),
                _ => assert_eq!(m.remove(&k), oracle.remove(&k)),
            }
        }
        let snap: Vec<(u64, u64)> = m.iter_snapshot();
        let want: Vec<(u64, u64)> = oracle.into_iter().collect();
        assert_eq!(snap, want);
    }

    #[test]
    fn concurrent_disjoint_inserts() {
        let m = Arc::new(SkipListMap::new());
        let threads = 8u64;
        let per = 2_000u64;
        std::thread::scope(|s| {
            for t in 0..threads {
                let m = Arc::clone(&m);
                s.spawn(move || {
                    for i in 0..per {
                        assert_eq!(m.insert(t * per + i, i), None);
                    }
                });
            }
        });
        assert_eq!(m.len() as u64, threads * per);
        let snap = m.iter_snapshot();
        assert_eq!(snap.len() as u64, threads * per);
        assert!(snap.windows(2).all(|w| w[0].0 < w[1].0), "keys sorted & unique");
    }

    #[test]
    fn concurrent_same_key_contention() {
        let m = Arc::new(SkipListMap::new());
        std::thread::scope(|s| {
            for t in 0..8u64 {
                let m = Arc::clone(&m);
                s.spawn(move || {
                    for i in 0..2_000u64 {
                        let k = i % 10;
                        if t % 2 == 0 {
                            m.insert(k, t);
                        } else {
                            m.remove(&k);
                        }
                        let _ = m.get(&k);
                    }
                });
            }
        });
        // All remaining entries must have valid keys/values.
        for (k, v) in m.iter_snapshot() {
            assert!(k < 10);
            assert!(v < 8);
        }
    }

    #[test]
    fn concurrent_remove_claims_are_unique() {
        // N threads all try to remove the same pre-inserted keys; each key
        // must be claimed by exactly one thread.
        let m = Arc::new(SkipListMap::new());
        let keys = 2_000u64;
        for k in 0..keys {
            m.insert(k, k);
        }
        let claimed = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|s| {
            for _ in 0..8 {
                let m = Arc::clone(&m);
                let claimed = Arc::clone(&claimed);
                s.spawn(move || {
                    for k in 0..keys {
                        if m.remove(&k).is_some() {
                            claimed.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        assert_eq!(claimed.load(Ordering::Relaxed) as u64, keys);
        assert_eq!(m.len(), 0);
        assert!(m.iter_snapshot().is_empty());
    }

    #[test]
    fn concurrent_remove_min_drains_in_order_per_thread() {
        let m = Arc::new(SkipListMap::new());
        let n = 10_000u64;
        for k in 0..n {
            m.insert(k, ());
        }
        let total = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|s| {
            for _ in 0..8 {
                let m = Arc::clone(&m);
                let total = Arc::clone(&total);
                s.spawn(move || {
                    let mut last: i64 = -1;
                    while let Some((k, ())) = m.remove_min() {
                        // Each thread's claims must be increasing.
                        assert!((k as i64) > last, "thread saw {k} after {last}");
                        last = k as i64;
                        total.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
        });
        assert_eq!(total.load(Ordering::Relaxed) as u64, n);
        assert!(m.is_empty());
    }

    #[test]
    fn purge_unlinks_marked_nodes() {
        let m = SkipListMap::new();
        for k in 0u64..100 {
            m.insert(k, ());
        }
        for k in 0u64..100 {
            if k % 2 == 0 {
                m.remove(&k);
            }
        }
        // After removes + the find() helping inside them, purge should find
        // nothing left to do.
        let residual = m.purge();
        assert_eq!(residual, 0);
        assert_eq!(m.len(), 50);
    }

    #[test]
    fn string_keys_and_values() {
        let m = SkipListMap::new();
        m.insert("banana".to_string(), 2u32);
        m.insert("apple".to_string(), 1);
        m.insert("cherry".to_string(), 3);
        let keys: Vec<String> = m.iter_snapshot().into_iter().map(|(k, _)| k).collect();
        assert_eq!(keys, vec!["apple", "banana", "cherry"]);
    }
}
