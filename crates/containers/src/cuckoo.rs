//! A concurrent cuckoo hash map — the local building block of HCL's
//! `unordered_map`/`unordered_set` (paper §III-D1).
//!
//! The paper uses the lock-free cuckoo hash of Nguyen & Tsigas \[30\]. We
//! implement the libcuckoo-style design (DESIGN.md substitution #4) that
//! preserves every property HCL relies on:
//!
//! * **two-choice hashing** — every key lives in one of two candidate
//!   buckets of [`SLOTS`] slots ("resolves cache collisions using a
//!   secondary array of buckets");
//! * **lock-free reads** — `get` never takes a lock: slots are epoch-managed
//!   atomic pointers, readers just traverse them;
//! * **fine-grained writers** — writers serialize per bucket *stripe*, not
//!   globally, so disjoint inserts proceed in parallel;
//! * **displacement** — a full bucket pair relocates a resident entry to its
//!   alternate bucket before giving up and resizing;
//! * **in-place resize** — the table doubles when the load factor crosses
//!   [`LOAD_FACTOR`] (0.75 in the paper), moving entry pointers (not data).

use std::hash::{BuildHasher, Hash, Hasher, RandomState};

use conc_check::sync::{AtomicUsize, Mutex, MutexGuard, Ordering};
use conc_check::RaceCell;
use crossbeam::epoch::{self, Atomic, Guard, Owned, Shared};

/// Slots per bucket.
pub const SLOTS: usize = 4;
/// Resize threshold: grow when `len > LOAD_FACTOR * capacity`.
pub const LOAD_FACTOR: f64 = 0.75;
/// Writer lock stripes.
const STRIPES: usize = 64;
/// Default bucket count (the paper's containers "start with a default size
/// of 128 buckets").
pub const DEFAULT_BUCKETS: usize = 128;

struct Entry<K, V> {
    key: K,
    /// Audited under the happens-before checker: the slot's `Release` store
    /// (or the resize table swap) must order every reader after this write.
    value: RaceCell<V>,
}

impl<K, V> Entry<K, V> {
    /// Allocate an entry and declare the value write at its final heap
    /// address, *before* the caller publishes the pointer.
    fn alloc(key: K, value: V) -> Owned<Entry<K, V>> {
        let e = Owned::new(Entry { key, value: RaceCell::new(value) });
        e.value.mark_write();
        e
    }

    /// Clone the value out of a shared entry.
    ///
    /// # Safety
    /// `self` must have been reached through a live slot pointer under an
    /// epoch pin (the usual reader contract); no `&mut` access can be in
    /// progress because entries are never mutated after publication.
    unsafe fn value_clone(&self) -> V
    where
        V: Clone,
    {
        // SAFETY: per the function contract above.
        unsafe { self.value.with(V::clone) }
    }
}

struct Bucket<K, V> {
    slots: [Atomic<Entry<K, V>>; SLOTS],
}

impl<K, V> Bucket<K, V> {
    fn empty() -> Self {
        Bucket { slots: Default::default() }
    }
}

struct Table<K, V> {
    buckets: Box<[Bucket<K, V>]>,
    mask: usize,
}

impl<K, V> Table<K, V> {
    fn with_buckets(n: usize) -> Self {
        let n = n.next_power_of_two().max(2);
        let buckets = (0..n).map(|_| Bucket::empty()).collect();
        Table { buckets, mask: n - 1 }
    }
}

/// A concurrent hash map with lock-free reads and striped-lock writers.
pub struct CuckooMap<K, V> {
    table: Atomic<Table<K, V>>,
    stripes: Box<[Mutex<()>]>,
    resize_lock: Mutex<()>,
    len: AtomicUsize,
    h1: RandomState,
    h2: RandomState,
}

// SAFETY: entries are shared across threads through epoch-protected atomic
// pointers and cloned (never moved) out of shared slots, so both K and V must
// be Send + Sync; all interior mutation goes through atomics or stripe locks.
unsafe impl<K: Send + Sync, V: Send + Sync> Send for CuckooMap<K, V> {}
// SAFETY: see the Send impl above; &CuckooMap exposes only atomic/locked ops.
unsafe impl<K: Send + Sync, V: Send + Sync> Sync for CuckooMap<K, V> {}

impl<K, V> Default for CuckooMap<K, V>
where
    K: Hash + Eq + Clone + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
{
    fn default() -> Self {
        Self::new()
    }
}

impl<K, V> CuckooMap<K, V>
where
    K: Hash + Eq + Clone + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
{
    /// Create a map with the paper's default 128 buckets.
    pub fn new() -> Self {
        Self::with_buckets(DEFAULT_BUCKETS)
    }

    /// Create a map with at least `buckets` buckets (rounded to a power of
    /// two).
    pub fn with_buckets(buckets: usize) -> Self {
        CuckooMap {
            table: Atomic::new(Table::with_buckets(buckets)),
            stripes: (0..STRIPES).map(|_| Mutex::new(())).collect(),
            resize_lock: Mutex::new(()),
            len: AtomicUsize::new(0),
            h1: RandomState::new(),
            h2: RandomState::new(),
        }
    }

    /// Live entries.
    pub fn len(&self) -> usize {
        self.len.load(Ordering::Relaxed)
    }

    /// True when no entries exist.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Current bucket count (capacity is `buckets() * SLOTS`).
    pub fn buckets(&self) -> usize {
        let guard = &epoch::pin();
        let t = self.table.load(Ordering::Acquire, guard);
        // SAFETY: the table pointer is never null and the table is only
        // retired via defer_destroy after being unlinked, so it stays live
        // for the duration of our pin.
        unsafe { t.deref() }.mask + 1
    }

    fn hash1(&self, key: &K) -> u64 {
        let mut h = self.h1.build_hasher();
        key.hash(&mut h);
        h.finish()
    }

    fn hash2(&self, key: &K) -> u64 {
        let mut h = self.h2.build_hasher();
        key.hash(&mut h);
        h.finish()
    }

    fn bucket_pair(&self, t: &Table<K, V>, key: &K) -> (usize, usize) {
        let b1 = (self.hash1(key) as usize) & t.mask;
        let mut b2 = (self.hash2(key) as usize) & t.mask;
        if b1 == b2 {
            b2 = (b1 + 1) & t.mask;
        }
        (b1, b2)
    }

    fn stripe_of(b: usize) -> usize {
        b % STRIPES
    }

    /// Lock the stripes for the given bucket indices in order; dedup'd.
    fn lock_stripes(&self, mut idx: Vec<usize>) -> Vec<MutexGuard<'_, ()>> {
        idx.sort_unstable();
        idx.dedup();
        idx.into_iter().map(|s| self.stripes[s].lock()).collect()
    }

    /// Lock-free lookup.
    pub fn get(&self, key: &K) -> Option<V> {
        let guard = &epoch::pin();
        // SAFETY: the current table stays live while our pin is held (tables
        // are only reclaimed via defer_destroy after replacement).
        let t = unsafe { self.table.load(Ordering::Acquire, guard).deref() };
        let (b1, b2) = self.bucket_pair(t, key);
        for &b in &[b1, b2] {
            for slot in &t.buckets[b].slots {
                let e = slot.load(Ordering::Acquire, guard);
                // SAFETY: a non-null slot pointer read under the pin refers
                // to an entry whose reclamation is deferred past our guard.
                if let Some(er) = unsafe { e.as_ref() } {
                    if er.key == *key {
                        // SAFETY: live entry under the pin (see above).
                        return Some(unsafe { er.value_clone() });
                    }
                }
            }
        }
        None
    }

    /// True when `key` is present.
    pub fn contains(&self, key: &K) -> bool {
        self.get(key).is_some()
    }

    /// Insert `key -> value`; returns the previous value on overwrite.
    pub fn insert(&self, key: K, value: V) -> Option<V> {
        let guard = &epoch::pin();
        loop {
            let t_shared = self.table.load(Ordering::Acquire, guard);
            // SAFETY: table pointers stay live for the duration of our pin.
            let t = unsafe { t_shared.deref() };
            let (b1, b2) = self.bucket_pair(t, &key);
            let locks =
                self.lock_stripes(vec![Self::stripe_of(b1), Self::stripe_of(b2)]);
            if self.table.load(Ordering::Acquire, guard) != t_shared {
                drop(locks);
                continue; // table swapped while we were locking
            }
            // 1) Overwrite in place if present.
            for &b in &[b1, b2] {
                for slot in &t.buckets[b].slots {
                    let e = slot.load(Ordering::Acquire, guard);
                    // SAFETY: non-null entry read under the pin; reclamation
                    // is deferred past our guard.
                    if let Some(er) = unsafe { e.as_ref() } {
                        if er.key == key {
                            // SAFETY: live entry under the pin (see above).
                            let old = unsafe { er.value_clone() };
                            slot.store(Entry::alloc(key, value), Ordering::Release);
                            // SAFETY: we hold this bucket's stripe lock, so
                            // no other writer can retire `e` twice; readers
                            // are protected by their own pins.
                            unsafe { guard.defer_destroy(e) };
                            return Some(old);
                        }
                    }
                }
            }
            // 2) Empty slot in either candidate bucket.
            if let Some(slot) = self.first_empty(t, b1, b2, guard) {
                slot.store(Entry::alloc(key, value), Ordering::Release);
                // ORDERING: Relaxed — `len` is a statistic; all structural
                // synchronization happens via the stripe locks.
                self.len.fetch_add(1, Ordering::Relaxed);
                drop(locks);
                self.maybe_grow(guard);
                return None;
            }
            // 3) Displacement: move one resident to its alternate bucket.
            if self.displace(t, b1, b2, &locks, guard) {
                let slot = self
                    .first_empty(t, b1, b2, guard)
                    .expect("displacement freed a slot under our locks");
                slot.store(Entry::alloc(key, value), Ordering::Release);
                // ORDERING: Relaxed statistic (see above).
                self.len.fetch_add(1, Ordering::Relaxed);
                drop(locks);
                self.maybe_grow(guard);
                return None;
            }
            // 4) No room: resize and retry.
            drop(locks);
            self.resize(t_shared, (t.mask + 1) * 2, guard);
        }
    }

    fn first_empty<'t>(
        &self,
        t: &'t Table<K, V>,
        b1: usize,
        b2: usize,
        guard: &Guard,
    ) -> Option<&'t Atomic<Entry<K, V>>> {
        for &b in &[b1, b2] {
            for slot in &t.buckets[b].slots {
                if slot.load(Ordering::Acquire, guard).is_null() {
                    return Some(slot);
                }
            }
        }
        None
    }

    /// Try to relocate one entry from `b1`/`b2` to its alternate bucket
    /// (depth-1 cuckoo path). Requires the caller to hold the stripes for
    /// `b1` and `b2`; takes the alternate's stripe with `try_lock` to stay
    /// deadlock-free.
    fn displace(
        &self,
        t: &Table<K, V>,
        b1: usize,
        b2: usize,
        _held: &[MutexGuard<'_, ()>],
        guard: &Guard,
    ) -> bool {
        let held_stripes = {
            let mut v = vec![Self::stripe_of(b1), Self::stripe_of(b2)];
            v.sort_unstable();
            v.dedup();
            v
        };
        for &b in &[b1, b2] {
            for slot in &t.buckets[b].slots {
                let e = slot.load(Ordering::Acquire, guard);
                // SAFETY: non-null entry read under the caller's pin; we also
                // hold the stripe lock for this bucket, so the slot cannot be
                // retired concurrently.
                let Some(er) = (unsafe { e.as_ref() }) else { continue };
                let (eb1, eb2) = self.bucket_pair(t, &er.key);
                let alt = if eb1 == b { eb2 } else { eb1 };
                if alt == b1 || alt == b2 {
                    continue; // alternate is also full (we're in this branch)
                }
                let alt_stripe = Self::stripe_of(alt);
                let _alt_guard;
                if !held_stripes.contains(&alt_stripe) {
                    match self.stripes[alt_stripe].try_lock() {
                        Some(g) => _alt_guard = Some(g),
                        None => continue, // contended; try another victim
                    }
                } else {
                    _alt_guard = None;
                }
                // Find an empty slot in the alternate bucket.
                for alt_slot in &t.buckets[alt].slots {
                    if alt_slot.load(Ordering::Acquire, guard).is_null() {
                        // Publish in the alternate first, then clear the old
                        // slot: readers may briefly see the entry twice but
                        // never zero times.
                        alt_slot.store(e.with_tag(0), Ordering::Release);
                        slot.store(Shared::null(), Ordering::Release);
                        return true;
                    }
                }
            }
        }
        false
    }

    fn maybe_grow(&self, guard: &Guard) {
        let t_shared = self.table.load(Ordering::Acquire, guard);
        // SAFETY: table pointers stay live for the duration of our pin.
        let t = unsafe { t_shared.deref() };
        let capacity = (t.mask + 1) * SLOTS;
        if (self.len() as f64) > LOAD_FACTOR * capacity as f64 {
            self.resize(t_shared, (t.mask + 1) * 2, guard);
        }
    }

    /// Explicitly resize to `new_buckets` (the paper's
    /// `resize(partition_id, new_size)` surface; growth only).
    pub fn resize_to(&self, new_buckets: usize) {
        let guard = &epoch::pin();
        let t_shared = self.table.load(Ordering::Acquire, guard);
        self.resize(t_shared, new_buckets, guard);
    }

    fn resize(&self, old_shared: Shared<'_, Table<K, V>>, new_buckets: usize, guard: &Guard) {
        let _resize = self.resize_lock.lock();
        let cur = self.table.load(Ordering::Acquire, guard);
        if cur != old_shared {
            return; // someone else already resized
        }
        // SAFETY: `cur` is the live table; we hold the resize lock, so no
        // competing resize can retire it under us.
        let old = unsafe { cur.deref() };
        if new_buckets <= old.mask + 1 {
            return;
        }
        // Block all writers.
        let _all: Vec<MutexGuard<'_, ()>> = self.stripes.iter().map(|m| m.lock()).collect();
        let mut size = new_buckets.next_power_of_two();
        'grow: loop {
            let new_t = Table::<K, V>::with_buckets(size);
            for bucket in old.buckets.iter() {
                for slot in &bucket.slots {
                    let e = slot.load(Ordering::Acquire, guard);
                    // SAFETY: all stripes are locked, so entries cannot be
                    // retired while we migrate them; the pin covers reads.
                    let Some(er) = (unsafe { e.as_ref() }) else { continue };
                    let (nb1, nb2) = {
                        let b1 = (self.hash1(&er.key) as usize) & new_t.mask;
                        let mut b2 = (self.hash2(&er.key) as usize) & new_t.mask;
                        if b1 == b2 {
                            b2 = (b1 + 1) & new_t.mask;
                        }
                        (b1, b2)
                    };
                    let mut placed = false;
                    'place: for &nb in &[nb1, nb2] {
                        for nslot in &new_t.buckets[nb].slots {
                            if nslot.load(Ordering::Relaxed, guard).is_null() {
                                // ORDERING: Relaxed — `new_t` is still
                                // thread-private; the table-swap store below
                                // (Release) publishes all of it at once.
                                nslot.store(e.with_tag(0), Ordering::Relaxed);
                                placed = true;
                                break 'place;
                            }
                        }
                    }
                    if !placed {
                        // Pathological distribution: double again and redo.
                        size *= 2;
                        continue 'grow;
                    }
                }
            }
            self.table.store(Owned::new(new_t), Ordering::Release);
            // SAFETY: `cur` was just unlinked and we hold the resize lock,
            // so it is retired exactly once; pinned readers keep it alive
            // until their guards drop.
            unsafe { guard.defer_destroy(cur) };
            return;
        }
    }

    /// Atomically read-modify-write the value for `key`: `f` receives the
    /// current value (if any) and returns the new one. Runs under the
    /// bucket-pair stripe locks, so concurrent upserts to the same key
    /// never lose updates — this is what HCL's server-side execution gives
    /// histogram workloads like Meraculous k-mer counting for free.
    pub fn upsert(&self, key: K, f: impl Fn(Option<&V>) -> V) -> V {
        let guard = &epoch::pin();
        loop {
            let t_shared = self.table.load(Ordering::Acquire, guard);
            // SAFETY: table pointers stay live for the duration of our pin.
            let t = unsafe { t_shared.deref() };
            let (b1, b2) = self.bucket_pair(t, &key);
            let locks = self.lock_stripes(vec![Self::stripe_of(b1), Self::stripe_of(b2)]);
            if self.table.load(Ordering::Acquire, guard) != t_shared {
                drop(locks);
                continue;
            }
            // Modify in place if present.
            for &b in &[b1, b2] {
                for slot in &t.buckets[b].slots {
                    let e = slot.load(Ordering::Acquire, guard);
                    // SAFETY: non-null entry read under the pin, stripe lock
                    // held — cannot be retired concurrently.
                    if let Some(er) = unsafe { e.as_ref() } {
                        if er.key == key {
                            // SAFETY: live entry under the pin, stripe lock
                            // held (see above).
                            let new_val = unsafe { er.value.with(|v| f(Some(v))) };
                            let ret = new_val.clone();
                            slot.store(Entry::alloc(key, new_val), Ordering::Release);
                            // SAFETY: stripe lock held ⇒ single retirer;
                            // readers are covered by their pins.
                            unsafe { guard.defer_destroy(e) };
                            return ret;
                        }
                    }
                }
            }
            // Absent: fresh insert.
            let new_val = f(None);
            if let Some(slot) = self.first_empty(t, b1, b2, guard) {
                let ret = new_val.clone();
                slot.store(Entry::alloc(key, new_val), Ordering::Release);
                // ORDERING: Relaxed statistic; structure is lock-protected.
                self.len.fetch_add(1, Ordering::Relaxed);
                drop(locks);
                self.maybe_grow(guard);
                return ret;
            }
            if self.displace(t, b1, b2, &locks, guard) {
                let slot = self
                    .first_empty(t, b1, b2, guard)
                    .expect("displacement freed a slot under our locks");
                let ret = new_val.clone();
                slot.store(Entry::alloc(key, new_val), Ordering::Release);
                // ORDERING: Relaxed statistic; structure is lock-protected.
                self.len.fetch_add(1, Ordering::Relaxed);
                drop(locks);
                self.maybe_grow(guard);
                return ret;
            }
            drop(locks);
            self.resize(t_shared, (t.mask + 1) * 2, guard);
        }
    }

    /// Remove `key`; returns its value when present.
    pub fn remove(&self, key: &K) -> Option<V> {
        let guard = &epoch::pin();
        loop {
            let t_shared = self.table.load(Ordering::Acquire, guard);
            // SAFETY: table pointers stay live for the duration of our pin.
            let t = unsafe { t_shared.deref() };
            let (b1, b2) = self.bucket_pair(t, key);
            let locks =
                self.lock_stripes(vec![Self::stripe_of(b1), Self::stripe_of(b2)]);
            if self.table.load(Ordering::Acquire, guard) != t_shared {
                drop(locks);
                continue;
            }
            for &b in &[b1, b2] {
                for slot in &t.buckets[b].slots {
                    let e = slot.load(Ordering::Acquire, guard);
                    // SAFETY: non-null entry read under the pin, stripe lock
                    // held — cannot be retired concurrently.
                    if let Some(er) = unsafe { e.as_ref() } {
                        if er.key == *key {
                            // SAFETY: live entry under the pin, stripe lock
                            // held (see above).
                            let v = unsafe { er.value_clone() };
                            slot.store(Shared::null(), Ordering::Release);
                            // ORDERING: Relaxed — statistic only; the
                            // decrement happens under the stripe locks, so
                            // it cannot underflow (insert incremented first).
                            self.len.fetch_sub(1, Ordering::Relaxed);
                            // SAFETY: stripe lock held ⇒ single retirer.
                            unsafe { guard.defer_destroy(e) };
                            return Some(v);
                        }
                    }
                }
            }
            return None;
        }
    }

    /// Clone out every entry (not atomic; used for migration/persistence).
    pub fn iter_snapshot(&self) -> Vec<(K, V)> {
        let guard = &epoch::pin();
        // SAFETY: table pointers stay live for the duration of our pin.
        let t = unsafe { self.table.load(Ordering::Acquire, guard).deref() };
        let mut out = Vec::with_capacity(self.len());
        for bucket in t.buckets.iter() {
            for slot in &bucket.slots {
                // SAFETY: non-null entries read under the pin cannot be
                // reclaimed before the guard drops.
                if let Some(er) = unsafe { slot.load(Ordering::Acquire, guard).as_ref() } {
                    // SAFETY: live entry under the pin (see above).
                    out.push((er.key.clone(), unsafe { er.value_clone() }));
                }
            }
        }
        out
    }
}

impl<K, V> Drop for CuckooMap<K, V> {
    fn drop(&mut self) {
        // SAFETY: &mut self guarantees no concurrent accessor exists, which
        // is exactly the contract `unprotected()` requires.
        let guard = unsafe { epoch::unprotected() };
        let t_shared = self.table.load(Ordering::Relaxed, guard);
        // SAFETY: the table pointer is never null and nothing can retire it
        // while we hold &mut self.
        let t = unsafe { t_shared.deref() };
        for bucket in t.buckets.iter() {
            for slot in &bucket.slots {
                let e = slot.load(Ordering::Relaxed, guard);
                if !e.is_null() {
                    // SAFETY: exclusive access; each live entry is owned by
                    // exactly one slot here (resize/displace never leave
                    // duplicates behind), so into_owned frees it once.
                    unsafe { drop(e.into_owned()) };
                }
            }
        }
        // SAFETY: exclusive access; the table itself is freed last.
        unsafe { drop(t_shared.into_owned()) };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;
    use std::sync::Arc;

    #[test]
    fn insert_get_remove_basic() {
        let m = CuckooMap::new();
        assert_eq!(m.insert("a".to_string(), 1u32), None);
        assert_eq!(m.insert("b".to_string(), 2), None);
        assert_eq!(m.get(&"a".to_string()), Some(1));
        assert_eq!(m.get(&"z".to_string()), None);
        assert_eq!(m.insert("a".to_string(), 10), Some(1));
        assert_eq!(m.get(&"a".to_string()), Some(10));
        assert_eq!(m.len(), 2);
        assert_eq!(m.remove(&"a".to_string()), Some(10));
        assert_eq!(m.remove(&"a".to_string()), None);
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn grows_past_initial_capacity() {
        let m = CuckooMap::with_buckets(2); // capacity 8
        for i in 0..1_000u64 {
            m.insert(i, i * 2);
        }
        assert_eq!(m.len(), 1_000);
        assert!(m.buckets() * SLOTS >= 1_000);
        for i in 0..1_000u64 {
            assert_eq!(m.get(&i), Some(i * 2), "key {i} lost in resize");
        }
    }

    #[test]
    fn explicit_resize_preserves_entries() {
        let m = CuckooMap::with_buckets(4);
        for i in 0..10u64 {
            m.insert(i, i);
        }
        let before = m.buckets();
        m.resize_to(before * 8);
        assert!(m.buckets() >= before * 8);
        for i in 0..10u64 {
            assert_eq!(m.get(&i), Some(i));
        }
    }

    #[test]
    fn matches_hashmap_oracle_sequential() {
        let m = CuckooMap::with_buckets(4);
        let mut oracle = HashMap::new();
        let mut x = 99u64;
        for _ in 0..10_000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let k = (x >> 33) % 500;
            match (x >> 2) % 4 {
                0 | 1 => assert_eq!(m.insert(k, x), oracle.insert(k, x)),
                2 => assert_eq!(m.get(&k), oracle.get(&k).copied()),
                _ => assert_eq!(m.remove(&k), oracle.remove(&k)),
            }
            assert_eq!(m.len(), oracle.len());
        }
        let mut snap = m.iter_snapshot();
        snap.sort_unstable();
        let mut want: Vec<(u64, u64)> = oracle.into_iter().collect();
        want.sort_unstable();
        assert_eq!(snap, want);
    }

    #[test]
    fn concurrent_disjoint_inserts() {
        let m = Arc::new(CuckooMap::with_buckets(4));
        let threads = 8u64;
        let per = 5_000u64;
        std::thread::scope(|s| {
            for t in 0..threads {
                let m = Arc::clone(&m);
                s.spawn(move || {
                    for i in 0..per {
                        assert_eq!(m.insert(t * per + i, i), None);
                    }
                });
            }
        });
        assert_eq!(m.len() as u64, threads * per);
        for t in 0..threads {
            for i in 0..per {
                assert_eq!(m.get(&(t * per + i)), Some(i));
            }
        }
    }

    #[test]
    fn concurrent_readers_during_writes_and_resizes() {
        let m = Arc::new(CuckooMap::with_buckets(2));
        // Pre-populate stable keys that readers assert on throughout.
        for i in 0..100u64 {
            m.insert(i, i);
        }
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let m = Arc::clone(&m);
                s.spawn(move || {
                    for i in 0..10_000u64 {
                        m.insert(1_000 + t * 10_000 + i, i); // force growth
                    }
                });
            }
            for _ in 0..4 {
                let m = Arc::clone(&m);
                s.spawn(move || {
                    for round in 0..20_000u64 {
                        let k = round % 100;
                        assert_eq!(m.get(&k), Some(k), "stable key {k} vanished");
                    }
                });
            }
        });
        assert_eq!(m.len() as u64, 100 + 4 * 10_000);
    }

    #[test]
    fn concurrent_same_key_overwrites_keep_one_value() {
        let m = Arc::new(CuckooMap::with_buckets(4));
        std::thread::scope(|s| {
            for t in 0..8u64 {
                let m = Arc::clone(&m);
                s.spawn(move || {
                    for _ in 0..5_000 {
                        m.insert(42u64, t);
                    }
                });
            }
        });
        let v = m.get(&42).unwrap();
        assert!(v < 8);
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn concurrent_remove_claims_unique() {
        let m = Arc::new(CuckooMap::with_buckets(4));
        let n = 5_000u64;
        for i in 0..n {
            m.insert(i, i);
        }
        let claimed = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|s| {
            for _ in 0..8 {
                let m = Arc::clone(&m);
                let claimed = Arc::clone(&claimed);
                s.spawn(move || {
                    for i in 0..n {
                        if m.remove(&i).is_some() {
                            claimed.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        assert_eq!(claimed.load(Ordering::Relaxed) as u64, n);
        assert_eq!(m.len(), 0);
    }

    #[test]
    fn concurrent_upserts_never_lose_increments() {
        let m = Arc::new(CuckooMap::<u64, u64>::with_buckets(4));
        let threads = 8u64;
        let per = 5_000u64;
        std::thread::scope(|s| {
            for _ in 0..threads {
                let m = Arc::clone(&m);
                s.spawn(move || {
                    for i in 0..per {
                        m.upsert(i % 16, |old| old.copied().unwrap_or(0) + 1);
                    }
                });
            }
        });
        let total: u64 = (0..16u64).map(|k| m.get(&k).unwrap()).sum();
        assert_eq!(total, threads * per, "lost increments under contention");
    }

    #[test]
    fn upsert_inserts_when_absent_and_grows() {
        let m = CuckooMap::<u64, String>::with_buckets(2);
        for i in 0..200u64 {
            let v = m.upsert(i, |old| {
                assert!(old.is_none());
                format!("v{i}")
            });
            assert_eq!(v, format!("v{i}"));
        }
        assert_eq!(m.len(), 200);
        assert_eq!(m.upsert(7, |old| format!("{}!", old.unwrap())), "v7!");
    }

    #[test]
    fn variable_length_values() {
        let m = CuckooMap::new();
        for i in 0..100usize {
            m.insert(i, vec![i as u8; i]); // sizes 0..99
        }
        for i in 0..100usize {
            assert_eq!(m.get(&i).unwrap().len(), i);
        }
    }
}
