//! A lock-free MPMC FIFO queue (Michael–Scott construction).
//!
//! HCL's `HCL::queue` (§III-D3A) uses "a state-of-the-art algorithm that
//! maintains a list of pointers to allow concurrent lock-free operations"
//! (the optimistic queue of Ladan-Mozes & Shavit). We implement the classic
//! Michael–Scott CAS queue, which provides the identical interface and
//! progress guarantee; the optimistic variant's backwards "fix-list" pass is
//! an optimisation of the same list-of-pointers design (it reduces the number
//! of CASes per push from 2 to 1 in the common case), not a semantic change.

use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicUsize, Ordering};

use crossbeam::epoch::{self, Atomic, Owned, Shared};
use crossbeam::utils::CachePadded;

struct Node<T> {
    /// Initialised for every node except the sentinel; consumed by `pop`.
    value: MaybeUninit<T>,
    next: Atomic<Node<T>>,
}

/// A lock-free multi-producer multi-consumer FIFO queue.
pub struct LockFreeQueue<T> {
    head: CachePadded<Atomic<Node<T>>>,
    tail: CachePadded<Atomic<Node<T>>>,
    len: AtomicUsize,
}

unsafe impl<T: Send> Send for LockFreeQueue<T> {}
unsafe impl<T: Send> Sync for LockFreeQueue<T> {}

impl<T> Default for LockFreeQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> LockFreeQueue<T> {
    /// Create an empty queue.
    pub fn new() -> Self {
        let sentinel = Owned::new(Node { value: MaybeUninit::uninit(), next: Atomic::null() });
        let guard = epoch::pin();
        let sentinel = sentinel.into_shared(&guard);
        LockFreeQueue {
            head: CachePadded::new(Atomic::from(sentinel)),
            tail: CachePadded::new(Atomic::from(sentinel)),
            len: AtomicUsize::new(0),
        }
    }

    /// Append `value` at the tail. Lock-free; never blocks.
    pub fn push(&self, value: T) {
        let guard = epoch::pin();
        let new = Owned::new(Node { value: MaybeUninit::new(value), next: Atomic::null() })
            .into_shared(&guard);
        loop {
            let tail = self.tail.load(Ordering::Acquire, &guard);
            let t = unsafe { tail.deref() };
            let next = t.next.load(Ordering::Acquire, &guard);
            if !next.is_null() {
                // Tail is lagging: help advance it, then retry.
                let _ = self.tail.compare_exchange(
                    tail,
                    next,
                    Ordering::Release,
                    Ordering::Relaxed,
                    &guard,
                );
                continue;
            }
            if t.next
                .compare_exchange(
                    Shared::null(),
                    new,
                    Ordering::Release,
                    Ordering::Relaxed,
                    &guard,
                )
                .is_ok()
            {
                let _ = self.tail.compare_exchange(
                    tail,
                    new,
                    Ordering::Release,
                    Ordering::Relaxed,
                    &guard,
                );
                self.len.fetch_add(1, Ordering::Relaxed);
                return;
            }
        }
    }

    /// Remove and return the head element, or `None` when empty.
    pub fn pop(&self) -> Option<T> {
        let guard = epoch::pin();
        loop {
            let head = self.head.load(Ordering::Acquire, &guard);
            let h = unsafe { head.deref() };
            let next = h.next.load(Ordering::Acquire, &guard);
            let n = unsafe { next.as_ref() }?;
            // Keep the tail from pointing at the node we are about to retire.
            let tail = self.tail.load(Ordering::Acquire, &guard);
            if tail == head {
                let _ = self.tail.compare_exchange(
                    tail,
                    next,
                    Ordering::Release,
                    Ordering::Relaxed,
                    &guard,
                );
            }
            if self
                .head
                .compare_exchange(head, next, Ordering::Release, Ordering::Relaxed, &guard)
                .is_ok()
            {
                self.len.fetch_sub(1, Ordering::Relaxed);
                // `next` becomes the new sentinel; its value is moved out
                // here and must never be read or dropped again. The old
                // sentinel's value slot is already vacant.
                let value = unsafe { n.value.assume_init_read() };
                unsafe { guard.defer_destroy(head) };
                return Some(value);
            }
        }
    }

    /// Push a batch (the paper's `push(const std::vector<T>&)` bulk form).
    pub fn push_bulk(&self, values: impl IntoIterator<Item = T>) -> usize {
        let mut n = 0;
        for v in values {
            self.push(v);
            n += 1;
        }
        n
    }

    /// Pop up to `max` elements (the paper's bulk pop form).
    pub fn pop_bulk(&self, max: usize) -> Vec<T> {
        let mut out = Vec::with_capacity(max);
        for _ in 0..max {
            match self.pop() {
                Some(v) => out.push(v),
                None => break,
            }
        }
        out
    }

    /// Approximate number of elements (exact when quiescent).
    pub fn len(&self) -> usize {
        self.len.load(Ordering::Relaxed)
    }

    /// Clone out the queued elements front-to-back (exact when quiescent;
    /// used for snapshot persistence).
    pub fn iter_snapshot(&self) -> Vec<T>
    where
        T: Clone,
    {
        let guard = epoch::pin();
        let mut out = Vec::with_capacity(self.len());
        let head = self.head.load(Ordering::Acquire, &guard);
        // The sentinel's value slot is vacant; elements start at its next.
        let mut curr = unsafe { head.deref() }.next.load(Ordering::Acquire, &guard);
        while let Some(node) = unsafe { curr.as_ref() } {
            out.push(unsafe { node.value.assume_init_ref() }.clone());
            curr = node.next.load(Ordering::Acquire, &guard);
        }
        out
    }

    /// True when the queue appears empty.
    pub fn is_empty(&self) -> bool {
        let guard = epoch::pin();
        let head = self.head.load(Ordering::Acquire, &guard);
        unsafe { head.deref() }.next.load(Ordering::Acquire, &guard).is_null()
    }
}

impl<T> Drop for LockFreeQueue<T> {
    fn drop(&mut self) {
        // Drain remaining values, then free the sentinel.
        while self.pop().is_some() {}
        let guard = epoch::pin();
        let head = self.head.load(Ordering::Relaxed, &guard);
        unsafe {
            // The sentinel's value slot is uninitialised; just free the node.
            drop(head.into_owned());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::Arc;

    #[test]
    fn fifo_order_single_thread() {
        let q = LockFreeQueue::new();
        for i in 0..100 {
            q.push(i);
        }
        assert_eq!(q.len(), 100);
        for i in 0..100 {
            assert_eq!(q.pop(), Some(i));
        }
        assert_eq!(q.pop(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn bulk_ops() {
        let q = LockFreeQueue::new();
        assert_eq!(q.push_bulk(0..10), 10);
        let got = q.pop_bulk(4);
        assert_eq!(got, vec![0, 1, 2, 3]);
        let rest = q.pop_bulk(100);
        assert_eq!(rest.len(), 6);
        assert!(q.pop_bulk(5).is_empty());
    }

    #[test]
    fn values_dropped_on_queue_drop() {
        // Arc strong counts tell us every element was dropped exactly once.
        let marker = Arc::new(());
        {
            let q = LockFreeQueue::new();
            for _ in 0..50 {
                q.push(Arc::clone(&marker));
            }
            let _ = q.pop();
        }
        // Epoch reclamation is deferred; flush a few pins to drain it.
        for _ in 0..256 {
            epoch::pin().flush();
        }
        // All 50 clones eventually released (the popped one immediately).
        // We can't force epoch collection deterministically, so only assert
        // no *extra* references appeared.
        assert!(Arc::strong_count(&marker) >= 1);
    }

    #[test]
    fn mpmc_no_loss_no_duplication() {
        let q = Arc::new(LockFreeQueue::new());
        let producers = 4;
        let consumers = 4;
        let per_producer = 10_000u64;
        let mut handles = Vec::new();
        for p in 0..producers {
            let q = Arc::clone(&q);
            handles.push(std::thread::spawn(move || {
                for i in 0..per_producer {
                    q.push(p as u64 * per_producer + i);
                }
            }));
        }
        let collected: Arc<parking_lot::Mutex<Vec<u64>>> =
            Arc::new(parking_lot::Mutex::new(Vec::new()));
        let total = producers as u64 * per_producer;
        let popped = Arc::new(AtomicUsize::new(0));
        for _ in 0..consumers {
            let q = Arc::clone(&q);
            let collected = Arc::clone(&collected);
            let popped = Arc::clone(&popped);
            handles.push(std::thread::spawn(move || {
                let mut local = Vec::new();
                while (popped.load(Ordering::Relaxed) as u64) < total {
                    if let Some(v) = q.pop() {
                        popped.fetch_add(1, Ordering::Relaxed);
                        local.push(v);
                    } else {
                        std::thread::yield_now();
                    }
                }
                collected.lock().extend(local);
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let all = collected.lock();
        assert_eq!(all.len() as u64, total);
        let set: HashSet<u64> = all.iter().copied().collect();
        assert_eq!(set.len() as u64, total, "duplicated element detected");
    }

    #[test]
    fn per_producer_order_preserved() {
        // FIFO per producer: a single consumer must see each producer's
        // elements in increasing order.
        let q = Arc::new(LockFreeQueue::new());
        let producers = 3usize;
        let n = 5_000u64;
        let mut handles = Vec::new();
        for p in 0..producers {
            let q = Arc::clone(&q);
            handles.push(std::thread::spawn(move || {
                for i in 0..n {
                    q.push((p as u64, i));
                }
            }));
        }
        let mut last = vec![-1i64; producers];
        let mut seen = 0;
        while seen < producers as u64 * n {
            if let Some((p, i)) = q.pop() {
                assert!(last[p as usize] < i as i64, "producer {p} reordered");
                last[p as usize] = i as i64;
                seen += 1;
            }
        }
        for h in handles {
            h.join().unwrap();
        }
    }
}
