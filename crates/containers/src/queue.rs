//! A lock-free MPMC FIFO queue (Michael–Scott construction).
//!
//! HCL's `HCL::queue` (§III-D3A) uses "a state-of-the-art algorithm that
//! maintains a list of pointers to allow concurrent lock-free operations"
//! (the optimistic queue of Ladan-Mozes & Shavit). We implement the classic
//! Michael–Scott CAS queue, which provides the identical interface and
//! progress guarantee; the optimistic variant's backwards "fix-list" pass is
//! an optimisation of the same list-of-pointers design (it reduces the number
//! of CASes per push from 2 to 1 in the common case), not a semantic change.
//!
//! Atomics come from the `conc_check::sync` facade: a plain re-export of
//! `std::sync::atomic` in normal builds, and schedule-exploring wrappers
//! under `--cfg conc_check` (see `crates/conc-check`). The value slot sits
//! in a `conc_check::RaceCell` — a zero-cost passthrough by default, an
//! audited shadow cell under the happens-before checker, which fails any
//! schedule where a slot is read without a real publication edge.

use std::mem::MaybeUninit;

use conc_check::sync::{AtomicIsize, Ordering};
use conc_check::RaceCell;
use crossbeam::epoch::{self, Atomic, Owned, Shared};
use crossbeam::utils::CachePadded;

struct Node<T> {
    /// Initialised for every node except the sentinel; consumed by `pop`.
    value: RaceCell<MaybeUninit<T>>,
    next: Atomic<Node<T>>,
}

/// A lock-free multi-producer multi-consumer FIFO queue.
pub struct LockFreeQueue<T> {
    head: CachePadded<Atomic<Node<T>>>,
    tail: CachePadded<Atomic<Node<T>>>,
    /// Signed on purpose: `pop` may decrement before the racing `push` that
    /// linked the node has incremented, so the counter can transiently dip
    /// below zero. `len()` clamps at 0 instead of wrapping to 2^64-1.
    len: AtomicIsize,
}

// SAFETY: the queue owns its nodes and hands out values only once (pop moves
// them out); all shared-node access is synchronized through epoch-protected
// atomics, so it is Send/Sync whenever T itself may move between threads.
unsafe impl<T: Send> Send for LockFreeQueue<T> {}
// SAFETY: see the Send impl above; &LockFreeQueue only exposes atomic ops.
unsafe impl<T: Send> Sync for LockFreeQueue<T> {}

impl<T> Default for LockFreeQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> LockFreeQueue<T> {
    /// Create an empty queue.
    pub fn new() -> Self {
        let sentinel =
            Owned::new(Node { value: RaceCell::new(MaybeUninit::uninit()), next: Atomic::null() });
        let guard = epoch::pin();
        let sentinel = sentinel.into_shared(&guard);
        LockFreeQueue {
            head: CachePadded::new(Atomic::from(sentinel)),
            tail: CachePadded::new(Atomic::from(sentinel)),
            len: AtomicIsize::new(0),
        }
    }

    /// Append `value` at the tail. Lock-free; never blocks.
    pub fn push(&self, value: T) {
        let guard = epoch::pin();
        let new =
            Owned::new(Node { value: RaceCell::new(MaybeUninit::new(value)), next: Atomic::null() });
        // Declare the write at the slot's final heap address, before the
        // node is published: the releasing link CAS below is the edge every
        // consumer's read must be ordered after.
        new.value.mark_write();
        let new = new.into_shared(&guard);
        loop {
            let tail = self.tail.load(Ordering::Acquire, &guard);
            // SAFETY: `tail` was loaded from a live queue pointer under the
            // epoch guard, so the node cannot be reclaimed while we hold it.
            let t = unsafe { tail.deref() };
            let next = t.next.load(Ordering::Acquire, &guard);
            if !next.is_null() {
                // Tail is lagging: help advance it, then retry.
                // ORDERING: failure is Relaxed — a lost helping CAS carries
                // no data; the retry re-loads tail with Acquire.
                let _ = self.tail.compare_exchange(
                    tail,
                    next,
                    Ordering::Release,
                    Ordering::Relaxed,
                    &guard,
                );
                continue;
            }
            // ORDERING: success is Release so the node's value is published
            // before the link becomes visible; failure is Relaxed because we
            // discard the observed value and retry from a fresh Acquire load.
            if t.next
                .compare_exchange(
                    Shared::null(),
                    new,
                    Ordering::Release,
                    Ordering::Relaxed,
                    &guard,
                )
                .is_ok()
            {
                // ORDERING: failure is Relaxed — if another thread already
                // swung the tail past us, there is nothing left to publish.
                let _ = self.tail.compare_exchange(
                    tail,
                    new,
                    Ordering::Release,
                    Ordering::Relaxed,
                    &guard,
                );
                // ORDERING: Relaxed — `len` is a monotonic statistic with no
                // release/acquire obligations; readers tolerate staleness.
                self.len.fetch_add(1, Ordering::Relaxed);
                return;
            }
        }
    }

    /// Remove and return the head element, or `None` when empty.
    pub fn pop(&self) -> Option<T> {
        let guard = epoch::pin();
        loop {
            let head = self.head.load(Ordering::Acquire, &guard);
            // SAFETY: `head` is the current sentinel, loaded under the epoch
            // guard; it is only retired after head is CASed away, and never
            // freed before our guard unpins.
            let h = unsafe { head.deref() };
            let next = h.next.load(Ordering::Acquire, &guard);
            // SAFETY: `next` was read from the live sentinel under the same
            // guard; if non-null it points at a node that cannot be
            // reclaimed before the guard drops.
            let n = unsafe { next.as_ref() }?;
            // Keep the tail from pointing at the node we are about to retire.
            let tail = self.tail.load(Ordering::Acquire, &guard);
            if tail == head {
                // ORDERING: failure is Relaxed — helping CAS, value unused.
                let _ = self.tail.compare_exchange(
                    tail,
                    next,
                    Ordering::Release,
                    Ordering::Relaxed,
                    &guard,
                );
            }
            // ORDERING: success is Release to order the sentinel swap with
            // the subsequent value read; failure is Relaxed (pure retry).
            if self
                .head
                .compare_exchange(head, next, Ordering::Release, Ordering::Relaxed, &guard)
                .is_ok()
            {
                // ORDERING: Relaxed statistic. This decrement may race ahead
                // of the linking push's increment — hence the signed counter
                // and the clamp in `len()`.
                self.len.fetch_sub(1, Ordering::Relaxed);
                // SAFETY: `next` becomes the new sentinel; the winning CAS
                // grants us unique ownership of its value slot, which is
                // moved out exactly once here and never read or dropped
                // again (sentinel value slots are treated as vacant). The
                // slot was initialised before the push published the node.
                let value = unsafe { n.value.with(|v| v.assume_init_read()) };
                // SAFETY: `head` was unlinked by the CAS above, so no new
                // reference can be created; defer_destroy waits for all
                // current guards before reclaiming.
                unsafe { guard.defer_destroy(head) };
                return Some(value);
            }
        }
    }

    /// Push a batch (the paper's `push(const std::vector<T>&)` bulk form).
    pub fn push_bulk(&self, values: impl IntoIterator<Item = T>) -> usize {
        let mut n = 0;
        for v in values {
            self.push(v);
            n += 1;
        }
        n
    }

    /// Pop up to `max` elements (the paper's bulk pop form).
    pub fn pop_bulk(&self, max: usize) -> Vec<T> {
        // `max` may be usize::MAX ("drain everything"); clamp the
        // preallocation to what is actually queued.
        let mut out = Vec::with_capacity(max.min(self.len()));
        for _ in 0..max {
            match self.pop() {
                Some(v) => out.push(v),
                None => break,
            }
        }
        out
    }

    /// Approximate number of elements (exact when quiescent). Clamped at 0:
    /// a pop's decrement can land before the racing push's increment, making
    /// the raw counter transiently negative.
    pub fn len(&self) -> usize {
        self.len.load(Ordering::Relaxed).max(0) as usize
    }

    /// Clone out the queued elements front-to-back (exact when quiescent;
    /// used for snapshot persistence).
    pub fn iter_snapshot(&self) -> Vec<T>
    where
        T: Clone,
    {
        let guard = epoch::pin();
        let mut out = Vec::with_capacity(self.len());
        let head = self.head.load(Ordering::Acquire, &guard);
        // The sentinel's value slot is vacant; elements start at its next.
        // SAFETY: the sentinel is live while the guard is held.
        let mut curr = unsafe { head.deref() }.next.load(Ordering::Acquire, &guard);
        // SAFETY: each node was reached through live links under the guard,
        // so it is not reclaimed while we iterate.
        while let Some(node) = unsafe { curr.as_ref() } {
            // SAFETY: every non-sentinel node's value is initialised by push
            // and only vacated when the node becomes the sentinel, which
            // requires unlinking it from the position we just traversed.
            out.push(unsafe { node.value.with(|v| v.assume_init_ref().clone()) });
            curr = node.next.load(Ordering::Acquire, &guard);
        }
        out
    }

    /// True when the queue appears empty.
    pub fn is_empty(&self) -> bool {
        let guard = epoch::pin();
        let head = self.head.load(Ordering::Acquire, &guard);
        // SAFETY: the sentinel is live while the guard is held.
        unsafe { head.deref() }.next.load(Ordering::Acquire, &guard).is_null()
    }
}

impl<T> Drop for LockFreeQueue<T> {
    fn drop(&mut self) {
        // Drain remaining values, then free the sentinel.
        while self.pop().is_some() {}
        let guard = epoch::pin();
        let head = self.head.load(Ordering::Relaxed, &guard);
        // SAFETY: we hold &mut self, so no other thread can touch the queue;
        // after the drain the only remaining node is the sentinel, whose
        // value slot is uninitialised — we free the node without dropping it.
        unsafe {
            drop(head.into_owned());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;

    #[test]
    fn fifo_order_single_thread() {
        let q = LockFreeQueue::new();
        for i in 0..100 {
            q.push(i);
        }
        assert_eq!(q.len(), 100);
        for i in 0..100 {
            assert_eq!(q.pop(), Some(i));
        }
        assert_eq!(q.pop(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn bulk_ops() {
        let q = LockFreeQueue::new();
        assert_eq!(q.push_bulk(0..10), 10);
        let got = q.pop_bulk(4);
        assert_eq!(got, vec![0, 1, 2, 3]);
        let rest = q.pop_bulk(100);
        assert_eq!(rest.len(), 6);
        assert!(q.pop_bulk(5).is_empty());
    }

    #[test]
    fn values_dropped_on_queue_drop() {
        // Arc strong counts tell us every element was dropped exactly once.
        let marker = Arc::new(());
        {
            let q = LockFreeQueue::new();
            for _ in 0..50 {
                q.push(Arc::clone(&marker));
            }
            let _ = q.pop();
        }
        // Epoch reclamation is deferred; flush a few pins to drain it.
        for _ in 0..256 {
            epoch::pin().flush();
        }
        // All 50 clones eventually released (the popped one immediately).
        // We can't force epoch collection deterministically, so only assert
        // no *extra* references appeared.
        assert!(Arc::strong_count(&marker) >= 1);
    }

    #[test]
    fn mpmc_no_loss_no_duplication() {
        use std::sync::atomic::Ordering;
        let q = Arc::new(LockFreeQueue::new());
        let producers = 4;
        let consumers = 4;
        let per_producer = 10_000u64;
        let mut handles = Vec::new();
        for p in 0..producers {
            let q = Arc::clone(&q);
            handles.push(std::thread::spawn(move || {
                for i in 0..per_producer {
                    q.push(p as u64 * per_producer + i);
                }
            }));
        }
        let collected: Arc<parking_lot::Mutex<Vec<u64>>> =
            Arc::new(parking_lot::Mutex::new(Vec::new()));
        let total = producers as u64 * per_producer;
        let popped = Arc::new(AtomicUsize::new(0));
        for _ in 0..consumers {
            let q = Arc::clone(&q);
            let collected = Arc::clone(&collected);
            let popped = Arc::clone(&popped);
            handles.push(std::thread::spawn(move || {
                let mut local = Vec::new();
                while (popped.load(Ordering::Relaxed) as u64) < total {
                    if let Some(v) = q.pop() {
                        popped.fetch_add(1, Ordering::Relaxed);
                        local.push(v);
                    } else {
                        std::thread::yield_now();
                    }
                }
                collected.lock().extend(local);
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let all = collected.lock();
        assert_eq!(all.len() as u64, total);
        let set: HashSet<u64> = all.iter().copied().collect();
        assert_eq!(set.len() as u64, total, "duplicated element detected");
    }

    #[test]
    fn per_producer_order_preserved() {
        // FIFO per producer: a single consumer must see each producer's
        // elements in increasing order.
        let q = Arc::new(LockFreeQueue::new());
        let producers = 3usize;
        let n = 5_000u64;
        let mut handles = Vec::new();
        for p in 0..producers {
            let q = Arc::clone(&q);
            handles.push(std::thread::spawn(move || {
                for i in 0..n {
                    q.push((p as u64, i));
                }
            }));
        }
        let mut last = vec![-1i64; producers];
        let mut seen = 0;
        while seen < producers as u64 * n {
            if let Some((p, i)) = q.pop() {
                assert!(last[p as usize] < i as i64, "producer {p} reordered");
                last[p as usize] = i as i64;
                seen += 1;
            }
        }
        for h in handles {
            h.join().unwrap();
        }
    }
}
