//! # hcl-containers — the local concurrent building blocks of HCL
//!
//! HCL's distributed data structures are assembled from *lock-free local*
//! structures that live inside each partition (paper §III-A3: "utilizing
//! lock-free and consistent local data structures ... which are the building
//! block of DDSs within HCL"). This crate provides those blocks:
//!
//! | paper (§III-D) | here | notes |
//! |---|---|---|
//! | lock-free Cuckoo hash \[30\] | [`CuckooMap`] | two-choice hashing, 4-slot buckets, lock-free reads, striped-lock writers, displacement, in-place resize (DESIGN.md substitution #4) |
//! | wait-free red-black tree \[31\] | [`SkipListMap`] | lock-free skiplist with the same O(log n) ordered semantics (substitution #5) |
//! | optimistic lock-free FIFO \[32\] | [`LockFreeQueue`] | Michael–Scott queue with epoch reclamation |
//! | MDList priority queue \[33\]  | [`SkipListPq`] | logical-deletion priority queue with background purge (substitution #6) |
//!
//! All structures are `Send + Sync`, safe under any number of concurrent
//! readers and writers (MWMR, §III-D), and reclaim memory through
//! crossbeam's epoch scheme.

pub mod cuckoo;
pub mod pq;
pub mod queue;
pub mod skiplist;

pub use cuckoo::CuckooMap;
pub use pq::SkipListPq;
pub use queue::LockFreeQueue;
pub use skiplist::SkipListMap;
