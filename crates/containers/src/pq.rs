//! A lock-free priority queue, standing in for the paper's
//! multi-dimensional-linked-list PQ \[33\] (DESIGN.md substitution #6).
//!
//! Structure follows the paper's description exactly at the API level:
//! `push` places the new node in order, `pop` locates the minimum and
//! *marks it for deletion* (logical removal), and "a background process is
//! used to delete all the marked nodes and compact" — here, an optional
//! background purge thread that physically unlinks logically deleted
//! skiplist nodes.
//!
//! Duplicate priorities are allowed: each pushed element is keyed by
//! `(value, sequence)` where the sequence is a global counter, making the
//! pop order stable for equal priorities.

use std::sync::Arc;
use std::time::Duration;

use conc_check::sync::{AtomicBool, AtomicU64, Ordering};

use crate::skiplist::SkipListMap;

/// A lock-free min-priority queue (smallest value pops first).
pub struct SkipListPq<T>
where
    T: Ord + Clone + Send + Sync + 'static,
{
    inner: Arc<SkipListMap<(T, u64), ()>>,
    seq: AtomicU64,
    purge_stop: Option<Arc<AtomicBool>>,
    purge_handle: Option<std::thread::JoinHandle<()>>,
}

impl<T> Default for SkipListPq<T>
where
    T: Ord + Clone + Send + Sync + 'static,
{
    fn default() -> Self {
        Self::new()
    }
}

impl<T> SkipListPq<T>
where
    T: Ord + Clone + Send + Sync + 'static,
{
    /// Create an empty priority queue (no background purge thread;
    /// traversals still purge opportunistically).
    pub fn new() -> Self {
        SkipListPq {
            inner: Arc::new(SkipListMap::new()),
            seq: AtomicU64::new(0),
            purge_stop: None,
            purge_handle: None,
        }
    }

    /// Create a priority queue with a background purge thread running every
    /// `interval` — the paper's "background purge methodology".
    ///
    /// The purge thread is a real OS thread even under `--cfg conc_check`
    /// (it sleeps on wall-clock time, which the deterministic scheduler does
    /// not model); scheduler-driven tests construct with [`SkipListPq::new`].
    pub fn with_background_purge(interval: Duration) -> Self {
        let inner: Arc<SkipListMap<(T, u64), ()>> = Arc::new(SkipListMap::new());
        let stop = Arc::new(AtomicBool::new(false));
        let handle = {
            let inner = Arc::clone(&inner);
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name("hcl-pq-purge".into())
                .spawn(move || {
                    while !stop.load(Ordering::Acquire) {
                        std::thread::sleep(interval);
                        inner.purge();
                    }
                })
                .expect("spawn purge thread")
        };
        SkipListPq {
            inner,
            seq: AtomicU64::new(0),
            purge_stop: Some(stop),
            purge_handle: Some(handle),
        }
    }

    /// Insert `value`. Equal values pop in insertion order.
    pub fn push(&self, value: T) {
        // ORDERING: Relaxed is enough — the sequence number only needs to be
        // unique, not ordered with respect to the insert that publishes it.
        let s = self.seq.fetch_add(1, Ordering::Relaxed);
        self.inner.insert((value, s), ());
    }

    /// Remove and return the minimum element.
    pub fn pop(&self) -> Option<T> {
        self.inner.remove_min().map(|((v, _), ())| v)
    }

    /// Clone of the minimum element without removing it.
    pub fn peek(&self) -> Option<T> {
        self.inner.first().map(|((v, _), ())| v)
    }

    /// Bulk push (paper's `push(const std::vector&)`).
    pub fn push_bulk(&self, values: impl IntoIterator<Item = T>) -> usize {
        let mut n = 0;
        for v in values {
            self.push(v);
            n += 1;
        }
        n
    }

    /// Bulk pop of up to `max` elements, in priority order.
    pub fn pop_bulk(&self, max: usize) -> Vec<T> {
        // `max` may be usize::MAX ("drain everything"); clamp the
        // preallocation to what is actually queued.
        let mut out = Vec::with_capacity(max.min(self.len()));
        for _ in 0..max {
            match self.pop() {
                Some(v) => out.push(v),
                None => break,
            }
        }
        out
    }

    /// Number of live elements (approximate under concurrency).
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Run one physical-unlink pass; returns marked nodes encountered.
    pub fn purge(&self) -> usize {
        self.inner.purge()
    }

    /// Clone out the live elements in priority order (snapshot persistence).
    pub fn iter_snapshot(&self) -> Vec<T> {
        self.inner.iter_snapshot().into_iter().map(|((v, _), ())| v).collect()
    }

    /// Drain everything into a sorted `Vec` (convenience for sinks like the
    /// ISx sort — the receive side pops an already-sorted stream).
    pub fn drain_sorted(&self) -> Vec<T> {
        let mut out = Vec::with_capacity(self.len());
        while let Some(v) = self.pop() {
            out.push(v);
        }
        out
    }
}

impl<T> Drop for SkipListPq<T>
where
    T: Ord + Clone + Send + Sync + 'static,
{
    fn drop(&mut self) {
        if let Some(stop) = &self.purge_stop {
            stop.store(true, Ordering::Release);
        }
        if let Some(h) = self.purge_handle.take() {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_priority_order() {
        let pq = SkipListPq::new();
        for v in [5u64, 1, 9, 3, 7] {
            pq.push(v);
        }
        assert_eq!(pq.peek(), Some(1));
        assert_eq!(pq.drain_sorted(), vec![1, 3, 5, 7, 9]);
        assert_eq!(pq.pop(), None);
    }

    #[test]
    fn equal_priorities_fifo() {
        let pq = SkipListPq::new();
        pq.push((1u32, "first".to_string()));
        pq.push((1, "second".to_string()));
        pq.push((0, "zeroth".to_string()));
        assert_eq!(pq.pop(), Some((0, "zeroth".to_string())));
        assert_eq!(pq.pop(), Some((1, "first".to_string())));
        assert_eq!(pq.pop(), Some((1, "second".to_string())));
    }

    #[test]
    fn bulk_ops() {
        let pq = SkipListPq::new();
        assert_eq!(pq.push_bulk([3u8, 1, 2]), 3);
        assert_eq!(pq.pop_bulk(2), vec![1, 2]);
        assert_eq!(pq.pop_bulk(10), vec![3]);
    }

    #[test]
    fn concurrent_push_pop_conserves_elements() {
        let pq = Arc::new(SkipListPq::new());
        let producers = 4u64;
        let per = 5_000u64;
        let mut handles = Vec::new();
        for p in 0..producers {
            let pq = Arc::clone(&pq);
            handles.push(std::thread::spawn(move || {
                for i in 0..per {
                    pq.push(p * per + i);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(pq.len() as u64, producers * per);
        let drained = pq.drain_sorted();
        assert_eq!(drained.len() as u64, producers * per);
        assert!(drained.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn concurrent_poppers_each_see_increasing_values() {
        let pq = Arc::new(SkipListPq::new());
        for i in 0..20_000u64 {
            pq.push(i);
        }
        let total = Arc::new(std::sync::atomic::AtomicUsize::new(0));
        std::thread::scope(|s| {
            for _ in 0..8 {
                let pq = Arc::clone(&pq);
                let total = Arc::clone(&total);
                s.spawn(move || {
                    let mut last: i64 = -1;
                    while let Some(v) = pq.pop() {
                        assert!((v as i64) > last);
                        last = v as i64;
                        total.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
        });
        assert_eq!(total.load(Ordering::Relaxed), 20_000);
    }

    #[test]
    fn background_purge_thread_runs_and_stops() {
        let pq = SkipListPq::with_background_purge(Duration::from_millis(2));
        for i in 0..1_000u64 {
            pq.push(i);
        }
        for _ in 0..500 {
            pq.pop();
        }
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(pq.len(), 500);
        drop(pq); // must join the purge thread without hanging
    }

    #[test]
    fn mixed_push_pop_interleaved() {
        let pq = Arc::new(SkipListPq::new());
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let pq = Arc::clone(&pq);
                s.spawn(move || {
                    for i in 0..2_000u64 {
                        pq.push(t * 1_000_000 + i);
                        if i % 2 == 1 {
                            pq.pop();
                        }
                    }
                });
            }
        });
        // 4 threads × 2000 pushes − 4 × 1000 pops
        assert_eq!(pq.len(), 4 * 2_000 - 4 * 1_000);
    }
}
