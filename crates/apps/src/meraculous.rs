//! Meraculous genome-assembly kernels (paper §IV-D2).
//!
//! * **k-mer counting** — "uses an unordered map to compute a histogram
//!   describing the number of occurrences of each k-mer across reads".
//!   The HCL port uses [`hcl::UnorderedMap::put_merge`]: the increment
//!   executes atomically at the owner, one invocation per k-mer. The BCL
//!   port must read-modify-write from the client (find + insert), which is
//!   both slower (2× remote protocols per update) and racy under
//!   concurrency — we serialize BCL updates per rank stripe to keep counts
//!   exact, mirroring how BCL applications must coordinate.
//! * **contig generation** — "a de novo genome assembly pipeline that uses
//!   an unordered map to traverse a de Bruijn graph of overlapping
//!   symbols": k-mer nodes carry left/right extension masks; ranks walk
//!   maximal unique paths with distributed lookups.

use std::collections::HashMap;
use std::sync::Arc;

use hcl::{UnorderedMap, UnorderedMapConfig};
use hcl_runtime::Rank;

use crate::genome::{kmers_of, unpack_kmer, Read};

/// Count k-mers across this rank's `reads` into a shared distributed
/// histogram. Collective; returns the *global* histogram snapshot (taken on
/// every rank after a barrier).
pub fn count_kmers_hcl(
    rank: &Rank,
    name: &str,
    reads: &[Read],
    k: usize,
) -> HashMap<u64, u64> {
    let map: UnorderedMap<u64, u64> = UnorderedMap::with_merger(
        rank,
        name,
        UnorderedMapConfig::default(),
        Arc::new(|old: Option<&u64>, delta: &u64| old.copied().unwrap_or(0) + delta),
    );
    rank.barrier();
    for read in reads {
        for km in kmers_of(&read.bases, k) {
            map.put_merge(km, 1).expect("kmer increment");
        }
    }
    rank.barrier();
    let snap = map.snapshot_all().expect("kmer snapshot");
    rank.barrier();
    snap.into_iter().collect()
}

/// BCL-style k-mer counting: client-side find + insert per update. To keep
/// counts exact (BCL gives no atomic read-modify-write), ranks take turns
/// per update stripe — the coordination cost the paper's §I(b) describes.
pub fn count_kmers_bcl(
    rank: &Rank,
    name: &str,
    reads: &[Read],
    k: usize,
) -> HashMap<u64, u64> {
    let map: bcl::BclHashMap<u64, u64> = bcl::BclHashMap::with_config(
        rank,
        name,
        bcl::BclMapConfig { buckets_per_partition: 1 << 14, ..Default::default() },
    );
    rank.barrier();
    // Serialized rounds: one rank updates at a time (lock-step turns).
    for turn in 0..rank.world_size() {
        if rank.id() == turn {
            for read in reads {
                for km in kmers_of(&read.bases, k) {
                    let cur = map.find(&km).expect("bcl find").unwrap_or(0);
                    map.insert(&km, &(cur + 1)).expect("bcl insert");
                }
            }
        }
        rank.barrier();
    }
    let mut out = HashMap::new();
    // Reconstruct the histogram by probing every k-mer this rank saw and
    // merging via allgather of local views is unnecessary: all ranks can
    // read the shared map directly.
    for read in reads {
        for km in kmers_of(&read.bases, k) {
            if let Some(c) = map.find(&km).expect("bcl find") {
                out.insert(km, c);
            }
        }
    }
    rank.barrier();
    out
}

/// Extension record of a de Bruijn node: bit `b` of `left`/`right` set when
/// base `b` precedes/follows this k-mer somewhere in the input.
pub type ExtMask = (u64, u64);

/// Build the distributed de Bruijn graph: k-mer -> extension masks.
pub fn build_graph<'a>(
    rank: &'a Rank,
    name: &str,
    reads: &[Read],
    k: usize,
) -> UnorderedMap<'a, u64, ExtMask> {
    let map: UnorderedMap<u64, ExtMask> = UnorderedMap::with_merger(
        rank,
        name,
        UnorderedMapConfig::default(),
        Arc::new(|old: Option<&ExtMask>, new: &ExtMask| {
            let (ol, or) = old.copied().unwrap_or((0, 0));
            (ol | new.0, or | new.1)
        }),
    );
    rank.barrier();
    for read in reads {
        let b = &read.bases;
        if b.len() < k {
            continue;
        }
        for i in 0..=b.len() - k {
            let km = crate::genome::pack_kmer(&b[i..], k);
            let left = if i > 0 { 1u64 << base_idx(b[i - 1]) } else { 0 };
            let right = if i + k < b.len() { 1u64 << base_idx(b[i + k]) } else { 0 };
            map.put_merge(km, (left, right)).expect("graph merge");
        }
    }
    rank.barrier();
    map
}

fn base_idx(b: u8) -> u32 {
    match b {
        b'A' => 0,
        b'C' => 1,
        b'G' => 2,
        b'T' => 3,
        _ => panic!("invalid base"),
    }
}

fn unique_base(mask: u64) -> Option<u32> {
    if mask.count_ones() == 1 {
        Some(mask.trailing_zeros())
    } else {
        None
    }
}

/// Generate contigs by walking maximal unique paths from seed k-mers owned
/// by this rank (`stable_hash(kmer) % world_size == rank.id`). Every lookup
/// during the walk is a distributed `get` — the access pattern the paper
/// benchmarks.
pub fn generate_contigs(
    rank: &Rank,
    graph: &UnorderedMap<'_, u64, ExtMask>,
    seeds: &[u64],
    k: usize,
) -> Vec<Vec<u8>> {
    let mut contigs = Vec::new();
    for &seed in seeds {
        if hcl::stable_hash(&seed) % rank.world_size() as u64 != rank.id() as u64 {
            continue;
        }
        let Some((left, _right)) = graph.get(&seed).expect("seed lookup") else { continue };
        // Start only at path heads: no unique predecessor continues into us.
        let is_head = match unique_base(left) {
            None => true,
            Some(prev_base) => {
                let prev = prev_kmer(seed, prev_base, k);
                match graph.get(&prev).expect("pred lookup") {
                    // Predecessor exists: we are a head only if it branches.
                    Some((_, pr)) => unique_base(pr).is_none(),
                    None => true,
                }
            }
        };
        if !is_head {
            continue;
        }
        // Walk right while the extension is unique in both directions.
        let mut bases = unpack_kmer(seed, k);
        let mut cur = seed;
        loop {
            let Some((_, right)) = graph.get(&cur).expect("walk lookup") else { break };
            let Some(next_base) = unique_base(right) else { break };
            let next = next_kmer(cur, next_base, k);
            let Some((nl, _)) = graph.get(&next).expect("next lookup") else { break };
            // The next node must have exactly one predecessor (us);
            // otherwise it is a join point and the path ends here.
            if nl.count_ones() != 1 {
                break;
            }
            bases.push(crate::genome::BASES[next_base as usize]);
            cur = next;
        }
        contigs.push(bases);
    }
    contigs
}

fn next_kmer(cur: u64, next_base: u32, k: usize) -> u64 {
    let mask = if k == 32 { u64::MAX } else { (1u64 << (2 * k)) - 1 };
    ((cur << 2) | next_base as u64) & mask
}

fn prev_kmer(cur: u64, prev_base: u32, k: usize) -> u64 {
    (cur >> 2) | ((prev_base as u64) << (2 * (k - 1)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::genome::{sample_reads, synth_genome};
    use hcl_runtime::{World, WorldConfig};
    use std::collections::HashMap;

    fn world() -> WorldConfig {
        WorldConfig { nodes: 2, ranks_per_node: 2, ..WorldConfig::small() }
    }

    fn reference_counts(reads: &[Vec<Read>], k: usize) -> HashMap<u64, u64> {
        let mut h = HashMap::new();
        for rr in reads {
            for r in rr {
                for km in kmers_of(&r.bases, k) {
                    *h.entry(km).or_default() += 1;
                }
            }
        }
        h
    }

    fn rank_reads(genome: &[u8], rank_id: u32) -> Vec<Read> {
        sample_reads(genome, 40, 15, 0.0, 1000 + rank_id as u64)
    }

    #[test]
    fn hcl_kmer_counts_match_sequential_reference() {
        let genome = synth_genome(800, 77);
        let k = 15;
        let g2 = genome.clone();
        let results = World::run(world(), move |rank| {
            let reads = rank_reads(&g2, rank.id());
            count_kmers_hcl(rank, "kc1", &reads, k)
        });
        let all_reads: Vec<Vec<Read>> =
            (0..4).map(|r| rank_reads(&genome, r)).collect();
        let reference = reference_counts(&all_reads, k);
        for got in results {
            assert_eq!(got, reference, "distributed histogram diverges from reference");
        }
    }

    #[test]
    fn bcl_kmer_counts_match_reference_when_serialized() {
        let genome = synth_genome(400, 78);
        let k = 15;
        let g2 = genome.clone();
        let results = World::run(world(), move |rank| {
            let reads = sample_reads(&g2, 30, 5, 0.0, 2000 + rank.id() as u64);
            count_kmers_bcl(rank, "kcb", &reads, k)
        });
        let all_reads: Vec<Vec<Read>> = (0..4)
            .map(|r| sample_reads(&genome, 30, 5, 0.0, 2000 + r))
            .collect();
        let reference = reference_counts(&all_reads, k);
        // Each rank's view covers at least its own k-mers with the global
        // (serialized, hence exact) counts.
        for (r, got) in results.iter().enumerate() {
            for (km, c) in got {
                assert_eq!(reference.get(km), Some(c), "rank {r} count mismatch");
            }
        }
    }

    #[test]
    fn contigs_reconstruct_an_unambiguous_genome() {
        // A genome with unique k-mers yields a single contig == genome.
        let genome = synth_genome(600, 79);
        let k = 15;
        let g2 = genome.clone();
        let results = World::run(world(), move |rank| {
            // Every rank holds a slice of the "reads": here one error-free
            // read covering the whole genome split with k-1 overlap.
            let chunk = g2.len() / 4;
            let start = rank.id() as usize * chunk;
            // Overlap chunks by k bases so boundary k-mers keep both
            // their left and right extensions.
            let end = (start + chunk + k).min(g2.len());
            let reads = vec![Read { bases: g2[start..end].to_vec() }];
            let graph = build_graph(rank, "cg1", &reads, k);
            let seeds: Vec<u64> = kmers_of(&g2[..], k);
            let contigs = generate_contigs(rank, &graph, &seeds, k);
            rank.barrier();
            contigs
        });
        let all: Vec<Vec<u8>> = results.into_iter().flatten().collect();
        // With unique k-mers there is exactly one maximal path: the genome.
        assert_eq!(all.len(), 1, "expected a single contig, got {}", all.len());
        assert_eq!(all[0], genome);
    }

    #[test]
    fn contigs_split_at_branch_points() {
        // Construct a sequence with a repeated k-mer to force a branch:
        // two different bases follow the same k-mer.
        let k = 5;
        let core = b"ACGTG";
        let seq1 = [&b"TTTTT"[..], core, b"AAAAA"].concat();
        let seq2 = [&b"CCCCC"[..], core, b"GGGGG"].concat();
        let results = World::run(world(), move |rank| {
            let reads = vec![
                Read { bases: seq1.clone() },
                Read { bases: seq2.clone() },
            ];
            let graph = build_graph(rank, "cg2", &reads, k);
            let mut seeds: Vec<u64> = Vec::new();
            seeds.extend(kmers_of(&seq1, k));
            seeds.extend(kmers_of(&seq2, k));
            seeds.sort_unstable();
            seeds.dedup();
            let contigs = generate_contigs(rank, &graph, &seeds, k);
            rank.barrier();
            contigs
        });
        let all: Vec<Vec<u8>> = results.into_iter().flatten().collect();
        // The shared core forces path breaks: more than one contig.
        assert!(all.len() > 1, "branch point must split contigs, got {}", all.len());
        // No contig may span across the branch (i.e., contain core+A and
        // core+G continuations together with both prefixes).
        for c in &all {
            let s = String::from_utf8_lossy(c);
            assert!(
                !(s.contains("TTTTTACGTGGGGGG")),
                "contig crossed a branch: {s}"
            );
        }
    }
}
