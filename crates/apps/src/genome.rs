//! Synthetic genome + read generation and k-mer utilities.
//!
//! Stands in for the paper's real DNA read sets (DESIGN.md substitution
//! #9): a seeded random genome, reads sampled with an error model, and
//! 2-bit-packed k-mers (k ≤ 32 fits in a `u64`).

/// The four bases in 2-bit encoding order.
pub const BASES: [u8; 4] = [b'A', b'C', b'G', b'T'];

fn base_code(b: u8) -> u64 {
    match b {
        b'A' => 0,
        b'C' => 1,
        b'G' => 2,
        b'T' => 3,
        _ => panic!("invalid base {b}"),
    }
}

/// Deterministic xorshift generator for data synthesis.
#[derive(Debug, Clone)]
pub struct GenRng(u64);

impl GenRng {
    /// Seeded constructor (splitmix-style mixing so close seeds diverge).
    pub fn new(seed: u64) -> Self {
        let mut x = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^= x >> 31;
        GenRng(x | 1)
    }

    /// Next raw value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    /// Uniform in `[0, n)`.
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n.max(1)
    }

    /// Bernoulli draw.
    pub fn chance(&mut self, p: f64) -> bool {
        ((self.next_u64() >> 11) as f64 / (1u64 << 53) as f64) < p
    }
}

/// Generate a random genome of `len` bases.
pub fn synth_genome(len: usize, seed: u64) -> Vec<u8> {
    let mut rng = GenRng::new(seed);
    (0..len).map(|_| BASES[rng.below(4) as usize]).collect()
}

/// A sequencing read sampled from a genome.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Read {
    /// Base characters (`ACGT`).
    pub bases: Vec<u8>,
}

/// Sample `count` reads of `read_len` bases with per-base substitution
/// error probability `error_rate`.
pub fn sample_reads(
    genome: &[u8],
    read_len: usize,
    count: usize,
    error_rate: f64,
    seed: u64,
) -> Vec<Read> {
    assert!(genome.len() >= read_len, "genome shorter than read length");
    let mut rng = GenRng::new(seed);
    (0..count)
        .map(|_| {
            let start = rng.below((genome.len() - read_len + 1) as u64) as usize;
            let bases = genome[start..start + read_len]
                .iter()
                .map(|&b| {
                    if rng.chance(error_rate) {
                        BASES[rng.below(4) as usize]
                    } else {
                        b
                    }
                })
                .collect();
            Read { bases }
        })
        .collect()
}

/// Pack the k-mer starting at `seq[0..k]` into a `u64` (2 bits per base,
/// k ≤ 32).
pub fn pack_kmer(seq: &[u8], k: usize) -> u64 {
    assert!(k <= 32 && seq.len() >= k);
    let mut v = 0u64;
    for &b in &seq[..k] {
        v = (v << 2) | base_code(b);
    }
    v
}

/// Unpack a packed k-mer back into bases.
pub fn unpack_kmer(mut v: u64, k: usize) -> Vec<u8> {
    let mut out = vec![0u8; k];
    for i in (0..k).rev() {
        out[i] = BASES[(v & 3) as usize];
        v >>= 2;
    }
    out
}

/// Iterate all k-mers of a sequence (packed).
pub fn kmers_of(seq: &[u8], k: usize) -> Vec<u64> {
    if seq.len() < k {
        return Vec::new();
    }
    (0..=seq.len() - k).map(|i| pack_kmer(&seq[i..], k)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn genome_is_deterministic_and_valid() {
        let g1 = synth_genome(1000, 42);
        let g2 = synth_genome(1000, 42);
        assert_eq!(g1, g2);
        assert!(g1.iter().all(|b| BASES.contains(b)));
        let g3 = synth_genome(1000, 43);
        assert_ne!(g1, g3);
    }

    #[test]
    fn reads_without_errors_are_substrings() {
        let g = synth_genome(500, 7);
        let reads = sample_reads(&g, 50, 20, 0.0, 9);
        for r in &reads {
            assert_eq!(r.bases.len(), 50);
            let found = g.windows(50).any(|w| w == &r.bases[..]);
            assert!(found, "error-free read must be a genome substring");
        }
    }

    #[test]
    fn reads_with_errors_mutate_some_bases() {
        let g = synth_genome(500, 7);
        let clean = sample_reads(&g, 50, 50, 0.0, 11);
        let noisy = sample_reads(&g, 50, 50, 0.2, 11);
        // Same sampling positions (same seed stream length differs due to
        // error draws), so just check noisy reads aren't all substrings.
        let all_substrings = noisy.iter().all(|r| g.windows(50).any(|w| w == &r.bases[..]));
        assert!(!all_substrings);
        assert_eq!(clean.len(), noisy.len());
    }

    #[test]
    fn kmer_pack_unpack_roundtrip() {
        let seq = b"ACGTACGTGGCCTTAA";
        for k in [1usize, 4, 8, 16] {
            for i in 0..=seq.len() - k {
                let packed = pack_kmer(&seq[i..], k);
                assert_eq!(unpack_kmer(packed, k), &seq[i..i + k]);
            }
        }
    }

    #[test]
    fn kmer_enumeration_count() {
        let seq = b"ACGTACGT";
        assert_eq!(kmers_of(seq, 4).len(), 5);
        assert_eq!(kmers_of(seq, 8).len(), 1);
        assert_eq!(kmers_of(seq, 9).len(), 0);
    }

    #[test]
    fn kmer_histogram_matches_naive() {
        let g = synth_genome(300, 123);
        let k = 8;
        let mut hist: HashMap<u64, u64> = HashMap::new();
        for km in kmers_of(&g, k) {
            *hist.entry(km).or_default() += 1;
        }
        // Distinct packed kmers decode to distinct base strings.
        let mut seen = HashMap::new();
        for (&km, &c) in &hist {
            let bases = unpack_kmer(km, k);
            assert!(seen.insert(bases, c).is_none());
        }
    }
}
