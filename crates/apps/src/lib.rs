//! # hcl-apps — the paper's real-workload kernels (§IV-D)
//!
//! * [`isx`] — the ISx integer-sort mini-app: uniformly distributed keys are
//!   bucketed to nodes and globally sorted. The HCL port pushes keys into
//!   per-bucket **priority queues**, so "the cost of sorting gets hidden
//!   behind the data movement"; the BCL port pushes into circular queues and
//!   pays a separate local sort.
//! * [`meraculous`] — the Meraculous genome-assembly kernels: **k-mer
//!   counting** (a distributed histogram over a hash map) and **contig
//!   generation** (de Bruijn graph traversal through distributed lookups).
//!   Input data is synthesized ([`genome`]) since the original reads are not
//!   available (DESIGN.md substitution #9) — the access pattern (hot-key
//!   histogram inserts, pointer-chasing finds) is what the benchmark
//!   exercises, and that is preserved.

pub mod genome;
pub mod isx;
pub mod meraculous;
