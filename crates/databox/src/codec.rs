//! Pluggable serialization backends (paper §III-C2).
//!
//! HCL supports MSGPACK, Cereal and FlatBuffers as interchangeable backends;
//! we mirror the same *spectrum* with three in-tree codecs behind one trait
//! (DESIGN.md substitution #8):
//!
//! * [`FixedCodec`] — zero framing; the raw DataBox bytes. Matches the
//!   FlatBuffers role: cheapest, only safe when both sides agree on the type.
//! * [`PackCodec`] — a 2-byte header (magic + version) and a varint payload
//!   length. Matches the MSGPACK role: compact with minimal validation.
//! * [`SelfDescribingCodec`] — header plus a 64-bit type tag checked on
//!   decode. Matches the Cereal role: safest, detects cross-type decoding.

use bytes::Bytes;

use crate::varint;
use crate::{type_tag, CodecError, DataBox, Reader};

/// A serialization backend: encodes/decodes any [`DataBox`] value.
pub trait Codec: Send + Sync {
    /// Human-readable backend name.
    fn name(&self) -> &'static str;
    /// Encode a value.
    fn encode<T: DataBox + 'static>(&self, v: &T) -> Bytes;
    /// Decode a value.
    fn decode<T: DataBox + 'static>(&self, buf: &[u8]) -> Result<T, CodecError>;
}

/// Raw DataBox bytes, no framing at all. The byte-copyable fast path.
#[derive(Debug, Clone, Copy, Default)]
pub struct FixedCodec;

impl Codec for FixedCodec {
    fn name(&self) -> &'static str {
        "fixed"
    }
    fn encode<T: DataBox + 'static>(&self, v: &T) -> Bytes {
        v.to_bytes()
    }
    fn decode<T: DataBox + 'static>(&self, buf: &[u8]) -> Result<T, CodecError> {
        T::from_bytes(buf)
    }
}

const PACK_MAGIC: u8 = 0xB0;
const PACK_VERSION: u8 = 1;

/// Compact framed encoding: `[magic, version, varint len, payload]`.
#[derive(Debug, Clone, Copy, Default)]
pub struct PackCodec;

impl Codec for PackCodec {
    fn name(&self) -> &'static str {
        "pack"
    }
    fn encode<T: DataBox + 'static>(&self, v: &T) -> Bytes {
        let mut payload = Vec::new();
        v.pack(&mut payload);
        let mut out = Vec::with_capacity(payload.len() + 4);
        out.push(PACK_MAGIC);
        out.push(PACK_VERSION);
        varint::encode(payload.len() as u64, &mut out);
        out.extend_from_slice(&payload);
        Bytes::from(out)
    }
    fn decode<T: DataBox + 'static>(&self, buf: &[u8]) -> Result<T, CodecError> {
        let mut r = Reader::new(buf);
        if r.take_u8("pack.magic")? != PACK_MAGIC {
            return Err(CodecError::Invalid { context: "pack.magic" });
        }
        if r.take_u8("pack.version")? != PACK_VERSION {
            return Err(CodecError::Invalid { context: "pack.version" });
        }
        let len = r.take_varint("pack.len")? as usize;
        let payload = r.take(len, "pack.payload")?;
        if r.remaining() != 0 {
            return Err(CodecError::TrailingBytes(r.remaining()));
        }
        T::from_bytes(payload)
    }
}

const SELF_MAGIC: u8 = 0xB1;

/// Tagged encoding: `[magic, version, u64 type tag, varint len, payload]`;
/// the tag is validated against the requested type on decode.
#[derive(Debug, Clone, Copy, Default)]
pub struct SelfDescribingCodec;

impl Codec for SelfDescribingCodec {
    fn name(&self) -> &'static str {
        "self-describing"
    }
    fn encode<T: DataBox + 'static>(&self, v: &T) -> Bytes {
        let mut payload = Vec::new();
        v.pack(&mut payload);
        let mut out = Vec::with_capacity(payload.len() + 12);
        out.push(SELF_MAGIC);
        out.push(PACK_VERSION);
        out.extend_from_slice(&type_tag::<T>().to_le_bytes());
        varint::encode(payload.len() as u64, &mut out);
        out.extend_from_slice(&payload);
        Bytes::from(out)
    }
    fn decode<T: DataBox + 'static>(&self, buf: &[u8]) -> Result<T, CodecError> {
        let mut r = Reader::new(buf);
        if r.take_u8("self.magic")? != SELF_MAGIC {
            return Err(CodecError::Invalid { context: "self.magic" });
        }
        if r.take_u8("self.version")? != PACK_VERSION {
            return Err(CodecError::Invalid { context: "self.version" });
        }
        let tag_bytes = r.take(8, "self.tag")?;
        let mut a = [0u8; 8];
        a.copy_from_slice(tag_bytes);
        let found = u64::from_le_bytes(a);
        let expected = type_tag::<T>();
        if found != expected {
            return Err(CodecError::TypeMismatch { found, expected });
        }
        let len = r.take_varint("self.len")? as usize;
        let payload = r.take(len, "self.payload")?;
        if r.remaining() != 0 {
            return Err(CodecError::TrailingBytes(r.remaining()));
        }
        T::from_bytes(payload)
    }
}

/// Runtime-selectable codec, so constructors can take a codec choice the way
/// HCL's CMake build selects a serialization module.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum AnyCodec {
    /// See [`FixedCodec`].
    Fixed,
    /// See [`PackCodec`].
    #[default]
    Pack,
    /// See [`SelfDescribingCodec`].
    SelfDescribing,
}

impl Codec for AnyCodec {
    fn name(&self) -> &'static str {
        match self {
            AnyCodec::Fixed => FixedCodec.name(),
            AnyCodec::Pack => PackCodec.name(),
            AnyCodec::SelfDescribing => SelfDescribingCodec.name(),
        }
    }
    fn encode<T: DataBox + 'static>(&self, v: &T) -> Bytes {
        match self {
            AnyCodec::Fixed => FixedCodec.encode(v),
            AnyCodec::Pack => PackCodec.encode(v),
            AnyCodec::SelfDescribing => SelfDescribingCodec.encode(v),
        }
    }
    fn decode<T: DataBox + 'static>(&self, buf: &[u8]) -> Result<T, CodecError> {
        match self {
            AnyCodec::Fixed => FixedCodec.decode(buf),
            AnyCodec::Pack => PackCodec.decode(buf),
            AnyCodec::SelfDescribing => SelfDescribingCodec.decode(buf),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn codecs() -> Vec<AnyCodec> {
        vec![AnyCodec::Fixed, AnyCodec::Pack, AnyCodec::SelfDescribing]
    }

    #[test]
    fn all_codecs_roundtrip() {
        for c in codecs() {
            let v = (42u64, "payload".to_string(), vec![1u8, 2, 3]);
            let b = c.encode(&v);
            let got: (u64, String, Vec<u8>) = c.decode(&b).unwrap();
            assert_eq!(got, v, "codec {}", c.name());
        }
    }

    #[test]
    fn framing_overhead_ordering() {
        // fixed < pack < self-describing for the same payload.
        let v = 7u64;
        let f = AnyCodec::Fixed.encode(&v).len();
        let p = AnyCodec::Pack.encode(&v).len();
        let s = AnyCodec::SelfDescribing.encode(&v).len();
        assert!(f < p && p < s, "{f} {p} {s}");
        assert_eq!(f, 8);
    }

    #[test]
    fn self_describing_detects_type_mismatch() {
        let b = SelfDescribingCodec.encode(&1u64);
        let got: Result<String, _> = SelfDescribingCodec.decode(&b);
        assert!(matches!(got, Err(CodecError::TypeMismatch { .. })));
    }

    #[test]
    fn pack_rejects_bad_magic_and_version() {
        let mut b = PackCodec.encode(&1u32).to_vec();
        b[0] ^= 0xff;
        assert!(matches!(
            PackCodec.decode::<u32>(&b),
            Err(CodecError::Invalid { context: "pack.magic" })
        ));
        let mut b = PackCodec.encode(&1u32).to_vec();
        b[1] = 99;
        assert!(matches!(
            PackCodec.decode::<u32>(&b),
            Err(CodecError::Invalid { context: "pack.version" })
        ));
    }

    #[test]
    fn pack_rejects_trailing_garbage() {
        let mut b = PackCodec.encode(&1u32).to_vec();
        b.push(0);
        assert!(matches!(PackCodec.decode::<u32>(&b), Err(CodecError::TrailingBytes(1))));
    }

    #[test]
    fn truncated_inputs_fail_cleanly() {
        for c in codecs() {
            let b = c.encode(&(123u64, "abc".to_string()));
            for cut in 0..b.len() {
                let r: Result<(u64, String), _> = c.decode(&b[..cut]);
                assert!(r.is_err(), "codec {} accepted truncated input at {cut}", c.name());
            }
        }
    }
}
