//! # hcl-databox — the DataBox abstraction (paper §III-C)
//!
//! A *DataBox* is HCL's template for "defining, serializing, transmitting and
//! storing complex data structures". The key properties reproduced here:
//!
//! * **Byte-copyable fast path** — "DataBoxes do not use serialization for
//!   simple byte-copyable data types": types with
//!   [`DataBox::FIXED_SIZE`]`= Some(n)` are encoded as exactly `n` raw bytes
//!   with no framing.
//! * **Fixed vs variable length resolved at compile time** — the associated
//!   const plays the role of the paper's compile-time distinction.
//! * **Pluggable serialization backends** — the paper supports MSGPACK,
//!   Cereal and FlatBuffers; we provide three in-tree codecs with the same
//!   trade-off spectrum ([`codec::FixedCodec`], [`codec::PackCodec`],
//!   [`codec::SelfDescribingCodec`]) behind one [`codec::Codec`] trait.
//! * **Native STL-container support** — `String`, `Vec`, `Option`, tuples,
//!   arrays, `HashMap`/`BTreeMap`/`HashSet`/`BTreeSet`/`VecDeque` all
//!   implement [`DataBox`] out of the box.
//! * **User-defined types** — the [`databox_struct!`] macro implements
//!   [`DataBox`] for user structs (the paper's "users can define their own
//!   custom serialization function").

pub mod codec;
pub mod impls;
pub mod varint;

use bytes::Bytes;

/// Errors raised while decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// Input ended before the value was complete.
    Truncated {
        /// What was being decoded.
        context: &'static str,
    },
    /// A length/discriminant field held an invalid value.
    Invalid {
        /// What was being decoded.
        context: &'static str,
    },
    /// Self-describing codec: the embedded type tag did not match.
    TypeMismatch {
        /// Tag found in the input.
        found: u64,
        /// Tag expected for the requested type.
        expected: u64,
    },
    /// Trailing bytes remained after a full decode where none were expected.
    TrailingBytes(usize),
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Truncated { context } => write!(f, "truncated input decoding {context}"),
            CodecError::Invalid { context } => write!(f, "invalid encoding for {context}"),
            CodecError::TypeMismatch { found, expected } => {
                write!(f, "type tag mismatch: found {found:#x}, expected {expected:#x}")
            }
            CodecError::TrailingBytes(n) => write!(f, "{n} trailing bytes after decode"),
        }
    }
}

impl std::error::Error for CodecError {}

/// A byte cursor used by [`DataBox::unpack`].
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Wrap a byte slice.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Take `n` bytes, advancing the cursor.
    pub fn take(&mut self, n: usize, context: &'static str) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::Truncated { context });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Take one byte.
    pub fn take_u8(&mut self, context: &'static str) -> Result<u8, CodecError> {
        Ok(self.take(1, context)?[0])
    }

    /// Decode a varint-encoded u64.
    pub fn take_varint(&mut self, context: &'static str) -> Result<u64, CodecError> {
        let (v, n) = varint::decode(&self.buf[self.pos..])
            .ok_or(CodecError::Truncated { context })?;
        self.pos += n;
        Ok(v)
    }
}

/// The DataBox trait: every value that crosses the fabric, lives in a
/// distributed container, or is persisted implements this.
pub trait DataBox: Sized {
    /// `Some(n)` when the encoding of every value of this type is exactly
    /// `n` bytes (the byte-copyable fast path); `None` for variable-length
    /// types. Containers use this to choose fixed-slot vs allocator-backed
    /// storage at compile time.
    const FIXED_SIZE: Option<usize>;

    /// Append this value's encoding to `out`.
    fn pack(&self, out: &mut Vec<u8>);

    /// Decode one value from the reader, advancing it.
    fn unpack(r: &mut Reader<'_>) -> Result<Self, CodecError>;

    /// Expected encoded length of *this* value, used by encode paths (batch
    /// arenas, request buffers) to pre-reserve capacity. Fixed-size types
    /// answer exactly; variable-length types fall back to a small default
    /// and may override with a tighter estimate.
    fn size_hint(&self) -> usize {
        Self::FIXED_SIZE.unwrap_or(16)
    }

    /// Convenience: encode into a fresh buffer.
    fn to_bytes(&self) -> Bytes {
        let mut out = Vec::with_capacity(self.size_hint());
        self.pack(&mut out);
        Bytes::from(out)
    }

    /// Append this value's encoding to a reusable builder (the zero-copy RPC
    /// encode path): no intermediate `Vec`/`Bytes` is created, and a cleared
    /// builder with sufficient capacity reaches zero steady-state
    /// allocations per encoded value.
    fn encode_into(&self, out: &mut bytes::BytesMut) {
        self.pack(out.vec_mut());
    }

    /// Convenience: decode a value that must consume the whole input.
    fn from_bytes(buf: &[u8]) -> Result<Self, CodecError> {
        let mut r = Reader::new(buf);
        let v = Self::unpack(&mut r)?;
        if r.remaining() != 0 {
            return Err(CodecError::TrailingBytes(r.remaining()));
        }
        Ok(v)
    }
}

/// Stable 64-bit type tag used by the self-describing codec. Derived from
/// `std::any::type_name`, FNV-1a hashed; stable within a build, which is the
/// scope a wire format shared by SPMD ranks of one binary needs.
pub fn type_tag<T: 'static>() -> u64 {
    let name = std::any::type_name::<T>();
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Implement [`DataBox`] for a user struct field-by-field.
///
/// ```
/// use hcl_databox::{databox_struct, DataBox};
///
/// #[derive(Debug, Clone, PartialEq)]
/// struct Particle { id: u64, pos: (f64, f64), tags: Vec<String> }
/// databox_struct!(Particle { id: u64, pos: (f64, f64), tags: Vec<String> });
///
/// let p = Particle { id: 7, pos: (1.0, -2.5), tags: vec!["a".into()] };
/// let b = p.to_bytes();
/// assert_eq!(Particle::from_bytes(&b).unwrap(), p);
/// ```
#[macro_export]
macro_rules! databox_struct {
    ($name:ident { $($field:ident : $ty:ty),+ $(,)? }) => {
        impl $crate::DataBox for $name {
            const FIXED_SIZE: Option<usize> = {
                // Sum of field sizes when every field is fixed, else None.
                let mut total = 0usize;
                let mut all_fixed = true;
                $(
                    match <$ty as $crate::DataBox>::FIXED_SIZE {
                        Some(n) => total += n,
                        None => all_fixed = false,
                    }
                )+
                if all_fixed { Some(total) } else { None }
            };

            fn pack(&self, out: &mut Vec<u8>) {
                $( $crate::DataBox::pack(&self.$field, out); )+
            }

            fn unpack(r: &mut $crate::Reader<'_>) -> Result<Self, $crate::CodecError> {
                Ok($name {
                    $( $field: <$ty as $crate::DataBox>::unpack(r)?, )+
                })
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_tags_distinguish_types() {
        assert_ne!(type_tag::<u64>(), type_tag::<i64>());
        assert_ne!(type_tag::<String>(), type_tag::<Vec<u8>>());
        assert_eq!(type_tag::<u64>(), type_tag::<u64>());
    }

    #[test]
    fn reader_truncation_detected() {
        let mut r = Reader::new(&[1, 2, 3]);
        assert_eq!(r.take(2, "t").unwrap(), &[1, 2]);
        assert!(matches!(r.take(2, "t"), Err(CodecError::Truncated { .. })));
    }

    #[derive(Debug, Clone, PartialEq)]
    struct Fixed {
        a: u32,
        b: u64,
    }
    databox_struct!(Fixed { a: u32, b: u64 });

    #[derive(Debug, Clone, PartialEq)]
    struct Var {
        a: u32,
        s: String,
    }
    databox_struct!(Var { a: u32, s: String });

    #[test]
    fn struct_macro_fixed_size_propagation() {
        assert_eq!(Fixed::FIXED_SIZE, Some(12));
        assert_eq!(Var::FIXED_SIZE, None);
    }

    #[test]
    fn struct_macro_roundtrip() {
        let f = Fixed { a: 5, b: u64::MAX };
        assert_eq!(Fixed::from_bytes(&f.to_bytes()).unwrap(), f);
        let v = Var { a: 9, s: "hello".into() };
        assert_eq!(Var::from_bytes(&v.to_bytes()).unwrap(), v);
    }

    #[test]
    fn from_bytes_rejects_trailing() {
        let mut b = 7u32.to_bytes().to_vec();
        b.push(0);
        assert!(matches!(u32::from_bytes(&b), Err(CodecError::TrailingBytes(1))));
    }
}
