//! [`DataBox`] implementations for primitives and standard containers —
//! the paper's "native support for standard STL containers".

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet, VecDeque};
use std::hash::{BuildHasher, Hash};

use bytes::Bytes;

use crate::varint;
use crate::{CodecError, DataBox, Reader};

macro_rules! fixed_int {
    ($($ty:ty => $n:expr),+ $(,)?) => {
        $(
            impl DataBox for $ty {
                const FIXED_SIZE: Option<usize> = Some($n);
                fn pack(&self, out: &mut Vec<u8>) {
                    out.extend_from_slice(&self.to_le_bytes());
                }
                fn unpack(r: &mut Reader<'_>) -> Result<Self, CodecError> {
                    let b = r.take($n, stringify!($ty))?;
                    let mut a = [0u8; $n];
                    a.copy_from_slice(b);
                    Ok(<$ty>::from_le_bytes(a))
                }
            }
        )+
    };
}

fixed_int! {
    u8 => 1, u16 => 2, u32 => 4, u64 => 8, u128 => 16,
    i8 => 1, i16 => 2, i32 => 4, i64 => 8, i128 => 16,
    f32 => 4, f64 => 8,
}

impl DataBox for usize {
    const FIXED_SIZE: Option<usize> = Some(8);
    fn pack(&self, out: &mut Vec<u8>) {
        (*self as u64).pack(out);
    }
    fn unpack(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(u64::unpack(r)? as usize)
    }
}

impl DataBox for isize {
    const FIXED_SIZE: Option<usize> = Some(8);
    fn pack(&self, out: &mut Vec<u8>) {
        (*self as i64).pack(out);
    }
    fn unpack(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(i64::unpack(r)? as isize)
    }
}

impl DataBox for bool {
    const FIXED_SIZE: Option<usize> = Some(1);
    fn pack(&self, out: &mut Vec<u8>) {
        out.push(*self as u8);
    }
    fn unpack(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        match r.take_u8("bool")? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(CodecError::Invalid { context: "bool" }),
        }
    }
}

impl DataBox for char {
    const FIXED_SIZE: Option<usize> = Some(4);
    fn pack(&self, out: &mut Vec<u8>) {
        (*self as u32).pack(out);
    }
    fn unpack(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        char::from_u32(u32::unpack(r)?).ok_or(CodecError::Invalid { context: "char" })
    }
}

impl DataBox for () {
    const FIXED_SIZE: Option<usize> = Some(0);
    fn pack(&self, _out: &mut Vec<u8>) {}
    fn unpack(_r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(())
    }
}

impl DataBox for String {
    const FIXED_SIZE: Option<usize> = None;
    fn pack(&self, out: &mut Vec<u8>) {
        varint::encode(self.len() as u64, out);
        out.extend_from_slice(self.as_bytes());
    }
    fn unpack(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let len = r.take_varint("String.len")? as usize;
        let b = r.take(len, "String.bytes")?;
        String::from_utf8(b.to_vec()).map_err(|_| CodecError::Invalid { context: "String.utf8" })
    }
}

impl DataBox for Bytes {
    const FIXED_SIZE: Option<usize> = None;
    fn pack(&self, out: &mut Vec<u8>) {
        varint::encode(self.len() as u64, out);
        out.extend_from_slice(self);
    }
    fn unpack(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let len = r.take_varint("Bytes.len")? as usize;
        Ok(Bytes::copy_from_slice(r.take(len, "Bytes.data")?))
    }
}

impl<T: DataBox> DataBox for Vec<T> {
    const FIXED_SIZE: Option<usize> = None;
    fn pack(&self, out: &mut Vec<u8>) {
        varint::encode(self.len() as u64, out);
        for item in self {
            item.pack(out);
        }
    }
    fn unpack(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let len = r.take_varint("Vec.len")? as usize;
        // Guard against hostile lengths: cap the pre-reservation.
        let mut v = Vec::with_capacity(len.min(4096));
        for _ in 0..len {
            v.push(T::unpack(r)?);
        }
        Ok(v)
    }
}

impl<T: DataBox> DataBox for VecDeque<T> {
    const FIXED_SIZE: Option<usize> = None;
    fn pack(&self, out: &mut Vec<u8>) {
        varint::encode(self.len() as u64, out);
        for item in self {
            item.pack(out);
        }
    }
    fn unpack(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let len = r.take_varint("VecDeque.len")? as usize;
        let mut v = VecDeque::with_capacity(len.min(4096));
        for _ in 0..len {
            v.push_back(T::unpack(r)?);
        }
        Ok(v)
    }
}

impl<T: DataBox> DataBox for Option<T> {
    const FIXED_SIZE: Option<usize> = None;
    fn pack(&self, out: &mut Vec<u8>) {
        match self {
            None => out.push(0),
            Some(v) => {
                out.push(1);
                v.pack(out);
            }
        }
    }
    fn unpack(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        match r.take_u8("Option.tag")? {
            0 => Ok(None),
            1 => Ok(Some(T::unpack(r)?)),
            _ => Err(CodecError::Invalid { context: "Option.tag" }),
        }
    }
}

impl<T: DataBox, E: DataBox> DataBox for Result<T, E> {
    const FIXED_SIZE: Option<usize> = None;
    fn pack(&self, out: &mut Vec<u8>) {
        match self {
            Ok(v) => {
                out.push(0);
                v.pack(out);
            }
            Err(e) => {
                out.push(1);
                e.pack(out);
            }
        }
    }
    fn unpack(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        match r.take_u8("Result.tag")? {
            0 => Ok(Ok(T::unpack(r)?)),
            1 => Ok(Err(E::unpack(r)?)),
            _ => Err(CodecError::Invalid { context: "Result.tag" }),
        }
    }
}

impl<T: DataBox, const N: usize> DataBox for [T; N] {
    const FIXED_SIZE: Option<usize> = match T::FIXED_SIZE {
        Some(n) => Some(n * N),
        None => None,
    };
    fn pack(&self, out: &mut Vec<u8>) {
        for item in self {
            item.pack(out);
        }
    }
    fn unpack(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let mut v = Vec::with_capacity(N);
        for _ in 0..N {
            v.push(T::unpack(r)?);
        }
        v.try_into().map_err(|_| CodecError::Invalid { context: "array" })
    }
}

macro_rules! tuple_impl {
    ($($name:ident),+) => {
        impl<$($name: DataBox),+> DataBox for ($($name,)+) {
            const FIXED_SIZE: Option<usize> = {
                let mut total = 0usize;
                let mut all_fixed = true;
                $(
                    match $name::FIXED_SIZE {
                        Some(n) => total += n,
                        None => all_fixed = false,
                    }
                )+
                if all_fixed { Some(total) } else { None }
            };
            #[allow(non_snake_case)]
            fn pack(&self, out: &mut Vec<u8>) {
                let ($($name,)+) = self;
                $( $name.pack(out); )+
            }
            fn unpack(r: &mut Reader<'_>) -> Result<Self, CodecError> {
                Ok(($($name::unpack(r)?,)+))
            }
        }
    };
}

tuple_impl!(A);
tuple_impl!(A, B);
tuple_impl!(A, B, C);
tuple_impl!(A, B, C, D);
tuple_impl!(A, B, C, D, E);
tuple_impl!(A, B, C, D, E, F);

impl<K, V, S> DataBox for HashMap<K, V, S>
where
    K: DataBox + Eq + Hash,
    V: DataBox,
    S: BuildHasher + Default,
{
    const FIXED_SIZE: Option<usize> = None;
    fn pack(&self, out: &mut Vec<u8>) {
        varint::encode(self.len() as u64, out);
        for (k, v) in self {
            k.pack(out);
            v.pack(out);
        }
    }
    fn unpack(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let len = r.take_varint("HashMap.len")? as usize;
        let mut m = HashMap::with_capacity_and_hasher(len.min(4096), S::default());
        for _ in 0..len {
            m.insert(K::unpack(r)?, V::unpack(r)?);
        }
        Ok(m)
    }
}

impl<K: DataBox + Ord, V: DataBox> DataBox for BTreeMap<K, V> {
    const FIXED_SIZE: Option<usize> = None;
    fn pack(&self, out: &mut Vec<u8>) {
        varint::encode(self.len() as u64, out);
        for (k, v) in self {
            k.pack(out);
            v.pack(out);
        }
    }
    fn unpack(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let len = r.take_varint("BTreeMap.len")? as usize;
        let mut m = BTreeMap::new();
        for _ in 0..len {
            let k = K::unpack(r)?;
            let v = V::unpack(r)?;
            m.insert(k, v);
        }
        Ok(m)
    }
}

impl<T, S> DataBox for HashSet<T, S>
where
    T: DataBox + Eq + Hash,
    S: BuildHasher + Default,
{
    const FIXED_SIZE: Option<usize> = None;
    fn pack(&self, out: &mut Vec<u8>) {
        varint::encode(self.len() as u64, out);
        for item in self {
            item.pack(out);
        }
    }
    fn unpack(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let len = r.take_varint("HashSet.len")? as usize;
        let mut s = HashSet::with_capacity_and_hasher(len.min(4096), S::default());
        for _ in 0..len {
            s.insert(T::unpack(r)?);
        }
        Ok(s)
    }
}

impl<T: DataBox + Ord> DataBox for BTreeSet<T> {
    const FIXED_SIZE: Option<usize> = None;
    fn pack(&self, out: &mut Vec<u8>) {
        varint::encode(self.len() as u64, out);
        for item in self {
            item.pack(out);
        }
    }
    fn unpack(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let len = r.take_varint("BTreeSet.len")? as usize;
        let mut s = BTreeSet::new();
        for _ in 0..len {
            s.insert(T::unpack(r)?);
        }
        Ok(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: DataBox + PartialEq + std::fmt::Debug>(v: T) {
        let b = v.to_bytes();
        assert_eq!(T::from_bytes(&b).unwrap(), v);
        if let Some(n) = T::FIXED_SIZE {
            assert_eq!(b.len(), n, "fixed-size type encoded to wrong length");
        }
    }

    #[test]
    fn primitive_roundtrips() {
        roundtrip(0u8);
        roundtrip(255u8);
        roundtrip(u16::MAX);
        roundtrip(u32::MAX);
        roundtrip(u64::MAX);
        roundtrip(u128::MAX);
        roundtrip(i8::MIN);
        roundtrip(i64::MIN);
        roundtrip(i128::MIN);
        roundtrip(-0.0f32);
        roundtrip(f64::MAX);
        roundtrip(true);
        roundtrip(false);
        roundtrip('π');
        roundtrip(());
        roundtrip(usize::MAX >> 1);
        roundtrip(isize::MIN >> 1);
    }

    #[test]
    fn nan_roundtrips_bitwise() {
        let b = f64::NAN.to_bytes();
        assert!(f64::from_bytes(&b).unwrap().is_nan());
    }

    #[test]
    fn string_and_bytes_roundtrip() {
        roundtrip(String::new());
        roundtrip("κλειδί 🔑".to_string());
        roundtrip(Bytes::from_static(b"\x00\xff raw"));
    }

    #[test]
    fn invalid_utf8_rejected() {
        let mut buf = Vec::new();
        varint::encode(2, &mut buf);
        buf.extend_from_slice(&[0xff, 0xfe]);
        assert!(matches!(String::from_bytes(&buf), Err(CodecError::Invalid { .. })));
    }

    #[test]
    fn invalid_bool_rejected() {
        assert!(matches!(bool::from_bytes(&[2]), Err(CodecError::Invalid { .. })));
    }

    #[test]
    fn invalid_char_rejected() {
        let b = 0xD800u32.to_bytes(); // unpaired surrogate
        assert!(matches!(char::from_bytes(&b), Err(CodecError::Invalid { .. })));
    }

    #[test]
    fn container_roundtrips() {
        roundtrip(vec![1u32, 2, 3]);
        roundtrip(Vec::<String>::new());
        roundtrip(vec!["a".to_string(), "".to_string()]);
        roundtrip(Some(42u64));
        roundtrip(Option::<u64>::None);
        roundtrip(Ok::<u32, String>(7));
        roundtrip(Err::<u32, String>("boom".into()));
        roundtrip((1u8, 2u16, 3u32));
        roundtrip((1u8, "x".to_string(), vec![9u64]));
        roundtrip([1u64, 2, 3]);
        roundtrip(VecDeque::from(vec![5u8, 6]));
        roundtrip(BTreeMap::from([(1u32, "one".to_string()), (2, "two".to_string())]));
        roundtrip(BTreeSet::from([3u16, 1, 2]));
        roundtrip(HashMap::<u32, u64>::from([(1, 10), (2, 20)]));
        roundtrip(HashSet::<String>::from(["k".to_string()]));
    }

    #[test]
    fn fixed_size_composition() {
        assert_eq!(<(u32, u64)>::FIXED_SIZE, Some(12));
        assert_eq!(<(u32, String)>::FIXED_SIZE, None);
        assert_eq!(<[u16; 4]>::FIXED_SIZE, Some(8));
        assert_eq!(<[String; 2]>::FIXED_SIZE, None);
        assert_eq!(<Vec<u8>>::FIXED_SIZE, None);
    }

    #[test]
    fn hostile_length_does_not_oom() {
        // A Vec claiming u64::MAX elements must fail with Truncated,
        // not allocate.
        let mut buf = Vec::new();
        varint::encode(u64::MAX, &mut buf);
        assert!(matches!(Vec::<u64>::from_bytes(&buf), Err(CodecError::Truncated { .. })));
    }

    #[test]
    fn nested_containers() {
        roundtrip(vec![vec![1u8], vec![], vec![2, 3]]);
        roundtrip(BTreeMap::from([("k".to_string(), vec![Some(1u32), None])]));
    }
}
