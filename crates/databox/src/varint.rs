//! LEB128-style unsigned varints, used for all variable-length framing.

/// Append the varint encoding of `v` to `out`.
pub fn encode(mut v: u64, out: &mut Vec<u8>) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Decode a varint from the front of `buf`; returns `(value, bytes_consumed)`
/// or `None` when the input is truncated or overlong (> 10 bytes).
pub fn decode(buf: &[u8]) -> Option<(u64, usize)> {
    let mut v: u64 = 0;
    for (i, &b) in buf.iter().enumerate().take(10) {
        v |= ((b & 0x7f) as u64) << (7 * i);
        if b & 0x80 == 0 {
            return Some((v, i + 1));
        }
    }
    None
}

/// Encoded length of `v` in bytes.
pub fn encoded_len(v: u64) -> usize {
    if v == 0 {
        return 1;
    }
    (64 - v.leading_zeros() as usize).div_ceil(7)
}

/// ZigZag-map a signed value for varint encoding.
pub fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
pub fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_edge_values() {
        for v in [0u64, 1, 127, 128, 16_383, 16_384, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            encode(v, &mut buf);
            assert_eq!(buf.len(), encoded_len(v), "len for {v}");
            let (got, n) = decode(&buf).unwrap();
            assert_eq!(got, v);
            assert_eq!(n, buf.len());
        }
    }

    #[test]
    fn truncated_input_is_none() {
        let mut buf = Vec::new();
        encode(u64::MAX, &mut buf);
        assert!(decode(&buf[..buf.len() - 1]).is_none());
        assert!(decode(&[]).is_none());
    }

    #[test]
    fn overlong_rejected() {
        // 11 continuation bytes never terminate within the 10-byte budget.
        assert!(decode(&[0x80; 11]).is_none());
    }

    #[test]
    fn zigzag_roundtrip() {
        for v in [0i64, -1, 1, -2, 2, i64::MIN, i64::MAX, -123_456_789] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
        // Small magnitudes stay small.
        assert_eq!(zigzag(0), 0);
        assert_eq!(zigzag(-1), 1);
        assert_eq!(zigzag(1), 2);
    }
}
