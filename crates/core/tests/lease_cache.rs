//! Integration tests for the lease-based client-side read cache
//! (DESIGN.md §14): repeat `get`s on hot remote keys are served locally,
//! and every invalidation rule — piggybacked version mismatch, ownership
//! epoch bump, TTL expiry — is exercised end to end through a real
//! [`World`]. Replica steering of non-leased hot reads rides along.

use std::time::Duration;

use hcl::{LeaseConfig, UnorderedMap, UnorderedMapConfig};
use hcl_runtime::{World, WorldConfig};

/// Two nodes, one rank each: rank 1 is always remote from partition 0's
/// owner (rank 0), so its reads exercise the cached remote path.
fn two_node_world() -> WorldConfig {
    WorldConfig { nodes: 2, ranks_per_node: 1, ..WorldConfig::small() }
}

/// A key that hashes to partition `part` of a 2-partition map.
fn key_in_partition(map: &UnorderedMap<'_, u64, u64>, part: usize) -> u64 {
    (0u64..10_000)
        .find(|k| map.partition_of(k) == part)
        .expect("some small key must land in each of 2 partitions")
}

fn leased_cfg(ttl: Duration) -> UnorderedMapConfig {
    UnorderedMapConfig {
        lease: Some(LeaseConfig {
            ttl,
            // Lease on the second observation of a key.
            hot_threshold: 1,
            ..LeaseConfig::default()
        }),
        ..UnorderedMapConfig::default()
    }
}

/// Tentpole happy path: the first read of a hot remote key grants a lease,
/// and every repeat read within the TTL is a local cache hit. The hits are
/// visible both in `cache_stats` and in the rank's telemetry registry.
#[test]
fn hot_remote_reads_hit_the_lease_cache() {
    World::run(two_node_world(), |rank| {
        let map: UnorderedMap<u64, u64> =
            UnorderedMap::with_config(rank, "lease-hit", leased_cfg(Duration::from_secs(60)));
        let k = key_in_partition(&map, 0);
        if rank.id() == 0 {
            map.put(k, 7).unwrap();
        }
        rank.barrier();
        if rank.id() == 1 {
            // Read 1: plain get (key not yet hot). Read 2: hot -> leased
            // get grants. Reads 3..=6: local hits.
            for _ in 0..6 {
                assert_eq!(map.get(&k).unwrap(), Some(7));
            }
            let stats = map.cache_stats().expect("lease cache is configured");
            assert!(stats.lease_grants >= 1, "expected a grant, got {stats:?}");
            assert!(stats.hits >= 3, "expected repeat reads to hit, got {stats:?}");
            assert_eq!(stats.steered_reads, 0, "steering is off by default");
            // The same hits are exported through the rank's registry.
            let snap = rank.telemetry_snapshot();
            let hits = snap
                .counters
                .iter()
                .find(|(name, _)| name == "hcl_core_cache_hits")
                .map(|(_, v)| *v)
                .unwrap_or(0);
            assert!(hits >= 3, "telemetry must report the local hits, got {hits}");
        }
        rank.barrier();
    });
}

/// Invalidation rule 1 (piggybacked version): a client's own `put` response
/// carries the partition's new version stamp, so a later read of the leased
/// key must observe the write instead of the cached value — even with an
/// effectively infinite TTL.
#[test]
fn own_write_invalidates_lease_via_piggybacked_version() {
    World::run(two_node_world(), |rank| {
        let map: UnorderedMap<u64, u64> =
            UnorderedMap::with_config(rank, "lease-ryw", leased_cfg(Duration::from_secs(3600)));
        let k = key_in_partition(&map, 0);
        if rank.id() == 0 {
            map.put(k, 1).unwrap();
        }
        rank.barrier();
        if rank.id() == 1 {
            for _ in 0..3 {
                assert_eq!(map.get(&k).unwrap(), Some(1));
            }
            let before = map.cache_stats().unwrap();
            assert!(before.hits >= 1, "the key must be leased first, got {before:?}");
            // The put's stamped response advances this handle's observed
            // version watermark for partition 0 past the lease's version.
            map.put(k, 2).unwrap();
            assert_eq!(map.get(&k).unwrap(), Some(2), "read-your-write through the cache");
            let after = map.cache_stats().unwrap();
            assert!(
                after.stale_version >= 1,
                "the write must invalidate by version, got {after:?}"
            );
        }
        rank.barrier();
    });
}

/// Invalidation rule 2 (ownership epoch): a mark_down/mark_up cycle bumps
/// the dispatcher's ownership epoch, and a lease granted under the old
/// epoch must not serve — even though its TTL is far from expiring and no
/// stamped response ever reached this rank (the write used the owner's
/// hybrid local bypass).
#[test]
fn epoch_bump_kills_live_leases() {
    World::run(two_node_world(), |rank| {
        let map: UnorderedMap<u64, u64> =
            UnorderedMap::with_config(rank, "lease-epoch", leased_cfg(Duration::from_secs(3600)));
        let k = key_in_partition(&map, 0);
        if rank.id() == 0 {
            map.put(k, 1).unwrap();
        }
        rank.barrier();
        if rank.id() == 1 {
            for _ in 0..3 {
                assert_eq!(map.get(&k).unwrap(), Some(1));
            }
        }
        rank.barrier();
        if rank.id() == 0 {
            // Local bypass: no RPC response ever piggybacks this version
            // bump to rank 1, so only the epoch rule can save it.
            map.put(k, 2).unwrap();
        }
        rank.barrier();
        if rank.id() == 1 {
            map.mark_down(0);
            map.mark_up(0);
            assert_eq!(
                map.get(&k).unwrap(),
                Some(2),
                "a lease must not survive an ownership-epoch bump"
            );
            let stats = map.cache_stats().unwrap();
            assert!(stats.stale_epoch >= 1, "expected an epoch invalidation, got {stats:?}");
        }
        rank.barrier();
    });
}

/// Invalidation rule 3 (TTL): once the lease deadline passes, the next
/// read refetches. A write that the cacher never heard about (owner-side
/// local bypass) becomes visible after at most one TTL.
#[test]
fn lease_expiry_bounds_staleness() {
    World::run(two_node_world(), |rank| {
        let map: UnorderedMap<u64, u64> =
            UnorderedMap::with_config(rank, "lease-ttl", leased_cfg(Duration::from_millis(25)));
        let k = key_in_partition(&map, 0);
        if rank.id() == 0 {
            map.put(k, 1).unwrap();
        }
        rank.barrier();
        if rank.id() == 1 {
            for _ in 0..3 {
                assert_eq!(map.get(&k).unwrap(), Some(1));
            }
        }
        rank.barrier();
        if rank.id() == 0 {
            map.put(k, 2).unwrap();
        }
        rank.barrier();
        if rank.id() == 1 {
            std::thread::sleep(Duration::from_millis(60));
            assert_eq!(map.get(&k).unwrap(), Some(2), "expired lease must refetch");
            let stats = map.cache_stats().unwrap();
            assert!(stats.stale_expired >= 1, "expected a TTL expiry, got {stats:?}");
        }
        rank.barrier();
    });
}

/// Replica steering: with leasing effectively disabled (huge hot
/// threshold) and steering on, sustained non-leased reads against one
/// owner are steered to the replica partition — and still return the
/// replicated values.
#[test]
fn hot_owner_reads_steer_to_replica() {
    World::run(two_node_world(), |rank| {
        let cfg = UnorderedMapConfig {
            replicas: 1,
            lease: Some(LeaseConfig {
                ttl: Duration::from_secs(60),
                // Never lease: every read stays on the non-leased path.
                hot_threshold: u64::MAX,
                steer: true,
                steer_threshold: 8,
                ..LeaseConfig::default()
            }),
            ..UnorderedMapConfig::default()
        };
        let map: UnorderedMap<u64, u64> = UnorderedMap::with_config(rank, "lease-steer", cfg);
        let keys: Vec<u64> =
            (0u64..10_000).filter(|k| map.partition_of(k) == 0).take(8).collect();
        if rank.id() == 0 {
            for &k in &keys {
                map.put(k, k + 5).unwrap();
            }
            map.flush_replication().unwrap();
        }
        rank.barrier();
        if rank.id() == 1 {
            for round in 0..8 {
                for &k in &keys {
                    assert_eq!(map.get(&k).unwrap(), Some(k + 5), "round {round} key {k}");
                }
            }
            let stats = map.cache_stats().unwrap();
            assert!(
                stats.steered_reads >= 1,
                "sustained owner-0 reads must steer, got {stats:?}"
            );
            assert_eq!(stats.lease_grants, 0, "leasing is disabled in this cell");
        }
        rank.barrier();
    });
}
