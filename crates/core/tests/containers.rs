//! SPMD integration tests for every HCL container.

use std::collections::HashSet;

use hcl::{
    OrderedMap, OrderedSet, PersistConfig, PriorityQueue, Queue, UnorderedMap, UnorderedMapConfig,
    UnorderedSet,
};
use hcl_runtime::{FabricKind, World, WorldConfig};

fn small_world() -> WorldConfig {
    WorldConfig { nodes: 2, ranks_per_node: 2, ..WorldConfig::small() }
}

#[test]
fn unordered_map_put_get_across_nodes() {
    World::run(small_world(), |rank| {
        let map: UnorderedMap<String, u64> = UnorderedMap::new(rank, "m1");
        map.put(format!("key-{}", rank.id()), rank.id() as u64 * 11).unwrap();
        rank.barrier();
        for r in 0..rank.world_size() {
            assert_eq!(map.get(&format!("key-{r}")).unwrap(), Some(r as u64 * 11));
        }
        assert_eq!(map.get(&"missing".to_string()).unwrap(), None);
        rank.barrier();
        assert_eq!(map.len().unwrap(), rank.world_size() as u64);
    });
}

#[test]
fn unordered_map_erase_and_overwrite() {
    World::run(small_world(), |rank| {
        let map: UnorderedMap<u64, String> = UnorderedMap::new(rank, "m2");
        if rank.id() == 0 {
            for k in 0..20u64 {
                assert!(map.put(k, format!("v{k}")).unwrap());
            }
            // Overwrite returns false (not newly inserted).
            assert!(!map.put(3, "replaced".into()).unwrap());
        }
        rank.barrier();
        assert_eq!(map.get(&3).unwrap(), Some("replaced".to_string()));
        rank.barrier();
        if rank.id() == rank.world_size() - 1 {
            assert_eq!(map.erase(&3).unwrap(), Some("replaced".to_string()));
            assert_eq!(map.erase(&3).unwrap(), None);
        }
        rank.barrier();
        assert_eq!(map.get(&3).unwrap(), None);
        assert_eq!(map.len().unwrap(), 19);
    });
}

#[test]
fn unordered_map_async_futures() {
    World::run(small_world(), |rank| {
        let map: UnorderedMap<u64, u64> = UnorderedMap::new(rank, "m3");
        let futs: Vec<_> = (0..50u64)
            .map(|i| map.put_async(rank.id() as u64 * 1000 + i, i).unwrap())
            .collect();
        for f in &futs {
            f.wait().unwrap();
        }
        rank.barrier();
        let gets: Vec<_> = (0..50u64)
            .map(|i| {
                let peer = ((rank.id() + 1) % rank.world_size()) as u64;
                map.get_async(&(peer * 1000 + i)).unwrap()
            })
            .collect();
        for (i, f) in gets.iter().enumerate() {
            assert_eq!(f.wait().unwrap(), Some(i as u64));
        }
    });
}

#[test]
fn unordered_map_concurrent_all_ranks_hammer() {
    let cfg = WorldConfig { nodes: 2, ranks_per_node: 4, ..WorldConfig::small() };
    let results = World::run(cfg, |rank| {
        let map: UnorderedMap<u64, u64> = UnorderedMap::new(rank, "m4");
        let n = 500u64;
        for i in 0..n {
            map.put(rank.id() as u64 * n + i, i).unwrap();
        }
        rank.barrier();
        // Every rank verifies every entry.
        let mut ok = 0u64;
        for r in 0..rank.world_size() as u64 {
            for i in 0..n {
                if map.get(&(r * n + i)).unwrap() == Some(i) {
                    ok += 1;
                }
            }
        }
        ok
    });
    for ok in results {
        assert_eq!(ok, 8 * 500);
    }
}

#[test]
fn unordered_map_resize_preserves_data() {
    World::run(small_world(), |rank| {
        let map: UnorderedMap<u64, u64> = UnorderedMap::with_config(
            rank,
            "m5",
            UnorderedMapConfig { initial_buckets: 4, ..Default::default() },
        );
        if rank.id() == 0 {
            for k in 0..200u64 {
                map.put(k, k * 3).unwrap();
            }
            // Explicit per-partition resize on top of automatic growth.
            for p in 0..map.partitions() {
                assert!(map.resize(p, 1024).unwrap());
                assert!(map.partition_buckets(p) >= 1024);
            }
        }
        rank.barrier();
        for k in 0..200u64 {
            assert_eq!(map.get(&k).unwrap(), Some(k * 3), "lost key {k} after resize");
        }
    });
}

#[test]
fn unordered_map_hybrid_vs_rpc_same_results() {
    World::run(small_world(), |rank| {
        let hybrid: UnorderedMap<u64, u64> = UnorderedMap::new(rank, "m6h");
        let rpc_only: UnorderedMap<u64, u64> = UnorderedMap::with_config(
            rank,
            "m6r",
            UnorderedMapConfig { hybrid: false, ..Default::default() },
        );
        for i in 0..100u64 {
            let k = rank.id() as u64 * 100 + i;
            hybrid.put(k, i).unwrap();
            rpc_only.put(k, i).unwrap();
        }
        rank.barrier();
        for r in 0..rank.world_size() as u64 {
            for i in 0..100 {
                let k = r * 100 + i;
                assert_eq!(hybrid.get(&k).unwrap(), rpc_only.get(&k).unwrap());
            }
        }
        // The hybrid map must have made strictly fewer remote invocations.
        assert!(hybrid.costs().f < rpc_only.costs().f);
        // The rpc-only map performed zero local-path ops.
        assert_eq!(rpc_only.costs().l, 0);
    });
}

#[test]
fn unordered_map_snapshot_all_sees_everything() {
    World::run(small_world(), |rank| {
        let map: UnorderedMap<u64, u64> = UnorderedMap::new(rank, "m7");
        map.put(rank.id() as u64, rank.id() as u64).unwrap();
        rank.barrier();
        let snap = map.snapshot_all().unwrap();
        let keys: HashSet<u64> = snap.iter().map(|(k, _)| *k).collect();
        assert_eq!(keys.len(), rank.world_size() as usize);
    });
}

#[test]
fn unordered_set_semantics() {
    World::run(small_world(), |rank| {
        let set: UnorderedSet<String> = UnorderedSet::new(rank, "s1");
        let newly = set.insert(format!("item-{}", rank.id() % 2)).unwrap();
        // Two ranks insert "item-0", two insert "item-1": exactly one of
        // each pair sees `true`... but races make that unverifiable here;
        // verify final membership instead.
        let _ = newly;
        rank.barrier();
        assert!(set.contains(&"item-0".to_string()).unwrap());
        assert!(set.contains(&"item-1".to_string()).unwrap());
        assert!(!set.contains(&"item-9".to_string()).unwrap());
        assert_eq!(set.len().unwrap(), 2);
        rank.barrier();
        if rank.id() == 0 {
            assert!(set.remove(&"item-0".to_string()).unwrap());
            assert!(!set.remove(&"item-0".to_string()).unwrap());
        }
        rank.barrier();
        assert_eq!(set.len().unwrap(), 1);
    });
}

#[test]
fn ordered_map_global_order() {
    World::run(small_world(), |rank| {
        let map: OrderedMap<u64, String> = OrderedMap::new(rank, "o1");
        // Interleaved keys from all ranks.
        for i in 0..25u64 {
            let k = i * rank.world_size() as u64 + rank.id() as u64;
            map.put(k, format!("v{k}")).unwrap();
        }
        rank.barrier();
        assert_eq!(map.len().unwrap(), 100);
        assert_eq!(map.first().unwrap(), Some((0, "v0".to_string())));
        let all = map.snapshot_sorted().unwrap();
        assert_eq!(all.len(), 100);
        assert!(all.windows(2).all(|w| w[0].0 < w[1].0), "global sort violated");
        let r = map.range(&10, &20).unwrap();
        assert_eq!(r.len(), 10);
        assert!(r.iter().all(|(k, _)| (10..20).contains(k)));
    });
}

#[test]
fn ordered_map_erase_and_contains() {
    World::run(small_world(), |rank| {
        let map: OrderedMap<String, u64> = OrderedMap::new(rank, "o2");
        if rank.id() == 1 {
            map.put("alpha".into(), 1).unwrap();
            map.put("beta".into(), 2).unwrap();
        }
        rank.barrier();
        assert!(map.contains(&"alpha".to_string()).unwrap());
        rank.barrier();
        if rank.id() == 2 {
            assert_eq!(map.erase(&"alpha".to_string()).unwrap(), Some(1));
        }
        rank.barrier();
        assert!(!map.contains(&"alpha".to_string()).unwrap());
        assert!(map.contains(&"beta".to_string()).unwrap());
    });
}

#[test]
fn ordered_set_sorted_snapshot() {
    World::run(small_world(), |rank| {
        let set: OrderedSet<u32> = OrderedSet::new(rank, "os1");
        set.insert(100 - rank.id()).unwrap();
        set.insert(rank.id()).unwrap();
        rank.barrier();
        let snap = set.snapshot_sorted().unwrap();
        assert!(snap.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(snap.len(), 2 * rank.world_size() as usize);
        assert_eq!(set.first().unwrap(), Some(0));
        let r = set.range(&0, &4).unwrap();
        assert_eq!(r, vec![0, 1, 2, 3]);
    });
}

#[test]
fn fifo_queue_mwmr() {
    let cfg = WorldConfig { nodes: 2, ranks_per_node: 2, ..WorldConfig::small() };
    let results = World::run(cfg, |rank| {
        let q: Queue<u64> = Queue::new(rank, "q1");
        let per = 100u64;
        for i in 0..per {
            q.push(rank.id() as u64 * per + i).unwrap();
        }
        rank.barrier();
        // Everyone pops their share; total must conserve.
        let mut got = Vec::new();
        for _ in 0..per {
            if let Some(v) = q.pop().unwrap() {
                got.push(v);
            }
        }
        rank.barrier();
        // Drain leftovers from rank 0.
        if rank.id() == 0 {
            while let Some(v) = q.pop().unwrap() {
                got.push(v);
            }
        }
        got
    });
    let all: Vec<u64> = results.into_iter().flatten().collect();
    assert_eq!(all.len(), 400);
    let set: HashSet<u64> = all.iter().copied().collect();
    assert_eq!(set.len(), 400, "queue duplicated or lost elements");
}

#[test]
fn fifo_queue_bulk_ops_and_remote_owner() {
    World::run(small_world(), |rank| {
        // Host the queue on the last rank so node-0 ranks go remote.
        let q: Queue<String> = Queue::with_config(
            rank,
            "q2",
            hcl::queue::QueueConfig { owner: 3, hybrid: true, ..Default::default() },
        );
        if rank.id() == 0 {
            let n = q.push_bulk((0..10).map(|i| format!("e{i}")).collect()).unwrap();
            assert_eq!(n, 10);
            // Remote push from node 0 to owner on node 1 must count F.
            assert!(q.costs().f >= 1);
        }
        rank.barrier();
        if rank.id() == 3 {
            let got = q.pop_bulk(4).unwrap();
            assert_eq!(got, vec!["e0", "e1", "e2", "e3"]);
            assert_eq!(q.len().unwrap(), 6);
            // Owner-side ops are local (hybrid): no F.
            assert_eq!(q.costs().f, 0);
        }
        rank.barrier();
    });
}

#[test]
fn priority_queue_global_min_order() {
    World::run(small_world(), |rank| {
        let pq: PriorityQueue<u64> = PriorityQueue::new(rank, "pq1");
        // Each rank pushes a stripe, unsorted.
        let vals: Vec<u64> =
            (0..50u64).map(|i| (i * 7919 + rank.id() as u64 * 13) % 10_000).collect();
        for v in &vals {
            pq.push(*v).unwrap();
        }
        rank.barrier();
        assert_eq!(pq.len().unwrap(), 200);
        rank.barrier();
        if rank.id() == 0 {
            let mut drained = Vec::new();
            while let Some(v) = pq.pop().unwrap() {
                drained.push(v);
            }
            assert_eq!(drained.len(), 200);
            assert!(drained.windows(2).all(|w| w[0] <= w[1]), "pop order not sorted");
        }
        rank.barrier();
    });
}

#[test]
fn priority_queue_peek_purge_bulk() {
    World::run(small_world(), |rank| {
        let pq: PriorityQueue<(u32, String)> = PriorityQueue::new(rank, "pq2");
        if rank.id() == 1 {
            pq.push_bulk(vec![
                (3, "low".into()),
                (1, "high".into()),
                (2, "mid".into()),
            ])
            .unwrap();
        }
        rank.barrier();
        assert_eq!(pq.peek().unwrap(), Some((1, "high".to_string())));
        rank.barrier();
        if rank.id() == 2 {
            let two = pq.pop_bulk(2).unwrap();
            assert_eq!(two, vec![(1, "high".to_string()), (2, "mid".to_string())]);
            let _ = pq.purge().unwrap();
            assert_eq!(pq.len().unwrap(), 1);
        }
        rank.barrier();
    });
}

#[test]
fn persistence_survives_world_restart() {
    let dir = std::env::temp_dir().join(format!("hcl-persist-test-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let pcfg = PersistConfig::strict(&dir);
    // First world: write.
    {
        let pcfg = pcfg.clone();
        World::run(small_world(), move |rank| {
            let map: UnorderedMap<u64, String> = UnorderedMap::with_config(
                rank,
                "pm",
                UnorderedMapConfig { persist: Some(pcfg.clone()), ..Default::default() },
            );
            map.put(rank.id() as u64, format!("durable-{}", rank.id())).unwrap();
            rank.barrier();
            if rank.id() == 0 {
                map.put(100, "to-be-erased".into()).unwrap();
                map.erase(&100).unwrap();
            }
            rank.barrier();
        });
    }
    // Second world: recover by replaying the logs.
    {
        let pcfg = pcfg.clone();
        World::run(small_world(), move |rank| {
            let map: UnorderedMap<u64, String> = UnorderedMap::with_config(
                rank,
                "pm",
                UnorderedMapConfig { persist: Some(pcfg.clone()), ..Default::default() },
            );
            rank.barrier();
            for r in 0..rank.world_size() {
                assert_eq!(
                    map.get(&(r as u64)).unwrap(),
                    Some(format!("durable-{r}")),
                    "entry of rank {r} lost across restart"
                );
            }
            assert_eq!(map.get(&100).unwrap(), None, "erase was not replayed");
        });
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn replication_failover_serves_reads() {
    World::run(small_world(), |rank| {
        let map: UnorderedMap<u64, u64> = UnorderedMap::with_config(
            rank,
            "repl",
            UnorderedMapConfig { replicas: 1, ..Default::default() },
        );
        if rank.id() == 0 {
            for k in 0..50u64 {
                map.put(k, k * 2).unwrap();
            }
            map.flush_replication().unwrap();
        }
        rank.barrier();
        // Simulate every partition owner failing: reads must still work via
        // the replicas on the next partition.
        for p in 0..map.partitions() {
            map.mark_down(map.server_of(p));
        }
        let mut via_replica = 0;
        for k in 0..50u64 {
            if map.get(&k).unwrap() == Some(k * 2) {
                via_replica += 1;
            }
        }
        assert_eq!(via_replica, 50, "replica reads incomplete");
        rank.barrier();
    });
}

#[test]
fn log_compaction_keeps_recoverability() {
    let dir = std::env::temp_dir().join(format!("hcl-compact-test-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let pcfg = PersistConfig::strict(&dir);
    {
        let pcfg = pcfg.clone();
        World::run(small_world(), move |rank| {
            let map: UnorderedMap<u64, u64> = UnorderedMap::with_config(
                rank,
                "cm",
                UnorderedMapConfig { persist: Some(pcfg.clone()), ..Default::default() },
            );
            if rank.id() == 0 {
                // Lots of overwrites -> log much bigger than live set.
                for round in 0..10u64 {
                    for k in 0..20u64 {
                        map.put(k, round * 100 + k).unwrap();
                    }
                }
            }
            rank.barrier();
            map.compact_local_logs().unwrap();
            rank.barrier();
        });
    }
    {
        let pcfg = pcfg.clone();
        World::run(small_world(), move |rank| {
            let map: UnorderedMap<u64, u64> = UnorderedMap::with_config(
                rank,
                "cm",
                UnorderedMapConfig { persist: Some(pcfg.clone()), ..Default::default() },
            );
            rank.barrier();
            for k in 0..20u64 {
                assert_eq!(map.get(&k).unwrap(), Some(900 + k));
            }
        });
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn containers_over_tcp_fabric() {
    let cfg = WorldConfig {
        nodes: 2,
        ranks_per_node: 2,
        fabric: FabricKind::Tcp,
        ..WorldConfig::small()
    };
    World::run(cfg, |rank| {
        let map: UnorderedMap<u64, String> = UnorderedMap::new(rank, "tcp-m");
        let q: Queue<u64> = Queue::new(rank, "tcp-q");
        map.put(rank.id() as u64, format!("tcp-{}", rank.id())).unwrap();
        q.push(rank.id() as u64).unwrap();
        rank.barrier();
        for r in 0..rank.world_size() {
            assert_eq!(map.get(&(r as u64)).unwrap(), Some(format!("tcp-{r}")));
        }
        rank.barrier();
        if rank.id() == 0 {
            let mut seen = HashSet::new();
            while let Some(v) = q.pop().unwrap() {
                seen.insert(v);
            }
            assert_eq!(seen.len(), 4);
        }
        rank.barrier();
    });
}

#[test]
fn complex_value_types_roundtrip() {
    World::run(small_world(), |rank| {
        // Nested, variable-length values: the DataBox surface end-to-end.
        type Val = (String, Vec<u64>, Option<Vec<String>>);
        let map: UnorderedMap<String, Val> = UnorderedMap::new(rank, "cx");
        let v: Val = (
            format!("rank {}", rank.id()),
            (0..rank.id() as u64 + 1).collect(),
            if rank.id() % 2 == 0 { Some(vec!["a".into(), "b".into()]) } else { None },
        );
        map.put(format!("k{}", rank.id()), v.clone()).unwrap();
        rank.barrier();
        let peer = (rank.id() + 2) % rank.world_size();
        let got = map.get(&format!("k{peer}")).unwrap().unwrap();
        assert_eq!(got.0, format!("rank {peer}"));
        assert_eq!(got.1.len() as u32, peer + 1);
    });
}

#[test]
fn batch_ops_aggregate_requests() {
    World::run(small_world(), |rank| {
        let map: UnorderedMap<u64, u64> = UnorderedMap::with_config(
            rank,
            "batch",
            UnorderedMapConfig { hybrid: false, ..Default::default() },
        );
        if rank.id() == 0 {
            let entries: Vec<(u64, u64)> = (0..100).map(|k| (k, k * 7)).collect();
            let before_f = map.costs().f;
            let newly = map.put_batch(entries).unwrap();
            assert_eq!(newly, 100);
            let batch_f = map.costs().f - before_f;
            // With 2 partitions, at most 2 aggregated invocations instead
            // of 100 (the paper's request aggregation).
            assert!(batch_f <= 2, "batch used {batch_f} invocations");
            let keys: Vec<u64> = (0..110).collect();
            let before_f = map.costs().f;
            let got = map.get_batch(&keys).unwrap();
            assert!(map.costs().f - before_f <= 2);
            for (k, v) in keys.iter().zip(&got) {
                if *k < 100 {
                    assert_eq!(*v, Some(k * 7));
                } else {
                    assert_eq!(*v, None);
                }
            }
            // Re-inserting the same keys is all overwrites.
            let again = map.put_batch((0..100).map(|k| (k, k)).collect()).unwrap();
            assert_eq!(again, 0);
        }
        rank.barrier();
        // Everyone sees the batched data.
        assert_eq!(map.get(&42).unwrap(), Some(42));
        rank.barrier();
    });
}

#[test]
fn queue_snapshot_persistence_roundtrip() {
    let dir = std::env::temp_dir().join(format!("hcl-qsnap-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("queue.snap");
    let path2 = path.clone();
    World::run(small_world(), move |rank| {
        let q: Queue<String> = Queue::new(rank, "qsnap");
        if rank.id() == 1 {
            for i in 0..20 {
                q.push(format!("elem-{i}")).unwrap();
            }
            // Snapshot does not consume.
            q.persist_snapshot(&path2).unwrap();
            assert_eq!(q.len().unwrap(), 20);
        }
        rank.barrier();
    });
    // A fresh world restores the snapshot.
    let path2 = path.clone();
    World::run(small_world(), move |rank| {
        let q: Queue<String> = Queue::new(rank, "qsnap2");
        if rank.id() == 0 {
            assert_eq!(q.restore_snapshot(&path2).unwrap(), 20);
            for i in 0..20 {
                assert_eq!(q.pop().unwrap(), Some(format!("elem-{i}")), "order preserved");
            }
        }
        rank.barrier();
    });
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn priority_queue_snapshot_persistence_roundtrip() {
    let dir = std::env::temp_dir().join(format!("hcl-pqsnap-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("pq.snap");
    let path2 = path.clone();
    World::run(small_world(), move |rank| {
        let pq: PriorityQueue<u64> = PriorityQueue::new(rank, "pqsnap");
        if rank.id() == 2 {
            pq.push_bulk(vec![9, 1, 5, 3, 7]).unwrap();
            pq.persist_snapshot(&path2).unwrap();
        }
        rank.barrier();
    });
    let path2 = path.clone();
    World::run(small_world(), move |rank| {
        let pq: PriorityQueue<u64> = PriorityQueue::new(rank, "pqsnap2");
        if rank.id() == 0 {
            assert_eq!(pq.restore_snapshot(&path2).unwrap(), 5);
            let mut drained = Vec::new();
            while let Some(v) = pq.pop().unwrap() {
                drained.push(v);
            }
            assert_eq!(drained, vec![1, 3, 5, 7, 9]);
        }
        rank.barrier();
    });
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn ordered_map_snapshot_persistence_roundtrip() {
    let dir = std::env::temp_dir().join(format!("hcl-osnap-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("omap.snap");
    let path2 = path.clone();
    World::run(small_world(), move |rank| {
        let m: OrderedMap<u64, String> = OrderedMap::new(rank, "osnap");
        m.put(rank.id() as u64 * 10, format!("v{}", rank.id())).unwrap();
        rank.barrier();
        if rank.id() == 0 {
            m.persist_snapshot(&path2).unwrap();
        }
        rank.barrier();
    });
    let path2 = path.clone();
    World::run(small_world(), move |rank| {
        let m: OrderedMap<u64, String> = OrderedMap::new(rank, "osnap2");
        if rank.id() == 3 {
            assert_eq!(m.restore_snapshot(&path2).unwrap(), 4);
        }
        rank.barrier();
        for r in 0..4u64 {
            assert_eq!(m.get(&(r * 10)).unwrap(), Some(format!("v{r}")));
        }
        rank.barrier();
    });
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn queue_snapshot_matches_contents_without_consuming() {
    World::run(small_world(), |rank| {
        let q: Queue<u64> = Queue::new(rank, "snapview");
        if rank.id() == 0 {
            for i in 0..10 {
                q.push(i).unwrap();
            }
        }
        rank.barrier();
        let snap = q.snapshot().unwrap();
        assert_eq!(snap, (0..10).collect::<Vec<u64>>());
        rank.barrier();
        assert_eq!(q.len().unwrap(), 10, "snapshot must not consume");
    });
}

#[test]
fn async_variants_on_every_container() {
    World::run(small_world(), |rank| {
        let om: OrderedMap<u64, u64> = OrderedMap::new(rank, "async.om");
        let q: Queue<u64> = Queue::with_config(
            rank,
            "async.q",
            hcl::queue::QueueConfig { owner: 2, hybrid: true, ..Default::default() },
        );
        let pq: PriorityQueue<u64> = PriorityQueue::with_config(
            rank,
            "async.pq",
            hcl::queue::QueueConfig { owner: 2, hybrid: true, ..Default::default() },
        );
        let us: UnorderedSet<u64> = UnorderedSet::new(rank, "async.us");
        // Fire a wave of async ops and wait them all.
        let f1 = om.put_async(rank.id() as u64, rank.id() as u64 * 2).unwrap();
        let f2 = q.push_async(rank.id() as u64).unwrap();
        let f3 = pq.push_async(rank.id() as u64).unwrap();
        let f4 = us.insert_async(rank.id() as u64).unwrap();
        assert!(f1.wait().is_ok());
        assert!(f2.wait().unwrap());
        assert!(f3.wait().unwrap());
        f4.wait().unwrap();
        // A completed future reports ready and can be awaited repeatedly.
        assert!(f1.is_ready());
        assert!(f1.wait().is_ok());
        rank.barrier();
        for r in 0..rank.world_size() as u64 {
            assert_eq!(om.get(&r).unwrap(), Some(r * 2));
            assert!(us.contains(&r).unwrap());
        }
        assert_eq!(q.len().unwrap(), 4);
        assert_eq!(pq.len().unwrap(), 4);
        rank.barrier();
    });
}

#[test]
fn partition_distribution_is_reasonably_uniform() {
    World::run(small_world(), |rank| {
        let map: UnorderedMap<u64, u64> = UnorderedMap::new(rank, "dist");
        if rank.id() == 0 {
            let n = 10_000u64;
            let parts = map.partitions();
            let mut counts = vec![0u64; parts];
            for k in 0..n {
                counts[map.partition_of(&k)] += 1;
            }
            let expect = n / parts as u64;
            for (p, &c) in counts.iter().enumerate() {
                assert!(
                    c > expect / 2 && c < expect * 2,
                    "partition {p} got {c} of {n} keys (expected ~{expect})"
                );
            }
        }
        rank.barrier();
    });
}

#[test]
fn server_stats_reflect_handler_executions() {
    let shared = World::shared(small_world());
    let s2 = std::sync::Arc::clone(&shared);
    World::run_on(s2, |rank| {
        let map: UnorderedMap<u64, u64> = UnorderedMap::with_config(
            rank,
            "stats",
            UnorderedMapConfig { hybrid: false, ..Default::default() },
        );
        for i in 0..50u64 {
            map.put(rank.id() as u64 * 100 + i, i).unwrap();
        }
        rank.barrier();
    });
    let stats = shared.server_stats();
    assert!(stats.requests >= 200, "4 ranks x 50 rpc puts, got {}", stats.requests);
    assert!(stats.busy_ns > 0);
    assert!(shared.response_buffer_bytes() > 0);
}
