//! Dispatch-engine conformance: every container's client-side Table I cost
//! signature, observed through the shared `Dispatcher`, must match the cost
//! model exactly — per op, per locality, and over random op sequences.
//!
//! These tests pin the engine's accounting to the pre-engine behaviour:
//! local bypasses charge the descriptor's `L`/`R`/`W` signature, remote ops
//! charge `F` plus a batched/unbatched classification derived from the issue
//! mode, and control-plane ops charge nothing locally.

use hcl::{CostSnapshot, OrderedMap, PriorityQueue, Queue, UnorderedMap, UnorderedMapConfig};
use hcl_runtime::{World, WorldConfig};
use proptest::prelude::*;

/// Two nodes, one rank each: rank 0 is node-local to partition owner 0 and
/// remote to owner 1, so both dispatch paths are exercised deterministically.
fn two_node_world() -> WorldConfig {
    WorldConfig { nodes: 2, ranks_per_node: 1, ..WorldConfig::small() }
}

/// Delta between two snapshots.
fn delta(after: CostSnapshot, before: CostSnapshot) -> CostSnapshot {
    after.since(&before)
}

fn local_sig(l: u64, r: u64, w: u64) -> CostSnapshot {
    CostSnapshot { f: 0, l, r, w, fb: 0, fu: 0 }
}

const REMOTE_SYNC: CostSnapshot = CostSnapshot { f: 1, l: 0, r: 0, w: 0, fb: 0, fu: 1 };
const REMOTE_BULK: CostSnapshot = CostSnapshot { f: 1, l: 0, r: 0, w: 0, fb: 1, fu: 0 };

/// A key owned by `owner` under the map's first-level hash.
fn key_owned_by(map: &UnorderedMap<u64, u64>, owner: u32) -> u64 {
    (0..).find(|k| map.server_of(map.partition_of(k)) == owner).unwrap()
}

#[test]
fn unordered_map_per_op_cost_signatures() {
    World::run(two_node_world(), |rank| {
        let map: UnorderedMap<u64, u64> = UnorderedMap::with_merger(
            rank,
            "conf-umap",
            UnorderedMapConfig::default(),
            std::sync::Arc::new(|old: Option<&u64>, new: &u64| old.copied().unwrap_or(0) + new),
        );
        rank.barrier();
        if rank.id() == 0 {
            let lk = key_owned_by(&map, 0);
            let rk = key_owned_by(&map, 1);

            // put: local L+W, remote F (unbatched).
            let s = map.costs();
            map.put(lk, 1).unwrap();
            assert_eq!(delta(map.costs(), s), local_sig(1, 0, 1));
            let s = map.costs();
            map.put(rk, 2).unwrap();
            assert_eq!(delta(map.costs(), s), REMOTE_SYNC);

            // get: local L+R, remote F.
            let s = map.costs();
            assert_eq!(map.get(&lk).unwrap(), Some(1));
            assert_eq!(delta(map.costs(), s), local_sig(1, 1, 0));
            let s = map.costs();
            assert_eq!(map.get(&rk).unwrap(), Some(2));
            assert_eq!(delta(map.costs(), s), REMOTE_SYNC);

            // put_merge: local L+R+W, remote F.
            let s = map.costs();
            assert_eq!(map.put_merge(lk, 10).unwrap(), 11);
            assert_eq!(delta(map.costs(), s), local_sig(1, 1, 1));
            let s = map.costs();
            assert_eq!(map.put_merge(rk, 10).unwrap(), 12);
            assert_eq!(delta(map.costs(), s), REMOTE_SYNC);

            // erase: local L+W, remote F.
            let s = map.costs();
            map.erase(&lk).unwrap();
            assert_eq!(delta(map.costs(), s), local_sig(1, 0, 1));
            let s = map.costs();
            map.erase(&rk).unwrap();
            assert_eq!(delta(map.costs(), s), REMOTE_SYNC);

            // len: control-plane — one unbatched F per *remote* partition,
            // nothing for the local one.
            let s = map.costs();
            map.len().unwrap();
            assert_eq!(delta(map.costs(), s), REMOTE_SYNC);

            // put_batch: per-element L+W locally, one aggregated message
            // (F + E batched ops) per remote partition.
            let local_batch: Vec<(u64, u64)> =
                (0..).filter(|k| map.server_of(map.partition_of(k)) == 0).take(4).zip(0..).collect();
            let s = map.costs();
            map.put_batch(local_batch).unwrap();
            assert_eq!(delta(map.costs(), s), local_sig(4, 0, 4));
            let remote_batch: Vec<(u64, u64)> =
                (0..).filter(|k| map.server_of(map.partition_of(k)) == 1).take(5).zip(0..).collect();
            let s = map.costs();
            map.put_batch(remote_batch).unwrap();
            assert_eq!(
                delta(map.costs(), s),
                CostSnapshot { f: 1, l: 0, r: 0, w: 0, fb: 5, fu: 0 }
            );
        }
        rank.barrier();
    });
}

#[test]
fn queue_and_pqueue_per_op_cost_signatures() {
    World::run(two_node_world(), |rank| {
        let q: Queue<u64> = Queue::new(rank, "conf-q");
        let pq: PriorityQueue<u64> = PriorityQueue::new(rank, "conf-pq");
        rank.barrier();
        // Owner is rank 0: local for rank 0, remote for rank 1.
        if rank.id() == 0 {
            let s = q.costs();
            q.push(7).unwrap();
            assert_eq!(delta(q.costs(), s), local_sig(1, 0, 1));
            let s = q.costs();
            q.pop().unwrap();
            assert_eq!(delta(q.costs(), s), local_sig(1, 1, 0));
            // Bulk ops scale R/W by the element count, L stays 1.
            let s = q.costs();
            q.push_bulk(vec![1, 2, 3]).unwrap();
            assert_eq!(delta(q.costs(), s), local_sig(1, 0, 3));
            let s = q.costs();
            q.pop_bulk(5).unwrap();
            assert_eq!(delta(q.costs(), s), local_sig(1, 5, 0));
            // Control-plane ops charge nothing locally.
            let s = q.costs();
            q.len().unwrap();
            q.snapshot().unwrap();
            assert_eq!(delta(q.costs(), s), CostSnapshot::default());

            let s = pq.costs();
            pq.push(3).unwrap();
            assert_eq!(delta(pq.costs(), s), local_sig(1, 0, 1));
            let s = pq.costs();
            pq.peek().unwrap();
            assert_eq!(delta(pq.costs(), s), local_sig(1, 1, 0));
            let s = pq.costs();
            pq.pop().unwrap();
            assert_eq!(delta(pq.costs(), s), local_sig(1, 1, 0));
        }
        rank.barrier();
        if rank.id() == 1 {
            let s = q.costs();
            q.push(9).unwrap();
            assert_eq!(delta(q.costs(), s), REMOTE_SYNC);
            let s = q.costs();
            q.pop().unwrap();
            assert_eq!(delta(q.costs(), s), REMOTE_SYNC);
            // Bulk ops travel as one aggregated (batched) invocation.
            let s = q.costs();
            q.push_bulk(vec![4, 5]).unwrap();
            assert_eq!(delta(q.costs(), s), REMOTE_BULK);
            let s = q.costs();
            q.pop_bulk(8).unwrap();
            assert_eq!(delta(q.costs(), s), REMOTE_BULK);
            let s = q.costs();
            q.len().unwrap();
            assert_eq!(delta(q.costs(), s), REMOTE_SYNC);

            let s = pq.costs();
            pq.push(4).unwrap();
            assert_eq!(delta(pq.costs(), s), REMOTE_SYNC);
            let s = pq.costs();
            pq.purge().unwrap();
            assert_eq!(delta(pq.costs(), s), REMOTE_SYNC);
        }
        rank.barrier();
    });
}

#[test]
fn ordered_map_per_op_cost_signatures() {
    World::run(two_node_world(), |rank| {
        let map: OrderedMap<u64, u64> = OrderedMap::new(rank, "conf-omap");
        rank.barrier();
        if rank.id() == 0 {
            let lk = (0..).find(|k: &u64| map.partition_of(k) == 0).unwrap();
            let rk = (0..).find(|k: &u64| map.partition_of(k) == 1).unwrap();
            let s = map.costs();
            map.put(lk, 1).unwrap();
            assert_eq!(delta(map.costs(), s), local_sig(1, 0, 1));
            let s = map.costs();
            map.put(rk, 2).unwrap();
            assert_eq!(delta(map.costs(), s), REMOTE_SYNC);
            let s = map.costs();
            map.get(&lk).unwrap();
            assert_eq!(delta(map.costs(), s), local_sig(1, 1, 0));
            let s = map.costs();
            map.get(&rk).unwrap();
            assert_eq!(delta(map.costs(), s), REMOTE_SYNC);
            let s = map.costs();
            map.erase(&rk).unwrap();
            assert_eq!(delta(map.costs(), s), REMOTE_SYNC);
            // Global views: one unbatched F per remote partition.
            let s = map.costs();
            map.first().unwrap();
            assert_eq!(delta(map.costs(), s), REMOTE_SYNC);
            let s = map.costs();
            map.snapshot_sorted().unwrap();
            assert_eq!(delta(map.costs(), s), REMOTE_SYNC);
        }
        rank.barrier();
    });
}

#[test]
fn async_remote_ops_classified_by_coalescing_state() {
    World::run(two_node_world(), |rank| {
        let map: UnorderedMap<u64, u64> = UnorderedMap::new(rank, "conf-async");
        rank.barrier();
        if rank.id() == 0 {
            let rk = key_owned_by(&map, 1);
            // Async remote op while coalescing is on: F + one batched op.
            let s = map.costs();
            let f = map.put_async(rk, 1).unwrap();
            let issued = delta(map.costs(), s);
            assert_eq!(issued.f, 1);
            if rank.coalescing_enabled() {
                assert_eq!((issued.fb, issued.fu), (1, 0));
            } else {
                assert_eq!((issued.fb, issued.fu), (0, 1));
            }
            f.wait().unwrap();
            // Async local op: pure bypass, resolves immediately.
            let lk = key_owned_by(&map, 0);
            let s = map.costs();
            let f = map.put_async(lk, 2).unwrap();
            assert!(f.is_ready());
            assert_eq!(delta(map.costs(), s), local_sig(1, 0, 1));
        }
        rank.barrier();
    });
}

/// Regression (PR 5): a rank marked down and then marked back up must be
/// served through the dispatcher's cached endpoint exactly as before the
/// failure — the down/up cycle must not leave a stale route. The down phase
/// must fail fast *without issuing anything* (no cost terms charged), and
/// the restored phase must charge exactly one fresh remote invocation that
/// observes pre-failure state.
#[test]
fn downed_then_restored_owner_is_not_served_a_stale_endpoint() {
    World::run(two_node_world(), |rank| {
        let map: UnorderedMap<u64, u64> = UnorderedMap::new(rank, "conf-downup");
        rank.barrier();
        if rank.id() == 0 {
            let rk = key_owned_by(&map, 1);
            map.put(rk, 7).unwrap();

            map.mark_down(1);
            // Degradable op against a downed owner: typed error, zero cost —
            // the gate rejects it before any endpoint is resolved.
            let s = map.costs();
            assert_eq!(map.put(rk, 99), Err(hcl::HclError::OwnerDown(1)));
            assert_eq!(delta(map.costs(), s), CostSnapshot::default());

            map.mark_up(1);
            // Restored: the op routes through the cached endpoint again and
            // sees the pre-failure value (the rejected put never landed).
            let s = map.costs();
            assert_eq!(map.get(&rk).unwrap(), Some(7));
            assert_eq!(delta(map.costs(), s), REMOTE_SYNC);
            let s = map.costs();
            map.put(rk, 8).unwrap();
            assert_eq!(delta(map.costs(), s), REMOTE_SYNC);
            assert_eq!(map.get(&rk).unwrap(), Some(8));

            // The endpoint cache consulted by the dispatcher is coherence-
            // checked against the world config: geometry is immutable, so a
            // down/up mark can never invalidate it.
            hcl_runtime::EpCache::new(rank.world().config())
                .assert_coherent(rank.world().config());
        }
        rank.barrier();
    });
}

/// Reference cost model for a random op sequence against a hybrid
/// `UnorderedMap` on a 2-node world: replays Table I per op.
fn predict(map: &UnorderedMap<u64, u64>, ops: &[(u8, u64)]) -> CostSnapshot {
    let mut c = CostSnapshot::default();
    for &(op, key) in ops {
        let local = map.server_of(map.partition_of(&key)) == 0;
        match (op % 3, local) {
            // put / erase: L + W local, F + unbatched remote.
            (0 | 2, true) => {
                c.l += 1;
                c.w += 1;
            }
            // get: L + R local.
            (_, true) => {
                c.l += 1;
                c.r += 1;
            }
            (_, false) => {
                c.f += 1;
                c.fu += 1;
            }
        }
    }
    c
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Random synchronous op sequences produce counters byte-identical to
    /// the Table I reference model — the engine neither drops nor double-
    /// counts any term.
    #[test]
    fn random_op_sequences_match_reference_cost_model(
        ops in proptest::collection::vec((0u8..3, 0u64..64), 1..40),
        seq in 0u32..1000,
    ) {
        World::run(two_node_world(), move |rank| {
            let map: UnorderedMap<u64, u64> =
                UnorderedMap::new(rank, &format!("conf-prop-{seq}"));
            rank.barrier();
            if rank.id() == 0 {
                let before = map.costs();
                for &(op, key) in &ops {
                    match op % 3 {
                        0 => {
                            map.put(key, key).unwrap();
                        }
                        1 => {
                            map.get(&key).unwrap();
                        }
                        _ => {
                            map.erase(&key).unwrap();
                        }
                    }
                }
                let got = map.costs().since(&before);
                let want = predict(&map, &ops);
                assert_eq!(got, want, "cost divergence for ops {ops:?}");
            }
            rank.barrier();
        });
    }
}
