//! Allocation accounting for the lease-cache hit path.
//!
//! A cache hit is the op the whole read-path scale-out exists for: it must
//! cost a shard lock, a `HashMap` probe, three invalidation checks and a
//! couple of atomic metric bumps — never a heap allocation. A counting
//! global allocator (same harness as the telemetry record-path pin) makes
//! that claim checkable.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use hcl::{LeaseCache, LeaseConfig};
use hcl_telemetry::CacheMetrics;

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates every allocation verbatim to `System`; the counter is
// the only addition and does not affect layout or pointer validity.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

fn allocs() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

#[test]
fn lease_cache_hit_path_is_allocation_free() {
    let cache: LeaseCache<u64, u64> =
        LeaseCache::new(LeaseConfig::default(), 4, CacheMetrics::detached());
    let far = Instant::now() + Duration::from_secs(3600);
    for k in 0..64u64 {
        let hash = k.wrapping_mul(2_654_435_761);
        cache.insert(k, hash, (hash % 4) as usize, Some(k * 3), 1, 0, far, 0);
    }
    // Warm-up hits so anything lazy resolves before the pinned window.
    for k in 0..64u64 {
        let hash = k.wrapping_mul(2_654_435_761);
        assert!(cache.lookup(&k, hash, (hash % 4) as usize, 0).is_some());
    }
    let before = allocs();
    let mut hits = 0u64;
    for i in 0..10_000u64 {
        let k = i % 64;
        let hash = k.wrapping_mul(2_654_435_761);
        if let Some((v, _)) = cache.lookup(&k, hash, (hash % 4) as usize, 0) {
            assert_eq!(v, Some(k * 3));
            hits += 1;
        }
    }
    let delta = allocs() - before;
    assert_eq!(delta, 0, "cache hit touched the heap {delta} times over 10k lookups");
    assert_eq!(hits, 10_000, "every pinned lookup must be a live-lease hit");
}
