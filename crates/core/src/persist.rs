//! Container-facing durability: typed op logs over the `hcl-persist`
//! write-ahead-log subsystem (paper §III-C6, DESIGN.md §16).
//!
//! The policy surface ([`SyncPolicy`], [`PersistConfig`]) and the segmented,
//! checksummed log machinery live in `hcl-persist`; this module adds the
//! [`DataBox`]-typed [`OpLog`] veneer the containers log through, and the
//! recovery-descriptor stamping that ties each logged mutation to the RPC
//! request (or local-bypass sequence) that produced it.

use std::marker::PhantomData;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use hcl_databox::{DataBox, Reader};

pub use hcl_persist::{
    Flusher, PersistConfig, PersistMetrics, ReplayReport, SyncPolicy, Wal, WalRecord,
    DEFAULT_SEGMENT_BYTES,
};

/// High bit marking a local-bypass sequence number, so it can never collide
/// with an RPC identity (`req_id << 16 | batch_index`).
const LOCAL_SEQ_BIT: u64 = 1 << 63;

/// The recovery descriptor of the mutation being applied on this thread:
/// the RPC request identity when running under a NIC worker (the dedup
/// window's `(caller rank, req_id)` scheme), or a `home`-ranked local
/// sequence for the hybrid bypass and other rank-thread paths.
pub(crate) fn op_identity(home: u32, local_seq: &AtomicU64) -> (u32, u64) {
    match hcl_rpc::server::current_request_identity() {
        Some(id) => id,
        None => (home, local_seq.fetch_add(1, Ordering::Relaxed) | LOCAL_SEQ_BIT),
    }
}

/// A typed, per-partition operation log: [`DataBox`] records framed and
/// checksummed by the segmented WAL underneath. Every mutating container op
/// appends one record; recovery replays the log into a fresh structure,
/// exactly-once by `(rank, seq)` descriptor.
pub struct OpLog<Rec: DataBox> {
    wal: Arc<Wal>,
    report: ReplayReport,
    _rec: PhantomData<fn(Rec)>,
}

impl<Rec: DataBox> OpLog<Rec> {
    /// Open (creating if needed) the log at `stem`, first replaying any
    /// existing records through `apply`. A torn tail (partial final record
    /// from a crash mid-append) is truncated off the file itself, so later
    /// appends never land after garbage.
    pub fn open(
        stem: impl Into<PathBuf>,
        policy: SyncPolicy,
        apply: impl FnMut(Rec),
    ) -> std::io::Result<Self> {
        Self::open_with(stem, policy, DEFAULT_SEGMENT_BYTES, PersistMetrics::detached(), apply)
    }

    /// [`OpLog::open`] with explicit segment sizing and a telemetry bundle.
    pub fn open_with(
        stem: impl Into<PathBuf>,
        policy: SyncPolicy,
        segment_bytes: u64,
        metrics: PersistMetrics,
        mut apply: impl FnMut(Rec),
    ) -> std::io::Result<Self> {
        let (wal, report) = Wal::open(stem, policy, segment_bytes, metrics, |raw| {
            let mut r = Reader::new(raw.payload);
            if let Ok(rec) = Rec::unpack(&mut r) {
                apply(rec);
            }
        })?;
        Ok(OpLog { wal: Arc::new(wal), report, _rec: PhantomData })
    }

    /// Open partition `p` of container `name` under `cfg`.
    pub fn open_in(
        cfg: &PersistConfig,
        name: &str,
        p: usize,
        metrics: PersistMetrics,
        apply: impl FnMut(Rec),
    ) -> std::io::Result<Self> {
        Self::open_with(cfg.stem(name, p), cfg.policy, cfg.segment_bytes, metrics, apply)
    }

    /// Append one record with no client identity (exempt from replay dedup).
    pub fn append(&self, rec: &Rec) -> std::io::Result<()> {
        self.append_op(rec, 0, hcl_persist::NO_IDENTITY)
    }

    /// Append one record stamped with its dispatch op index and `(rank,
    /// seq)` recovery descriptor.
    pub fn append_op(&self, rec: &Rec, op: u16, identity: (u32, u64)) -> std::io::Result<()> {
        let mut buf = Vec::with_capacity(64);
        rec.pack(&mut buf);
        self.wal.append(WalRecord { op, rank: identity.0, seq: identity.1, payload: &buf })
    }

    /// Push buffered appends to the OS (no durability barrier).
    pub fn flush(&self) -> std::io::Result<()> {
        self.wal.flush()
    }

    /// Durable sync barrier: flush + fsync.
    pub fn sync(&self) -> std::io::Result<()> {
        self.wal.sync()
    }

    /// Live records (replayed + appended − compacted away).
    pub fn records(&self) -> u64 {
        self.wal.records()
    }

    /// Replace the log's history with the snapshot `records` (compaction:
    /// used after the live structure has absorbed the log).
    pub fn compact<'a>(&self, records: impl Iterator<Item = &'a Rec>) -> std::io::Result<()>
    where
        Rec: 'a,
    {
        self.wal.compact(records.map(|rec| {
            let mut buf = Vec::with_capacity(64);
            rec.pack(&mut buf);
            (0u16, buf)
        }))
    }

    /// What replay found when this log was opened.
    pub fn replay_report(&self) -> &ReplayReport {
        &self.report
    }

    /// The untyped WAL underneath (for flusher registration).
    pub fn wal(&self) -> &Arc<Wal> {
        &self.wal
    }

    /// The log's path stem.
    pub fn path(&self) -> &Path {
        self.wal.stem()
    }
}

/// Op log of a single-partition container (queue, priority queue): framed
/// `(tag, element)` records, where tag 0 = push and tag 1 = pop. Wraps the
/// identity bookkeeping both queue flavours share.
pub(crate) struct SpLog<T: DataBox + Clone> {
    log: OpLog<(u8, Option<T>)>,
    home: u32,
    local_seq: AtomicU64,
}

impl<T: DataBox + Clone> SpLog<T> {
    /// Open the log of container `name` (partition = the owner rank),
    /// replaying any history through `apply`.
    pub(crate) fn open(
        cfg: &PersistConfig,
        name: &str,
        owner: u32,
        metrics: PersistMetrics,
        mut apply: impl FnMut(u8, Option<T>),
    ) -> std::io::Result<Self> {
        let log = OpLog::open_with(
            cfg.stem(name, owner as usize),
            cfg.policy,
            cfg.segment_bytes,
            metrics,
            move |(tag, v): (u8, Option<T>)| apply(tag, v),
        )?;
        Ok(SpLog { log, home: owner, local_seq: AtomicU64::new(0) })
    }

    /// Log one mutation under the ambient request identity (RPC worker) or
    /// a fresh local sequence (hybrid bypass).
    pub(crate) fn record(&self, tag: u8, value: Option<&T>, fn_off: u32) {
        let ident = op_identity(self.home, &self.local_seq);
        let _ = self.log.append_op(&(tag, value.cloned()), fn_off as u16, ident);
    }

    /// Log one mutation under a fresh local sequence unconditionally. Bulk
    /// handlers log one record per element inside a single RPC; stamping
    /// them all with that RPC's identity would make replay dedup collapse
    /// them into one.
    pub(crate) fn record_local(&self, tag: u8, value: Option<&T>, fn_off: u32) {
        let ident =
            (self.home, self.local_seq.fetch_add(1, Ordering::Relaxed) | LOCAL_SEQ_BIT);
        let _ = self.log.append_op(&(tag, value.cloned()), fn_off as u16, ident);
    }

    /// Replace history with a push-per-element snapshot of the live contents.
    pub(crate) fn compact_to(&self, live: &[T]) -> std::io::Result<()> {
        let snapshot: Vec<(u8, Option<T>)> =
            live.iter().map(|v| (0, Some(v.clone()))).collect();
        self.log.compact(snapshot.iter())
    }

    /// The untyped WAL underneath (for flusher registration).
    pub(crate) fn wal(&self) -> &Arc<Wal> {
        self.log.wal()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::time::Duration;

    static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "hcl-core-oplog-{}-{}-{name}",
            std::process::id(),
            DIR_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("log")
    }

    fn cleanup(stem: &Path) {
        let _ = std::fs::remove_dir_all(stem.parent().unwrap());
    }

    #[test]
    fn append_and_replay() {
        let stem = tmp("basic");
        {
            let log: OpLog<(u8, u64, String)> =
                OpLog::open(&stem, SyncPolicy::Strict, |_| panic!("fresh log")).unwrap();
            log.append(&(1, 10, "a".into())).unwrap();
            log.append(&(2, 20, "b".into())).unwrap();
            assert_eq!(log.records(), 2);
        }
        let mut seen = Vec::new();
        let log: OpLog<(u8, u64, String)> =
            OpLog::open(&stem, SyncPolicy::Strict, |r| seen.push(r)).unwrap();
        assert_eq!(seen, vec![(1, 10, "a".into()), (2, 20, "b".into())]);
        assert_eq!(log.records(), 2);
        cleanup(&stem);
    }

    #[test]
    fn torn_tail_is_dropped_and_file_truncated() {
        let stem = tmp("torn");
        {
            let log: OpLog<(u64, String)> =
                OpLog::open(&stem, SyncPolicy::Strict, |_| {}).unwrap();
            log.append(&(7, "intact".into())).unwrap();
            log.append(&(8, "will be torn".into())).unwrap();
        }
        // Chop the last few bytes, simulating a crash mid-append.
        let seg = {
            let mut os = stem.as_os_str().to_os_string();
            os.push(".000000.seg");
            PathBuf::from(os)
        };
        let len = std::fs::metadata(&seg).unwrap().len();
        let f = std::fs::OpenOptions::new().write(true).open(&seg).unwrap();
        f.set_len(len - 3).unwrap();
        drop(f);
        // Regression (the old sidecar's bug): the torn bytes must come off
        // the *file*, not just be skipped in memory — otherwise the next
        // append lands after garbage and is silently unrecoverable.
        {
            let mut seen = Vec::new();
            let log: OpLog<(u64, String)> =
                OpLog::open(&stem, SyncPolicy::Strict, |r| seen.push(r)).unwrap();
            assert_eq!(seen, vec![(7, "intact".into())]);
            assert!(log.replay_report().truncated_bytes > 0);
            log.append(&(9, "after the tear".into())).unwrap();
        }
        let mut seen = Vec::new();
        let _: OpLog<(u64, String)> =
            OpLog::open(&stem, SyncPolicy::Strict, |r| seen.push(r)).unwrap();
        assert_eq!(seen, vec![(7, "intact".into()), (9, "after the tear".into())]);
        cleanup(&stem);
    }

    #[test]
    fn relaxed_mode_defers_flush() {
        let stem = tmp("relaxed");
        let log: OpLog<u64> = OpLog::open(
            &stem,
            SyncPolicy::Relaxed { interval: Duration::from_secs(3600) },
            |_| {},
        )
        .unwrap();
        log.append(&1).unwrap();
        // Nothing guaranteed on disk yet (buffered); explicit sync works.
        log.sync().unwrap();
        let mut seen = Vec::new();
        let _: OpLog<u64> = OpLog::open(&stem, SyncPolicy::Strict, |r| seen.push(r)).unwrap();
        assert_eq!(seen, vec![1]);
        cleanup(&stem);
    }

    #[test]
    fn compaction_replaces_history() {
        let stem = tmp("compact");
        let log: OpLog<(u8, u64)> = OpLog::open(&stem, SyncPolicy::Strict, |_| {}).unwrap();
        for i in 0..100u64 {
            log.append(&(0, i)).unwrap();
        }
        assert_eq!(log.records(), 100);
        // Compact down to 2 surviving records.
        let survivors = vec![(0u8, 42u64), (0, 43)];
        log.compact(survivors.iter()).unwrap();
        assert_eq!(log.records(), 2);
        // Appends continue after compaction.
        log.append(&(0, 44)).unwrap();
        drop(log);
        let mut seen = Vec::new();
        let _: OpLog<(u8, u64)> = OpLog::open(&stem, SyncPolicy::Strict, |r| seen.push(r)).unwrap();
        assert_eq!(seen, vec![(0, 42), (0, 43), (0, 44)]);
        cleanup(&stem);
    }

    #[test]
    fn identity_stamped_appends_dedup_on_replay() {
        let stem = tmp("ident");
        {
            let log: OpLog<(u8, u64)> = OpLog::open(&stem, SyncPolicy::Strict, |_| {}).unwrap();
            // The same op double-logged under one recovery descriptor — a
            // retransmit that slipped past the server dedup window.
            log.append_op(&(0, 5), 1, (2, 0x70001)).unwrap();
            log.append_op(&(0, 5), 1, (2, 0x70001)).unwrap();
            log.append_op(&(0, 6), 1, (2, 0x80001)).unwrap();
        }
        let mut seen = Vec::new();
        let log: OpLog<(u8, u64)> =
            OpLog::open(&stem, SyncPolicy::Strict, |r| seen.push(r)).unwrap();
        assert_eq!(seen, vec![(0, 5), (0, 6)], "duplicate identity replays once");
        assert_eq!(log.replay_report().deduped, 1);
        cleanup(&stem);
    }

    #[test]
    fn local_identity_never_collides_with_rpc_identity() {
        let seq = AtomicU64::new(0);
        let (rank, s) = op_identity(3, &seq);
        assert_eq!(rank, 3);
        assert!(s & LOCAL_SEQ_BIT != 0, "local sequences carry the marker bit");
        let (_, s2) = op_identity(3, &seq);
        assert_ne!(s, s2);
    }
}
