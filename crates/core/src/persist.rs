//! Per-partition operation logs: the durability path (paper §III-C6).
//!
//! The paper persists DDS partitions by memory-mapping them onto NVMe files,
//! with per-operation ("strict") or background ("relaxed") synchronisation.
//! We reproduce the same policy surface with an explicit write-ahead
//! operation log per partition (DESIGN.md substitution #7): every mutating
//! op appends one record; recovery replays the log into a fresh local
//! structure. `compact()` replaces the log with a snapshot when it grows.

use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use hcl_databox::{DataBox, Reader};
use parking_lot::Mutex;

/// When log records are pushed to the OS.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PersistMode {
    /// Flush the log on every mutating operation.
    Strict,
    /// Flush at most once per interval; a crash may lose the tail.
    Relaxed(Duration),
}

/// Container persistence configuration.
#[derive(Debug, Clone)]
pub struct PersistConfig {
    /// Directory holding one log file per partition.
    pub dir: PathBuf,
    /// Flush policy.
    pub mode: PersistMode,
}

impl PersistConfig {
    /// Strict persistence under `dir`.
    pub fn strict(dir: impl Into<PathBuf>) -> Self {
        PersistConfig { dir: dir.into(), mode: PersistMode::Strict }
    }

    /// Relaxed persistence under `dir` with the given flush interval.
    pub fn relaxed(dir: impl Into<PathBuf>, interval: Duration) -> Self {
        PersistConfig { dir: dir.into(), mode: PersistMode::Relaxed(interval) }
    }

    /// The log path for partition `p` of container `name`.
    pub fn log_path(&self, name: &str, p: usize) -> PathBuf {
        self.dir.join(format!("{name}.part{p}.hcllog"))
    }
}

struct LogInner {
    writer: BufWriter<File>,
    last_flush: Instant,
    records: u64,
}

/// An append-only record log for one partition.
pub struct OpLog<Rec: DataBox> {
    path: PathBuf,
    mode: PersistMode,
    inner: Mutex<LogInner>,
    _rec: std::marker::PhantomData<fn(Rec)>,
}

impl<Rec: DataBox> OpLog<Rec> {
    /// Open (creating if needed) the log at `path`, first replaying any
    /// existing records through `apply`.
    pub fn open(
        path: impl AsRef<Path>,
        mode: PersistMode,
        mut apply: impl FnMut(Rec),
    ) -> std::io::Result<Self> {
        let path = path.as_ref().to_path_buf();
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        let mut records = 0;
        if path.exists() {
            let mut buf = Vec::new();
            File::open(&path)?.read_to_end(&mut buf)?;
            let mut r = Reader::new(&buf);
            // Replay until the buffer is exhausted; a torn tail (partial
            // final record from a crash mid-append) is dropped.
            while r.remaining() > 0 {
                match Rec::unpack(&mut r) {
                    Ok(rec) => {
                        apply(rec);
                        records += 1;
                    }
                    Err(_) => break,
                }
            }
        }
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        Ok(OpLog {
            path,
            mode,
            inner: Mutex::new(LogInner {
                writer: BufWriter::new(file),
                last_flush: Instant::now(),
                records,
            }),
            _rec: std::marker::PhantomData,
        })
    }

    /// Append one record, flushing according to the mode.
    pub fn append(&self, rec: &Rec) -> std::io::Result<()> {
        let mut inner = self.inner.lock();
        let mut buf = Vec::new();
        rec.pack(&mut buf);
        inner.writer.write_all(&buf)?;
        inner.records += 1;
        match self.mode {
            PersistMode::Strict => inner.writer.flush()?,
            PersistMode::Relaxed(interval) => {
                if inner.last_flush.elapsed() >= interval {
                    inner.writer.flush()?;
                    inner.last_flush = Instant::now();
                }
            }
        }
        Ok(())
    }

    /// Force everything to the OS.
    pub fn flush(&self) -> std::io::Result<()> {
        self.inner.lock().writer.flush()
    }

    /// Records appended (including replayed ones).
    pub fn records(&self) -> u64 {
        self.inner.lock().records
    }

    /// Replace the log contents with the snapshot `records` (compaction:
    /// used after the live structure has absorbed the log).
    pub fn compact<'a>(&self, records: impl Iterator<Item = &'a Rec>) -> std::io::Result<()>
    where
        Rec: 'a,
    {
        let mut inner = self.inner.lock();
        inner.writer.flush()?;
        let mut file = OpenOptions::new().write(true).open(&self.path)?;
        file.set_len(0)?;
        file.seek(SeekFrom::Start(0))?;
        let mut w = BufWriter::new(file);
        let mut n = 0;
        for rec in records {
            let mut buf = Vec::new();
            rec.pack(&mut buf);
            w.write_all(&buf)?;
            n += 1;
        }
        w.flush()?;
        inner.records = n;
        // Reopen the append handle at the new end.
        let file = OpenOptions::new().append(true).open(&self.path)?;
        inner.writer = BufWriter::new(file);
        Ok(())
    }

    /// The log file path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("hcl-core-oplog-{}-{}", std::process::id(), name));
        let _ = std::fs::remove_file(&p);
        p
    }

    #[test]
    fn append_and_replay() {
        let path = tmp("basic");
        {
            let log: OpLog<(u8, u64, String)> =
                OpLog::open(&path, PersistMode::Strict, |_| panic!("fresh log")).unwrap();
            log.append(&(1, 10, "a".into())).unwrap();
            log.append(&(2, 20, "b".into())).unwrap();
            assert_eq!(log.records(), 2);
        }
        let mut seen = Vec::new();
        let log: OpLog<(u8, u64, String)> =
            OpLog::open(&path, PersistMode::Strict, |r| seen.push(r)).unwrap();
        assert_eq!(seen, vec![(1, 10, "a".into()), (2, 20, "b".into())]);
        assert_eq!(log.records(), 2);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_tail_is_dropped() {
        let path = tmp("torn");
        {
            let log: OpLog<(u64, String)> =
                OpLog::open(&path, PersistMode::Strict, |_| {}).unwrap();
            log.append(&(7, "intact".into())).unwrap();
            log.append(&(8, "will be torn".into())).unwrap();
        }
        // Chop the last few bytes, simulating a crash mid-append.
        let len = std::fs::metadata(&path).unwrap().len();
        let f = OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(len - 3).unwrap();
        let mut seen = Vec::new();
        let _log: OpLog<(u64, String)> =
            OpLog::open(&path, PersistMode::Strict, |r| seen.push(r)).unwrap();
        assert_eq!(seen, vec![(7, "intact".into())]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn relaxed_mode_defers_flush() {
        let path = tmp("relaxed");
        let log: OpLog<u64> =
            OpLog::open(&path, PersistMode::Relaxed(Duration::from_secs(3600)), |_| {}).unwrap();
        log.append(&1).unwrap();
        // Nothing guaranteed on disk yet (buffered); explicit flush works.
        log.flush().unwrap();
        let mut seen = Vec::new();
        let _: OpLog<u64> = OpLog::open(&path, PersistMode::Strict, |r| seen.push(r)).unwrap();
        assert_eq!(seen, vec![1]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn compaction_replaces_history() {
        let path = tmp("compact");
        let log: OpLog<(u8, u64)> = OpLog::open(&path, PersistMode::Strict, |_| {}).unwrap();
        for i in 0..100u64 {
            log.append(&(0, i)).unwrap();
        }
        assert_eq!(log.records(), 100);
        // Compact down to 2 surviving records.
        let survivors = vec![(0u8, 42u64), (0, 43)];
        log.compact(survivors.iter()).unwrap();
        assert_eq!(log.records(), 2);
        // Appends continue after compaction.
        log.append(&(0, 44)).unwrap();
        drop(log);
        let mut seen = Vec::new();
        let _: OpLog<(u8, u64)> = OpLog::open(&path, PersistMode::Strict, |r| seen.push(r)).unwrap();
        assert_eq!(seen, vec![(0, 42), (0, 43), (0, 44)]);
        std::fs::remove_file(&path).unwrap();
    }
}
