//! Live shard rebalancing: the collective that moves virtual partitions
//! between ranks while the world keeps serving operations.
//!
//! The membership layer ([`hcl_runtime::Membership`]) decides *where* keys
//! should live; this module moves them there. A rebalance is a collective —
//! every rank calls [`drain_rank`] or [`admit_rank`] — built from barriers,
//! one broadcast, and a driver rank that executes the per-shard migration
//! state machine against each registered container
//! ([`ShardMigrator`]):
//!
//! 1. **quiesce** — a barrier flushes every rank's coalescer, so no
//!    pre-rebalance op is still staged;
//! 2. **plan** — every rank derives the same [`Transition`] from the same
//!    current map (deterministic, no plan broadcast needed) and agrees on
//!    the driver (first surviving member);
//! 3. **copy** — the driver opens a *write-forwarding window* per moving
//!    shard ([`ShardMigrator::begin`]: the old owner dual-applies incoming
//!    mutations to the new owner), then copies the shard's entries to the
//!    new owner through the coalescer's bulk path
//!    ([`ShardMigrator::transfer`]) — copy, not remove, so an abort leaves
//!    the old shard authoritative and untouched;
//! 4. **decide** — the driver broadcasts the copy outcome; on success it
//!    commits the transition (the epoch bump atomically redirects every
//!    epoch-tagged op; stale-epoch stragglers are rejected typed and
//!    re-resolve), on failure nothing commits and the old map stays
//!    authoritative;
//! 5. **close** — after a barrier guarantees the commit is globally
//!    visible, the driver closes the window ([`ShardMigrator::end`]):
//!    commit purges the moved entries at the old owner, abort purges the
//!    partial installs at the new owner.
//!
//! Failure anywhere in the copy phase (a killed rank, an exhausted retry
//! budget) aborts the whole rebalance with a typed
//! [`HclError::Rebalance`]: no key is lost, none is duplicated, and the
//! collective can simply be retried once the fault clears.

use std::sync::atomic::Ordering;
use std::sync::Arc;

use hcl_runtime::{Rank, Transition};
use hcl_telemetry::{EventKind, FlightEvent, Outcome};
use parking_lot::Mutex;

use crate::{HclError, HclResult};

/// Per-container hook into the live-migration state machine. Containers
/// register one migrator per instance ([`MigratorRegistry::register_once`]);
/// the rebalance driver walks every registered migrator for every moving
/// shard.
pub trait ShardMigrator: Send + Sync {
    /// Stable container-instance label (diagnostics and dedup key).
    fn name(&self) -> &str;

    /// Open the write-forwarding window for `mv` at the old owner and arm
    /// the new owner to prefer forwarded (fresher) writes over the copy.
    fn begin(&self, rank: &Rank, mv: &hcl_runtime::ShardMove) -> HclResult<()>;

    /// Copy (do not remove) the shard's entries from the old owner to the
    /// new owner, returning `(keys, bytes)` moved.
    fn transfer(&self, rank: &Rank, mv: &hcl_runtime::ShardMove) -> HclResult<(u64, u64)>;

    /// Close the window. `committed` — the transition was published: purge
    /// the moved entries at the old owner. Not committed — the rebalance
    /// aborted: purge the partial installs at the new owner instead.
    fn end(&self, rank: &Rank, mv: &hcl_runtime::ShardMove, committed: bool) -> HclResult<()>;
}

/// World-shared registry of [`ShardMigrator`]s, one entry per container
/// instance. Obtained with [`MigratorRegistry::shared`]; containers register
/// at construction time on every rank (idempotently — the registry is one
/// world-level object).
#[derive(Default)]
pub struct MigratorRegistry {
    inner: Mutex<Vec<(String, Arc<dyn ShardMigrator>)>>,
}

impl MigratorRegistry {
    /// The world's shared registry (created on first use).
    ///
    /// NOTE: fetched as its own shared object — never construct one inside
    /// another `get_or_create_shared` create closure (the world's object
    /// table lock is held there).
    pub fn shared(rank: &Rank) -> Arc<MigratorRegistry> {
        rank.get_or_create_shared("hcl.core.migrators", MigratorRegistry::default)
    }

    /// Register `migrator` under `key` unless that key is already present
    /// (every rank constructs the same containers; only the first wins).
    pub fn register_once(&self, key: &str, migrator: Arc<dyn ShardMigrator>) {
        let mut inner = self.inner.lock();
        if !inner.iter().any(|(k, _)| k == key) {
            inner.push((key.to_string(), migrator));
        }
    }

    /// Registered migrators, in registration order.
    pub fn migrators(&self) -> Vec<Arc<dyn ShardMigrator>> {
        self.inner.lock().iter().map(|(_, m)| Arc::clone(m)).collect()
    }

    /// Number of registered migrators.
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    /// True when no migrator is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Outcome of one collective rebalance, identical on every rank.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RebalanceReport {
    /// The membership epoch after the rebalance (unchanged on abort).
    pub epoch: u64,
    /// Virtual partitions that moved (planned moves on abort).
    pub moves: u64,
    /// Keys copied to new owners across all containers.
    pub migrated_keys: u64,
    /// Payload bytes copied to new owners across all containers.
    pub migrated_bytes: u64,
    /// True when the transition committed.
    pub committed: bool,
}

/// Copy-phase outcome the driver broadcasts before the commit decision.
#[derive(Debug, Clone)]
struct CopyOutcome {
    keys: u64,
    bytes: u64,
    error: Option<String>,
}

/// Collectively remove `victim` from the membership, migrating every shard
/// it owns to the surviving members. All ranks must call this with the same
/// `victim`; returns the same [`RebalanceReport`] (or the same typed error)
/// everywhere.
pub fn drain_rank(rank: &Rank, victim: u32) -> HclResult<RebalanceReport> {
    run_collective(rank, victim, |m| m.plan_remove(victim))
}

/// Collectively add `newcomer` to the membership, migrating its fair share
/// of shards from the most-loaded members. All ranks must call this with
/// the same `newcomer`.
pub fn admit_rank(rank: &Rank, newcomer: u32) -> HclResult<RebalanceReport> {
    run_collective(rank, newcomer, |m| m.plan_add(newcomer))
}

fn run_collective(
    rank: &Rank,
    subject: u32,
    plan: impl FnOnce(&hcl_runtime::Membership) -> Option<Transition>,
) -> HclResult<RebalanceReport> {
    let membership = Arc::clone(rank.world().membership());
    // B1: quiesce — every staged async op is on the wire (and served: sync
    // ops complete before their rank reaches a barrier) before any shard
    // starts moving.
    rank.barrier();
    // Every rank derives the same plan from the same map revision, so the
    // plan itself needs no broadcast; an unplannable transition (unknown
    // rank, last member) fails deterministically everywhere. The driver is
    // the first member that is not the subject — it survives a drain.
    let map = membership.current();
    let Some(t) = plan(&membership) else {
        return Err(HclError::Rebalance(format!(
            "no valid transition for rank {subject} (unknown member or last member standing)"
        )));
    };
    let driver = *map
        .members()
        .iter()
        .find(|&&m| m != subject)
        .expect("plannable transition implies a surviving member");
    let registry = MigratorRegistry::shared(rank);
    let is_driver = rank.id() == driver;

    // Copy phase: driver-only. begin() every (move, migrator) pair, then
    // transfer() each; the first failure aborts the whole batch.
    let outcome = if is_driver {
        Some(run_copy_phase(rank, &t, &registry.migrators()))
    } else {
        None
    };
    // B2 (inside the broadcast): every rank learns the copy outcome.
    let outcome: CopyOutcome = rank.broadcast(driver, outcome);

    let ok = outcome.error.is_none();
    if ok && is_driver {
        // Publish the new map, then bump the unified epoch: from here every
        // epoch-tagged op either sees the new owners or is rejected typed
        // by the old owner's gate and re-resolves.
        let committed = membership.commit(&t);
        debug_assert!(committed, "rebalance transition raced another commit");
        let c = membership.counters();
        c.migrated_keys.fetch_add(outcome.keys, Ordering::Relaxed);
        c.migrated_bytes.fetch_add(outcome.bytes, Ordering::Relaxed);
        rank.telemetry().flight().record(FlightEvent::op(
            EventKind::EpochCommit,
            "rebalance.commit",
            subject,
            outcome.bytes,
            membership.epoch(),
            Outcome::Ok,
            0,
        ));
    }
    // B3: the commit (or the abort decision) is globally visible — no rank
    // resolves against the old map after this point, so the forwarding
    // window can close.
    rank.barrier();
    if is_driver {
        for mv in &t.moves {
            for m in registry.migrators() {
                // Best-effort on the abort path: a migrator that lost its
                // host mid-copy cannot be asked to clean up.
                let _ = m.end(rank, mv, ok);
            }
        }
        if !ok {
            rank.telemetry().flight().record(FlightEvent::op(
                EventKind::EpochCommit,
                "rebalance.abort",
                subject,
                0,
                membership.epoch(),
                Outcome::Err,
                0,
            ));
        }
    }
    // B4: every window is closed before any rank proceeds.
    rank.barrier();

    let report = RebalanceReport {
        epoch: membership.epoch(),
        moves: t.moves.len() as u64,
        migrated_keys: outcome.keys,
        migrated_bytes: outcome.bytes,
        committed: ok,
    };
    match outcome.error {
        None => Ok(report),
        Some(e) => Err(HclError::Rebalance(e)),
    }
}

/// begin + transfer every (move, migrator) pair; first failure wins and the
/// partial state is left for the `end(committed: false)` sweep.
fn run_copy_phase(
    rank: &Rank,
    t: &Transition,
    migrators: &[Arc<dyn ShardMigrator>],
) -> CopyOutcome {
    let mut keys = 0u64;
    let mut bytes = 0u64;
    for mv in &t.moves {
        for m in migrators {
            if let Err(e) = m.begin(rank, mv) {
                return CopyOutcome {
                    keys,
                    bytes,
                    error: Some(format!(
                        "begin failed for {} vpart {} ({} -> {}): {e}",
                        m.name(),
                        mv.vpart,
                        mv.from,
                        mv.to
                    )),
                };
            }
        }
    }
    for mv in &t.moves {
        for m in migrators {
            match m.transfer(rank, mv) {
                Ok((k, b)) => {
                    keys += k;
                    bytes += b;
                    rank.telemetry().flight().record(FlightEvent::op(
                        EventKind::Migration,
                        "rebalance.transfer",
                        mv.to,
                        b,
                        k,
                        Outcome::Ok,
                        0,
                    ));
                }
                Err(e) => {
                    return CopyOutcome {
                        keys,
                        bytes,
                        error: Some(format!(
                            "transfer failed for {} vpart {} ({} -> {}): {e}",
                            m.name(),
                            mv.vpart,
                            mv.from,
                            mv.to
                        )),
                    };
                }
            }
        }
    }
    CopyOutcome { keys, bytes, error: None }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcl_runtime::{ShardMove, World, WorldConfig};
    use std::sync::atomic::AtomicU64;

    /// A migrator that counts state-machine calls and can be told to fail
    /// its transfers.
    struct FakeMigrator {
        begins: AtomicU64,
        transfers: AtomicU64,
        ends_committed: AtomicU64,
        ends_aborted: AtomicU64,
        fail_transfer: bool,
    }

    impl FakeMigrator {
        fn new(fail_transfer: bool) -> Self {
            FakeMigrator {
                begins: AtomicU64::new(0),
                transfers: AtomicU64::new(0),
                ends_committed: AtomicU64::new(0),
                ends_aborted: AtomicU64::new(0),
                fail_transfer,
            }
        }
    }

    impl ShardMigrator for FakeMigrator {
        fn name(&self) -> &str {
            "fake"
        }
        fn begin(&self, _rank: &Rank, _mv: &ShardMove) -> HclResult<()> {
            self.begins.fetch_add(1, Ordering::Relaxed);
            Ok(())
        }
        fn transfer(&self, _rank: &Rank, _mv: &ShardMove) -> HclResult<(u64, u64)> {
            self.transfers.fetch_add(1, Ordering::Relaxed);
            if self.fail_transfer {
                Err(HclError::Persist("injected transfer failure".into()))
            } else {
                Ok((3, 24))
            }
        }
        fn end(&self, _rank: &Rank, _mv: &ShardMove, committed: bool) -> HclResult<()> {
            if committed {
                self.ends_committed.fetch_add(1, Ordering::Relaxed);
            } else {
                self.ends_aborted.fetch_add(1, Ordering::Relaxed);
            }
            Ok(())
        }
    }

    #[test]
    fn registry_register_once_dedups_by_key() {
        let reg = MigratorRegistry::default();
        reg.register_once("umap:a", Arc::new(FakeMigrator::new(false)));
        reg.register_once("umap:a", Arc::new(FakeMigrator::new(false)));
        reg.register_once("umap:b", Arc::new(FakeMigrator::new(false)));
        assert_eq!(reg.len(), 2);
    }

    #[test]
    fn drain_commits_walks_the_state_machine_and_bumps_the_epoch() {
        let cfg = WorldConfig { nodes: 3, ranks_per_node: 1, ..WorldConfig::small() };
        World::run(cfg, |rank| {
            let mig = rank.get_or_create_shared("test.fake-mig", || FakeMigrator::new(false));
            MigratorRegistry::shared(rank)
                .register_once("fake", Arc::clone(&mig) as Arc<dyn ShardMigrator>);
            let m = Arc::clone(rank.world().membership());
            let epoch0 = m.epoch();
            let moves = m.plan_remove(2).expect("plannable").moves.len() as u64;

            let report = drain_rank(rank, 2).expect("drain commits");
            assert!(report.committed);
            assert_eq!(report.moves, moves);
            assert_eq!(report.migrated_keys, moves * 3);
            assert_eq!(report.migrated_bytes, moves * 24);
            assert_eq!(report.epoch, epoch0 + 1);
            assert_eq!(m.epoch(), epoch0 + 1);
            assert!(!m.current().members().contains(&2));
            rank.barrier();
            if rank.id() == 0 {
                // Driver-only state machine: one begin/transfer/end(commit)
                // per move, no abort sweeps.
                assert_eq!(mig.begins.load(Ordering::Relaxed), moves);
                assert_eq!(mig.transfers.load(Ordering::Relaxed), moves);
                assert_eq!(mig.ends_committed.load(Ordering::Relaxed), moves);
                assert_eq!(mig.ends_aborted.load(Ordering::Relaxed), 0);
                let c = m.counters();
                assert_eq!(c.migrated_keys.load(Ordering::Relaxed), moves * 3);
                assert_eq!(c.migrated_bytes.load(Ordering::Relaxed), moves * 24);
            }
        });
    }

    #[test]
    fn failed_transfer_aborts_without_committing() {
        let cfg = WorldConfig { nodes: 3, ranks_per_node: 1, ..WorldConfig::small() };
        World::run(cfg, |rank| {
            let mig = rank.get_or_create_shared("test.failing-mig", || FakeMigrator::new(true));
            MigratorRegistry::shared(rank)
                .register_once("fake", Arc::clone(&mig) as Arc<dyn ShardMigrator>);
            let m = Arc::clone(rank.world().membership());
            let epoch0 = m.epoch();
            let members0 = m.current().members().to_vec();

            let err = drain_rank(rank, 1).expect_err("transfer failure aborts");
            assert!(
                matches!(&err, HclError::Rebalance(msg) if msg.contains("transfer failed")),
                "unexpected error: {err}"
            );
            // Nothing committed: same epoch, same members, zero migrated
            // counters — the old map stays authoritative.
            assert_eq!(m.epoch(), epoch0);
            assert_eq!(m.current().members(), &members0[..]);
            rank.barrier();
            if rank.id() == 0 {
                assert_eq!(mig.ends_committed.load(Ordering::Relaxed), 0);
                assert!(mig.ends_aborted.load(Ordering::Relaxed) > 0);
                assert_eq!(m.counters().migrated_keys.load(Ordering::Relaxed), 0);
            }
        });
    }

    #[test]
    fn draining_the_last_member_is_rejected_on_every_rank() {
        let cfg = WorldConfig { nodes: 1, ranks_per_node: 2, ..WorldConfig::small() };
        World::run(cfg, |rank| {
            let err = drain_rank(rank, 0).expect_err("last member cannot drain");
            assert!(matches!(err, HclError::Rebalance(_)));
        });
    }
}
