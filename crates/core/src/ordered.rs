//! `HCL::map` / `HCL::set` — ordered distributed structures (paper §III-D2).
//!
//! "Ordered structures are built using multiple single-partitioned
//! structures that are abstracted behind a global interface": each partition
//! is an ordered lock-free structure (our skiplist, standing in for the
//! paper's wait-free red-black tree — DESIGN.md substitution #5), keys are
//! distributed over partitions by hash, and global ordered views (`first`,
//! `range`, sorted snapshots) merge the per-partition orderings.
//!
//! Insert/find cost is `F + L·log(N) + W/R` (Table I): one remote
//! invocation, then an O(log n) descent at local-memory speed on the owner.
//!
//! Every operation is one [`Dispatcher`] call against the table in [`ops`];
//! the global views are per-partition fan-outs of the same dispatch calls.

use std::collections::HashMap;
use std::hash::Hash;
use std::sync::Arc;

use hcl_containers::SkipListMap;
use hcl_databox::DataBox;
use hcl_fabric::EpId;
use hcl_rpc::FnId;
use hcl_runtime::{Rank, WorldShared};

use crate::cost::CostSnapshot;
use crate::dispatch::{hist_invoke, hist_return, Dispatcher, ReplForwarder};
use crate::{default_servers, HclError, HclFuture, HclResult};

const FN_PUT: u32 = 0;
const FN_GET: u32 = 1;
const FN_ERASE: u32 = 2;
const FN_LEN: u32 = 3;
const FN_FIRST: u32 = 4;
const FN_RANGE: u32 = 5;
const FN_SNAPSHOT: u32 = 6;
const FN_RESIZE: u32 = 7;
const FN_REPL_PUT: u32 = 8;
const FN_REPL_GET: u32 = 9;
const FN_REPL_FLUSH: u32 = 10;
const N_FNS: u32 = 11;

/// Table I op descriptors for the ordered map.
mod ops {
    use crate::dispatch::{CostSig, OpClass, OpDescriptor};

    pub const PUT: OpDescriptor = OpDescriptor {
        name: "omap.put",
        class: OpClass::Write,
        fn_off: super::FN_PUT,
        cost: CostSig::lrw(1, 0, 1),
        idempotent: false,
        degradable: true,
    };
    pub const GET: OpDescriptor = OpDescriptor {
        name: "omap.get",
        class: OpClass::Read,
        fn_off: super::FN_GET,
        cost: CostSig::lrw(1, 1, 0),
        idempotent: true,
        degradable: true,
    };
    pub const ERASE: OpDescriptor = OpDescriptor {
        name: "omap.erase",
        class: OpClass::Write,
        fn_off: super::FN_ERASE,
        cost: CostSig::lrw(1, 0, 1),
        idempotent: false,
        degradable: true,
    };
    pub const LEN: OpDescriptor = OpDescriptor {
        name: "omap.len",
        class: OpClass::Admin,
        fn_off: super::FN_LEN,
        cost: CostSig::ZERO,
        idempotent: true,
        degradable: true,
    };
    pub const FIRST: OpDescriptor = OpDescriptor {
        name: "omap.first",
        class: OpClass::Read,
        fn_off: super::FN_FIRST,
        cost: CostSig::ZERO,
        idempotent: true,
        degradable: true,
    };
    pub const RANGE: OpDescriptor = OpDescriptor {
        name: "omap.range",
        class: OpClass::Read,
        fn_off: super::FN_RANGE,
        cost: CostSig::ZERO,
        idempotent: true,
        degradable: true,
    };
    pub const SNAPSHOT: OpDescriptor = OpDescriptor {
        name: "omap.snapshot",
        class: OpClass::Admin,
        fn_off: super::FN_SNAPSHOT,
        cost: CostSig::ZERO,
        idempotent: true,
        degradable: true,
    };
    pub const RESIZE: OpDescriptor = OpDescriptor {
        name: "omap.resize",
        class: OpClass::Admin,
        fn_off: super::FN_RESIZE,
        cost: CostSig::ZERO,
        idempotent: true,
        degradable: true,
    };
    // Replica ops are non-degradable: they are the failover path, so they
    // must still reach hosts that back marked-down owners (mirrors the
    // unordered map's descriptors).
    pub const REPL_GET: OpDescriptor = OpDescriptor {
        name: "omap.repl_get",
        class: OpClass::Read,
        fn_off: super::FN_REPL_GET,
        cost: CostSig::ZERO,
        idempotent: true,
        degradable: false,
    };
    pub const REPL_FLUSH: OpDescriptor = OpDescriptor {
        name: "omap.repl_flush",
        class: OpClass::Admin,
        fn_off: super::FN_REPL_FLUSH,
        cost: CostSig::ZERO,
        idempotent: true,
        degradable: false,
    };
}

/// Configuration for ordered containers.
#[derive(Debug, Clone)]
pub struct OrderedConfig {
    /// Partition owners; `None` = first rank of every node.
    pub servers: Option<Vec<u32>>,
    /// Hybrid access model toggle.
    pub hybrid: bool,
    /// Asynchronous replication factor (0 = off). Each partition forwards
    /// its mutations to the next `replicas` partition owners, and `get`s
    /// against a marked-down owner are served from the replica — the same
    /// degraded-read contract as [`crate::UnorderedMap`].
    pub replicas: usize,
}

impl Default for OrderedConfig {
    fn default() -> Self {
        OrderedConfig { servers: None, hybrid: true, replicas: 0 }
    }
}

/// Server-side state of one ordered partition.
struct Part<K, V>
where
    K: DataBox + Ord + Hash + Clone + Send + Sync + 'static,
    V: DataBox + Clone + Send + Sync + 'static,
{
    index: usize,
    map: SkipListMap<K, V>,
    /// Entries replicated *to* this partition from others.
    replica: SkipListMap<K, V>,
    repl: ReplForwarder,
    world: Arc<WorldShared>,
    fn_base: FnId,
    servers: Vec<u32>,
    replicas: usize,
}

impl<K, V> Part<K, V>
where
    K: DataBox + Ord + Hash + Clone + Send + Sync + 'static,
    V: DataBox + Clone + Send + Sync + 'static,
{
    fn apply_put(&self, key: K, value: V) -> bool {
        let newly = self.map.insert(key.clone(), value.clone()).is_none();
        if self.replicas > 0 {
            self.replicate((key, Some(value)));
        }
        newly
    }

    fn apply_erase(&self, key: &K) -> Option<V> {
        let prev = self.map.remove(key);
        if self.replicas > 0 {
            self.replicate((key.clone(), None::<V>));
        }
        prev
    }

    /// Forward a mutation asynchronously to the next `replicas` partitions
    /// (§III-A4), via the engine's [`ReplForwarder`].
    fn replicate(&self, args: (K, Option<V>)) {
        self.repl.forward(
            &self.world,
            self.index,
            &self.servers,
            self.replicas,
            self.fn_base + FN_REPL_PUT,
            &args.to_bytes(),
        );
    }

    fn flush_replication(&self) {
        self.repl.flush();
    }
}

struct Core<K, V>
where
    K: DataBox + Ord + Hash + Clone + Send + Sync + 'static,
    V: DataBox + Clone + Send + Sync + 'static,
{
    fn_base: FnId,
    servers: Vec<u32>,
    parts: HashMap<u32, Arc<Part<K, V>>>,
    cfg: OrderedConfig,
}

fn bind_handlers<K, V>(
    world: &Arc<WorldShared>,
    fn_base: FnId,
    parts: &HashMap<u32, Arc<Part<K, V>>>,
) where
    K: DataBox + Ord + Hash + Clone + Send + Sync + 'static,
    V: DataBox + Clone + Send + Sync + 'static,
{
    let reg = world.registry();
    let p = parts.clone();
    reg.bind_typed(fn_base + FN_PUT, move |server: EpId, _, (k, v): (K, V)| {
        p[&server.rank].apply_put(k, v)
    });
    let p = parts.clone();
    reg.bind_typed(fn_base + FN_GET, move |server: EpId, _, k: K| p[&server.rank].map.get(&k));
    let p = parts.clone();
    reg.bind_typed(fn_base + FN_ERASE, move |server: EpId, _, k: K| {
        p[&server.rank].apply_erase(&k)
    });
    let p = parts.clone();
    reg.bind_typed(fn_base + FN_LEN, move |server: EpId, _, ()| {
        p[&server.rank].map.len() as u64
    });
    let p = parts.clone();
    reg.bind_typed(fn_base + FN_FIRST, move |server: EpId, _, ()| p[&server.rank].map.first());
    let p = parts.clone();
    reg.bind_typed(fn_base + FN_RANGE, move |server: EpId, _, (lo, hi): (K, K)| {
        p[&server.rank].map.range_snapshot(&lo, &hi)
    });
    let p = parts.clone();
    reg.bind_typed(fn_base + FN_SNAPSHOT, move |server: EpId, _, ()| {
        p[&server.rank].map.iter_snapshot()
    });
    // Skiplist partitions grow node-by-node; the paper's realloc-style
    // resize is satisfied trivially, but the surface is kept for parity.
    reg.bind_typed(fn_base + FN_RESIZE, move |_: EpId, _, _new_size: u64| true);
    let p = parts.clone();
    reg.bind_typed(
        fn_base + FN_REPL_PUT,
        move |server: EpId, _, (k, v): (K, Option<V>)| {
            let part = &p[&server.rank];
            match v {
                Some(v) => {
                    part.replica.insert(k, v);
                }
                None => {
                    part.replica.remove(&k);
                }
            }
            true
        },
    );
    let p = parts.clone();
    reg.bind_typed(fn_base + FN_REPL_GET, move |server: EpId, _, k: K| {
        p[&server.rank].replica.get(&k)
    });
    let p = parts.clone();
    reg.bind_typed(fn_base + FN_REPL_FLUSH, move |server: EpId, _, ()| {
        p[&server.rank].flush_replication();
        true
    });
}

/// A distributed ordered map.
pub struct OrderedMap<'a, K, V>
where
    K: DataBox + Ord + Hash + Clone + Send + Sync + 'static,
    V: DataBox + Clone + Send + Sync + 'static,
{
    core: Arc<Core<K, V>>,
    d: Dispatcher<'a>,
}

impl<'a, K, V> OrderedMap<'a, K, V>
where
    K: DataBox + Ord + Hash + Clone + Send + Sync + 'static,
    V: DataBox + Clone + Send + Sync + 'static,
{
    /// Collective constructor with defaults.
    pub fn new(rank: &'a Rank, name: &str) -> Self {
        Self::with_config(rank, name, OrderedConfig::default())
    }

    /// Collective constructor with configuration.
    pub fn with_config(rank: &'a Rank, name: &str, cfg: OrderedConfig) -> Self {
        let world = Arc::clone(rank.world());
        let cfg2 = cfg.clone();
        let core = rank.get_or_create_shared(&format!("hcl.omap.{name}"), move || {
            let servers = cfg2.servers.clone().unwrap_or_else(|| default_servers(&world));
            let fn_base = world.alloc_fn_ids(N_FNS);
            let mut parts = HashMap::new();
            for (i, &owner) in servers.iter().enumerate() {
                parts.insert(
                    owner,
                    Arc::new(Part {
                        index: i,
                        map: SkipListMap::new(),
                        replica: SkipListMap::new(),
                        repl: ReplForwarder::new(),
                        world: Arc::clone(&world),
                        fn_base,
                        servers: servers.clone(),
                        replicas: cfg2.replicas,
                    }),
                );
            }
            bind_handlers(&world, fn_base, &parts);
            Core { fn_base, servers, parts, cfg: cfg2 }
        });
        let d = Dispatcher::new(rank, "omap", core.fn_base, core.cfg.hybrid);
        OrderedMap { core, d }
    }

    /// Attach a shared history recorder: every synchronous `put`/`get`/
    /// `erase` through this handle is logged as an invoke/return pair for
    /// offline linearizability checking ([`crate::check`]). Asynchronous
    /// variants and range scans are not recorded.
    #[cfg(feature = "history")]
    pub fn set_recorder(&mut self, rec: crate::HistoryRecorder) {
        self.d.set_recorder(rec);
    }

    /// Which partition owns `key`.
    pub fn partition_of(&self, key: &K) -> usize {
        self.d.partition_for(key, self.core.servers.len())
    }

    /// Number of partitions.
    pub fn partitions(&self) -> usize {
        self.core.servers.len()
    }

    fn owner_of(&self, key: &K) -> u32 {
        self.core.servers[self.partition_of(key)]
    }

    /// Mark a partition-owner rank failed: subsequent ops targeting it
    /// degrade immediately with [`crate::HclError::OwnerDown`].
    pub fn mark_down(&self, owner_rank: u32) {
        self.d.mark_down(owner_rank);
    }

    /// Clear a failure mark set by [`OrderedMap::mark_down`].
    pub fn mark_up(&self, owner_rank: u32) {
        self.d.mark_up(owner_rank);
    }

    /// Insert (Table I: `F + L·log(N) + W`); `true` when newly inserted.
    pub fn put(&self, key: K, value: V) -> HclResult<bool> {
        let tok = hist_invoke!(
            self.d,
            crate::DsOp::MapPut {
                key: crate::history_enc(&key),
                value: crate::history_enc(&value),
            }
        );
        let owner = self.owner_of(&key);
        let result = self.d.sync(&ops::PUT, owner, (key, value), |(k, v)| {
            self.core.parts[&owner].apply_put(k, v)
        });
        hist_return!(self.d, tok, &result, |newly| crate::DsRet::Inserted(*newly));
        result
    }

    /// Asynchronous insert. Remote inserts stage on the rank's op coalescer
    /// and may ride a batched message with neighbouring async ops.
    pub fn put_async(&self, key: K, value: V) -> HclResult<HclFuture<bool>> {
        let owner = self.owner_of(&key);
        self.d.dispatch_async(&ops::PUT, owner, (key, value), |(k, v)| {
            self.core.parts[&owner].apply_put(k, v)
        })
    }

    /// Look up (Table I: `F + L·log(N) + R`). Falls back to a replica when
    /// the owner has been marked down (requires `replicas >= 1`) — the same
    /// degraded-read contract as the unordered map.
    pub fn get(&self, key: &K) -> HclResult<Option<V>> {
        let tok = hist_invoke!(self.d, crate::DsOp::MapGet { key: crate::history_enc(key) });
        let p = self.partition_of(key);
        let owner = self.core.servers[p];
        // Without replicas there is nowhere to degrade to: dispatch normally
        // so the gate rejects the downed owner with `OwnerDown` immediately.
        let result = if self.d.is_down(owner) && self.core.cfg.replicas >= 1 {
            self.get_from_replica(p, key)
        } else {
            self.d.sync_ref(&ops::GET, owner, key, || self.core.parts[&owner].map.get(key))
        };
        hist_return!(self.d, tok, &result, |v| crate::DsRet::Value(
            v.as_ref().map(crate::history_enc)
        ));
        result
    }

    fn get_from_replica(&self, partition: usize, key: &K) -> HclResult<Option<V>> {
        let nparts = self.core.servers.len();
        let replica_owner = self.core.servers[(partition + 1) % nparts];
        self.d.sync_ref(&ops::REPL_GET, replica_owner, key, || {
            self.core.parts[&replica_owner].replica.get(key)
        })
    }

    /// Wait until every partition's outstanding replication forwards have
    /// been acknowledged.
    pub fn flush_replication(&self) -> HclResult<()> {
        for &owner in &self.core.servers {
            let _: bool = self.d.sync_ref(&ops::REPL_FLUSH, owner, &(), || {
                self.core.parts[&owner].flush_replication();
                true
            })?;
        }
        Ok(())
    }

    /// Remove `key`.
    pub fn erase(&self, key: &K) -> HclResult<Option<V>> {
        let tok = hist_invoke!(self.d, crate::DsOp::MapErase { key: crate::history_enc(key) });
        let owner = self.owner_of(key);
        let result = self.d.sync_ref(&ops::ERASE, owner, key, || {
            self.core.parts[&owner].apply_erase(key)
        });
        hist_return!(self.d, tok, &result, |v| crate::DsRet::Value(
            v.as_ref().map(crate::history_enc)
        ));
        result
    }

    /// Presence check.
    pub fn contains(&self, key: &K) -> HclResult<bool> {
        Ok(self.get(key)?.is_some())
    }

    /// Total entries.
    pub fn len(&self) -> HclResult<u64> {
        let mut total = 0;
        for &owner in &self.core.servers {
            total += self.d.sync_ref(&ops::LEN, owner, &(), || {
                self.core.parts[&owner].map.len() as u64
            })?;
        }
        Ok(total)
    }

    /// True when empty.
    pub fn is_empty(&self) -> HclResult<bool> {
        Ok(self.len()? == 0)
    }

    /// Global minimum entry: the minimum of every partition's first.
    pub fn first(&self) -> HclResult<Option<(K, V)>> {
        let mut best: Option<(K, V)> = None;
        for &owner in &self.core.servers {
            let cand: Option<(K, V)> =
                self.d.sync_ref(&ops::FIRST, owner, &(), || self.core.parts[&owner].map.first())?;
            if let Some((k, v)) = cand {
                if best.as_ref().is_none_or(|(bk, _)| k < *bk) {
                    best = Some((k, v));
                }
            }
        }
        Ok(best)
    }

    /// All entries with keys in `[lo, hi)`, globally sorted.
    pub fn range(&self, lo: &K, hi: &K) -> HclResult<Vec<(K, V)>> {
        let args = (lo.clone(), hi.clone());
        let mut out = Vec::new();
        for &owner in &self.core.servers {
            let part: Vec<(K, V)> = self.d.sync_ref(&ops::RANGE, owner, &args, || {
                self.core.parts[&owner].map.range_snapshot(lo, hi)
            })?;
            out.extend(part);
        }
        out.sort_by(|a, b| a.0.cmp(&b.0));
        Ok(out)
    }

    /// Every entry, globally sorted (merging the per-partition orders).
    pub fn snapshot_sorted(&self) -> HclResult<Vec<(K, V)>> {
        let mut out = Vec::new();
        for &owner in &self.core.servers {
            let part: Vec<(K, V)> = self.d.sync_ref(&ops::SNAPSHOT, owner, &(), || {
                self.core.parts[&owner].map.iter_snapshot()
            })?;
            out.extend(part);
        }
        out.sort_by(|a, b| a.0.cmp(&b.0));
        Ok(out)
    }

    /// Partition resize surface (Table I parity; skiplist partitions grow
    /// node-by-node so this is trivially satisfied).
    pub fn resize(&self, partition_id: usize, new_size: usize) -> HclResult<bool> {
        let owner = *self
            .core
            .servers
            .get(partition_id)
            .ok_or(HclError::BadPartition(partition_id))?;
        self.d.sync_ref(&ops::RESIZE, owner, &(new_size as u64), || true)
    }

    /// Persist a globally sorted snapshot of the whole map to `path`
    /// (§III-C6 durability for ordered structures).
    pub fn persist_snapshot(&self, path: impl AsRef<std::path::Path>) -> HclResult<()> {
        let snap = self.snapshot_sorted()?;
        std::fs::write(path, &snap.to_bytes())
            .map_err(|e| crate::HclError::Persist(e.to_string()))
    }

    /// Reload a snapshot written by [`OrderedMap::persist_snapshot`],
    /// re-inserting every entry (keys re-distribute over the current
    /// partitions). Returns the number of restored entries.
    pub fn restore_snapshot(&self, path: impl AsRef<std::path::Path>) -> HclResult<u64> {
        let bytes =
            std::fs::read(path).map_err(|e| crate::HclError::Persist(e.to_string()))?;
        let snap: Vec<(K, V)> = hcl_databox::DataBox::from_bytes(&bytes)
            .map_err(|e| crate::HclError::Persist(e.to_string()))?;
        let n = snap.len() as u64;
        for (k, v) in snap {
            self.put(k, v)?;
        }
        Ok(n)
    }

    /// Client-side cost counters.
    pub fn costs(&self) -> CostSnapshot {
        self.d.costs()
    }
}

/// A distributed ordered set.
pub struct OrderedSet<'a, K>
where
    K: DataBox + Ord + Hash + Clone + Send + Sync + 'static,
{
    inner: OrderedMap<'a, K, ()>,
}

impl<'a, K> OrderedSet<'a, K>
where
    K: DataBox + Ord + Hash + Clone + Send + Sync + 'static,
{
    /// Collective constructor with defaults.
    pub fn new(rank: &'a Rank, name: &str) -> Self {
        OrderedSet { inner: OrderedMap::new(rank, name) }
    }

    /// Collective constructor with configuration.
    pub fn with_config(rank: &'a Rank, name: &str, cfg: OrderedConfig) -> Self {
        OrderedSet { inner: OrderedMap::with_config(rank, name, cfg) }
    }

    /// Insert `key`; `true` when newly inserted.
    pub fn insert(&self, key: K) -> HclResult<bool> {
        self.inner.put(key, ())
    }

    /// Membership test.
    pub fn contains(&self, key: &K) -> HclResult<bool> {
        self.inner.contains(key)
    }

    /// Remove `key`; `true` when it was present.
    pub fn remove(&self, key: &K) -> HclResult<bool> {
        Ok(self.inner.erase(key)?.is_some())
    }

    /// Total elements.
    pub fn len(&self) -> HclResult<u64> {
        self.inner.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> HclResult<bool> {
        self.inner.is_empty()
    }

    /// Smallest element.
    pub fn first(&self) -> HclResult<Option<K>> {
        Ok(self.inner.first()?.map(|(k, ())| k))
    }

    /// Elements in `[lo, hi)`, sorted.
    pub fn range(&self, lo: &K, hi: &K) -> HclResult<Vec<K>> {
        Ok(self.inner.range(lo, hi)?.into_iter().map(|(k, ())| k).collect())
    }

    /// Every element, sorted.
    pub fn snapshot_sorted(&self) -> HclResult<Vec<K>> {
        Ok(self.inner.snapshot_sorted()?.into_iter().map(|(k, ())| k).collect())
    }

    /// Mark a partition-owner rank failed (see [`OrderedMap::mark_down`]).
    pub fn mark_down(&self, owner_rank: u32) {
        self.inner.mark_down(owner_rank);
    }

    /// Clear a failure mark set by [`OrderedSet::mark_down`].
    pub fn mark_up(&self, owner_rank: u32) {
        self.inner.mark_up(owner_rank);
    }

    /// Client-side cost counters.
    pub fn costs(&self) -> CostSnapshot {
        self.inner.costs()
    }
}
