//! `HCL::map` / `HCL::set` — ordered distributed structures (paper §III-D2).
//!
//! "Ordered structures are built using multiple single-partitioned
//! structures that are abstracted behind a global interface": each partition
//! is an ordered lock-free structure (our skiplist, standing in for the
//! paper's wait-free red-black tree — DESIGN.md substitution #5), keys are
//! distributed over partitions by hash, and global ordered views (`first`,
//! `range`, sorted snapshots) merge the per-partition orderings.
//!
//! Insert/find cost is `F + L·log(N) + W/R` (Table I): one remote
//! invocation, then an O(log n) descent at local-memory speed on the owner.
//!
//! Every operation is one [`Dispatcher`] call against the table in [`ops`];
//! the global views are per-partition fan-outs of the same dispatch calls.

use std::collections::{HashMap, HashSet};
use std::hash::Hash;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use hcl_containers::SkipListMap;
use hcl_databox::DataBox;
use hcl_fabric::EpId;
use hcl_rpc::FnId;
use hcl_runtime::{Membership, PartitionMap, Rank, ShardMove, WorldShared};
use parking_lot::{Mutex, RwLock};

use crate::cost::CostSnapshot;
use crate::dispatch::{hist_invoke, hist_return, Dispatcher, OwnerMap, ReplForwarder};
use crate::persist::{Flusher, OpLog, PersistConfig};
use crate::rebalance::{MigratorRegistry, ShardMigrator};
use crate::{default_servers, HclError, HclFuture, HclResult};

const FN_PUT: u32 = 0;
const FN_GET: u32 = 1;
const FN_ERASE: u32 = 2;
const FN_LEN: u32 = 3;
const FN_FIRST: u32 = 4;
const FN_RANGE: u32 = 5;
const FN_SNAPSHOT: u32 = 6;
const FN_RESIZE: u32 = 7;
const FN_REPL_PUT: u32 = 8;
const FN_REPL_GET: u32 = 9;
const FN_REPL_FLUSH: u32 = 10;
// Live-migration control plane (see [`crate::rebalance`]); mirrors the
// unordered map's fn-id layout and semantics.
const FN_MIG_ARM: u32 = 11;
const FN_MIG_BEGIN: u32 = 12;
const FN_MIG_EXTRACT: u32 = 13;
const FN_MIG_INSTALL: u32 = 14;
const FN_MIG_APPLY: u32 = 15;
const FN_MIG_END: u32 = 16;
const N_FNS: u32 = 17;

/// Table I op descriptors for the ordered map.
mod ops {
    use crate::dispatch::{CostSig, OpClass, OpDescriptor};

    pub const PUT: OpDescriptor = OpDescriptor {
        name: "omap.put",
        class: OpClass::Write,
        fn_off: super::FN_PUT,
        cost: CostSig::lrw(1, 0, 1),
        idempotent: false,
        degradable: true,
    };
    pub const GET: OpDescriptor = OpDescriptor {
        name: "omap.get",
        class: OpClass::Read,
        fn_off: super::FN_GET,
        cost: CostSig::lrw(1, 1, 0),
        idempotent: true,
        degradable: true,
    };
    pub const ERASE: OpDescriptor = OpDescriptor {
        name: "omap.erase",
        class: OpClass::Write,
        fn_off: super::FN_ERASE,
        cost: CostSig::lrw(1, 0, 1),
        idempotent: false,
        degradable: true,
    };
    pub const LEN: OpDescriptor = OpDescriptor {
        name: "omap.len",
        class: OpClass::Admin,
        fn_off: super::FN_LEN,
        cost: CostSig::ZERO,
        idempotent: true,
        degradable: true,
    };
    pub const FIRST: OpDescriptor = OpDescriptor {
        name: "omap.first",
        class: OpClass::Read,
        fn_off: super::FN_FIRST,
        cost: CostSig::ZERO,
        idempotent: true,
        degradable: true,
    };
    pub const RANGE: OpDescriptor = OpDescriptor {
        name: "omap.range",
        class: OpClass::Read,
        fn_off: super::FN_RANGE,
        cost: CostSig::ZERO,
        idempotent: true,
        degradable: true,
    };
    pub const SNAPSHOT: OpDescriptor = OpDescriptor {
        name: "omap.snapshot",
        class: OpClass::Admin,
        fn_off: super::FN_SNAPSHOT,
        cost: CostSig::ZERO,
        idempotent: true,
        degradable: true,
    };
    pub const RESIZE: OpDescriptor = OpDescriptor {
        name: "omap.resize",
        class: OpClass::Admin,
        fn_off: super::FN_RESIZE,
        cost: CostSig::ZERO,
        idempotent: true,
        degradable: true,
    };
    // Replica ops are non-degradable: they are the failover path, so they
    // must still reach hosts that back marked-down owners (mirrors the
    // unordered map's descriptors).
    pub const REPL_GET: OpDescriptor = OpDescriptor {
        name: "omap.repl_get",
        class: OpClass::Read,
        fn_off: super::FN_REPL_GET,
        cost: CostSig::ZERO,
        idempotent: true,
        degradable: false,
    };
    pub const REPL_FLUSH: OpDescriptor = OpDescriptor {
        name: "omap.repl_flush",
        class: OpClass::Admin,
        fn_off: super::FN_REPL_FLUSH,
        cost: CostSig::ZERO,
        idempotent: true,
        degradable: false,
    };
    // Migration control ops: issued by the rebalance driver at explicit
    // ranks, never epoch-tagged (the map mid-transition is exactly what
    // they operate on).
    pub const MIG_ARM: OpDescriptor = OpDescriptor {
        name: "omap.mig_arm",
        class: OpClass::Admin,
        fn_off: super::FN_MIG_ARM,
        cost: CostSig::ZERO,
        idempotent: true,
        degradable: true,
    };
    pub const MIG_BEGIN: OpDescriptor = OpDescriptor {
        name: "omap.mig_begin",
        class: OpClass::Admin,
        fn_off: super::FN_MIG_BEGIN,
        cost: CostSig::ZERO,
        idempotent: true,
        degradable: true,
    };
    pub const MIG_EXTRACT: OpDescriptor = OpDescriptor {
        name: "omap.mig_extract",
        class: OpClass::Admin,
        fn_off: super::FN_MIG_EXTRACT,
        cost: CostSig::ZERO,
        idempotent: true,
        degradable: true,
    };
    pub const MIG_INSTALL: OpDescriptor = OpDescriptor {
        name: "omap.mig_install",
        class: OpClass::Write,
        fn_off: super::FN_MIG_INSTALL,
        cost: CostSig::lrw(1, 0, 1),
        idempotent: true,
        degradable: true,
    };
    pub const MIG_END: OpDescriptor = OpDescriptor {
        name: "omap.mig_end",
        class: OpClass::Admin,
        fn_off: super::FN_MIG_END,
        cost: CostSig::ZERO,
        idempotent: true,
        degradable: true,
    };
}

/// Configuration for ordered containers.
#[derive(Debug, Clone)]
pub struct OrderedConfig {
    /// Partition owners; `None` = first rank of every node.
    pub servers: Option<Vec<u32>>,
    /// Hybrid access model toggle.
    pub hybrid: bool,
    /// Asynchronous replication factor (0 = off). Each partition forwards
    /// its mutations to the next `replicas` partition owners, and `get`s
    /// against a marked-down owner are served from the replica — the same
    /// degraded-read contract as [`crate::UnorderedMap`].
    pub replicas: usize,
    /// Durability: when set, every partition appends its mutations to a
    /// segmented write-ahead log under the config's directory and replays
    /// it on (re)construction — same subsystem and guarantees as
    /// [`crate::UnorderedMap`] (§III-C6, DESIGN.md §16).
    pub persist: Option<PersistConfig>,
}

impl Default for OrderedConfig {
    fn default() -> Self {
        OrderedConfig { servers: None, hybrid: true, replicas: 0, persist: None }
    }
}

/// On-log record of one ordered-map mutation: `(0, k, Some(v))` = put,
/// `(1, k, None)` = erase.
type LogRec<K, V> = (u8, K, Option<V>);

/// Server-side state of one ordered partition.
struct Part<K, V>
where
    K: DataBox + Ord + Hash + Clone + Send + Sync + 'static,
    V: DataBox + Clone + Send + Sync + 'static,
{
    index: usize,
    /// The rank hosting this part (the key of `Core::parts`).
    home: u32,
    map: SkipListMap<K, V>,
    /// Entries replicated *to* this partition from others.
    replica: SkipListMap<K, V>,
    log: Option<OpLog<LogRec<K, V>>>,
    /// Recovery-descriptor sequence for mutations applied outside an RPC
    /// worker (the hybrid local bypass); see [`crate::persist::op_identity`].
    local_seq: AtomicU64,
    repl: ReplForwarder,
    world: Arc<WorldShared>,
    fn_base: FnId,
    servers: Vec<u32>,
    replicas: usize,
    /// The world's membership view — `Some` for elastic containers (no
    /// explicit `servers`), whose shards can move between ranks.
    membership: Option<Arc<Membership>>,
    /// Old-owner side of live migration: vparts in a write-forwarding
    /// window, mapped to their new owner.
    forwarding: RwLock<HashMap<usize, u32>>,
    /// New-owner side: keys erased by a forwarded write during the window.
    tombstones: Mutex<HashSet<K>>,
    /// New-owner side: keys the migration wrote during the window (also the
    /// window's write lock — installs and forwarded applies serialize on it
    /// because the skiplist has no atomic insert-if-absent).
    installed: Mutex<Vec<K>>,
}

impl<K, V> Part<K, V>
where
    K: DataBox + Ord + Hash + Clone + Send + Sync + 'static,
    V: DataBox + Clone + Send + Sync + 'static,
{
    /// Log one mutation with its dispatch op index and recovery descriptor.
    fn log_op(&self, rec: &LogRec<K, V>, fn_off: u32) {
        if let Some(log) = &self.log {
            let ident = crate::persist::op_identity(self.home, &self.local_seq);
            let _ = log.append_op(rec, fn_off as u16, ident);
        }
    }

    fn apply_put(&self, key: K, value: V) -> bool {
        self.log_op(&(0, key.clone(), Some(value.clone())), FN_PUT);
        let newly = self.map.insert(key.clone(), value.clone()).is_none();
        self.forward_migration(&key, Some(&value));
        if self.replicas > 0 {
            self.replicate((key, Some(value)));
        }
        newly
    }

    fn apply_erase(&self, key: &K) -> Option<V> {
        self.log_op(&(1, key.clone(), None), FN_ERASE);
        let prev = self.map.remove(key);
        self.forward_migration(key, None);
        if self.replicas > 0 {
            self.replicate((key.clone(), None::<V>));
        }
        prev
    }

    /// Forward a mutation asynchronously to the next `replicas` partitions
    /// (§III-A4), via the engine's [`ReplForwarder`].
    fn replicate(&self, args: (K, Option<V>)) {
        self.repl.forward(
            &self.world,
            self.index,
            &self.servers,
            self.replicas,
            self.fn_base + FN_REPL_PUT,
            &args.to_bytes(),
        );
    }

    fn flush_replication(&self) {
        self.repl.flush();
    }

    /// The virtual partition `key` hashes into (`usize::MAX` for pinned
    /// parts, which never match a window).
    fn vpart_of(&self, key: &K) -> usize {
        self.membership
            .as_ref()
            .map_or(usize::MAX, |m| m.current().vpart_of_hash(crate::stable_hash(key)))
    }

    /// Old-owner side of the write-forwarding window (see the unordered
    /// map's twin for the full race matrix).
    /// See the unordered map's `forward_migration`: dual-apply at the new
    /// owner during the window, and — because the hybrid bypass is not
    /// epoch-gated — also when this part no longer owns the key's vpart
    /// (a bypass that raced the commit), so the write is never stranded.
    fn forward_migration(&self, key: &K, value: Option<&V>) {
        let Some(m) = &self.membership else { return };
        let map = m.current();
        let vp = map.vpart_of_hash(crate::stable_hash(key));
        let target = match self.forwarding.read().get(&vp) {
            Some(&t) => t,
            None => {
                let owner = map.owner_of_vpart(vp);
                if owner == self.home {
                    return;
                }
                owner
            }
        };
        self.repl.forward_to(
            &self.world,
            target,
            self.fn_base + FN_MIG_APPLY,
            &(key.clone(), value.cloned()).to_bytes(),
        );
        m.counters().forwarded_writes.fetch_add(1, Ordering::Relaxed);
    }

    /// New-owner side: clear window bookkeeping left by an aborted attempt.
    fn mig_arm(&self, vpart: usize) {
        self.tombstones.lock().retain(|k| self.vpart_of(k) != vpart);
        self.installed.lock().retain(|k| self.vpart_of(k) != vpart);
    }

    /// Old-owner side: open the forwarding window for `vpart` toward `to`.
    fn mig_begin(&self, vpart: usize, to: u32) {
        self.forwarding.write().insert(vpart, to);
    }

    /// Old-owner side: copy (do not remove) every entry of `vpart`.
    fn mig_extract(&self, vpart: usize) -> Vec<(K, V)> {
        self.map.iter_snapshot().into_iter().filter(|(k, _)| self.vpart_of(k) == vpart).collect()
    }

    /// New-owner side: install one copied entry — insert-if-absent under
    /// the window lock, so a fresher forwarded put is never overwritten by
    /// the older copy and tombstoned keys stay dead.
    fn mig_install(&self, key: K, value: V) -> bool {
        let mut installed = self.installed.lock();
        if self.tombstones.lock().contains(&key) {
            return false;
        }
        if self.map.get(&key).is_some() {
            return false;
        }
        // Durability follows the shard: the install is logged at its new
        // owner under the delivering RPC's identity.
        self.log_op(&(0, key.clone(), Some(value.clone())), FN_MIG_INSTALL);
        self.map.insert(key.clone(), value);
        installed.push(key);
        true
    }

    /// New-owner side: apply one forwarded write (fresher than any copy).
    fn mig_apply(&self, key: K, value: Option<V>) {
        let mut installed = self.installed.lock();
        match value {
            Some(v) => {
                self.log_op(&(0, key.clone(), Some(v.clone())), FN_MIG_APPLY);
                self.tombstones.lock().remove(&key);
                self.map.insert(key.clone(), v);
                installed.push(key);
            }
            None => {
                self.log_op(&(1, key.clone(), None), FN_MIG_APPLY);
                self.map.remove(&key);
                self.tombstones.lock().insert(key);
            }
        }
    }

    /// Close the window for `vpart` (same contract as the unordered twin).
    fn mig_end(&self, vpart: usize, committed: bool, source: bool) {
        if source {
            self.forwarding.write().remove(&vpart);
            if committed {
                self.repl.flush();
                for (k, _) in self.map.iter_snapshot() {
                    if self.vpart_of(&k) == vpart {
                        self.map.remove(&k);
                    }
                }
                // Compact the log down to the post-purge contents so a
                // crash-restart never resurrects keys that migrated away.
                if let Some(log) = &self.log {
                    let snapshot: Vec<LogRec<K, V>> = self
                        .map
                        .iter_snapshot()
                        .into_iter()
                        .map(|(k, v)| (0, k, Some(v)))
                        .collect();
                    let _ = log.compact(snapshot.iter());
                }
            }
        } else {
            if !committed {
                let mut installed = self.installed.lock();
                let mut i = 0;
                while i < installed.len() {
                    if self.vpart_of(&installed[i]) == vpart {
                        let k = installed.swap_remove(i);
                        self.map.remove(&k);
                    } else {
                        i += 1;
                    }
                }
            } else {
                self.installed.lock().retain(|k| self.vpart_of(k) != vpart);
            }
            self.tombstones.lock().retain(|k| self.vpart_of(k) != vpart);
        }
    }
}

struct Core<K, V>
where
    K: DataBox + Ord + Hash + Clone + Send + Sync + 'static,
    V: DataBox + Clone + Send + Sync + 'static,
{
    fn_base: FnId,
    servers: Vec<u32>,
    /// Static replica ring over `servers`; doubles as the owner map for
    /// pinned containers (bit-identical to `servers[hash % len]`).
    repl_map: Arc<PartitionMap>,
    parts: HashMap<u32, Arc<Part<K, V>>>,
    cfg: OrderedConfig,
    /// Background sync thread bounding the relaxed-policy flush gap across
    /// all this container's partition logs (`None` for strict/manual).
    #[allow(dead_code)]
    flusher: Option<Flusher>,
}

fn bind_handlers<K, V>(
    world: &Arc<WorldShared>,
    fn_base: FnId,
    parts: &HashMap<u32, Arc<Part<K, V>>>,
) where
    K: DataBox + Ord + Hash + Clone + Send + Sync + 'static,
    V: DataBox + Clone + Send + Sync + 'static,
{
    let reg = world.registry();
    let p = parts.clone();
    reg.bind_typed(fn_base + FN_PUT, move |server: EpId, _, (k, v): (K, V)| {
        p[&server.rank].apply_put(k, v)
    });
    let p = parts.clone();
    reg.bind_typed(fn_base + FN_GET, move |server: EpId, _, k: K| p[&server.rank].map.get(&k));
    let p = parts.clone();
    reg.bind_typed(fn_base + FN_ERASE, move |server: EpId, _, k: K| {
        p[&server.rank].apply_erase(&k)
    });
    let p = parts.clone();
    reg.bind_typed(fn_base + FN_LEN, move |server: EpId, _, ()| {
        p[&server.rank].map.len() as u64
    });
    let p = parts.clone();
    reg.bind_typed(fn_base + FN_FIRST, move |server: EpId, _, ()| p[&server.rank].map.first());
    let p = parts.clone();
    reg.bind_typed(fn_base + FN_RANGE, move |server: EpId, _, (lo, hi): (K, K)| {
        p[&server.rank].map.range_snapshot(&lo, &hi)
    });
    let p = parts.clone();
    reg.bind_typed(fn_base + FN_SNAPSHOT, move |server: EpId, _, ()| {
        p[&server.rank].map.iter_snapshot()
    });
    // Skiplist partitions grow node-by-node; the paper's realloc-style
    // resize is satisfied trivially, but the surface is kept for parity.
    reg.bind_typed(fn_base + FN_RESIZE, move |_: EpId, _, _new_size: u64| true);
    let p = parts.clone();
    reg.bind_typed(
        fn_base + FN_REPL_PUT,
        move |server: EpId, _, (k, v): (K, Option<V>)| {
            let part = &p[&server.rank];
            match v {
                Some(v) => {
                    part.replica.insert(k, v);
                }
                None => {
                    part.replica.remove(&k);
                }
            }
            true
        },
    );
    let p = parts.clone();
    reg.bind_typed(fn_base + FN_REPL_GET, move |server: EpId, _, k: K| {
        p[&server.rank].replica.get(&k)
    });
    let p = parts.clone();
    reg.bind_typed(fn_base + FN_REPL_FLUSH, move |server: EpId, _, ()| {
        p[&server.rank].flush_replication();
        true
    });
    let p = parts.clone();
    reg.bind_typed(fn_base + FN_MIG_ARM, move |server: EpId, _, vpart: u64| {
        p[&server.rank].mig_arm(vpart as usize);
        true
    });
    let p = parts.clone();
    reg.bind_typed(fn_base + FN_MIG_BEGIN, move |server: EpId, _, (vpart, to): (u64, u32)| {
        p[&server.rank].mig_begin(vpart as usize, to);
        true
    });
    let p = parts.clone();
    reg.bind_typed(fn_base + FN_MIG_EXTRACT, move |server: EpId, _, vpart: u64| {
        p[&server.rank].mig_extract(vpart as usize)
    });
    let p = parts.clone();
    reg.bind_typed(fn_base + FN_MIG_INSTALL, move |server: EpId, _, (k, v): (K, V)| {
        p[&server.rank].mig_install(k, v)
    });
    let p = parts.clone();
    reg.bind_typed(fn_base + FN_MIG_APPLY, move |server: EpId, _, (k, v): (K, Option<V>)| {
        p[&server.rank].mig_apply(k, v);
        true
    });
    let p = parts.clone();
    reg.bind_typed(
        fn_base + FN_MIG_END,
        move |server: EpId, _, (vpart, committed, source): (u64, bool, bool)| {
            p[&server.rank].mig_end(vpart as usize, committed, source);
            true
        },
    );
}

/// A distributed ordered map.
pub struct OrderedMap<'a, K, V>
where
    K: DataBox + Ord + Hash + Clone + Send + Sync + 'static,
    V: DataBox + Clone + Send + Sync + 'static,
{
    core: Arc<Core<K, V>>,
    d: Dispatcher<'a>,
}

impl<'a, K, V> OrderedMap<'a, K, V>
where
    K: DataBox + Ord + Hash + Clone + Send + Sync + 'static,
    V: DataBox + Clone + Send + Sync + 'static,
{
    /// Collective constructor with defaults.
    pub fn new(rank: &'a Rank, name: &str) -> Self {
        Self::with_config(rank, name, OrderedConfig::default())
    }

    /// Collective constructor with configuration.
    pub fn with_config(rank: &'a Rank, name: &str, cfg: OrderedConfig) -> Self {
        let world = Arc::clone(rank.world());
        let cfg2 = cfg.clone();
        let name2 = name.to_string();
        let pmetrics = if rank.telemetry().enabled() {
            crate::persist::PersistMetrics::from_registry(rank.telemetry().registry())
        } else {
            crate::persist::PersistMetrics::detached()
        };
        let core = rank.get_or_create_shared(&format!("hcl.omap.{name}"), move || {
            // Elastic (no explicit `servers`): every rank hosts a Part so
            // any rank can be admitted as an owner later. Pinned: exactly
            // the historical static placement.
            let elastic = cfg2.servers.is_none();
            let servers = cfg2.servers.clone().unwrap_or_else(|| default_servers(&world));
            let fn_base = world.alloc_fn_ids(N_FNS);
            let repl_map = Arc::new(PartitionMap::round_robin(&servers, 1));
            let hosts: Vec<u32> = if elastic {
                (0..world.config().world_size()).collect()
            } else {
                servers.clone()
            };
            // One relaxed-policy flusher bounds the flush gap of every
            // partition log this container opens.
            let flusher = cfg2.persist.as_ref().and_then(|p| p.policy.interval()).map(Flusher::spawn);
            let mut parts = HashMap::new();
            for &owner in &hosts {
                let leader = servers.iter().position(|&s| s == owner);
                let map = SkipListMap::new();
                let log = cfg2
                    .persist
                    .as_ref()
                    .filter(|_| leader.is_some() || elastic)
                    .map(|p| {
                        // Stems are keyed by owner rank: stable across a
                        // restart of the same world shape, unique per host.
                        let log = OpLog::open_with(
                            p.stem(&name2, owner as usize),
                            p.policy,
                            p.segment_bytes,
                            pmetrics.clone(),
                            |rec: LogRec<K, V>| match rec {
                                (0, k, Some(v)) => {
                                    map.insert(k, v);
                                }
                                (1, k, None) => {
                                    map.remove(&k);
                                }
                                _ => {}
                            },
                        )
                        .expect("open partition op log");
                        if let Some(f) = &flusher {
                            f.register(log.wal());
                        }
                        log
                    });
                parts.insert(
                    owner,
                    Arc::new(Part {
                        index: leader.unwrap_or(0),
                        home: owner,
                        map,
                        replica: SkipListMap::new(),
                        log,
                        local_seq: AtomicU64::new(0),
                        repl: ReplForwarder::new(owner),
                        world: Arc::clone(&world),
                        fn_base,
                        servers: servers.clone(),
                        replicas: if leader.is_some() { cfg2.replicas } else { 0 },
                        membership: elastic.then(|| Arc::clone(world.membership())),
                        forwarding: RwLock::new(HashMap::new()),
                        tombstones: Mutex::new(HashSet::new()),
                        installed: Mutex::new(Vec::new()),
                    }),
                );
            }
            bind_handlers(&world, fn_base, &parts);
            if elastic {
                let cell = world.membership().epoch_cell();
                world
                    .registry()
                    .set_epoch_gate(fn_base, N_FNS, move || cell.load(Ordering::Acquire));
            }
            Core { fn_base, servers, repl_map, parts, cfg: cfg2, flusher }
        });
        let mut d = Dispatcher::new(rank, "omap", core.fn_base, core.cfg.hybrid);
        if core.cfg.servers.is_some() {
            d.set_owner_map(OwnerMap::Pinned(Arc::clone(&core.repl_map)));
        } else {
            // Registered outside the create closure — `get_or_create_shared`
            // holds the objects lock, and `MigratorRegistry::shared` needs
            // it too.
            MigratorRegistry::shared(rank).register_once(
                &format!("omap:{name}"),
                Arc::new(OmapMigrator { core: Arc::clone(&core) }),
            );
        }
        OrderedMap { core, d }
    }

    /// Attach a shared history recorder: every synchronous `put`/`get`/
    /// `erase` through this handle is logged as an invoke/return pair for
    /// offline linearizability checking ([`crate::check`]). Asynchronous
    /// variants and range scans are not recorded.
    #[cfg(feature = "history")]
    pub fn set_recorder(&mut self, rec: crate::HistoryRecorder) {
        self.d.set_recorder(rec);
    }

    /// Which partition (member index in the current ownership map) owns
    /// `key`.
    pub fn partition_of(&self, key: &K) -> usize {
        self.d.member_index_for(crate::stable_hash(key))
    }

    /// Number of partitions (owning members of the current map).
    pub fn partitions(&self) -> usize {
        self.d.owner_map().current().members().len()
    }

    /// Current owner of a key hash — a snapshot for async paths; keyed sync
    /// ops resolve inside the dispatcher so `WrongEpoch` re-routes.
    fn owner_now(&self, hash: u64) -> u32 {
        self.d.resolve(hash).0
    }

    /// Mark a partition-owner rank failed: subsequent ops targeting it
    /// degrade immediately with [`crate::HclError::OwnerDown`].
    pub fn mark_down(&self, owner_rank: u32) {
        self.d.mark_down(owner_rank);
    }

    /// Clear a failure mark set by [`OrderedMap::mark_down`].
    pub fn mark_up(&self, owner_rank: u32) {
        self.d.mark_up(owner_rank);
    }

    /// Insert (Table I: `F + L·log(N) + W`); `true` when newly inserted.
    pub fn put(&self, key: K, value: V) -> HclResult<bool> {
        let tok = hist_invoke!(
            self.d,
            crate::DsOp::MapPut {
                key: crate::history_enc(&key),
                value: crate::history_enc(&value),
            }
        );
        let hash = crate::stable_hash(&key);
        let result = self.d.sync_keyed(&ops::PUT, hash, (key, value), |owner, (k, v)| {
            self.core.parts[&owner].apply_put(k, v)
        });
        hist_return!(self.d, tok, &result, |newly| crate::DsRet::Inserted(*newly));
        result
    }

    /// Asynchronous insert. Remote inserts stage on the rank's op coalescer
    /// and may ride a batched message with neighbouring async ops.
    pub fn put_async(&self, key: K, value: V) -> HclResult<HclFuture<bool>> {
        let owner = self.owner_now(crate::stable_hash(&key));
        self.d.dispatch_async(&ops::PUT, owner, (key, value), |(k, v)| {
            self.core.parts[&owner].apply_put(k, v)
        })
    }

    /// Look up (Table I: `F + L·log(N) + R`). Falls back to a replica when
    /// the owner has been marked down (requires `replicas >= 1`) — the same
    /// degraded-read contract as the unordered map.
    pub fn get(&self, key: &K) -> HclResult<Option<V>> {
        let tok = hist_invoke!(self.d, crate::DsOp::MapGet { key: crate::history_enc(key) });
        let hash = crate::stable_hash(key);
        let owner = self.owner_now(hash);
        // Without replicas there is nowhere to degrade to: dispatch normally
        // so the gate rejects the downed owner with `OwnerDown` immediately.
        let result = if self.d.is_down(owner) && self.core.cfg.replicas >= 1 {
            self.get_from_replica(hash, key)
        } else {
            self.d.sync_keyed_ref(&ops::GET, hash, key, |owner| {
                self.core.parts[&owner].map.get(key)
            })
        };
        hist_return!(self.d, tok, &result, |v| crate::DsRet::Value(
            v.as_ref().map(crate::history_enc)
        ));
        result
    }

    fn get_from_replica(&self, hash: u64, key: &K) -> HclResult<Option<V>> {
        // Replicas live on the *static* ring regardless of membership: the
        // ring successor of the key's home server backs it.
        let nparts = self.core.servers.len();
        let p = self.core.repl_map.member_index_of_hash(hash);
        let succ = p + 1;
        let succ = if succ >= nparts { succ - nparts } else { succ };
        let replica_owner = self.core.servers[succ];
        self.d.sync_ref(&ops::REPL_GET, replica_owner, key, || {
            self.core.parts[&replica_owner].replica.get(key)
        })
    }

    /// Wait until every partition's outstanding replication forwards have
    /// been acknowledged.
    pub fn flush_replication(&self) -> HclResult<()> {
        for &owner in &self.core.servers {
            let _: bool = self.d.sync_ref(&ops::REPL_FLUSH, owner, &(), || {
                self.core.parts[&owner].flush_replication();
                true
            })?;
        }
        Ok(())
    }

    /// Remove `key`.
    pub fn erase(&self, key: &K) -> HclResult<Option<V>> {
        let tok = hist_invoke!(self.d, crate::DsOp::MapErase { key: crate::history_enc(key) });
        let hash = crate::stable_hash(key);
        let result = self.d.sync_keyed_ref(&ops::ERASE, hash, key, |owner| {
            self.core.parts[&owner].apply_erase(key)
        });
        hist_return!(self.d, tok, &result, |v| crate::DsRet::Value(
            v.as_ref().map(crate::history_enc)
        ));
        result
    }

    /// Presence check.
    pub fn contains(&self, key: &K) -> HclResult<bool> {
        Ok(self.get(key)?.is_some())
    }

    /// Total entries.
    pub fn len(&self) -> HclResult<u64> {
        let map = self.d.owner_map().current();
        let mut total = 0;
        for &owner in map.members() {
            total += self.d.sync_ref(&ops::LEN, owner, &(), || {
                self.core.parts[&owner].map.len() as u64
            })?;
        }
        Ok(total)
    }

    /// True when empty.
    pub fn is_empty(&self) -> HclResult<bool> {
        Ok(self.len()? == 0)
    }

    /// Global minimum entry: the minimum of every partition's first.
    pub fn first(&self) -> HclResult<Option<(K, V)>> {
        let map = self.d.owner_map().current();
        let mut best: Option<(K, V)> = None;
        for &owner in map.members() {
            let cand: Option<(K, V)> =
                self.d.sync_ref(&ops::FIRST, owner, &(), || self.core.parts[&owner].map.first())?;
            if let Some((k, v)) = cand {
                if best.as_ref().is_none_or(|(bk, _)| k < *bk) {
                    best = Some((k, v));
                }
            }
        }
        Ok(best)
    }

    /// All entries with keys in `[lo, hi)`, globally sorted.
    pub fn range(&self, lo: &K, hi: &K) -> HclResult<Vec<(K, V)>> {
        let map = self.d.owner_map().current();
        let args = (lo.clone(), hi.clone());
        let mut out = Vec::new();
        for &owner in map.members() {
            let part: Vec<(K, V)> = self.d.sync_ref(&ops::RANGE, owner, &args, || {
                self.core.parts[&owner].map.range_snapshot(lo, hi)
            })?;
            out.extend(part);
        }
        out.sort_by(|a, b| a.0.cmp(&b.0));
        Ok(out)
    }

    /// Every entry, globally sorted (merging the per-partition orders).
    pub fn snapshot_sorted(&self) -> HclResult<Vec<(K, V)>> {
        let map = self.d.owner_map().current();
        let mut out = Vec::new();
        for &owner in map.members() {
            let part: Vec<(K, V)> = self.d.sync_ref(&ops::SNAPSHOT, owner, &(), || {
                self.core.parts[&owner].map.iter_snapshot()
            })?;
            out.extend(part);
        }
        out.sort_by(|a, b| a.0.cmp(&b.0));
        Ok(out)
    }

    /// Partition resize surface (Table I parity; skiplist partitions grow
    /// node-by-node so this is trivially satisfied).
    pub fn resize(&self, partition_id: usize, new_size: usize) -> HclResult<bool> {
        let map = self.d.owner_map().current();
        let owner = *map
            .members()
            .get(partition_id)
            .ok_or(HclError::BadPartition(partition_id))?;
        self.d.sync_ref(&ops::RESIZE, owner, &(new_size as u64), || true)
    }

    /// Persist a globally sorted snapshot of the whole map to `path`
    /// (§III-C6 durability for ordered structures).
    pub fn persist_snapshot(&self, path: impl AsRef<std::path::Path>) -> HclResult<()> {
        let snap = self.snapshot_sorted()?;
        std::fs::write(path, &snap.to_bytes())
            .map_err(|e| crate::HclError::Persist(e.to_string()))
    }

    /// Reload a snapshot written by [`OrderedMap::persist_snapshot`],
    /// re-inserting every entry (keys re-distribute over the current
    /// partitions). Returns the number of restored entries.
    pub fn restore_snapshot(&self, path: impl AsRef<std::path::Path>) -> HclResult<u64> {
        let bytes =
            std::fs::read(path).map_err(|e| crate::HclError::Persist(e.to_string()))?;
        let snap: Vec<(K, V)> = hcl_databox::DataBox::from_bytes(&bytes)
            .map_err(|e| crate::HclError::Persist(e.to_string()))?;
        let n = snap.len() as u64;
        for (k, v) in snap {
            self.put(k, v)?;
        }
        Ok(n)
    }

    /// Flush and compact every *local* partition's op log to a snapshot.
    pub fn compact_local_logs(&self) -> HclResult<()> {
        for &owner in &self.core.servers {
            if self.d.rank().same_node(owner) {
                let part = &self.core.parts[&owner];
                if let Some(log) = &part.log {
                    let snapshot: Vec<LogRec<K, V>> = part
                        .map
                        .iter_snapshot()
                        .into_iter()
                        .map(|(k, v)| (0u8, k, Some(v)))
                        .collect();
                    log.compact(snapshot.iter())
                        .map_err(|e| HclError::Persist(e.to_string()))?;
                }
            }
        }
        Ok(())
    }

    /// Client-side cost counters.
    pub fn costs(&self) -> CostSnapshot {
        self.d.costs()
    }
}

/// Live-migration adapter for one elastic [`OrderedMap`] instance (the
/// ordered twin of the unordered map's adapter — same five-phase window).
struct OmapMigrator<K, V>
where
    K: DataBox + Ord + Hash + Clone + Send + Sync + 'static,
    V: DataBox + Clone + Send + Sync + 'static,
{
    core: Arc<Core<K, V>>,
}

impl<K, V> ShardMigrator for OmapMigrator<K, V>
where
    K: DataBox + Ord + Hash + Clone + Send + Sync + 'static,
    V: DataBox + Clone + Send + Sync + 'static,
{
    fn name(&self) -> &str {
        "omap"
    }

    fn begin(&self, rank: &Rank, mv: &ShardMove) -> HclResult<()> {
        let d = Dispatcher::new(rank, "omap", self.core.fn_base, self.core.cfg.hybrid);
        let vp = mv.vpart as u64;
        let _: bool = d.sync_ref(&ops::MIG_ARM, mv.to, &vp, || {
            self.core.parts[&mv.to].mig_arm(mv.vpart);
            true
        })?;
        let _: bool = d.sync_ref(&ops::MIG_BEGIN, mv.from, &(vp, mv.to), || {
            self.core.parts[&mv.from].mig_begin(mv.vpart, mv.to);
            true
        })?;
        Ok(())
    }

    fn transfer(&self, rank: &Rank, mv: &ShardMove) -> HclResult<(u64, u64)> {
        let d = Dispatcher::new(rank, "omap", self.core.fn_base, self.core.cfg.hybrid);
        let vp = mv.vpart as u64;
        let entries: Vec<(K, V)> = d.sync_ref(&ops::MIG_EXTRACT, mv.from, &vp, || {
            self.core.parts[&mv.from].mig_extract(mv.vpart)
        })?;
        let keys = entries.len() as u64;
        let bytes: u64 = entries.iter().map(|e| e.to_bytes().len() as u64).sum();
        if !entries.is_empty() {
            let to = mv.to;
            let reply = d.bulk(&ops::MIG_INSTALL, to, entries, |(k, v)| {
                self.core.parts[&to].mig_install(k, v)
            })?;
            let _: Vec<bool> = reply.wait()?;
        }
        Ok((keys, bytes))
    }

    fn end(&self, rank: &Rank, mv: &ShardMove, committed: bool) -> HclResult<()> {
        let d = Dispatcher::new(rank, "omap", self.core.fn_base, self.core.cfg.hybrid);
        let vp = mv.vpart as u64;
        let _: bool = d.sync_ref(&ops::MIG_END, mv.from, &(vp, committed, true), || {
            self.core.parts[&mv.from].mig_end(mv.vpart, committed, true);
            true
        })?;
        let _: bool = d.sync_ref(&ops::MIG_END, mv.to, &(vp, committed, false), || {
            self.core.parts[&mv.to].mig_end(mv.vpart, committed, false);
            true
        })?;
        Ok(())
    }
}

/// A distributed ordered set.
pub struct OrderedSet<'a, K>
where
    K: DataBox + Ord + Hash + Clone + Send + Sync + 'static,
{
    inner: OrderedMap<'a, K, ()>,
}

impl<'a, K> OrderedSet<'a, K>
where
    K: DataBox + Ord + Hash + Clone + Send + Sync + 'static,
{
    /// Collective constructor with defaults.
    pub fn new(rank: &'a Rank, name: &str) -> Self {
        OrderedSet { inner: OrderedMap::new(rank, name) }
    }

    /// Collective constructor with configuration.
    pub fn with_config(rank: &'a Rank, name: &str, cfg: OrderedConfig) -> Self {
        OrderedSet { inner: OrderedMap::with_config(rank, name, cfg) }
    }

    /// Insert `key`; `true` when newly inserted.
    pub fn insert(&self, key: K) -> HclResult<bool> {
        self.inner.put(key, ())
    }

    /// Membership test.
    pub fn contains(&self, key: &K) -> HclResult<bool> {
        self.inner.contains(key)
    }

    /// Remove `key`; `true` when it was present.
    pub fn remove(&self, key: &K) -> HclResult<bool> {
        Ok(self.inner.erase(key)?.is_some())
    }

    /// Total elements.
    pub fn len(&self) -> HclResult<u64> {
        self.inner.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> HclResult<bool> {
        self.inner.is_empty()
    }

    /// Smallest element.
    pub fn first(&self) -> HclResult<Option<K>> {
        Ok(self.inner.first()?.map(|(k, ())| k))
    }

    /// Elements in `[lo, hi)`, sorted.
    pub fn range(&self, lo: &K, hi: &K) -> HclResult<Vec<K>> {
        Ok(self.inner.range(lo, hi)?.into_iter().map(|(k, ())| k).collect())
    }

    /// Every element, sorted.
    pub fn snapshot_sorted(&self) -> HclResult<Vec<K>> {
        Ok(self.inner.snapshot_sorted()?.into_iter().map(|(k, ())| k).collect())
    }

    /// Mark a partition-owner rank failed (see [`OrderedMap::mark_down`]).
    pub fn mark_down(&self, owner_rank: u32) {
        self.inner.mark_down(owner_rank);
    }

    /// Clear a failure mark set by [`OrderedSet::mark_down`].
    pub fn mark_up(&self, owner_rank: u32) {
        self.inner.mark_up(owner_rank);
    }

    /// Client-side cost counters.
    pub fn costs(&self) -> CostSnapshot {
        self.inner.costs()
    }
}
