//! `HCL::unordered_map` / `HCL::unordered_set` (paper §III-D1).
//!
//! Multi-partition hash structures: "a single logically contiguous array of
//! buckets distributed block-wise among multiple partitions in the global
//! address space", with **two levels of hashing** — one choosing the
//! partition, one locating the bucket inside it (the in-partition level is
//! the concurrent cuckoo hash of [`hcl_containers::CuckooMap`]).
//!
//! Operations follow the paper exactly:
//! * the caller hashes the key to a partition;
//! * **hybrid access** — "If a node-local partition is chosen, the RPC
//!   infrastructure is bypassed and the insertion (find) is performed on the
//!   shared memory (i.e., without involving the NIC)";
//! * otherwise one RPC (`F`) carries the whole operation to the owner, where
//!   all bucket work happens at local-memory speed.
//!
//! Also here: per-partition resize (`resize(partition_id, new_size)`),
//! asynchronous variants, durability via per-partition op logs, and
//! asynchronous server-side replication (§III-A4: "Replication occurs
//! asynchronously at the server side, where the target process will further
//! hash an operation to more servers").

use std::collections::{HashMap, HashSet};
use std::hash::Hash;
use std::sync::Arc;

use hcl_containers::CuckooMap;
use hcl_databox::DataBox;
use hcl_fabric::EpId;
use hcl_rpc::client::{RawFuture, RpcClient};
use hcl_rpc::FnId;
use hcl_runtime::{Rank, WorldShared};
use parking_lot::{Mutex, RwLock};

use crate::cost::{CostCounters, CostSnapshot};
use crate::persist::{OpLog, PersistConfig};
use crate::{default_servers, HclError, HclFuture, HclResult};

const FN_PUT: u32 = 0;
const FN_GET: u32 = 1;
const FN_ERASE: u32 = 2;
const FN_CONTAINS: u32 = 3;
const FN_LEN: u32 = 4;
const FN_RESIZE: u32 = 5;
const FN_SNAPSHOT: u32 = 6;
const FN_REPL_PUT: u32 = 7;
const FN_REPL_GET: u32 = 8;
const FN_REPL_FLUSH: u32 = 9;
const FN_MERGE: u32 = 10;
const N_FNS: u32 = 11;

/// Op-log record: `(tag, key, value)`; tag 0 = put, 1 = erase.
type LogRec<K, V> = (u8, K, Option<V>);

/// A server-side merge function: receives the current value (if any) and
/// the incoming one, returns the stored result. Registered at construction
/// so the whole read-modify-write executes atomically *at the target* —
/// one invocation per update, no client-side CAS loop (this is the k-mer
/// histogram pattern of §IV-D2).
pub type Merger<V> = Arc<dyn Fn(Option<&V>, &V) -> V + Send + Sync>;

/// Configuration for [`UnorderedMap`] / [`UnorderedSet`].
#[derive(Debug, Clone)]
pub struct UnorderedMapConfig {
    /// Ranks owning a partition; `None` = the first rank of every node.
    pub servers: Option<Vec<u32>>,
    /// Initial buckets per partition (the paper's default is 128).
    pub initial_buckets: usize,
    /// Enable the hybrid data access model (§III-C5). Disable to force every
    /// operation through RPC — the ablation the Fig. 5(a) comparison needs.
    pub hybrid: bool,
    /// Durability (per-partition op logs).
    pub persist: Option<PersistConfig>,
    /// Asynchronous replication factor (0 = off). Each partition forwards
    /// its mutations to the next `replicas` partition owners.
    pub replicas: usize,
}

impl Default for UnorderedMapConfig {
    fn default() -> Self {
        UnorderedMapConfig {
            servers: None,
            initial_buckets: 128,
            hybrid: true,
            persist: None,
            replicas: 0,
        }
    }
}

/// Server-side state of one partition.
struct Part<K, V>
where
    K: DataBox + Hash + Eq + Clone + Send + Sync + 'static,
    V: DataBox + Clone + Send + Sync + 'static,
{
    index: usize,
    map: CuckooMap<K, V>,
    /// Entries replicated *to* this partition from others.
    replica: CuckooMap<K, V>,
    log: Option<OpLog<LogRec<K, V>>>,
    merger: Option<Merger<V>>,
    /// Outstanding asynchronous replication futures.
    repl_outstanding: Mutex<Vec<RawFuture>>,
    repl_client: std::sync::OnceLock<RpcClient>,
    world: Arc<WorldShared>,
    fn_base: FnId,
    servers: Vec<u32>,
    replicas: usize,
    costs: CostCounters,
}

impl<K, V> Part<K, V>
where
    K: DataBox + Hash + Eq + Clone + Send + Sync + 'static,
    V: DataBox + Clone + Send + Sync + 'static,
{
    fn apply_put(&self, key: K, value: V) -> bool {
        self.costs.l(1);
        self.costs.w(1);
        if let Some(log) = &self.log {
            let _ = log.append(&(0, key.clone(), Some(value.clone())));
        }
        let existed = self.map.insert(key.clone(), value.clone()).is_some();
        if self.replicas > 0 {
            self.replicate(FN_REPL_PUT, (key, Some(value)));
        }
        !existed
    }

    fn apply_erase(&self, key: &K) -> Option<V> {
        self.costs.l(1);
        self.costs.w(1);
        if let Some(log) = &self.log {
            let _ = log.append(&(1, key.clone(), None));
        }
        let prev = self.map.remove(key);
        if self.replicas > 0 {
            self.replicate(FN_REPL_PUT, (key.clone(), None::<V>));
        }
        prev
    }

    fn apply_get(&self, key: &K) -> Option<V> {
        self.costs.l(1);
        self.costs.r(1);
        self.map.get(key)
    }

    fn apply_merge(&self, key: K, value: V) -> V {
        self.costs.l(1);
        self.costs.r(1);
        self.costs.w(1);
        let merger = self.merger.as_ref().expect("container built without a merger");
        let merged = self.map.upsert(key.clone(), |old| merger(old, &value));
        if let Some(log) = &self.log {
            let _ = log.append(&(0, key.clone(), Some(merged.clone())));
        }
        if self.replicas > 0 {
            self.replicate(FN_REPL_PUT, (key, Some(merged.clone())));
        }
        merged
    }

    /// Forward a mutation asynchronously to the next `replicas` partitions —
    /// the server-side re-hash of §III-A4. The invocation futures are kept
    /// so `flush_replication` can await them.
    fn replicate(&self, fn_off: u32, args: (K, Option<V>)) {
        let nparts = self.servers.len();
        if nparts <= 1 {
            return;
        }
        let client = self.repl_client.get_or_init(|| {
            let cfg = self.world.config();
            // Replication clients use ranks past the world: the servers'
            // slot tables reserve room for them.
            let ep = EpId {
                node: self.servers[self.index] / cfg.ranks_per_node,
                rank: cfg.world_size() + self.index as u32,
            };
            RpcClient::new(ep, Arc::clone(self.world.fabric()), cfg.slot_cap)
        });
        let encoded = args.to_bytes();
        let mut outstanding = self.repl_outstanding.lock();
        // Opportunistically drop already-completed futures.
        outstanding.retain(|f| !f.is_ready());
        for i in 1..=self.replicas.min(nparts - 1) {
            let target = self.servers[(self.index + i) % nparts];
            let target_ep = self.world.config().ep_of(target);
            if let Ok(f) = client.invoke_raw(target_ep, self.fn_base + fn_off, &encoded) {
                outstanding.push(f);
            }
        }
    }

    fn flush_replication(&self) {
        let futures: Vec<RawFuture> = std::mem::take(&mut *self.repl_outstanding.lock());
        for f in futures {
            let _ = f.wait();
        }
    }
}

/// World-shared core of one container.
struct Core<K, V>
where
    K: DataBox + Hash + Eq + Clone + Send + Sync + 'static,
    V: DataBox + Clone + Send + Sync + 'static,
{
    fn_base: FnId,
    servers: Vec<u32>,
    parts: HashMap<u32, Arc<Part<K, V>>>,
    cfg: UnorderedMapConfig,
}

fn bind_handlers<K, V>(
    world: &Arc<WorldShared>,
    fn_base: FnId,
    parts: &HashMap<u32, Arc<Part<K, V>>>,
) where
    K: DataBox + Hash + Eq + Clone + Send + Sync + 'static,
    V: DataBox + Clone + Send + Sync + 'static,
{
    let reg = world.registry();
    let p = parts.clone();
    reg.bind_typed(fn_base + FN_PUT, move |server: EpId, _, (k, v): (K, V)| {
        p[&server.rank].apply_put(k, v)
    });
    let p = parts.clone();
    reg.bind_typed(fn_base + FN_GET, move |server: EpId, _, k: K| p[&server.rank].apply_get(&k));
    let p = parts.clone();
    reg.bind_typed(fn_base + FN_ERASE, move |server: EpId, _, k: K| {
        p[&server.rank].apply_erase(&k)
    });
    let p = parts.clone();
    reg.bind_typed(fn_base + FN_CONTAINS, move |server: EpId, _, k: K| {
        p[&server.rank].apply_get(&k).is_some()
    });
    let p = parts.clone();
    reg.bind_typed(fn_base + FN_LEN, move |server: EpId, _, ()| {
        p[&server.rank].map.len() as u64
    });
    let p = parts.clone();
    reg.bind_typed(fn_base + FN_RESIZE, move |server: EpId, _, new_buckets: u64| {
        p[&server.rank].map.resize_to(new_buckets as usize);
        true
    });
    let p = parts.clone();
    reg.bind_typed(fn_base + FN_SNAPSHOT, move |server: EpId, _, ()| {
        p[&server.rank].map.iter_snapshot()
    });
    let p = parts.clone();
    reg.bind_typed(
        fn_base + FN_REPL_PUT,
        move |server: EpId, _, (k, v): (K, Option<V>)| {
            let part = &p[&server.rank];
            match v {
                Some(v) => {
                    part.replica.insert(k, v);
                }
                None => {
                    part.replica.remove(&k);
                }
            }
            true
        },
    );
    let p = parts.clone();
    reg.bind_typed(fn_base + FN_REPL_GET, move |server: EpId, _, k: K| {
        p[&server.rank].replica.get(&k)
    });
    let p = parts.clone();
    reg.bind_typed(fn_base + FN_REPL_FLUSH, move |server: EpId, _, ()| {
        p[&server.rank].flush_replication();
        true
    });
    let p = parts.clone();
    reg.bind_typed(fn_base + FN_MERGE, move |server: EpId, _, (k, v): (K, V)| {
        p[&server.rank].apply_merge(k, v)
    });
}

/// A distributed unordered (hash) map.
pub struct UnorderedMap<'a, K, V>
where
    K: DataBox + Hash + Eq + Clone + Send + Sync + 'static,
    V: DataBox + Clone + Send + Sync + 'static,
{
    core: Arc<Core<K, V>>,
    rank: &'a Rank,
    costs: CostCounters,
    downed: RwLock<HashSet<u32>>,
    #[cfg(feature = "history")]
    recorder: Option<crate::HistoryRecorder>,
}

impl<'a, K, V> UnorderedMap<'a, K, V>
where
    K: DataBox + Hash + Eq + Clone + Send + Sync + 'static,
    V: DataBox + Clone + Send + Sync + 'static,
{
    /// Collective constructor with defaults (one partition per node, 128
    /// buckets, hybrid access on). Every rank must call it with the same
    /// `name`.
    pub fn new(rank: &'a Rank, name: &str) -> Self {
        Self::with_config(rank, name, UnorderedMapConfig::default())
    }

    /// Collective constructor with explicit configuration.
    pub fn with_config(rank: &'a Rank, name: &str, cfg: UnorderedMapConfig) -> Self {
        Self::build(rank, name, cfg, None)
    }

    /// Collective constructor that also registers a server-side [`Merger`],
    /// enabling [`UnorderedMap::put_merge`].
    pub fn with_merger(
        rank: &'a Rank,
        name: &str,
        cfg: UnorderedMapConfig,
        merger: Merger<V>,
    ) -> Self {
        Self::build(rank, name, cfg, Some(merger))
    }

    fn build(
        rank: &'a Rank,
        name: &str,
        cfg: UnorderedMapConfig,
        merger: Option<Merger<V>>,
    ) -> Self {
        let world = Arc::clone(rank.world());
        let cfg2 = cfg.clone();
        let name2 = name.to_string();
        let core = rank.get_or_create_shared(&format!("hcl.umap.{name}"), move || {
            let servers = cfg2.servers.clone().unwrap_or_else(|| default_servers(&world));
            let fn_base = world.alloc_fn_ids(N_FNS);
            let mut parts = HashMap::new();
            for (i, &owner) in servers.iter().enumerate() {
                let map = CuckooMap::with_buckets(cfg2.initial_buckets);
                let log = cfg2.persist.as_ref().map(|p| {
                    let path = p.log_path(&name2, i);
                    OpLog::open(path, p.mode_of(), |rec: LogRec<K, V>| match rec {
                        (0, k, Some(v)) => {
                            map.insert(k, v);
                        }
                        (1, k, None) => {
                            map.remove(&k);
                        }
                        _ => {}
                    })
                    .expect("open partition op log")
                });
                parts.insert(
                    owner,
                    Arc::new(Part {
                        index: i,
                        map,
                        replica: CuckooMap::with_buckets(cfg2.initial_buckets),
                        log,
                        merger: merger.clone(),
                        repl_outstanding: Mutex::new(Vec::new()),
                        repl_client: std::sync::OnceLock::new(),
                        world: Arc::clone(&world),
                        fn_base,
                        servers: servers.clone(),
                        replicas: cfg2.replicas,
                        costs: CostCounters::default(),
                    }),
                );
            }
            bind_handlers(&world, fn_base, &parts);
            Core { fn_base, servers, parts, cfg: cfg2 }
        });
        UnorderedMap {
            core,
            rank,
            costs: CostCounters::default(),
            downed: RwLock::new(HashSet::new()),
            #[cfg(feature = "history")]
            recorder: None,
        }
    }

    /// Attach a shared history recorder: every synchronous `put`/`get`/
    /// `erase` through this handle is logged as an invoke/return pair for
    /// offline linearizability checking ([`crate::check`]). Asynchronous and
    /// bulk variants are not recorded; an op whose RPC fails never enters
    /// the log.
    #[cfg(feature = "history")]
    pub fn set_recorder(&mut self, rec: crate::HistoryRecorder) {
        self.recorder = Some(rec);
    }

    /// First-level hash: which partition owns `key`.
    pub fn partition_of(&self, key: &K) -> usize {
        (crate::stable_hash(key) as usize) % self.core.servers.len()
    }

    /// Number of partitions.
    pub fn partitions(&self) -> usize {
        self.core.servers.len()
    }

    /// The owner rank of partition `p`.
    pub fn server_of(&self, p: usize) -> u32 {
        self.core.servers[p]
    }

    fn owner_of(&self, key: &K) -> u32 {
        self.core.servers[self.partition_of(key)]
    }

    fn is_local(&self, owner: u32) -> bool {
        self.core.cfg.hybrid && self.rank.same_node(owner)
    }

    /// Insert `key -> value`; returns `true` when the key was newly
    /// inserted (`false` = overwrite). One remote invocation worst case
    /// (Table I: `F + L + W`).
    pub fn put(&self, key: K, value: V) -> HclResult<bool> {
        #[cfg(feature = "history")]
        let tok = self.recorder.as_ref().map(|r| {
            r.invoke(crate::DsOp::MapPut {
                key: crate::history_enc(&key),
                value: crate::history_enc(&value),
            })
        });
        let owner = self.owner_of(&key);
        let result = if self.is_local(owner) {
            self.costs.l(1);
            self.costs.w(1);
            Ok(self.core.parts[&owner].apply_put(key, value))
        } else {
            self.costs.f();
            self.costs.fu();
            let ep = self.rank.world().config().ep_of(owner);
            Ok(self.rank.invoke(ep, self.core.fn_base + FN_PUT, &(key, value))?)
        };
        #[cfg(feature = "history")]
        if let (Some(r), Some(tok), Ok(newly)) = (self.recorder.as_ref(), tok, result.as_ref()) {
            r.record_return(tok, crate::DsRet::Inserted(*newly));
        }
        result
    }

    /// Asynchronous insert (§III-C4). Remote inserts stage on the rank's op
    /// coalescer and may ride a batched message with neighbouring async ops
    /// to the same partition (§III-B request aggregation).
    pub fn put_async(&self, key: K, value: V) -> HclResult<HclFuture<bool>> {
        let owner = self.owner_of(&key);
        if self.is_local(owner) {
            self.costs.l(1);
            self.costs.w(1);
            Ok(HclFuture::Ready(self.core.parts[&owner].apply_put(key, value)))
        } else {
            self.costs.f();
            if self.rank.coalescing_enabled() {
                self.costs.fb(1);
            } else {
                self.costs.fu();
            }
            let ep = self.rank.world().config().ep_of(owner);
            Ok(HclFuture::Coalesced(
                self.rank.invoke_coalesced(ep, self.core.fn_base + FN_PUT, &(key, value))?,
            ))
        }
    }

    /// Look up `key` (Table I: `F + L + R`). Falls back to a replica when
    /// the owner has been marked down.
    pub fn get(&self, key: &K) -> HclResult<Option<V>> {
        #[cfg(feature = "history")]
        let tok = self
            .recorder
            .as_ref()
            .map(|r| r.invoke(crate::DsOp::MapGet { key: crate::history_enc(key) }));
        let p = self.partition_of(key);
        let owner = self.core.servers[p];
        let result = if self.downed.read().contains(&owner) {
            self.get_from_replica(p, key)
        } else if self.is_local(owner) {
            self.costs.l(1);
            self.costs.r(1);
            Ok(self.core.parts[&owner].apply_get(key))
        } else {
            self.costs.f();
            self.costs.fu();
            let ep = self.rank.world().config().ep_of(owner);
            Ok(self.rank.invoke(ep, self.core.fn_base + FN_GET, key)?)
        };
        #[cfg(feature = "history")]
        if let (Some(r), Some(tok), Ok(v)) = (self.recorder.as_ref(), tok, result.as_ref()) {
            r.record_return(tok, crate::DsRet::Value(v.as_ref().map(crate::history_enc)));
        }
        result
    }

    /// Asynchronous lookup; remote lookups stage on the op coalescer.
    pub fn get_async(&self, key: &K) -> HclResult<HclFuture<Option<V>>> {
        let owner = self.owner_of(key);
        if self.is_local(owner) {
            self.costs.l(1);
            self.costs.r(1);
            Ok(HclFuture::Ready(self.core.parts[&owner].apply_get(key)))
        } else {
            self.costs.f();
            if self.rank.coalescing_enabled() {
                self.costs.fb(1);
            } else {
                self.costs.fu();
            }
            let ep = self.rank.world().config().ep_of(owner);
            Ok(HclFuture::Coalesced(
                self.rank.invoke_coalesced(ep, self.core.fn_base + FN_GET, key)?,
            ))
        }
    }

    /// Atomically merge `value` into the entry for `key` using the
    /// registered [`Merger`]; returns the stored result. One remote
    /// invocation — the read-modify-write happens *at the target*, which is
    /// exactly what BCL's client-side model cannot express without a CAS
    /// retry loop.
    pub fn put_merge(&self, key: K, value: V) -> HclResult<V> {
        let owner = self.owner_of(&key);
        if self.is_local(owner) {
            self.costs.l(1);
            self.costs.r(1);
            self.costs.w(1);
            Ok(self.core.parts[&owner].apply_merge(key, value))
        } else {
            self.costs.f();
            self.costs.fu();
            let ep = self.rank.world().config().ep_of(owner);
            Ok(self.rank.invoke(ep, self.core.fn_base + FN_MERGE, &(key, value))?)
        }
    }

    /// Asynchronous [`UnorderedMap::put_merge`]; remote merges stage on the
    /// op coalescer.
    pub fn put_merge_async(&self, key: K, value: V) -> HclResult<HclFuture<V>> {
        let owner = self.owner_of(&key);
        if self.is_local(owner) {
            self.costs.l(1);
            self.costs.r(1);
            self.costs.w(1);
            Ok(HclFuture::Ready(self.core.parts[&owner].apply_merge(key, value)))
        } else {
            self.costs.f();
            if self.rank.coalescing_enabled() {
                self.costs.fb(1);
            } else {
                self.costs.fu();
            }
            let ep = self.rank.world().config().ep_of(owner);
            Ok(HclFuture::Coalesced(
                self.rank.invoke_coalesced(ep, self.core.fn_base + FN_MERGE, &(key, value))?,
            ))
        }
    }

    /// Insert many entries with **request aggregation** (§III-B): entries
    /// are grouped by partition and each remote partition receives *one*
    /// aggregated message carrying all of its operations, which the NIC
    /// workers unpack and execute. Returns the number of newly inserted
    /// keys.
    pub fn put_batch(&self, entries: Vec<(K, V)>) -> HclResult<u64> {
        use std::collections::HashMap as StdMap;
        let mut by_owner: StdMap<u32, Vec<(K, V)>> = StdMap::new();
        for (k, v) in entries {
            by_owner.entry(self.owner_of(&k)).or_default().push((k, v));
        }
        let mut new_keys = 0u64;
        let mut futures = Vec::new();
        for (owner, group) in by_owner {
            if self.is_local(owner) {
                for (k, v) in group {
                    self.costs.l(1);
                    self.costs.w(1);
                    if self.core.parts[&owner].apply_put(k, v) {
                        new_keys += 1;
                    }
                }
            } else {
                // One aggregated request for the whole group: args packed
                // back-to-back into one arena, sent as borrowed slices.
                self.costs.f();
                self.costs.fb(group.len() as u64);
                let fn_id = self.core.fn_base + FN_PUT;
                let mut arena = Vec::new();
                let mut ends = Vec::with_capacity(group.len());
                for kv in &group {
                    kv.pack(&mut arena);
                    ends.push(arena.len());
                }
                let ep = self.rank.world().config().ep_of(owner);
                // Flush staged async ops first so the explicit batch keeps
                // per-destination program order.
                self.rank.coalescer().flush(ep);
                let calls = (0..ends.len()).map(|i| {
                    let start = if i == 0 { 0 } else { ends[i - 1] };
                    (fn_id, &arena[start..ends[i]])
                });
                futures.push(self.rank.client().invoke_batch_slices(ep, calls)?);
            }
        }
        for f in futures {
            let results: Vec<bool> = f.wait_typed().map_err(crate::HclError::from)?;
            new_keys += results.into_iter().filter(|b| *b).count() as u64;
        }
        Ok(new_keys)
    }

    /// Look up many keys with request aggregation; results are returned in
    /// the order of `keys`.
    pub fn get_batch(&self, keys: &[K]) -> HclResult<Vec<Option<V>>> {
        use std::collections::HashMap as StdMap;
        let mut by_owner: StdMap<u32, Vec<usize>> = StdMap::new();
        for (i, k) in keys.iter().enumerate() {
            by_owner.entry(self.owner_of(k)).or_default().push(i);
        }
        let mut out: Vec<Option<V>> = (0..keys.len()).map(|_| None).collect();
        let mut pending = Vec::new();
        for (owner, idxs) in by_owner {
            if self.is_local(owner) {
                for i in idxs {
                    self.costs.l(1);
                    self.costs.r(1);
                    out[i] = self.core.parts[&owner].apply_get(&keys[i]);
                }
            } else {
                self.costs.f();
                self.costs.fb(idxs.len() as u64);
                let fn_id = self.core.fn_base + FN_GET;
                let mut arena = Vec::new();
                let mut ends = Vec::with_capacity(idxs.len());
                for &i in &idxs {
                    keys[i].pack(&mut arena);
                    ends.push(arena.len());
                }
                let ep = self.rank.world().config().ep_of(owner);
                self.rank.coalescer().flush(ep);
                let calls = (0..ends.len()).map(|i| {
                    let start = if i == 0 { 0 } else { ends[i - 1] };
                    (fn_id, &arena[start..ends[i]])
                });
                pending.push((idxs, self.rank.client().invoke_batch_slices(ep, calls)?));
            }
        }
        for (idxs, f) in pending {
            let results: Vec<Option<V>> = f.wait_typed().map_err(crate::HclError::from)?;
            for (i, r) in idxs.into_iter().zip(results) {
                out[i] = r;
            }
        }
        Ok(out)
    }

    /// Remove `key`, returning its value.
    pub fn erase(&self, key: &K) -> HclResult<Option<V>> {
        #[cfg(feature = "history")]
        let tok = self
            .recorder
            .as_ref()
            .map(|r| r.invoke(crate::DsOp::MapErase { key: crate::history_enc(key) }));
        let owner = self.owner_of(key);
        let result = if self.is_local(owner) {
            self.costs.l(1);
            self.costs.w(1);
            Ok(self.core.parts[&owner].apply_erase(key))
        } else {
            self.costs.f();
            self.costs.fu();
            let ep = self.rank.world().config().ep_of(owner);
            Ok(self.rank.invoke(ep, self.core.fn_base + FN_ERASE, key)?)
        };
        #[cfg(feature = "history")]
        if let (Some(r), Some(tok), Ok(v)) = (self.recorder.as_ref(), tok, result.as_ref()) {
            r.record_return(tok, crate::DsRet::Value(v.as_ref().map(crate::history_enc)));
        }
        result
    }

    /// Presence check.
    pub fn contains(&self, key: &K) -> HclResult<bool> {
        Ok(self.get(key)?.is_some())
    }

    /// Total entries across all partitions (collective-free; issues one
    /// call per remote partition).
    pub fn len(&self) -> HclResult<u64> {
        let mut total = 0u64;
        for &owner in &self.core.servers {
            if self.is_local(owner) {
                total += self.core.parts[&owner].map.len() as u64;
            } else {
                self.costs.f();
                self.costs.fu();
                let ep = self.rank.world().config().ep_of(owner);
                let n: u64 = self.rank.invoke(ep, self.core.fn_base + FN_LEN, &())?;
                total += n;
            }
        }
        Ok(total)
    }

    /// True when no partition holds entries.
    pub fn is_empty(&self) -> HclResult<bool> {
        Ok(self.len()? == 0)
    }

    /// Resize one partition (the paper's `resize(partition_id, new_size)`;
    /// Table I: `F + N(R+W)`). "This operation is localized to the involved
    /// partition."
    pub fn resize(&self, partition_id: usize, new_buckets: usize) -> HclResult<bool> {
        let owner = *self
            .core
            .servers
            .get(partition_id)
            .ok_or(HclError::BadPartition(partition_id))?;
        if self.is_local(owner) {
            self.core.parts[&owner].map.resize_to(new_buckets);
            Ok(true)
        } else {
            self.costs.f();
            self.costs.fu();
            let ep = self.rank.world().config().ep_of(owner);
            Ok(self.rank.invoke(ep, self.core.fn_base + FN_RESIZE, &(new_buckets as u64))?)
        }
    }

    /// Bucket count of a partition (diagnostics).
    pub fn partition_buckets(&self, partition_id: usize) -> usize {
        let owner = self.core.servers[partition_id];
        self.core.parts[&owner].map.buckets()
    }

    /// Clone out every entry of every partition (not atomic).
    pub fn snapshot_all(&self) -> HclResult<Vec<(K, V)>> {
        let mut out = Vec::new();
        for &owner in &self.core.servers {
            if self.is_local(owner) {
                out.extend(self.core.parts[&owner].map.iter_snapshot());
            } else {
                self.costs.f();
                self.costs.fu();
                let ep = self.rank.world().config().ep_of(owner);
                let part: Vec<(K, V)> =
                    self.rank.invoke(ep, self.core.fn_base + FN_SNAPSHOT, &())?;
                out.extend(part);
            }
        }
        Ok(out)
    }

    /// Mark a partition owner as failed: subsequent `get`s for its keys are
    /// served from the replica on the next partition (requires
    /// `replicas >= 1`).
    pub fn mark_down(&self, owner_rank: u32) {
        self.downed.write().insert(owner_rank);
    }

    /// Clear a failure mark.
    pub fn mark_up(&self, owner_rank: u32) {
        self.downed.write().remove(&owner_rank);
    }

    fn get_from_replica(&self, partition: usize, key: &K) -> HclResult<Option<V>> {
        let nparts = self.core.servers.len();
        let replica_owner = self.core.servers[(partition + 1) % nparts];
        if self.is_local(replica_owner) {
            Ok(self.core.parts[&replica_owner].replica.get(key))
        } else {
            self.costs.f();
            self.costs.fu();
            let ep = self.rank.world().config().ep_of(replica_owner);
            Ok(self.rank.invoke(ep, self.core.fn_base + FN_REPL_GET, key)?)
        }
    }

    /// Wait until every partition's outstanding replication forwards have
    /// been acknowledged.
    pub fn flush_replication(&self) -> HclResult<()> {
        for &owner in &self.core.servers {
            if self.is_local(owner) {
                self.core.parts[&owner].flush_replication();
            } else {
                self.costs.f();
                self.costs.fu();
                let ep = self.rank.world().config().ep_of(owner);
                let _: bool = self.rank.invoke(ep, self.core.fn_base + FN_REPL_FLUSH, &())?;
            }
        }
        Ok(())
    }

    /// Flush and compact every *local* partition's op log to a snapshot.
    pub fn compact_local_logs(&self) -> HclResult<()> {
        for &owner in &self.core.servers {
            if self.rank.same_node(owner) {
                let part = &self.core.parts[&owner];
                if let Some(log) = &part.log {
                    let snapshot: Vec<LogRec<K, V>> = part
                        .map
                        .iter_snapshot()
                        .into_iter()
                        .map(|(k, v)| (0u8, k, Some(v)))
                        .collect();
                    log.compact(snapshot.iter())
                        .map_err(|e| HclError::Persist(e.to_string()))?;
                }
            }
        }
        Ok(())
    }

    /// Client-side cost counters (Table I terms observed by this rank).
    pub fn costs(&self) -> CostSnapshot {
        self.costs.snapshot()
    }

    /// Aggregated server-side cost counters across all partitions.
    pub fn server_costs(&self) -> CostSnapshot {
        let mut out = CostSnapshot::default();
        for part in self.core.parts.values() {
            let s = part.costs.snapshot();
            out.f += s.f;
            out.l += s.l;
            out.r += s.r;
            out.w += s.w;
            out.fb += s.fb;
            out.fu += s.fu;
        }
        out
    }
}

impl PersistConfig {
    pub(crate) fn mode_of(&self) -> crate::persist::PersistMode {
        self.mode
    }
}

/// A distributed unordered (hash) set: the same two-level hash structure
/// with key-only buckets ("sets only contain a single key per element,
/// which reduces the serialization cost", §IV-C).
pub struct UnorderedSet<'a, K>
where
    K: DataBox + Hash + Eq + Clone + Send + Sync + 'static,
{
    inner: UnorderedMap<'a, K, ()>,
    #[cfg(feature = "history")]
    recorder: Option<crate::HistoryRecorder>,
}

impl<'a, K> UnorderedSet<'a, K>
where
    K: DataBox + Hash + Eq + Clone + Send + Sync + 'static,
{
    /// Collective constructor with defaults.
    pub fn new(rank: &'a Rank, name: &str) -> Self {
        UnorderedSet {
            inner: UnorderedMap::new(rank, name),
            #[cfg(feature = "history")]
            recorder: None,
        }
    }

    /// Collective constructor with configuration.
    pub fn with_config(rank: &'a Rank, name: &str, cfg: UnorderedMapConfig) -> Self {
        UnorderedSet {
            inner: UnorderedMap::with_config(rank, name, cfg),
            #[cfg(feature = "history")]
            recorder: None,
        }
    }

    /// Attach a shared history recorder: synchronous `insert`/`remove`/
    /// `contains` through this handle are logged as set operations. The
    /// inner map's recorder stays unset so each op is recorded exactly once.
    #[cfg(feature = "history")]
    pub fn set_recorder(&mut self, rec: crate::HistoryRecorder) {
        self.recorder = Some(rec);
    }

    /// Insert `key`; `true` when newly inserted.
    pub fn insert(&self, key: K) -> HclResult<bool> {
        #[cfg(feature = "history")]
        let tok = self
            .recorder
            .as_ref()
            .map(|r| r.invoke(crate::DsOp::SetInsert { key: crate::history_enc(&key) }));
        let result = self.inner.put(key, ());
        #[cfg(feature = "history")]
        if let (Some(r), Some(tok), Ok(newly)) = (self.recorder.as_ref(), tok, result.as_ref()) {
            r.record_return(tok, crate::DsRet::Inserted(*newly));
        }
        result
    }

    /// Asynchronous insert.
    pub fn insert_async(&self, key: K) -> HclResult<HclFuture<bool>> {
        self.inner.put_async(key, ())
    }

    /// Membership test (Table I: `F + L + R`).
    pub fn contains(&self, key: &K) -> HclResult<bool> {
        #[cfg(feature = "history")]
        let tok = self
            .recorder
            .as_ref()
            .map(|r| r.invoke(crate::DsOp::SetContains { key: crate::history_enc(key) }));
        let result = self.inner.contains(key);
        #[cfg(feature = "history")]
        if let (Some(r), Some(tok), Ok(present)) = (self.recorder.as_ref(), tok, result.as_ref()) {
            r.record_return(tok, crate::DsRet::Contains(*present));
        }
        result
    }

    /// Remove `key`; `true` when it was present.
    pub fn remove(&self, key: &K) -> HclResult<bool> {
        #[cfg(feature = "history")]
        let tok = self
            .recorder
            .as_ref()
            .map(|r| r.invoke(crate::DsOp::SetRemove { key: crate::history_enc(key) }));
        let result = self.inner.erase(key).map(|v| v.is_some());
        #[cfg(feature = "history")]
        if let (Some(r), Some(tok), Ok(removed)) = (self.recorder.as_ref(), tok, result.as_ref()) {
            r.record_return(tok, crate::DsRet::Removed(*removed));
        }
        result
    }

    /// Total elements.
    pub fn len(&self) -> HclResult<u64> {
        self.inner.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> HclResult<bool> {
        self.inner.is_empty()
    }

    /// Resize one partition.
    pub fn resize(&self, partition_id: usize, new_buckets: usize) -> HclResult<bool> {
        self.inner.resize(partition_id, new_buckets)
    }

    /// All elements (not atomic).
    pub fn snapshot_all(&self) -> HclResult<Vec<K>> {
        Ok(self.inner.snapshot_all()?.into_iter().map(|(k, ())| k).collect())
    }

    /// Client-side cost counters.
    pub fn costs(&self) -> CostSnapshot {
        self.inner.costs()
    }
}
